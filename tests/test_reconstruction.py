"""Unit tests for the Dinur–Nissim reconstruction attacker (Appendix A)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.attacks import noisy_subset_sum_oracle, reconstruction_attack


class TestOracle:
    def test_exact_when_noiseless(self, rng):
        secret = np.array([1, 0, 1, 1, 0])
        oracle = noisy_subset_sum_oracle(secret, 0.0, rng)
        assert oracle(np.array([1, 1, 0, 0, 0])) == pytest.approx(1.0)
        assert oracle(np.ones(5)) == pytest.approx(3.0)

    def test_noise_scale(self, rng):
        secret = np.zeros(100)
        oracle = noisy_subset_sum_oracle(secret, 5.0, rng)
        answers = [oracle(np.ones(100)) for _ in range(200)]
        assert np.std(answers) == pytest.approx(5.0, rel=0.3)

    def test_validates_inputs(self, rng):
        with pytest.raises(ValueError):
            noisy_subset_sum_oracle(np.array([0, 2]), 1.0, rng)
        oracle = noisy_subset_sum_oracle(np.array([0, 1]), 1.0, rng)
        with pytest.raises(ValueError):
            oracle(np.ones(3))


class TestReconstruction:
    def test_noiseless_curator_fully_reconstructed(self, rng):
        num_rows = 60
        secret = (rng.random(num_rows) < 0.5).astype(np.int8)
        oracle = noisy_subset_sum_oracle(secret, 0.0, rng)
        result = reconstruction_attack(oracle, num_rows, rng=rng, truth=secret)
        assert result.accuracy == 1.0

    def test_small_noise_still_breaks(self, rng):
        # o(sqrt(M)) noise: reconstruction succeeds on most rows.
        num_rows = 100
        secret = (rng.random(num_rows) < 0.5).astype(np.int8)
        oracle = noisy_subset_sum_oracle(secret, 1.0, rng)
        result = reconstruction_attack(oracle, num_rows, rng=rng, truth=secret)
        assert result.accuracy > 0.95

    def test_sqrt_m_noise_defeats_reconstruction(self, rng):
        # Omega(sqrt(M)) noise — the Appendix A regime — leaves the
        # attacker near coin flipping.
        num_rows = 100
        secret = (rng.random(num_rows) < 0.5).astype(np.int8)
        oracle = noisy_subset_sum_oracle(secret, 2.0 * math.sqrt(num_rows), rng)
        result = reconstruction_attack(oracle, num_rows, rng=rng, truth=secret)
        assert result.accuracy < 0.8

    def test_accuracy_nan_without_truth(self, rng):
        oracle = noisy_subset_sum_oracle(np.zeros(10), 1.0, rng)
        result = reconstruction_attack(oracle, 10, rng=rng)
        assert math.isnan(result.accuracy)
        assert result.recovered.shape == (10,)

    def test_query_budget_recorded(self, rng):
        oracle = noisy_subset_sum_oracle(np.zeros(10), 1.0, rng)
        result = reconstruction_attack(oracle, 10, num_queries=17, rng=rng)
        assert result.num_queries == 17

    def test_validates_inputs(self, rng):
        oracle = noisy_subset_sum_oracle(np.zeros(10), 1.0, rng)
        with pytest.raises(ValueError):
            reconstruction_attack(oracle, 0, rng=rng)
        with pytest.raises(ValueError):
            reconstruction_attack(oracle, 10, num_queries=0, rng=rng)
        with pytest.raises(ValueError):
            reconstruction_attack(oracle, 10, rng=rng, truth=np.zeros(5))
