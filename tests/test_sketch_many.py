"""Tests for batched multi-user sketching and the deterministic coin schedule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BiasedPRF,
    CollectionCoins,
    CounterPRF,
    PrivacyParams,
    Sketcher,
    TrueRandomOracle,
)
from repro.data import bernoulli_panel
from repro.server.serialization import dumps_store
from repro.server import publish_database

from .conftest import GLOBAL_KEY

PARAMS = PrivacyParams(p=0.3)


def panel(num_users: int, width: int = 5, seed: int = 0):
    rng = np.random.default_rng(seed)
    rows = (rng.random((num_users, width)) < 0.5).astype(np.int8)
    user_ids = [f"u{i}" for i in range(num_users)]
    indices = np.arange(num_users) + 17  # offset: global != local positions
    return user_ids, rows, indices


class TestCollectionCoins:
    def test_grid_matches_scalar_stream(self):
        coins = CollectionCoins(seed=42)
        user_indices = np.array([3, 99, 12_000_000])
        grid_keys, grid_coins = coins.draw_grid(user_indices, 2, 10)
        for row, user_index in enumerate(user_indices):
            stream = coins.user(int(user_index), 2)
            for start, count in ((0, 10), (2, 5), (7, 3)):
                keys, accepts = stream.draw(start, count)
                assert keys.tolist() == grid_keys[row, start : start + count].tolist()
                assert accepts.tolist() == grid_coins[row, start : start + count].tolist()

    def test_streams_differ_across_seed_user_and_run(self):
        base = CollectionCoins(seed=1).user(5, 0).draw(0, 8)[0].tolist()
        assert CollectionCoins(seed=2).user(5, 0).draw(0, 8)[0].tolist() != base
        assert CollectionCoins(seed=1).user(6, 0).draw(0, 8)[0].tolist() != base
        assert CollectionCoins(seed=1).user(5, 1).draw(0, 8)[0].tolist() != base

    def test_odd_start_position_rejected(self):
        with pytest.raises(ValueError, match="even"):
            CollectionCoins(seed=1).draw_grid(np.array([0]), 0, 4, start_position=3)


class TestSketchManyParity:
    @pytest.mark.parametrize("backend", [BiasedPRF, CounterPRF])
    def test_bitwise_equals_per_user_sketch(self, backend):
        prf = backend(p=0.3, global_key=GLOBAL_KEY)
        sketcher = Sketcher(PARAMS, prf, sketch_bits=6)
        user_ids, rows, indices = panel(150)
        coins = CollectionCoins(seed=11)
        for run, subset in enumerate([(0, 1), (4,), (1, 2, 3)]):
            keys, iterations = sketcher.sketch_many(
                user_ids, rows, subset, coins, indices, run
            )
            for i, user_id in enumerate(user_ids):
                record = sketcher.sketch(
                    user_id, rows[i], subset, coins=coins.user(int(indices[i]), run)
                )
                assert record.key == int(keys[i])
                assert record.iterations == int(iterations[i])

    @pytest.mark.parametrize("block_size", [2, 7, 64])
    def test_block_size_never_changes_published_sketches(self, block_size):
        prf = CounterPRF(p=0.3, global_key=GLOBAL_KEY)
        user_ids, rows, indices = panel(120)
        coins = CollectionCoins(seed=5)
        reference = Sketcher(PARAMS, prf, sketch_bits=6).sketch_many(
            user_ids, rows, (0, 2), coins, indices, 0
        )
        other = Sketcher(PARAMS, prf, sketch_bits=6, block_size=block_size).sketch_many(
            user_ids, rows, (0, 2), coins, indices, 0
        )
        assert np.array_equal(reference[0], other[0])
        assert np.array_equal(reference[1], other[1])

    def test_continuation_rounds_at_small_p(self):
        # p=0.1 stops slowly (~11% per consideration), so many users need
        # the doubling continuation rounds; parity must survive them.
        params = PrivacyParams(p=0.1)
        prf = CounterPRF(p=0.1, global_key=GLOBAL_KEY)
        sketcher = Sketcher(params, prf, sketch_bits=8, block_size=4)
        user_ids, rows, indices = panel(250, seed=3)
        coins = CollectionCoins(seed=8)
        keys, iterations = sketcher.sketch_many(
            user_ids, rows, (0, 1), coins, indices, 0
        )
        assert int(iterations.max()) > 4  # the continuation actually ran
        for i, user_id in enumerate(user_ids):
            record = sketcher.sketch(
                user_id, rows[i], (0, 1), coins=coins.user(int(indices[i]), 0)
            )
            assert (record.key, record.iterations) == (int(keys[i]), int(iterations[i]))

    def test_with_replacement_parity(self):
        prf = CounterPRF(p=0.3, global_key=GLOBAL_KEY)
        sketcher = Sketcher(PARAMS, prf, sketch_bits=6, with_replacement=True)
        user_ids, rows, indices = panel(200, seed=4)
        coins = CollectionCoins(seed=13)
        keys, iterations = sketcher.sketch_many(
            user_ids, rows, (0, 1), coins, indices, 0
        )
        for i, user_id in enumerate(user_ids):
            record = sketcher.sketch(
                user_id, rows[i], (0, 1), coins=coins.user(int(indices[i]), 0)
            )
            assert (record.key, record.iterations) == (int(keys[i]), int(iterations[i]))

    def test_iterations_count_considered_keys_not_positions(self):
        # Without replacement a repeated candidate is skipped: iteration
        # counts must equal the number of *distinct* keys considered, so
        # they can never exceed the key-space size.
        prf = CounterPRF(p=0.45, global_key=GLOBAL_KEY)
        params = PrivacyParams(p=0.45)
        sketcher = Sketcher(params, prf, sketch_bits=3)  # 8 keys: dups common
        user_ids, rows, indices = panel(300, seed=6)
        coins = CollectionCoins(seed=21)
        _, iterations = sketcher.sketch_many(user_ids, rows, (0,), coins, indices, 0)
        assert int(iterations.max()) <= sketcher.num_keys

    def test_rng_and_coins_are_mutually_exclusive(self):
        prf = CounterPRF(p=0.3, global_key=GLOBAL_KEY)
        sketcher = Sketcher(PARAMS, prf, sketch_bits=6)
        coins = CollectionCoins(seed=1)
        with pytest.raises(ValueError, match="not both"):
            sketcher.sketch(
                "u", [1, 0], (0, 1),
                rng=np.random.default_rng(0), coins=coins.user(0, 0),
            )


class TestStatefulFunctions:
    def test_oracle_rides_the_scalar_path(self):
        # The memoising oracle must not be evaluated speculatively: its
        # sampled points equal the iterations Algorithm 1 performed.
        oracle = TrueRandomOracle(p=0.3, rng=np.random.default_rng(7))
        sketcher = Sketcher(PARAMS, oracle, sketch_bits=6)
        user_ids, rows, indices = panel(60, seed=2)
        coins = CollectionCoins(seed=3)
        _, iterations = sketcher.sketch_many(user_ids, rows, (0, 1), coins, indices, 0)
        assert oracle.num_evaluations == int(iterations.sum())

    def test_oracle_sketch_many_equals_scalar_loop(self):
        user_ids, rows, indices = panel(40, seed=9)
        coins = CollectionCoins(seed=4)

        def collect(oracle):
            sketcher = Sketcher(PARAMS, oracle, sketch_bits=6)
            return sketcher.sketch_many(user_ids, rows, (0, 1), coins, indices, 0)

        def collect_scalar(oracle):
            sketcher = Sketcher(PARAMS, oracle, sketch_bits=6)
            records = [
                sketcher.sketch(
                    user_ids[i], rows[i], (0, 1), coins=coins.user(int(indices[i]), 0)
                )
                for i in range(len(user_ids))
            ]
            return (
                np.array([r.key for r in records], dtype=np.uint64),
                np.array([r.iterations for r in records], dtype=np.int64),
            )

        many = collect(TrueRandomOracle(p=0.3, rng=np.random.default_rng(1)))
        scalar = collect_scalar(TrueRandomOracle(p=0.3, rng=np.random.default_rng(1)))
        assert np.array_equal(many[0], scalar[0])
        assert np.array_equal(many[1], scalar[1])


class TestPublishDatabaseBothBackends:
    @pytest.mark.parametrize("backend", [BiasedPRF, CounterPRF])
    def test_worker_counts_bitwise_identical(self, backend):
        prf = backend(p=0.3, global_key=GLOBAL_KEY)
        sketcher = Sketcher(PARAMS, prf, sketch_bits=6)
        database = bernoulli_panel(61, 4, rng=np.random.default_rng(0))
        subsets = [(0, 1), (2, 3), (1, 2)]
        payloads = {
            dumps_store(
                publish_database(database, sketcher, subsets, workers=w, seed=11),
                include_iterations=True,
            )
            for w in (1, 2, 3)
        }
        assert len(payloads) == 1

    def test_backends_publish_different_stores(self):
        database = bernoulli_panel(40, 3, rng=np.random.default_rng(1))

        def collect(backend):
            prf = backend(p=0.3, global_key=GLOBAL_KEY)
            sketcher = Sketcher(PARAMS, prf, sketch_bits=6)
            return dumps_store(
                publish_database(database, sketcher, [(0, 1)], workers=1, seed=7)
            )

        assert collect(BiasedPRF) != collect(CounterPRF)

    def test_counter_backend_ships_to_pool_workers(self):
        prf = CounterPRF(p=0.3, global_key=GLOBAL_KEY)
        sketcher = Sketcher(PARAMS, prf, sketch_bits=6)
        database = bernoulli_panel(24, 3, rng=np.random.default_rng(2))
        store = publish_database(database, sketcher, [(0, 2)], workers=2, seed=5)
        assert store.num_users((0, 2)) == 24

    def test_columnar_bytes_identical_across_publication_routes(self):
        # The seeded path publishes lazy columns; their iteration dtype
        # must match the columnar format's narrow rule (uint16 unless
        # overflow), so the same logical store dumps byte-identically
        # whether serialized directly or re-materialised through JSONL.
        from repro.server.serialization import loads_store

        prf = CounterPRF(p=0.3, global_key=GLOBAL_KEY)
        sketcher = Sketcher(PARAMS, prf, sketch_bits=6)
        database = bernoulli_panel(30, 3, rng=np.random.default_rng(4))
        store = publish_database(database, sketcher, [(0, 1)], workers=1, seed=9)
        assert store.column_for((0, 1)).iterations.dtype == np.uint16
        direct = dumps_store(store, include_iterations=True, format="columnar")
        via_jsonl, _ = loads_store(dumps_store(store, include_iterations=True))
        assert (
            dumps_store(via_jsonl, include_iterations=True, format="columnar")
            == direct
        )

    def test_sequential_rng_path_is_untouched(self):
        # workers=None keeps the classic generator-driven loop: the same
        # seeded sketcher publishes the same store it always did.
        prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
        database = bernoulli_panel(25, 3, rng=np.random.default_rng(3))

        def collect():
            sketcher = Sketcher(
                PARAMS, prf, sketch_bits=6, rng=np.random.default_rng(123)
            )
            return dumps_store(publish_database(database, sketcher, [(0, 1)]))

        assert collect() == collect()
