"""The kernel tier contract: compiled and NumPy tiers are bit-identical,
and the engine's execute path is safe under concurrent dispatch.

Two layers of guarantees:

* **kernel level** — ``threshold_keys`` / ``threshold_block`` /
  ``threshold_grid`` produce identical bits under either tier for
  hypothesis-generated inputs (counters near the lane boundaries, full
  uint64 keys, degenerate thresholds);
* **PRF level** — every ``CounterPRF`` entry point (``evaluate``,
  ``evaluate_keys``, ``evaluate_block``, ``evaluate_grid``,
  ``evaluate_many``) answers identically with ``kernels.select("c")``
  and ``kernels.select("numpy")``, so artifacts never depend on which
  tier produced them;
* **serving level** — N threads hammering one ``QueryEngine.execute``
  (cold and warm, overlapping requests) get byte-identical responses to
  a sequential reference run, and the evaluation cache stays coherent.

When the extension is not built the cross-tier tests are skipped (the
NumPy tier is then the only tier, trivially self-identical); CI builds
the extension and runs this file under both ``REPRO_KERNEL`` settings.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CounterPRF, kernels
from repro.core import philox as _philox

needs_c = pytest.mark.skipif(
    not kernels.available(), reason="compiled kernel extension not built"
)


@pytest.fixture
def both_tiers():
    """Restore whatever tier was active, whatever the test selected.

    Only used by non-hypothesis tests; the @given tests go through
    _with_tier, which restores the tier itself (hypothesis forbids
    function-scoped fixtures shared across generated examples).
    """
    before = kernels.active()
    yield
    kernels.select(before)


def _with_tier(name, fn, *args, **kwargs):
    before = kernels.active()
    try:
        kernels.select(name)
        return fn(*args, **kwargs)
    finally:
        kernels.select(before)


uint64s = st.integers(min_value=0, max_value=(1 << 64) - 1)
thresholds = st.sampled_from(
    [0, 1, 1 << 32, int(0.3 * 2**64), (1 << 64) - 1, 1 << 63]
)


# ----------------------------------------------------------------------
# Kernel level: raw threshold_* functions, both tiers, hypothesis inputs
# ----------------------------------------------------------------------
@needs_c
class TestKernelBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(
        block=uint64s,
        keys=st.lists(uint64s, min_size=0, max_size=40),
        k0=uint64s,
        k1=uint64s,
        lane=st.integers(min_value=0, max_value=3),
        threshold=thresholds,
    )
    def test_threshold_keys(self, block, keys, k0, k1, lane, threshold):
        key_array = np.asarray(keys, dtype=np.uint64)
        c = _with_tier(
            "c", kernels.threshold_keys, block, key_array, k0, k1, lane, threshold
        )
        ref = _with_tier(
            "numpy", kernels.threshold_keys, block, key_array, k0, k1, lane, threshold
        )
        np.testing.assert_array_equal(c, ref)
        assert c.dtype == ref.dtype == np.int8

    @settings(max_examples=40, deadline=None)
    @given(
        blocks=st.lists(uint64s, min_size=1, max_size=12),
        data=st.data(),
        threshold=thresholds,
    )
    def test_threshold_block(self, blocks, data, threshold):
        num_users = data.draw(st.integers(min_value=1, max_value=10))
        draw_col = lambda: np.asarray(
            data.draw(
                st.lists(uint64s, min_size=num_users, max_size=num_users)
            ),
            dtype=np.uint64,
        )
        user_keys, subkey0, subkey1 = draw_col(), draw_col(), draw_col()
        block_ids = np.asarray(blocks, dtype=np.uint64)
        c = _with_tier(
            "c", kernels.threshold_block, block_ids, user_keys, subkey0, subkey1, threshold
        )
        ref = _with_tier(
            "numpy", kernels.threshold_block, block_ids, user_keys, subkey0, subkey1, threshold
        )
        np.testing.assert_array_equal(c, ref)
        assert c.shape == (num_users, 4 * block_ids.size)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), threshold=thresholds)
    def test_threshold_grid(self, data, threshold):
        num_users = data.draw(st.integers(min_value=1, max_value=8))
        num_keys = data.draw(st.integers(min_value=1, max_value=16))
        draw = lambda n: np.asarray(
            data.draw(st.lists(uint64s, min_size=n, max_size=n)), dtype=np.uint64
        )
        vblocks, subkey0, subkey1 = draw(num_users), draw(num_users), draw(num_users)
        lanes = np.asarray(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=3),
                    min_size=num_users,
                    max_size=num_users,
                )
            ),
            dtype=np.uint64,
        )
        key_rows = draw(num_users * num_keys).reshape(num_users, num_keys)
        c = _with_tier(
            "c", kernels.threshold_grid, vblocks, lanes, key_rows, subkey0, subkey1, threshold
        )
        ref = _with_tier(
            "numpy", kernels.threshold_grid, vblocks, lanes, key_rows, subkey0, subkey1, threshold
        )
        np.testing.assert_array_equal(c, ref)

    def test_philox_constants_agree(self):
        # The C file hard-codes the Philox bump constants; if the Python
        # side ever re-parameterised, identity above would catch it — this
        # pins the root cause message.
        assert int(_philox._W0) == 0x9E3779B97F4A7C15
        assert int(_philox._W1) == 0xBB67AE8584CAA73B


# ----------------------------------------------------------------------
# PRF level: every CounterPRF entry point, c tier vs numpy tier
# ----------------------------------------------------------------------
@needs_c
class TestEntryPointBitIdentity:
    # Class-level, not a fixture: CounterPRF is stateless, and hypothesis
    # forbids function-scoped fixtures shared across generated examples.
    PRF = CounterPRF(p=0.3, global_key=b"kernel-parity-test-key")

    SUBSET = (0, 2, 5)

    @settings(max_examples=30, deadline=None)
    @given(
        value=st.tuples(*[st.integers(0, 1)] * 3),
        key=st.integers(min_value=0, max_value=(1 << 20) - 1),
    )
    def test_evaluate(self, value, key):
        c = _with_tier("c", self.PRF.evaluate, "user-a", self.SUBSET, value, key)
        ref = _with_tier("numpy", self.PRF.evaluate, "user-a", self.SUBSET, value, key)
        assert c == ref

    @settings(max_examples=25, deadline=None)
    @given(
        value=st.tuples(*[st.integers(0, 1)] * 3),
        keys=st.lists(st.integers(0, (1 << 16) - 1), min_size=0, max_size=64),
    )
    def test_evaluate_keys(self, value, keys):
        c = _with_tier("c", self.PRF.evaluate_keys, "user-b", self.SUBSET, value, keys)
        ref = _with_tier("numpy", self.PRF.evaluate_keys, "user-b", self.SUBSET, value, keys)
        np.testing.assert_array_equal(c, ref)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_evaluate_block_and_many(self, data):
        num_users = data.draw(st.integers(min_value=1, max_value=12))
        user_ids = [f"user-{i}" for i in range(num_users)]
        keys = data.draw(
            st.lists(
                st.integers(0, (1 << 16) - 1),
                min_size=num_users,
                max_size=num_users,
            )
        )
        values = data.draw(
            st.lists(
                st.tuples(*[st.integers(0, 1)] * 3), min_size=1, max_size=8
            )
        )
        c = _with_tier("c", self.PRF.evaluate_block, user_ids, self.SUBSET, values, keys)
        ref = _with_tier(
            "numpy", self.PRF.evaluate_block, user_ids, self.SUBSET, values, keys
        )
        np.testing.assert_array_equal(c, ref)
        c1 = _with_tier(
            "c", self.PRF.evaluate_many, user_ids, self.SUBSET, values[0], keys
        )
        ref1 = _with_tier(
            "numpy", self.PRF.evaluate_many, user_ids, self.SUBSET, values[0], keys
        )
        np.testing.assert_array_equal(c1, ref1)

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_evaluate_grid(self, data):
        num_users = data.draw(st.integers(min_value=1, max_value=10))
        num_keys = data.draw(st.integers(min_value=1, max_value=20))
        user_ids = [f"user-{i}" for i in range(num_users)]
        values = data.draw(
            st.lists(
                st.tuples(*[st.integers(0, 1)] * 3),
                min_size=num_users,
                max_size=num_users,
            )
        )
        key_rows = np.asarray(
            data.draw(
                st.lists(
                    st.lists(
                        st.integers(0, (1 << 16) - 1),
                        min_size=num_keys,
                        max_size=num_keys,
                    ),
                    min_size=num_users,
                    max_size=num_users,
                )
            ),
            dtype=np.uint64,
        )
        c = _with_tier("c", self.PRF.evaluate_grid, user_ids, self.SUBSET, values, key_rows)
        ref = _with_tier(
            "numpy", self.PRF.evaluate_grid, user_ids, self.SUBSET, values, key_rows
        )
        np.testing.assert_array_equal(c, ref)

    def test_scalar_contract_under_both_tiers(self, both_tiers):
        # evaluate_keys/block/grid equal looping evaluate — the cross-
        # entry-point contract, asserted under each tier separately.
        keys = list(range(16))
        values = [(0, 1, 0), (1, 1, 1)]
        for tier in ("c", "numpy"):
            kernels.select(tier)
            key_bits = self.PRF.evaluate_keys("u", self.SUBSET, values[0], keys)
            block = self.PRF.evaluate_block(["u", "v"], self.SUBSET, values, [3, 9])
            grid = self.PRF.evaluate_grid(
                ["u", "v"],
                self.SUBSET,
                values,
                np.asarray([[1, 2], [3, 4]], dtype=np.uint64),
            )
            for k in keys:
                assert key_bits[k] == self.PRF.evaluate("u", self.SUBSET, values[0], k)
            for u, (uid, key) in enumerate((("u", 3), ("v", 9))):
                for j, value in enumerate(values):
                    assert block[u, j] == self.PRF.evaluate(uid, self.SUBSET, value, key)
            for u, uid in enumerate(("u", "v")):
                for j in range(2):
                    assert grid[u, j] == self.PRF.evaluate(
                        uid, self.SUBSET, values[u], int([[1, 2], [3, 4]][u][j])
                    )


# ----------------------------------------------------------------------
# Serving level: concurrent execute against a sequential reference
# ----------------------------------------------------------------------
class TestConcurrentExecute:
    @pytest.fixture
    def engine(self, tmp_path):
        from repro.core import PrivacyParams, SketchEstimator, Sketcher
        from repro.data import salary_table
        from repro.server import (
            QueryEngine,
            attribute_subsets,
            per_bit_subsets,
            publish_database,
        )

        rng = np.random.default_rng(77)
        params = PrivacyParams(p=0.3)
        prf = CounterPRF(p=0.3, global_key=b"concurrent-serving-test")
        db = salary_table(1200, bits=5, attributes=("a", "b"), rng=rng)
        sketcher = Sketcher(params, prf, sketch_bits=8, rng=rng)
        subsets = list(
            dict.fromkeys(per_bit_subsets(db.schema) + attribute_subsets(db.schema))
        )
        store = publish_database(db, sketcher, subsets)
        estimator = SketchEstimator(params, prf)
        return QueryEngine(db.schema, store, estimator), db

    def _requests(self, db):
        from repro.protocol import (
            CountsBlockRequest,
            EstimateManyRequest,
            FractionRequest,
            MarginalRequest,
        )

        subset_a = db.schema.bits("a")
        subset_b = db.schema.bits("b")
        values = [
            tuple(int(bit) for bit in np.binary_repr(v, 5)) for v in range(8)
        ]
        requests = []
        for v in values[:4]:
            requests.append(FractionRequest.build(subset_a, v))
            requests.append(FractionRequest.build(subset_b, v))
        requests.append(CountsBlockRequest.build(subset_a, values))
        requests.append(EstimateManyRequest.build(subset_b, values))
        requests.append(MarginalRequest.build(subset_a))
        # Repeat the whole list so every request is answered both cold
        # (first pass fills the evaluation cache) and warm.
        return requests * 3

    def test_concurrent_matches_sequential(self, engine):
        from repro.protocol import dumps_response

        engine, db = engine
        requests = self._requests(db)
        reference = [dumps_response(engine.execute(r)) for r in requests]

        # Fresh engine (cold cache) for the concurrent run.
        barrier = threading.Barrier(8)

        def hammer(worker):
            barrier.wait()  # maximise overlap: all workers start together
            return [
                (i, dumps_response(engine.execute(requests[i])))
                for i in range(worker, len(requests), 8)
            ]

        with ThreadPoolExecutor(max_workers=8) as pool:
            chunks = list(pool.map(hammer, range(8)))
        for chunk in chunks:
            for index, payload in chunk:
                assert payload == reference[index], (
                    f"concurrent response {index} diverged from sequential run"
                )

    def test_repeated_concurrent_runs_stay_identical(self, engine):
        # Cache now warm (previous calls in this test fill it): repeated
        # concurrent sweeps must stay byte-stable — corruption of cached
        # columns would surface as drift between sweeps.
        from repro.protocol import dumps_response

        engine, db = engine
        requests = self._requests(db)[:10]

        def sweep():
            with ThreadPoolExecutor(max_workers=6) as pool:
                return list(
                    pool.map(lambda r: dumps_response(engine.execute(r)), requests)
                )

        first = sweep()
        for _ in range(3):
            assert sweep() == first
