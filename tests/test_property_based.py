"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    PrivacyParams,
    epsilon_for_p,
    p_for_epsilon,
    perturbation_matrix,
    publish_probability,
    solve_weight_counts,
    transition_probability,
    worst_case_ratio,
)
from repro.data import Schema, bits_to_int, decode_profile, encode_profile, int_to_bits
from repro.queries import (
    Conjunction,
    addition_event_literals,
    evaluate_plan,
    less_equal_plan,
    less_than_plan,
    sum_plan,
)

BIASES = st.floats(min_value=0.05, max_value=0.45)


class TestParamsProperties:
    @given(p=BIASES)
    def test_rejection_prob_in_unit_interval(self, p):
        params = PrivacyParams(p)
        assert 0.0 < params.rejection_probability < 1.0

    @given(p=BIASES, l=st.integers(min_value=1, max_value=32))
    def test_privacy_epsilon_round_trip(self, p, l):
        epsilon = epsilon_for_p(p, l)
        recovered = p_for_epsilon(epsilon, l)
        assert recovered == pytest.approx(p, rel=1e-9)

    @given(p=BIASES, m=st.integers(min_value=1, max_value=10**9))
    def test_sketch_length_failure_contract(self, p, m):
        # At the recommended length, the failure bound is met.
        params = PrivacyParams(p)
        bits = params.sketch_length(m, 1e-6)
        if bits <= 24:  # keep 2**bits finite-cost
            assert params.failure_probability(bits, m) <= 1e-6 * 1.001

    @given(p=BIASES, error=st.floats(min_value=0.001, max_value=1.0),
           m=st.integers(min_value=1, max_value=10**7))
    def test_utility_tail_is_probability_like(self, p, error, m):
        tail = PrivacyParams(p).utility_tail(error, m)
        assert 0.0 <= tail <= 1.0


class TestCodecProperties:
    @given(width=st.integers(min_value=1, max_value=24), data=st.data())
    def test_int_codec_round_trip(self, width, data):
        value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        assert bits_to_int(int_to_bits(value, width)) == value

    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=1),
    )
    def test_profile_codec_round_trip(self, a, b):
        schema = Schema.build(boolean=["flag"], uint={"x": 8})
        values = {"flag": b, "x": a}
        assert decode_profile(schema, encode_profile(schema, values)) == values


class TestKernelProperties:
    @given(k=st.integers(min_value=1, max_value=8), p=BIASES)
    def test_columns_are_distributions(self, k, p):
        matrix = perturbation_matrix(k, p)
        assert np.allclose(matrix.sum(axis=0), 1.0)
        assert (matrix >= 0).all()

    @given(k=st.integers(min_value=1, max_value=8), p=BIASES,
           l=st.integers(min_value=0, max_value=8))
    def test_kernel_symmetry(self, k, p, l):
        # Flip symmetry: v[l -> l'] = v[k-l -> k-l'].
        assume(l <= k)
        for after in range(k + 1):
            forward = transition_probability(k, l, after, p)
            mirrored = transition_probability(k, k - l, k - after, p)
            assert forward == pytest.approx(mirrored)

    @given(k=st.integers(min_value=1, max_value=6), p=BIASES, data=st.data())
    @settings(max_examples=30)
    def test_solve_inverts_kernel(self, k, p, data):
        raw = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0),
                min_size=k + 1, max_size=k + 1,
            )
        )
        total = sum(raw)
        assume(total > 0.1)
        x = np.asarray(raw) / total
        y = perturbation_matrix(k, p) @ x
        assert solve_weight_counts(y, p) == pytest.approx(x, abs=1e-6)


class TestLemma33Property:
    @given(
        bits=st.integers(min_value=1, max_value=6),
        p=BIASES,
    )
    @settings(max_examples=40)
    def test_worst_ratio_below_bound_everywhere(self, bits, p):
        params = PrivacyParams(p)
        distribution = worst_case_ratio(1 << bits, params.rejection_probability)
        assert distribution.worst_ratio <= params.privacy_ratio_bound() * (1 + 1e-9)

    @given(
        bits=st.integers(min_value=1, max_value=5),
        q=st.integers(min_value=0, max_value=32),
        p=BIASES,
    )
    def test_publish_probabilities_are_probabilities(self, bits, q, p):
        num_keys = 1 << bits
        assume(q <= num_keys)
        accept = PrivacyParams(p).rejection_probability
        for tagged in (0, 1):
            if tagged == 1 and q == 0:
                continue
            if tagged == 0 and q == num_keys:
                continue
            probability = publish_probability(num_keys, q, tagged, accept)
            assert 0.0 <= probability <= 1.0


class TestPlanProperties:
    @given(
        width=st.integers(min_value=2, max_value=8),
        values=st.lists(st.integers(min_value=0, max_value=255), min_size=5, max_size=30),
        threshold=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=40)
    def test_interval_plans_exact_on_any_data(self, width, values, threshold):
        max_value = (1 << width) - 1
        values = [v % (max_value + 1) for v in values]
        threshold = threshold % max_value + 1  # in [1, max]
        schema = Schema.build(uint={"a": width})
        from repro.data import ProfileDatabase

        db = ProfileDatabase(schema)
        for i, v in enumerate(values):
            db.add_values(f"u{i}", {"a": v})

        def count(subset, value):
            return db.exact_count(subset, value)

        strict = evaluate_plan(less_than_plan(schema, "a", threshold), count)
        loose = evaluate_plan(less_equal_plan(schema, "a", threshold), count)
        assert strict == pytest.approx(sum(1 for v in values if v < threshold))
        assert loose == pytest.approx(sum(1 for v in values if v <= threshold))

    @given(
        width=st.integers(min_value=1, max_value=10),
        values=st.lists(st.integers(min_value=0, max_value=1023), min_size=3, max_size=20),
    )
    @settings(max_examples=40)
    def test_sum_plan_exact_on_any_data(self, width, values):
        values = [v % (1 << width) for v in values]
        schema = Schema.build(uint={"a": width})
        from repro.data import ProfileDatabase

        db = ProfileDatabase(schema)
        for i, v in enumerate(values):
            db.add_values(f"u{i}", {"a": v})
        total = evaluate_plan(
            sum_plan(schema, "a"), lambda s, v: db.exact_count(s, v)
        )
        assert total == pytest.approx(sum(values))

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=1, max_value=10))
    def test_conjunction_subset_value_aligned(self, a, b):
        assume(a != b)
        conjunction = Conjunction.of((a, 1), (b, 0))
        lookup = dict(zip(conjunction.subset, conjunction.value))
        assert lookup[a] == 1
        assert lookup[b] == 0


class TestAdditionEventsProperty:
    @given(
        k=st.integers(min_value=1, max_value=6),
        r=st.integers(min_value=1, max_value=6),
        a=st.integers(min_value=0, max_value=63),
        b=st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=200)
    def test_exactly_one_event_iff_below_threshold(self, k, r, a, b):
        assume(r <= k)
        a %= 1 << k
        b %= 1 << k
        a_bits = [(a >> e) & 1 for e in range(k)]
        b_bits = [(b >> e) & 1 for e in range(k)]
        fired = 0
        for zeros_a, zeros_b, xors in addition_event_literals(k, r):
            ok = all(a_bits[e] == 0 for e in zeros_a)
            ok = ok and all(b_bits[e] == 0 for e in zeros_b)
            ok = ok and all((a_bits[e] ^ b_bits[e]) == 1 for e in xors)
            fired += ok
        assert fired == (1 if a + b < (1 << r) else 0)
