"""The serving tier: local-vs-remote parity and the privacy perimeter.

Parity is *bit*-identity, not approximate equality: the wire carries
``repr`` shortest-round-trip doubles, so every float a remote analyst
receives must equal the local engine's answer exactly.  The perimeter
tests pin the three server-only behaviours — bearer-token auth,
per-analyst rate limiting, and the per-analyst privacy budget charged
before dispatch (an over-budget request returns the structured error
and releases nothing).
"""

import copy

import numpy as np
import pytest

from repro.core import BiasedPRF, PrivacyParams, SketchEstimator, Sketcher
from repro.core.accountant import BudgetExceeded
from repro.data import bernoulli_panel
from repro.protocol import CountsBlockRequest, RemoteQueryError
from repro.queries.ast import Conjunction, Literal
from repro.queries.conjunctive import LinearPlan, PlanTerm
from repro.server import (
    MissingSketchError,
    QueryEngine,
    RemoteQueryEngine,
    RemoteServer,
    publish_database,
    serve_in_thread,
)

from .conftest import GLOBAL_KEY

SUBSETS = [(0, 1), (1, 2, 3), (0,), (1,), (2,), (3,)]


def make_engine(num_users: int = 150, seed: int = 3) -> QueryEngine:
    params = PrivacyParams(p=0.3)
    prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
    database = bernoulli_panel(num_users, 4, rng=np.random.default_rng(seed))
    sketcher = Sketcher(params, prf, sketch_bits=8, rng=np.random.default_rng(seed + 1))
    store = publish_database(database, sketcher, SUBSETS, workers=1, seed=seed)
    return QueryEngine(database.schema, store, SketchEstimator(params, prf))


@pytest.fixture(scope="module")
def engine():
    return make_engine()


@pytest.fixture(scope="module")
def remote(engine):
    server = RemoteServer(engine, {"alice": "sesame"})
    with serve_in_thread(server) as (host, port):
        with RemoteQueryEngine(host, port, "sesame") as client:
            yield client


VALUES = [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestParity:
    """Each query family answers bit-identically to the local engine."""

    def test_counts_block(self, engine, remote):
        assert remote.counts_block((0, 1), VALUES) == engine.counts_block(
            (0, 1), VALUES
        )

    def test_counts_block_partition_path(self, engine, remote):
        # (0, 1, 2, 3) is not sketched directly; Appendix F combines
        # (0, 1) + (2, 3)?  No — (2, 3) is absent, so the cover is
        # (0,)+(1,)+(2,)+(3,).  Either way the remote path must match.
        value = (1, 0, 1, 0)
        assert remote.counts_block((0, 1, 2, 3), [value]) == engine.counts_block(
            (0, 1, 2, 3), [value]
        )

    def test_count_and_fraction(self, engine, remote):
        assert remote.count((0, 1), (1, 1)) == engine.count((0, 1), (1, 1))
        assert remote.fraction((0, 1), (1, 1)) == engine.fraction((0, 1), (1, 1))

    def test_marginal(self, engine, remote):
        local = engine.marginal((0, 1))
        over_the_wire = remote.marginal((0, 1))
        assert over_the_wire.tolist() == local.tolist()

    def test_estimate_many(self, engine, remote):
        assert remote.estimate_many((0, 1), VALUES) == engine.estimate_many(
            (0, 1), VALUES
        )
        assert remote.estimate((0, 1), (1, 1)) == engine.estimate((0, 1), (1, 1))

    def test_any_of(self, engine, remote):
        queries = [
            Conjunction((Literal(0, 1), Literal(1, 1))),
            Conjunction((Literal(1, 0),)),
        ]
        assert remote.any_of(queries) == engine.any_of(queries)

    def test_exactly_l(self, engine, remote):
        for l in range(5):
            assert remote.exactly_l((0, 1, 2, 3), l) == engine.exactly_l(
                (0, 1, 2, 3), l
            )

    def test_bit_matrix(self, engine, remote):
        local = engine.bit_matrix((0, 1, 2, 3))
        over_the_wire = remote.bit_matrix((0, 1, 2, 3))
        assert over_the_wire.shape == local.shape
        assert np.array_equal(over_the_wire, local)

    def test_evaluate_plan(self, engine, remote):
        plan = LinearPlan(
            terms=(
                PlanTerm(Conjunction((Literal(0, 1), Literal(1, 1))), 2.0),
                PlanTerm(Conjunction((Literal(0, 1), Literal(1, 0))), -0.5),
            ),
            description="2 I(11) - 0.5 I(10)",
        )
        assert remote.evaluate(plan) == engine.evaluate(plan)

    def test_errors_map_to_local_exception_types(self, remote):
        with pytest.raises(MissingSketchError):
            remote.counts_block((5, 7), [(1, 1)])
        with pytest.raises(ValueError):
            remote.marginal(tuple(range(13)))  # width > 12


class TestAuth:
    def test_wrong_token_is_rejected(self, engine):
        server = RemoteServer(engine, {"alice": "sesame"})
        with serve_in_thread(server) as (host, port):
            with pytest.raises(RemoteQueryError) as info:
                RemoteQueryEngine(host, port, "open says me")
            assert info.value.code == "unauthorized"

    def test_token_resolves_to_analyst_name(self, remote):
        assert remote.analyst == "alice"

    def test_duplicate_tokens_are_refused(self, engine):
        with pytest.raises(ValueError, match="tokens must be unique"):
            RemoteServer(engine, {"alice": "same", "bob": "same"})


class TestRateLimit:
    def test_frozen_clock_exhausts_bucket(self, engine):
        # A frozen clock never refills the bucket: exactly `burst`
        # requests pass, then every further one is rate_limited — and a
        # rejected request costs the analyst no budget.
        server = RemoteServer(
            engine, {"alice": "sesame"}, rate_limit=1.0, burst=3, clock=lambda: 0.0
        )
        with serve_in_thread(server) as (host, port):
            with RemoteQueryEngine(host, port, "sesame") as client:
                for _ in range(3):
                    client.fraction((0, 1), (1, 1))
                with pytest.raises(RemoteQueryError) as info:
                    client.fraction((0, 1), (1, 1))
                assert info.value.code == "rate_limited"
                # The connection survives the rejection.
                with pytest.raises(RemoteQueryError):
                    client.fraction((0, 1), (1, 1))

    def test_advancing_clock_refills(self, engine):
        now = {"t": 0.0}
        server = RemoteServer(
            engine,
            {"alice": "sesame"},
            rate_limit=1.0,
            burst=1,
            clock=lambda: now["t"],
        )
        with serve_in_thread(server) as (host, port):
            with RemoteQueryEngine(host, port, "sesame") as client:
                client.fraction((0, 1), (1, 1))
                with pytest.raises(RemoteQueryError):
                    client.fraction((0, 1), (1, 1))
                now["t"] = 5.0
                client.fraction((0, 1), (1, 1))


def budget_server(engine, epsilon=1000.0, **kwargs):
    """epsilon=1000 with p=0.3 affords exactly 2 subset releases."""
    return RemoteServer(engine, {"alice": "sesame"}, epsilon=epsilon, **kwargs)


class TestPrivacyPerimeter:
    def test_budget_caps_distinct_subsets(self):
        engine = make_engine()
        server = budget_server(engine)
        assert server.accountant.max_sketches == 2
        with serve_in_thread(server) as (host, port):
            with RemoteQueryEngine(host, port, "sesame") as client:
                client.counts_block((0, 1), VALUES)  # release 1
                client.fraction((1, 2, 3), (1, 1, 1))  # release 2
                with pytest.raises(BudgetExceeded):
                    client.fraction((0,), (1,))  # would be release 3
                assert server.remaining_sketches("alice") == 0

    def test_requerying_paid_subsets_is_free(self):
        engine = make_engine()
        server = budget_server(engine)
        with serve_in_thread(server) as (host, port):
            with RemoteQueryEngine(host, port, "sesame") as client:
                first = client.counts_block((0, 1), VALUES)
                for _ in range(5):
                    assert client.counts_block((0, 1), VALUES) == first
                    client.marginal((0, 1))  # same subset, still free
                assert server.remaining_sketches("alice") == 1

    def test_over_budget_request_releases_nothing(self):
        # exactly_l over 4 per-bit subsets needs 4 releases against a
        # budget of 2: the charge is all-or-nothing, so afterwards the
        # analyst can still afford both remaining releases.
        engine = make_engine()
        server = budget_server(engine)
        with serve_in_thread(server) as (host, port):
            with RemoteQueryEngine(host, port, "sesame") as client:
                with pytest.raises(BudgetExceeded):
                    client.exactly_l((0, 1, 2, 3), 2)
                assert server.remaining_sketches("alice") == 2
                # Nothing was booked: two fresh subsets still fit.
                client.fraction((0,), (1,))
                client.fraction((1,), (1,))
                assert server.remaining_sketches("alice") == 0

    def test_budget_exhaustion_leaves_store_untouched(self):
        engine = make_engine()
        before = copy.deepcopy(engine.store.to_columns())
        server = budget_server(engine)
        with serve_in_thread(server) as (host, port):
            with RemoteQueryEngine(host, port, "sesame") as client:
                client.counts_block((0, 1), VALUES)
                client.counts_block((1, 2, 3), [(1, 1, 1)])
                with pytest.raises(BudgetExceeded):
                    client.counts_block((2,), [(1,)])
        after = engine.store.to_columns()
        assert sorted(before) == sorted(after)
        for subset, column in before.items():
            assert np.array_equal(column.keys, after[subset].keys)
            assert np.array_equal(column.num_bits, after[subset].num_bits)
            assert list(column.user_ids) == list(after[subset].user_ids)
        # ... and the engine still answers identically to a fresh one.
        fresh = make_engine()
        assert engine.counts_block((0, 1), VALUES) == fresh.counts_block(
            (0, 1), VALUES
        )

    def test_budgets_are_per_analyst(self):
        engine = make_engine()
        server = RemoteServer(
            engine, {"alice": "sesame", "bob": "thunder"}, epsilon=1000.0
        )
        with serve_in_thread(server) as (host, port):
            with RemoteQueryEngine(host, port, "sesame") as alice:
                alice.counts_block((0, 1), VALUES)
                alice.counts_block((1, 2, 3), [(1, 1, 1)])
                with pytest.raises(BudgetExceeded):
                    alice.counts_block((0,), [(1,)])
            with RemoteQueryEngine(host, port, "thunder") as bob:
                # Alice's exhaustion does not touch Bob's ledger.
                assert bob.counts_block((0, 1), VALUES) == engine.counts_block(
                    (0, 1), VALUES
                )

    def test_mid_session_exhaustion_is_structured_not_fatal(self):
        engine = make_engine()
        server = budget_server(engine)
        with serve_in_thread(server) as (host, port):
            with RemoteQueryEngine(host, port, "sesame") as client:
                client.counts_block((0, 1), VALUES)
                client.counts_block((1, 2, 3), [(1, 1, 1)])
                with pytest.raises(BudgetExceeded):
                    client.counts_block((3,), [(1,)])
                # The session continues: paid subsets still answer.
                assert client.counts_block((0, 1), VALUES) == engine.counts_block(
                    (0, 1), VALUES
                )


class TestDispatchTable:
    def test_execute_rejects_unknown_kind(self, engine):
        class Bogus(CountsBlockRequest):
            kind = "histogram_3d"

        from repro.protocol import ProtocolError

        with pytest.raises(ProtocolError) as info:
            engine.execute(Bogus.build((0, 1), [(1, 1)]))
        assert info.value.code == "unknown_kind"

    def test_public_methods_ride_the_dispatch_table(self, engine):
        response = engine.execute(CountsBlockRequest.build((0, 1), VALUES))
        assert response.kind == "counts_block"
        assert list(response.result) == engine.counts_block((0, 1), VALUES)
