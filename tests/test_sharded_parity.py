"""Sharded serving parity: every query family, bit-identical.

The coordinator's contract is not "statistically equivalent" but
*byte-compatible*: for every protocol query family, the wire payload a
shard coordinator produces must equal the single-store engine's payload
byte for byte — cold cache and warm, at 1, 2 and 4 shards, under both
PRF backends.  Parity is asserted on ``dumps_response`` output (the
exact bytes a remote analyst would receive), and error surfaces must
match too: same exception type, same message, same precedence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BiasedPRF,
    CounterPRF,
    PrivacyParams,
    SketchEstimator,
    Sketcher,
)
from repro.data import bernoulli_panel
from repro.protocol import (
    AnyOfRequest,
    BitMatrixRequest,
    CountsBlockRequest,
    EstimateManyRequest,
    EvaluatePlanRequest,
    ExactlyLRequest,
    FractionRequest,
    MarginalRequest,
    ProtocolError,
    dumps_response,
)
from repro.queries.ast import Conjunction
from repro.queries.conjunctive import LinearPlan, PlanTerm
from repro.server import (
    MissingSketchError,
    QueryEngine,
    RemoteQueryEngine,
    RemoteServer,
    ShardedService,
    publish_database,
    serve_in_thread,
)

from .conftest import GLOBAL_KEY

SUBSETS = [(0, 1), (1, 2, 3), (0,), (1,), (2,), (3,)]
SHARD_COUNTS = [1, 2, 4]

PLAN = LinearPlan(
    terms=(
        PlanTerm(Conjunction.of((0, 1), (1, 1)), 1.0),
        PlanTerm(Conjunction.of((2, 1)), -0.5),
    ),
    description="parity plan",
)

#: One request per protocol family, plus the Appendix F partition paths
#: (counts_block / fraction over subsets only coverable as disjoint
#: unions) — the reductions those exercise are weight histograms, not
#: plain bit sums.
REQUESTS = [
    CountsBlockRequest.build((0, 1), [(0, 0), (0, 1), (1, 0), (1, 1)]),
    CountsBlockRequest.build((0, 1, 2), [(1, 0, 1), (0, 1, 0)]),
    CountsBlockRequest.build((0, 1), []),
    EstimateManyRequest.build((1, 2, 3), [(1, 1, 0), (0, 0, 0)]),
    MarginalRequest.build((0, 1)),
    FractionRequest.build((1, 2, 3), (0, 1, 1)),
    FractionRequest.build((0, 1, 2, 3), (1, 0, 1, 0)),
    AnyOfRequest.build([((0,), (1,)), ((2,), (1,)), ((3,), (0,))]),
    ExactlyLRequest.build((0, 1, 2, 3), 2),
    ExactlyLRequest.build((0, 1, 2), 0),
    BitMatrixRequest.build((0, 1, 2), 1),
    BitMatrixRequest.build((1, 3), 0),
    EvaluatePlanRequest.from_plan(PLAN),
]


@pytest.fixture(scope="module", params=[BiasedPRF, CounterPRF], ids=lambda c: c.algorithm)
def stack(request, tmp_path_factory):
    """A single-store engine plus running 1/2/4-shard services (one PRF
    backend per param), with per-worker persistent caches enabled."""
    backend = request.param
    params = PrivacyParams(p=0.3)
    prf = backend(p=0.3, global_key=GLOBAL_KEY)
    database = bernoulli_panel(120, 4, rng=np.random.default_rng(11))
    sketcher = Sketcher(
        params, prf, sketch_bits=8, rng=np.random.default_rng(12)
    )
    store = publish_database(database, sketcher, SUBSETS, workers=1, seed=11)
    engine = QueryEngine(database.schema, store, SketchEstimator(params, prf))
    base = tmp_path_factory.mktemp(f"shards-{backend.algorithm}")
    services = {}
    try:
        for n_shards in SHARD_COUNTS:
            services[n_shards] = ShardedService.from_store(
                store, prf, n_shards, base / f"n{n_shards}", cache=True
            ).start()
        yield {"engine": engine, "services": services, "prf": prf}
    finally:
        for service in services.values():
            service.close()


class TestParity:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_every_family_bit_identical_cold_and_warm(self, stack, n_shards):
        engine = stack["engine"]
        coordinator = stack["services"][n_shards].coordinator
        for request in REQUESTS:
            expected = dumps_response(engine.execute(request))
            # Cold (first touch of each worker's cache), then warm.
            for _pass in ("cold", "warm"):
                got = dumps_response(coordinator.execute(request))
                assert got == expected, (request.kind, n_shards, _pass)

    def test_served_over_the_wire(self, stack):
        """The coordinator is a drop-in engine behind RemoteServer."""
        engine = stack["engine"]
        coordinator = stack["services"][4].coordinator
        server = RemoteServer(coordinator, {"alice": "sesame"})
        with serve_in_thread(server) as (host, port):
            with RemoteQueryEngine(host, port, "sesame") as client:
                for request in REQUESTS:
                    expected = dumps_response(engine.execute(request))
                    got = dumps_response(client.execute(request))
                    assert got == expected, request.kind


def raises_of(callable_, request):
    try:
        callable_(request)
    except Exception as exc:  # noqa: BLE001 - the comparison IS the test
        return type(exc), str(exc)
    return None


class TestErrorParity:
    """Same error type, same message, same precedence as the engine."""

    ERROR_REQUESTS = [
        # Unpublished subset, no partition either.
        CountsBlockRequest.build((9,), [(1,)]),
        EstimateManyRequest.build((5, 6), [(1, 1)]),
        # (0, 2) is not sketched and {(0,), (2,)} covers it -> NOT an
        # error; (0, 1, 2, 3, 4) is not coverable (no (4,)).
        FractionRequest.build((0, 1, 2, 3, 4), (1, 1, 1, 1, 1)),
        # Width guard precedes everything in marginal.
        MarginalRequest.build(tuple(range(13))),
        # exactly_l: l out of range is checked AFTER gathering.
        ExactlyLRequest.build((0, 1), 5),
        # any_of needs every component sketched directly — (0, 2) is
        # coverable as a disjoint union but never published itself.
        AnyOfRequest.build([((0,), (1,)), ((0, 2), (1, 1))]),
        # bit_matrix needs per-bit publications.
        BitMatrixRequest.build((0, 9), 1),
    ]

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_error_surface_matches_engine(self, stack, n_shards):
        engine = stack["engine"]
        coordinator = stack["services"][n_shards].coordinator
        for request in self.ERROR_REQUESTS:
            expected = raises_of(engine.execute, request)
            got = raises_of(coordinator.execute, request)
            assert expected is not None, request.kind
            assert got == expected, request.kind

    def test_empty_any_of(self, stack):
        engine = stack["engine"]
        coordinator = stack["services"][2].coordinator
        request = AnyOfRequest(queries=())
        assert raises_of(coordinator.execute, request) == raises_of(
            engine.execute, request
        ) == (ValueError, "need at least one conjunction")

    def test_unknown_kind_message(self, stack):
        coordinator = stack["services"][2].coordinator

        class FakeRequest:
            kind = "telepathy"

        with pytest.raises(ProtocolError) as err:
            coordinator.execute(FakeRequest())
        assert "unknown request kind 'telepathy'" in str(err.value)

    def test_missing_sketch_is_missing_everywhere(self, stack):
        coordinator = stack["services"][4].coordinator
        with pytest.raises(
            MissingSketchError, match=r"subset \(9,\) is neither sketched"
        ):
            coordinator.execute(CountsBlockRequest.build((9,), [(1,)]))
        with pytest.raises(MissingSketchError, match=r"subset \(5, 6\) was not"):
            coordinator.execute(EstimateManyRequest.build((5, 6), [(1, 1)]))
