"""Unit tests for the non-binary (categorical) query layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Sketcher
from repro.data import zipf_categorical
from repro.queries import (
    categorical_histogram,
    estimate_mode,
    simplex_project,
    top_k_categories,
)
from repro.server import MissingSketchError, QueryEngine, attribute_subsets, publish_database


class TestSimplexProjection:
    def test_already_on_simplex_unchanged(self):
        vector = np.array([0.2, 0.3, 0.5])
        assert simplex_project(vector) == pytest.approx(vector)

    def test_output_is_a_distribution(self, rng):
        for _ in range(20):
            vector = rng.normal(0, 1, size=8)
            projected = simplex_project(vector)
            assert projected.min() >= 0
            assert projected.sum() == pytest.approx(1.0)

    def test_projection_is_idempotent(self, rng):
        vector = rng.normal(0, 1, size=5)
        once = simplex_project(vector)
        assert simplex_project(once) == pytest.approx(once)

    def test_negative_mass_clipped(self):
        projected = simplex_project(np.array([1.2, -0.1, -0.1]))
        assert projected == pytest.approx([1.0, 0.0, 0.0])

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            simplex_project(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            simplex_project(np.array([]))


class TestCategoricalQueries:
    @pytest.fixture
    def setup(self, params, prf, estimator, rng):
        db = zipf_categorical(6000, cardinality=8, rng=rng)
        sketcher = Sketcher(params, prf, sketch_bits=8, rng=rng)
        store = publish_database(db, sketcher, attribute_subsets(db.schema))
        sketches = store.sketches_for(db.schema.bits("category"))
        engine = QueryEngine(db.schema, store, estimator)
        return db, sketches, engine

    def test_histogram_tracks_truth(self, setup, estimator):
        db, sketches, _ = setup
        histogram = categorical_histogram(estimator, sketches, db.schema, "category")
        truth = np.bincount(db.attribute_values("category"), minlength=8) / len(db)
        assert np.abs(histogram - truth).max() < 0.07

    def test_histogram_normalized_is_distribution(self, setup, estimator):
        db, sketches, _ = setup
        histogram = categorical_histogram(estimator, sketches, db.schema, "category")
        assert histogram.sum() == pytest.approx(1.0)
        assert histogram.min() >= 0

    def test_unnormalized_histogram_unbiasedness(self, setup, estimator):
        db, sketches, _ = setup
        raw = categorical_histogram(
            estimator, sketches, db.schema, "category", normalize=False
        )
        truth = np.bincount(db.attribute_values("category"), minlength=8) / len(db)
        # Raw estimates track truth too (clamped per-entry).
        assert np.abs(raw - truth).max() < 0.08

    def test_mode_is_head_of_zipf(self, setup, estimator):
        db, sketches, _ = setup
        mode, frequency = estimate_mode(estimator, sketches, db.schema, "category")
        assert mode == 0  # Zipf head
        truth = float((db.attribute_values("category") == 0).mean())
        assert frequency == pytest.approx(truth, abs=0.07)

    def test_top_k_ranking(self, setup, estimator):
        db, sketches, _ = setup
        top = top_k_categories(estimator, sketches, db.schema, "category", 3)
        assert len(top) == 3
        assert top[0][0] == 0
        frequencies = [f for _, f in top]
        assert frequencies == sorted(frequencies, reverse=True)

    def test_top_k_validates(self, setup, estimator):
        db, sketches, _ = setup
        with pytest.raises(ValueError):
            top_k_categories(estimator, sketches, db.schema, "category", 0)

    def test_engine_convenience_methods(self, setup):
        db, _, engine = setup
        histogram = engine.histogram("category")
        assert histogram.shape == (8,)
        mode, _ = engine.mode("category")
        assert mode == 0
        assert len(engine.top_k("category", 2)) == 2

    def test_engine_requires_attribute_policy(self, setup, params, estimator):
        db, _, _ = setup
        from repro.server import SketchStore

        engine = QueryEngine(db.schema, SketchStore(), estimator)
        with pytest.raises(MissingSketchError):
            engine.histogram("category")

    def test_histogram_cardinality_guard(self, estimator):
        from repro.data import Schema

        schema = Schema.build(uint={"wide": 20})
        with pytest.raises(ValueError, match="4096"):
            categorical_histogram(estimator, [], schema, "wide")
