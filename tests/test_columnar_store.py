"""Tests for the columnar store format v2, the persistent evaluation
cache, and the batched block-request wire protocol."""

from __future__ import annotations

import json
import os
import shutil

import numpy as np
import pytest

from repro.core import (
    BiasedPRF,
    PrivacyParams,
    Sketch,
    SketchEstimator,
    Sketcher,
    TrueRandomOracle,
)
from repro.data import bernoulli_panel
from repro.data.profiles import Profile, ProfileDatabase
from repro.data.serialization import (
    dumps_database,
    load_database,
    loads_database,
    save_database,
)
from repro.server import (
    QueryEngine,
    SketchEvaluationCache,
    SketchStore,
    StreamingEstimator,
    dumps_store,
    load_store,
    loads_store,
    publish_database,
    save_store,
)
from repro.server.collector import SketchColumn
from repro.server.engine import store_content_hash
from repro.server.serialization import (
    dumps_block_request,
    dumps_block_response,
    handle_block_request,
    loads_block_request,
    loads_block_response,
)

from .conftest import GLOBAL_KEY

SUBSETS = [(0, 1), (1, 2, 3)]


def make_store(num_users: int = 120, seed: int = 3):
    params = PrivacyParams(p=0.3)
    prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
    database = bernoulli_panel(num_users, 4, rng=np.random.default_rng(seed))
    sketcher = Sketcher(params, prf, sketch_bits=8, rng=np.random.default_rng(seed + 1))
    store = publish_database(database, sketcher, SUBSETS, workers=1, seed=seed)
    return params, prf, database, store


class CountingEstimator(SketchEstimator):
    """Estimator that counts PRF block evaluations — the cache probe."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.block_calls = 0

    def evaluations_block(self, sketches, values):
        self.block_calls += 1
        return super().evaluations_block(sketches, values)

    def evaluations_block_columns(self, subset, user_ids, keys, values):
        self.block_calls += 1
        return super().evaluations_block_columns(subset, user_ids, keys, values)


class TestColumnConverters:
    def test_to_from_columns_is_identity(self):
        _, _, _, store = make_store()
        rebuilt = SketchStore.from_columns(store.to_columns())
        for subset in SUBSETS:
            assert rebuilt.sketches_for(subset) == store.sketches_for(subset)
        assert dumps_store(rebuilt, include_iterations=True) == dumps_store(
            store, include_iterations=True
        )

    def test_from_columns_rejects_out_of_range_keys(self):
        column = SketchColumn(
            user_ids=["a"],
            keys=np.asarray([256], dtype=np.uint64),
            num_bits=np.asarray([8], dtype=np.uint8),
            iterations=np.asarray([1], dtype=np.uint16),
        )
        with pytest.raises(ValueError, match="out of range"):
            SketchStore.from_columns({(0,): column})

    def test_from_columns_rejects_bad_iteration_dtypes(self):
        def column(iterations):
            return SketchColumn(
                user_ids=["a"],
                keys=np.asarray([1], dtype=np.uint64),
                num_bits=np.asarray([4], dtype=np.uint8),
                iterations=iterations,
            )

        with pytest.raises(ValueError, match="must be integers"):
            SketchStore.from_columns({(0,): column(np.asarray([1.5]))})
        with pytest.raises(ValueError, match="negative iteration"):
            SketchStore.from_columns({(0,): column(np.asarray([-3], dtype=np.int64))})

    def test_from_columns_rejects_misaligned_and_duplicate_columns(self):
        misaligned = SketchColumn(
            user_ids=["a", "b"],
            keys=np.asarray([1], dtype=np.uint64),
            num_bits=np.asarray([4, 4], dtype=np.uint8),
            iterations=np.asarray([1, 1], dtype=np.uint16),
        )
        with pytest.raises(ValueError, match="misaligned"):
            SketchStore.from_columns({(0,): misaligned})
        duplicated = SketchColumn(
            user_ids=["a", "a"],
            keys=np.asarray([1, 2], dtype=np.uint64),
            num_bits=np.asarray([4, 4], dtype=np.uint8),
            iterations=np.asarray([1, 1], dtype=np.uint16),
        )
        with pytest.raises(ValueError, match="duplicate"):
            SketchStore.from_columns({(0,): duplicated})


class TestColumnarStoreFormat:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_columnar_bitwise_identical_to_jsonl(self, workers, tmp_path):
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
        database = bernoulli_panel(61, 4, rng=np.random.default_rng(0))
        sketcher = Sketcher(params, prf, sketch_bits=8)
        store = publish_database(database, sketcher, SUBSETS, workers=workers, seed=17)

        jsonl_path = tmp_path / "store.jsonl"
        columnar_path = tmp_path / "store.npz"
        n_jsonl = save_store(store, jsonl_path, params, include_iterations=True)
        n_columnar = save_store(
            store, columnar_path, params, include_iterations=True, format="columnar"
        )
        assert n_jsonl == n_columnar == 61 * len(SUBSETS)

        from_jsonl, header_jsonl = load_store(jsonl_path)
        from_columnar, header_columnar = load_store(columnar_path)
        assert header_jsonl["p"] == header_columnar["p"] == 0.3
        # Store equality including iterations, pinned through the
        # canonical JSONL bytes of each reload.
        reference = dumps_store(store, include_iterations=True)
        assert dumps_store(from_jsonl, include_iterations=True) == reference
        assert dumps_store(from_columnar, include_iterations=True) == reference
        for subset in SUBSETS:
            assert from_columnar.sketches_for(subset) == store.sketches_for(subset)

    def test_cross_version_round_trip(self):
        params, _, _, store = make_store()
        # v1 -> store -> v2 -> store -> v1 survives untouched.
        via_v1, _ = loads_store(dumps_store(store, params, include_iterations=True))
        via_v2, _ = loads_store(
            dumps_store(via_v1, params, include_iterations=True, format="columnar")
        )
        assert dumps_store(via_v2, include_iterations=True) == dumps_store(
            store, include_iterations=True
        )

    def test_pathological_user_ids_round_trip(self):
        # Fixed-width numpy unicode arrays strip trailing NULs; the blob
        # encoding must preserve every code point of every id.
        store = SketchStore()
        ids = ["user\x00", "user", "ûser-αβ", "", "a\x00b"]
        for index, uid in enumerate(ids):
            store.publish(Sketch(uid, (0,), key=index, num_bits=4, iterations=1))
        reloaded, _ = loads_store(dumps_store(store, format="columnar"))
        assert [s.user_id for s in reloaded.sketches_for((0,))] == ids

        database = ProfileDatabase(bernoulli_panel(0, 2).schema)
        for uid in ids:
            database.add(Profile(uid, np.asarray([0, 1], dtype=np.int8)))
        back = loads_database(dumps_database(database, format="columnar"))
        assert back.user_ids == tuple(ids)

    def test_iterations_dropped_without_flag(self):
        _, _, _, store = make_store()
        reloaded, _ = loads_store(dumps_store(store, format="columnar"))
        assert all(
            sketch.iterations == 0 for sketch in reloaded.sketches_for(SUBSETS[0])
        )

    def test_unknown_format_rejected(self, tmp_path):
        _, _, _, store = make_store(num_users=12)
        with pytest.raises(ValueError, match="unknown store format"):
            save_store(store, tmp_path / "s", format="parquet")
        with pytest.raises(ValueError, match="unknown store format"):
            dumps_store(store, format="parquet")

    def test_truncated_columnar_file_rejected(self, tmp_path):
        params, _, _, store = make_store(num_users=40)
        blob = dumps_store(store, params, include_iterations=True, format="columnar")
        for cut in (1, 16, len(blob) // 2, len(blob) - 4):
            with pytest.raises(ValueError):
                loads_store(blob[:cut])
            path = tmp_path / f"cut{cut}.npz"
            path.write_bytes(blob[:cut])
            with pytest.raises(ValueError):
                load_store(path)

    def test_columnar_without_meta_rejected(self, tmp_path):
        path = tmp_path / "bare.npz"
        np.savez(path, keys_0=np.arange(3, dtype=np.uint64))
        with pytest.raises(ValueError, match="meta"):
            load_store(path)

    def test_columnar_with_wrong_tag_or_version_rejected(self, tmp_path):
        def blob_with_meta(meta: dict) -> bytes:
            import io

            buffer = io.BytesIO()
            np.savez(
                buffer,
                meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            )
            return buffer.getvalue()

        with pytest.raises(ValueError, match="not a sketch-store file"):
            loads_store(blob_with_meta({"format": "something-else", "version": 2}))
        with pytest.raises(ValueError, match="version"):
            loads_store(blob_with_meta({"format": "repro-sketch-store", "version": 9}))

    def test_corrupt_member_dtypes_raise_value_error(self):
        # Crafted archives with wrong member dtypes must keep the
        # ValueError contract, not leak TypeError from numpy internals.
        import io

        params, _, database, store = make_store(num_users=5)
        blob = dumps_store(store, params, include_iterations=True, format="columnar")
        archive = dict(np.load(io.BytesIO(blob)))
        archive["idlen_0"] = archive["idlen_0"].astype(np.float64)
        buffer = io.BytesIO()
        np.savez(buffer, **archive)
        with pytest.raises(ValueError, match="lengths must be integers"):
            loads_store(buffer.getvalue())

        db_blob = dumps_database(database, format="columnar")
        db_archive = dict(np.load(io.BytesIO(db_blob)))
        db_archive["bits"] = db_archive["bits"].astype(np.int64)
        buffer = io.BytesIO()
        np.savez(buffer, **db_archive)
        with pytest.raises(ValueError, match="uint8"):
            loads_database(buffer.getvalue())

    def test_columnar_with_duplicate_subsets_rejected(self):
        import io

        meta = {
            "format": "repro-sketch-store",
            "version": 2,
            "subsets": [[0], [0]],
        }
        buffer = io.BytesIO()
        np.savez(
            buffer,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="twice"):
            loads_store(buffer.getvalue())

    def test_columnar_with_missing_subset_arrays_rejected(self, tmp_path):
        import io

        meta = {
            "format": "repro-sketch-store",
            "version": 2,
            "subsets": [[0, 1]],
        }
        buffer = io.BytesIO()
        np.savez(
            buffer,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            ids_0=np.asarray(["a"]),
            # keys_0 / bits_0 missing
        )
        with pytest.raises(ValueError, match="missing arrays"):
            loads_store(buffer.getvalue())


class TestPublishColumn:
    def test_publish_column_into_existing_store_checks_duplicates(self):
        _, _, _, store = make_store(num_users=10)
        column = store.column_for((0, 1))
        fresh = SketchStore.from_columns({(0, 1): column})
        with pytest.raises(ValueError, match="already published"):
            fresh.publish_column((0, 1), column)

    def test_publish_column_appends_to_materialised_column(self):
        store = SketchStore()
        store.publish(Sketch("a", (0,), key=1, num_bits=4, iterations=2))
        added = store.publish_column(
            (0,),
            SketchColumn(
                user_ids=["b", "c"],
                keys=np.asarray([3, 5], dtype=np.uint64),
                num_bits=np.asarray([4, 4], dtype=np.uint8),
                iterations=np.asarray([1, 7], dtype=np.uint16),
            ),
        )
        assert added == 2
        assert [s.user_id for s in store.sketches_for((0,))] == ["a", "b", "c"]
        assert store.sketches_for((0,))[2] == Sketch("c", (0,), 5, 4, 7)

    def test_empty_column_is_a_noop(self):
        store = SketchStore()
        added = store.publish_column(
            (0,),
            SketchColumn(
                user_ids=[],
                keys=np.asarray([], dtype=np.uint64),
                num_bits=np.asarray([], dtype=np.uint8),
                iterations=np.asarray([], dtype=np.uint16),
            ),
        )
        assert added == 0
        assert not store.has_subset((0,))


class TestColumnarDatabaseFormat:
    def test_empty_database_round_trips(self):
        database = bernoulli_panel(0, 4)
        blob = dumps_database(database, format="columnar")
        back = loads_database(blob)
        assert len(back) == 0
        assert back.schema.total_bits == database.schema.total_bits

    def test_round_trip_matches_jsonl(self, tmp_path):
        database = bernoulli_panel(53, 5, rng=np.random.default_rng(8))
        jsonl_path = tmp_path / "db.jsonl"
        columnar_path = tmp_path / "db.npz"
        assert save_database(database, jsonl_path) == 53
        assert save_database(database, columnar_path, format="columnar") == 53
        from_jsonl = load_database(jsonl_path)
        from_columnar = load_database(columnar_path)
        assert from_columnar.user_ids == database.user_ids == from_jsonl.user_ids
        assert (from_columnar.matrix() == database.matrix()).all()
        assert dumps_database(from_columnar) == dumps_database(database)

    def test_cross_version_round_trip(self):
        database = bernoulli_panel(20, 3, rng=np.random.default_rng(9))
        via_v2 = loads_database(dumps_database(database, format="columnar"))
        via_v1 = loads_database(dumps_database(via_v2))
        assert (via_v1.matrix() == database.matrix()).all()
        assert via_v1.user_ids == database.user_ids

    def test_truncated_rejected(self):
        database = bernoulli_panel(20, 3, rng=np.random.default_rng(10))
        blob = dumps_database(database, format="columnar")
        for cut in (1, 20, len(blob) // 2, len(blob) - 2):
            with pytest.raises(ValueError):
                loads_database(blob[:cut])

    def test_unknown_format_rejected(self):
        database = bernoulli_panel(5, 2, rng=np.random.default_rng(11))
        with pytest.raises(ValueError, match="unknown database format"):
            dumps_database(database, format="csv")


class TestPersistentEvaluationCache:
    def test_warm_cache_answers_marginal_with_zero_prf_calls(self, tmp_path):
        params, prf, database, store = make_store()
        cold = CountingEstimator(params, prf)
        engine = QueryEngine(database.schema, store, cold, cache_dir=tmp_path)
        marginal_cold = engine.marginal((1, 2, 3))
        assert cold.block_calls == 1

        # A fresh engine (fresh process in production) on the same store
        # and cache dir: the repeated full marginal costs zero new PRF
        # block evaluations.
        warm = CountingEstimator(params, prf)
        engine2 = QueryEngine(database.schema, store, warm, cache_dir=tmp_path)
        marginal_warm = engine2.marginal((1, 2, 3))
        assert warm.block_calls == 0
        assert (marginal_cold == marginal_warm).all()

    def test_persistent_matches_in_memory_results(self, tmp_path):
        params, prf, database, store = make_store()
        estimator = SketchEstimator(params, prf)
        plain = QueryEngine(database.schema, store, estimator)
        cached = QueryEngine(database.schema, store, estimator, cache_dir=tmp_path)
        assert (plain.marginal((0, 1)) == cached.marginal((0, 1))).all()
        assert plain.count((1, 2, 3), (1, 0, 1)) == cached.count((1, 2, 3), (1, 0, 1))

    def test_wrong_store_hash_rejected_never_reused(self, tmp_path):
        params, prf, database, store = make_store()
        estimator = SketchEstimator(params, prf)
        engine = QueryEngine(database.schema, store, estimator, cache_dir=tmp_path)
        engine.marginal((0, 1))

        # Masquerade the populated cache as belonging to a different store
        # by copying it under the other store's hash directory.
        _, _, database2, store2 = make_store(seed=99)
        hash1 = store_content_hash(store, prf)
        hash2 = store_content_hash(store2, prf)
        assert hash1 != hash2
        shutil.copytree(tmp_path / f"store-{hash1}", tmp_path / f"store-{hash2}")
        with pytest.raises(ValueError, match="different store"):
            QueryEngine(database2.schema, store2, estimator, cache_dir=tmp_path)

    def test_corrupt_meta_rejected(self, tmp_path):
        params, prf, database, store = make_store()
        estimator = SketchEstimator(params, prf)
        QueryEngine(database.schema, store, estimator, cache_dir=tmp_path)
        meta_path = (
            tmp_path / f"store-{store_content_hash(store, prf)}" / "meta.json"
        )
        meta_path.write_text("not json{")
        with pytest.raises(ValueError, match="corrupt"):
            QueryEngine(database.schema, store, estimator, cache_dir=tmp_path)

    def test_oversized_entry_rejected_as_stale(self, tmp_path):
        params, prf, database, store = make_store()
        estimator = SketchEstimator(params, prf)
        engine = QueryEngine(database.schema, store, estimator, cache_dir=tmp_path)
        engine.estimate((0, 1), (1, 1))
        cache_dir = tmp_path / f"store-{store_content_hash(store, prf)}"
        entries = [p for p in cache_dir.iterdir() if p.suffix == ".npy"]
        assert entries
        # Grow the entry past the store's column length — a stale cache
        # masquerading under the right hash (and in the valid bit-packed
        # entry format) must be rejected on read.
        entries[0].write_bytes(
            SketchEvaluationCache._pack_entry(np.zeros(10_000, dtype=np.int8))
        )
        fresh = QueryEngine(database.schema, store, estimator, cache_dir=tmp_path)
        with pytest.raises(ValueError, match="stale"):
            fresh.estimate((0, 1), (1, 1))
        # An entry that is not even a packed column is rejected as corrupt.
        np.save(entries[0], np.zeros(100, dtype=np.int8))
        corrupt = QueryEngine(database.schema, store, estimator, cache_dir=tmp_path)
        with pytest.raises(ValueError, match="corrupt"):
            corrupt.estimate((0, 1), (1, 1))

    def test_store_hash_distinguishes_nul_boundary_ids(self):
        # ["a\x00", "b"] and ["a", "\x00b"] concatenate identically; the
        # length-prefixed hash must keep them in distinct cache dirs.
        prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)

        def store_with(ids):
            store = SketchStore()
            for index, uid in enumerate(ids):
                store.publish(Sketch(uid, (0,), key=index, num_bits=4, iterations=1))
            return store

        hash_a = store_content_hash(store_with(["a\x00", "b"]), prf)
        hash_b = store_content_hash(store_with(["a", "\x00b"]), prf)
        assert hash_a != hash_b

    def test_stateful_prf_refused(self, tmp_path):
        params = PrivacyParams(p=0.3)
        oracle = TrueRandomOracle(p=0.3, rng=np.random.default_rng(0))
        store = SketchStore()
        store.publish(Sketch("a", (0,), key=1, num_bits=4, iterations=1))
        with pytest.raises(ValueError, match="stateless"):
            SketchEvaluationCache(
                store, SketchEstimator(params, oracle), cache_dir=tmp_path
            )

    def test_store_growth_after_init_stays_correct(self, tmp_path):
        params, prf, database, store = make_store()
        estimator = CountingEstimator(params, prf)
        cache = SketchEvaluationCache(store, estimator, cache_dir=tmp_path)
        before = cache.bits((0, 1), [(1, 1)])[0].copy()

        # The store grows after the cache was hashed: the in-memory tail
        # extension must stay exact and the directory must not be
        # poisoned with columns from the grown store.
        store.publish(Sketch("late-user", (0, 1), key=3, num_bits=8, iterations=1))
        grown = cache.bits((0, 1), [(1, 1)])[0]
        expected = SketchEstimator(params, prf).evaluations(
            store.sketches_for((0, 1)), (1, 1)
        )
        assert (grown == expected).all()
        assert (grown[: before.size] == before).all()

        # No directory may hold a column longer than its store had users:
        # the post-growth store hashes to a new directory, and writes into
        # the pre-growth directory were suppressed once the size snapshot
        # went stale.  (Entries are bit-packed behind an 8-byte little-
        # endian length header.)
        for entry in tmp_path.glob("store-*/*.npy"):
            raw = np.load(entry)
            recorded_bits = int.from_bytes(raw[:8].tobytes(), "little")
            assert recorded_bits <= store.num_users((0, 1))

    def test_sulq_server_accepts_cache_dir(self, tmp_path):
        from repro.server import DualModeServer

        params, prf, database, _ = make_store(num_users=60)
        sketcher = Sketcher(params, prf, sketch_bits=8, rng=np.random.default_rng(2))
        estimator = SketchEstimator(params, prf)
        server = DualModeServer(
            database, sketcher, estimator, SUBSETS, noise_magnitude=5.0,
            cache_dir=tmp_path,
        )
        first = server.count((0, 1), (1, 1), mode="free")
        again = server.count((0, 1), (1, 1), mode="free")
        assert first == again
        assert any(path.name.startswith("store-") for path in tmp_path.iterdir())


class TestBlockRequestWire:
    def test_request_round_trip(self):
        payload = dumps_block_request((0, 1), [(0, 0), (1, 1)])
        subset, values = loads_block_request(payload)
        assert subset == (0, 1)
        assert values == [(0, 0), (1, 1)]

    def test_response_round_trip(self):
        payload = dumps_block_response((0, 1), [(0, 0), (1, 1)], [4.0, 9.5])
        assert loads_block_response(payload) == [4.0, 9.5]

    def test_handle_block_request_matches_counts_block(self):
        params, prf, database, store = make_store()
        engine = QueryEngine(database.schema, store, SketchEstimator(params, prf))
        values = [(0, 0), (0, 1), (1, 0), (1, 1)]
        request = dumps_block_request((0, 1), values)
        response = handle_block_request(engine, request)
        assert loads_block_response(response) == engine.counts_block((0, 1), values)

    def test_malformed_messages_rejected(self):
        with pytest.raises(ValueError, match="malformed wire message"):
            loads_block_request("{not json")
        with pytest.raises(ValueError, match="expected a repro-block-request"):
            loads_block_request(json.dumps({"format": "nope", "version": 1}))
        with pytest.raises(ValueError, match="version"):
            loads_block_request(
                json.dumps({"format": "repro-block-request", "version": 7})
            )
        with pytest.raises(ValueError, match="width"):
            loads_block_request(
                json.dumps(
                    {
                        "format": "repro-block-request",
                        "version": 1,
                        "subset": [0, 1],
                        "values": [[1]],
                    }
                )
            )
        with pytest.raises(ValueError, match="at least one value"):
            dumps_block_request((0,), [])
        with pytest.raises(ValueError, match="expected a repro-block-response"):
            loads_block_response(json.dumps({"format": "nope", "version": 1}))

    def test_request_validates_widths(self):
        with pytest.raises(ValueError, match="width"):
            dumps_block_request((0, 1), [(1,)])


class TestStreamingColumnIngestion:
    def test_ingest_store_matches_per_sketch_ingestion(self):
        params, prf, _, store = make_store(num_users=80)
        estimator = SketchEstimator(params, prf)

        scalar = StreamingEstimator(estimator)
        bulk = StreamingEstimator(estimator)
        queries = [((0, 1), (1, 1)), ((0, 1), (0, 1)), ((1, 2, 3), (1, 0, 1))]
        for subset, value in queries:
            scalar.register(subset, value)
            bulk.register(subset, value)

        updates_scalar = sum(
            scalar.ingest(sketch)
            for subset in store.subsets
            for sketch in store.sketches_for(subset)
        )
        updates_bulk = bulk.ingest_store(store)
        assert updates_bulk == updates_scalar
        for subset, value in queries:
            assert bulk.estimate(subset, value) == scalar.estimate(subset, value)

    def test_ingest_store_rejects_duplicates(self):
        params, prf, _, store = make_store(num_users=10)
        streaming = StreamingEstimator(SketchEstimator(params, prf))
        streaming.register((0, 1), (1, 1))
        streaming.ingest_store(store)
        with pytest.raises(ValueError, match="already ingested"):
            streaming.ingest_store(store)

    def test_rejected_ingest_store_is_atomic(self):
        # A duplicate anywhere in the store must leave the estimator
        # exactly as it was — no column's counts or seen-marks may have
        # been committed before the raise.
        params, prf, _, store = make_store(num_users=10)
        streaming = StreamingEstimator(SketchEstimator(params, prf))
        streaming.register((0, 1), (1, 1))
        streaming.register((1, 2, 3), (1, 0, 1))
        # Pre-ingest one user's sketch for the *last* subset only, so the
        # duplicate trips after the first subset's column would have
        # been scored.
        poisoned = store.sketches_for((1, 2, 3))[0]
        streaming.ingest(poisoned)
        with pytest.raises(ValueError, match="already ingested"):
            streaming.ingest_store(store)
        # (0, 1) was never committed...
        with pytest.raises(ValueError, match="no sketches ingested"):
            streaming.estimate((0, 1), (1, 1))
        # ...and (1, 2, 3) still reflects exactly the one scalar ingest.
        assert streaming.estimate((1, 2, 3), (1, 0, 1)).num_users == 1
        # After the failed bulk call the non-duplicate sketches can still
        # be ingested individually.
        for sketch in store.sketches_for((1, 2, 3))[1:]:
            streaming.ingest(sketch)
        assert streaming.estimate((1, 2, 3), (1, 0, 1)).num_users == 10


class TestCliFlags:
    def test_demo_store_format_and_cache_dir(self, tmp_path, capsys):
        from repro.cli import main

        args = [
            "demo", "--users", "200", "--width", "2", "--seed", "5",
            "--store-format", "columnar", "--cache-dir", str(tmp_path),
        ]
        first = main(args)
        out_first = capsys.readouterr().out
        assert "round-tripped through columnar" in out_first
        assert "persisted under" in out_first
        # Warm re-run: same answer, cache reused (single store-hash dir).
        second = main(args)
        out_second = capsys.readouterr().out
        assert first == second
        assert [line for line in out_first.splitlines() if "estimate" in line] == [
            line for line in out_second.splitlines() if "estimate" in line
        ]
        assert len([p for p in tmp_path.iterdir() if p.name.startswith("store-")]) == 1

    def test_demo_jsonl_round_trip(self, capsys):
        from repro.cli import main

        assert main(
            ["demo", "--users", "150", "--width", "2", "--store-format", "jsonl"]
        ) in (0, 1)
        assert "round-tripped through jsonl" in capsys.readouterr().out
