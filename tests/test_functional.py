"""Unit tests for function sketches (§5 future-work extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FunctionEstimator,
    FunctionSketcher,
    ProfileFunction,
    PrivacyParams,
)

from .conftest import make_prf


class TestProfileFunction:
    def test_validates_declaration(self):
        with pytest.raises(ValueError):
            ProfileFunction("", 1, lambda p: (0,))
        with pytest.raises(ValueError):
            ProfileFunction("f", 0, lambda p: ())

    def test_enforces_output_contract(self):
        wrong_width = ProfileFunction("w", 2, lambda p: (0,))
        with pytest.raises(ValueError, match="declared 2"):
            wrong_width([0, 1])
        non_binary = ProfileFunction("n", 1, lambda p: (2,))
        with pytest.raises(ValueError, match="non-binary"):
            non_binary([0, 1])

    def test_parity(self):
        parity = ProfileFunction.parity((0, 2, 3))
        assert parity([1, 0, 1, 1]) == (1,)
        assert parity([1, 0, 1, 0]) == (0,)
        assert parity([0, 0, 0, 0]) == (0,)

    def test_comparator(self):
        greater = ProfileFunction.comparator((0, 1), (2, 3))
        assert greater([1, 0, 0, 1]) == (1,)  # 2 > 1
        assert greater([0, 1, 1, 0]) == (0,)  # 1 < 2
        assert greater([1, 1, 1, 1]) == (0,)  # equal -> not greater

    def test_bucket(self):
        bucket = ProfileFunction.bucket((0, 1, 2), boundaries=(2, 5))
        assert bucket([0, 1, 0]) == (0, 0)  # value 2 -> bucket 0
        assert bucket([1, 0, 0]) == (0, 1)  # value 4 -> bucket 1
        assert bucket([1, 1, 1]) == (1, 0)  # value 7 -> bucket 2

    def test_bucket_validates_boundaries(self):
        with pytest.raises(ValueError):
            ProfileFunction.bucket((0,), boundaries=(5, 2))


class TestFunctionSketching:
    def test_parity_frequency_recovery(self, rng):
        params = PrivacyParams(p=0.3)
        prf = make_prf(0.3)
        sketcher = FunctionSketcher(params, prf, sketch_bits=8, rng=rng)
        estimator = FunctionEstimator(params, prf)
        parity = ProfileFunction.parity((0, 1, 2))
        num_users = 4000
        profiles = (rng.random((num_users, 3)) < 0.5).astype(int)
        sketches = [
            sketcher.sketch(f"u{i}", profiles[i], parity) for i in range(num_users)
        ]
        truth = float((profiles.sum(axis=1) % 2 == 1).mean())
        estimate = estimator.estimate(sketches, (1,))
        assert estimate.fraction == pytest.approx(truth, abs=0.06)

    def test_comparator_frequency_recovery(self, rng):
        params = PrivacyParams(p=0.25)
        prf = make_prf(0.25)
        sketcher = FunctionSketcher(params, prf, sketch_bits=8, rng=rng)
        estimator = FunctionEstimator(params, prf)
        greater = ProfileFunction.comparator((0, 1, 2), (3, 4, 5))
        num_users = 4000
        profiles = (rng.random((num_users, 6)) < 0.5).astype(int)
        sketches = [
            sketcher.sketch(f"u{i}", profiles[i], greater) for i in range(num_users)
        ]
        a = profiles[:, 0] * 4 + profiles[:, 1] * 2 + profiles[:, 2]
        b = profiles[:, 3] * 4 + profiles[:, 4] * 2 + profiles[:, 5]
        truth = float((a > b).mean())
        estimate = estimator.estimate(sketches, (1,))
        assert estimate.fraction == pytest.approx(truth, abs=0.06)

    def test_histogram_sums_to_one(self, rng):
        params = PrivacyParams(p=0.25)
        prf = make_prf(0.25)
        sketcher = FunctionSketcher(params, prf, sketch_bits=8, rng=rng)
        estimator = FunctionEstimator(params, prf, clamp=False)
        bucket = ProfileFunction.bucket((0, 1, 2), boundaries=(1, 4))
        num_users = 5000
        profiles = (rng.random((num_users, 3)) < 0.5).astype(int)
        sketches = [
            sketcher.sketch(f"u{i}", profiles[i], bucket) for i in range(num_users)
        ]
        histogram = estimator.histogram(sketches, output_bits=2)
        # Buckets 0..2 are reachable; pattern 11 (=3) is not a real bucket.
        assert histogram.sum() == pytest.approx(1.0, abs=0.1)

    def test_histogram_width_guard(self, rng):
        params = PrivacyParams(p=0.25)
        estimator = FunctionEstimator(params, make_prf(0.25))
        with pytest.raises(ValueError):
            estimator.histogram([], output_bits=13)

    def test_different_functions_get_independent_randomness(self, rng):
        # Same user, same profile, two function names: the sketches index
        # different PRF streams, so evaluations at the same value differ
        # across a population.
        params = PrivacyParams(p=0.3)
        prf = make_prf(0.3)
        sketcher = FunctionSketcher(params, prf, sketch_bits=8, rng=rng)
        f1 = ProfileFunction.parity((0,), name="p1")
        f2 = ProfileFunction.parity((0,), name="p2")
        ids_1 = {sketcher.sketch(f"u{i}", [1, 0], f1).user_id for i in range(5)}
        ids_2 = {sketcher.sketch(f"u{i}", [1, 0], f2).user_id for i in range(5)}
        assert ids_1.isdisjoint(ids_2)  # tagged ids keep the streams apart

    def test_bias_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            FunctionSketcher(PrivacyParams(p=0.3), make_prf(0.25), rng=rng)

    def test_privacy_cost_is_one_sketch(self):
        # A function sketch costs exactly one Lemma 3.3 factor: the bound
        # reported for 1 release covers it (structural check: the sketch
        # record is a plain Sketch, so the accountant treats it as one).
        params = PrivacyParams(p=0.3)
        assert params.privacy_ratio_bound(1) == pytest.approx((0.7 / 0.3) ** 4)
