"""Tests for the in-memory evaluation-cache budget and generation GC."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import BiasedPRF, PrivacyParams, Sketch, SketchEstimator, Sketcher
from repro.data import bernoulli_panel
from repro.server import QueryEngine, SketchStore, publish_database
from repro.server.engine import SketchEvaluationCache

from .conftest import GLOBAL_KEY

PARAMS = PrivacyParams(p=0.3)


def make_stack(num_users=80, width=3, seed=0):
    prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
    database = bernoulli_panel(num_users, width, rng=np.random.default_rng(seed))
    sketcher = Sketcher(PARAMS, prf, sketch_bits=6, rng=np.random.default_rng(1))
    subsets = [tuple(range(width))]
    store = publish_database(database, sketcher, subsets, workers=1, seed=3)
    estimator = SketchEstimator(PARAMS, prf)
    return database, store, estimator


class TestMemoryBudget:
    def test_unbounded_by_default(self):
        database, store, estimator = make_stack()
        engine = QueryEngine(database.schema, store, estimator)
        engine.marginal((0, 1, 2))
        entries, _ = engine.cache.info()
        assert entries == 8
        assert engine.cache.stats["memory_evictions"] == 0

    def test_lru_eviction_bounds_memory(self):
        database, store, estimator = make_stack(num_users=100)
        budget = 350  # holds 3 full 100-user columns, not 8
        engine = QueryEngine(
            database.schema, store, estimator, memory_budget_bytes=budget
        )
        marginal = engine.marginal((0, 1, 2))
        entries, cached_bytes = engine.cache.info()
        assert cached_bytes <= budget
        assert engine.cache.stats["memory_evictions"] > 0
        assert engine.cache.stats["memory_evicted_bytes"] > 0
        # Evicted columns are recomputed, never answered differently.
        unbudgeted = QueryEngine(database.schema, store, estimator)
        assert np.array_equal(marginal, unbudgeted.marginal((0, 1, 2)))

    def test_budget_zero_retains_nothing(self):
        database, store, estimator = make_stack()
        engine = QueryEngine(
            database.schema, store, estimator, memory_budget_bytes=0
        )
        first = engine.estimate((0, 1, 2), (1, 1, 1))
        second = engine.estimate((0, 1, 2), (1, 1, 1))
        assert first == second
        assert engine.cache.info() == (0, 0)

    def test_recency_refresh_protects_hot_entries(self):
        database, store, estimator = make_stack(num_users=100)
        engine = QueryEngine(
            database.schema, store, estimator, memory_budget_bytes=250
        )
        hot = (1, 1, 1)
        engine.estimate((0, 1, 2), hot)
        # Touch `hot` between batches of cold values: it must survive.
        for v in range(4):
            value = tuple(int(b) for b in np.binary_repr(v, 3))
            engine.estimate((0, 1, 2), value)
            engine.estimate((0, 1, 2), hot)
        assert ((0, 1, 2), hot) in engine.cache._bits

    def test_negative_budget_rejected(self):
        database, store, estimator = make_stack(num_users=20)
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            QueryEngine(database.schema, store, estimator, memory_budget_bytes=-1)

    def test_disk_layer_still_serves_evicted_columns(self, tmp_path):
        database, store, estimator = make_stack(num_users=100)
        engine = QueryEngine(
            database.schema, store, estimator,
            cache_dir=tmp_path, memory_budget_bytes=150,
        )
        engine.marginal((0, 1, 2))
        prf = estimator.prf
        calls = {"n": 0}
        original = prf.evaluate_block

        def counted(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        prf.evaluate_block = counted
        try:
            # Memory holds at most one column; everything else re-reads
            # from disk — still zero PRF work.
            engine.marginal((0, 1, 2))
        finally:
            prf.evaluate_block = original
        assert calls["n"] == 0


class TestGenerationGC:
    def _age_directory(self, path, seconds):
        stamp = time.time() - seconds
        for name in os.listdir(path):
            os.utime(os.path.join(path, name), (stamp, stamp))
        os.utime(path, (stamp, stamp))

    def _grown(self, store):
        grown = SketchStore()
        for subset in store.subsets:
            for sketch in store.sketches_for(subset):
                grown.publish(sketch)
        grown.publish(Sketch("late-user", store.subsets[0], 3, 6, 1))
        return grown

    def test_superseded_generation_reclaimed_after_ttl(self, tmp_path):
        database, store, estimator = make_stack(num_users=30)
        old = QueryEngine(database.schema, store, estimator, cache_dir=tmp_path)
        old.marginal((0, 1, 2))
        (old_dir,) = [d for d in os.listdir(tmp_path) if d.startswith("store-")]
        self._age_directory(os.path.join(tmp_path, old_dir), seconds=7200)

        grown = self._grown(store)
        fresh = QueryEngine(
            database.schema, grown, estimator,
            cache_dir=tmp_path, generation_ttl_seconds=3600,
        )
        survivors = [d for d in os.listdir(tmp_path) if d.startswith("store-")]
        assert old_dir not in survivors
        assert len(survivors) == 1  # the live generation
        assert fresh.cache.stats["gc_directories"] == 1
        assert fresh.cache.stats["gc_bytes"] > 0
        # Queries still answer correctly (recomputed, not seeded).
        assert fresh.marginal((0, 1, 2)).shape == (8,)

    def test_recent_generation_survives_and_seeds(self, tmp_path):
        database, store, estimator = make_stack(num_users=30)
        QueryEngine(database.schema, store, estimator, cache_dir=tmp_path).marginal(
            (0, 1, 2)
        )
        grown = self._grown(store)
        fresh = QueryEngine(
            database.schema, grown, estimator,
            cache_dir=tmp_path, generation_ttl_seconds=3600,
        )
        directories = [d for d in os.listdir(tmp_path) if d.startswith("store-")]
        assert len(directories) == 2
        assert fresh.cache.stats["gc_directories"] == 0
        assert fresh.cache._seed_dirs  # the sibling still seeds

    def test_live_generation_never_reclaimed(self, tmp_path):
        database, store, estimator = make_stack(num_users=30)
        first = QueryEngine(database.schema, store, estimator, cache_dir=tmp_path)
        first.marginal((0, 1, 2))
        (own_dir,) = [d for d in os.listdir(tmp_path) if d.startswith("store-")]
        self._age_directory(os.path.join(tmp_path, own_dir), seconds=7200)
        # Same store, TTL 0: every *other* generation would be eligible,
        # but this engine's own directory must survive.
        QueryEngine(
            database.schema, store, estimator,
            cache_dir=tmp_path, generation_ttl_seconds=0,
        )
        assert own_dir in os.listdir(tmp_path)

    def test_ttl_none_never_deletes(self, tmp_path):
        database, store, estimator = make_stack(num_users=30)
        QueryEngine(database.schema, store, estimator, cache_dir=tmp_path).marginal(
            (0, 1, 2)
        )
        (old_dir,) = [d for d in os.listdir(tmp_path) if d.startswith("store-")]
        self._age_directory(os.path.join(tmp_path, old_dir), seconds=7200)
        QueryEngine(database.schema, store, estimator, cache_dir=tmp_path)
        assert old_dir in os.listdir(tmp_path)

    def test_unrelated_store_directory_survives_gc(self, tmp_path):
        # Two *different* stores share one cache root: an expired
        # directory belonging to the other store is not a superseded
        # generation of this one and must never be reclaimed.
        database, store, estimator = make_stack(num_users=30)
        other_db, other_store, other_estimator = make_stack(num_users=25, seed=99)
        QueryEngine(
            other_db.schema, other_store, other_estimator, cache_dir=tmp_path
        ).marginal((0, 1, 2))
        (other_dir,) = [d for d in os.listdir(tmp_path) if d.startswith("store-")]
        self._age_directory(os.path.join(tmp_path, other_dir), seconds=7200)
        fresh = QueryEngine(
            database.schema, store, estimator,
            cache_dir=tmp_path, generation_ttl_seconds=0,
        )
        assert other_dir in os.listdir(tmp_path)
        assert fresh.cache.stats["gc_directories"] == 0

    def test_negative_ttl_rejected(self, tmp_path):
        database, store, estimator = make_stack(num_users=20)
        with pytest.raises(ValueError, match="generation_ttl_seconds"):
            SketchEvaluationCache(
                store, estimator, cache_dir=tmp_path, generation_ttl_seconds=-1
            )


def _budget_writer(cache_dir: str, budget: int, seed: int, barrier) -> None:
    """One sibling writer: interleaved single-value bits() batches over all
    eight values of the (0, 1, 2) marginal, in a seed-specific order."""
    _database, store, estimator = make_stack(num_users=150)
    cache = SketchEvaluationCache(
        store, estimator, cache_dir=cache_dir, cache_budget_bytes=budget
    )
    values = [
        tuple(int(bit) for bit in np.binary_repr(v, width=3)) for v in range(8)
    ]
    rng = np.random.default_rng(seed)
    barrier.wait()
    for _round in range(6):
        for index in rng.permutation(len(values)):
            cache.bits((0, 1, 2), [values[index]])


class TestCrossProcessBudget:
    """``cache_budget_bytes`` is a hard invariant across sibling shard
    writers, not a per-process suggestion.

    Regression: two processes writing the same cache directory under one
    budget used to race the sweep — each evicted against its own stale
    directory listing, so both could land entries the other never saw
    and leave the directory over budget after exit.  The flock-based
    sweep lock serialises the write+sweep critical section, so the last
    writer out always sees (and bounds) the directory's true contents.
    """

    def test_two_writers_never_leave_directory_over_budget(self, tmp_path):
        import multiprocessing

        from repro.server.engine import fcntl as engine_fcntl

        if engine_fcntl is None:
            pytest.skip("no fcntl: cross-process sweep locking unavailable")
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")

        # Each packed entry is a ~150-bit column (.npy overhead included);
        # a budget of roughly 2.5 entries forces sweeps on nearly every
        # batch of both writers.
        _database, store, estimator = make_stack(num_users=150)
        probe = SketchEvaluationCache(store, estimator, cache_dir=tmp_path)
        probe.bits((0, 1, 2), [(1, 1, 1)])
        (store_dir,) = [
            os.path.join(tmp_path, d)
            for d in os.listdir(tmp_path)
            if d.startswith("store-")
        ]

        def npy_bytes() -> int:
            return sum(
                entry.stat().st_size
                for entry in os.scandir(store_dir)
                if entry.name.endswith(".npy")
            )

        budget = int(npy_bytes() * 2.5)
        barrier = ctx.Barrier(2)
        writers = [
            ctx.Process(
                target=_budget_writer, args=(str(tmp_path), budget, seed, barrier)
            )
            for seed in (7, 8)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=120.0)
        assert all(writer.exitcode == 0 for writer in writers)
        assert npy_bytes() <= budget
        # The lock file itself is infrastructure, never swept content.
        assert os.path.exists(os.path.join(store_dir, ".sweep-lock"))
        # And the surviving entries still answer exactly.
        reader = SketchEvaluationCache(
            store, estimator, cache_dir=tmp_path, cache_budget_bytes=budget
        )
        fresh = SketchEvaluationCache(store, estimator)
        [disk] = reader.bits((0, 1, 2), [(1, 0, 1)])
        [memory] = fresh.bits((0, 1, 2), [(1, 0, 1)])
        assert np.array_equal(disk, memory)
