"""Tests for sharded collection and the Sketcher's chunked rejection loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BiasedPRF,
    PrivacyAccountant,
    PrivacyParams,
    Sketch,
    Sketcher,
    TrueRandomOracle,
)
from repro.data import bernoulli_panel
from repro.server import SketchStore, merge_stores, publish_database
from repro.server.serialization import dumps_store, loads_store

from .conftest import GLOBAL_KEY

SUBSETS = [(0, 1), (1, 2), (0, 2, 3)]


def make_stack(p: float = 0.3, sketch_bits: int = 8):
    params = PrivacyParams(p=p)
    prf = BiasedPRF(p=p, global_key=GLOBAL_KEY)
    return params, prf, Sketcher(params, prf, sketch_bits=sketch_bits)


class TestShardedEquivalence:
    def test_parallel_matches_sequential_bit_for_bit(self):
        _, _, sketcher = make_stack()
        database = bernoulli_panel(97, 4, rng=np.random.default_rng(0))
        one = publish_database(database, sketcher, SUBSETS, workers=1, seed=11)
        three = publish_database(database, sketcher, SUBSETS, workers=3, seed=11)
        assert one.subsets == three.subsets
        for subset in SUBSETS:
            a = one.sketches_for(subset)
            b = three.sketches_for(subset)
            # Per-subset bit equality of the full published records —
            # users, keys, lengths, and the iteration diagnostics.
            assert a == b
        assert dumps_store(one, include_iterations=True) == dumps_store(
            three, include_iterations=True
        )

    def test_worker_count_never_changes_the_store(self):
        _, _, sketcher = make_stack()
        database = bernoulli_panel(30, 4, rng=np.random.default_rng(1))
        stores = [
            publish_database(database, sketcher, [(0, 1)], workers=w, seed=5)
            for w in (1, 2, 4)
        ]
        payloads = {dumps_store(s, include_iterations=True) for s in stores}
        assert len(payloads) == 1

    def test_seed_drawn_from_sketcher_rng_is_reproducible(self):
        # seed=None derives the base seed from the sketcher's RNG, so two
        # identically-seeded sketchers agree across worker counts too.
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
        database = bernoulli_panel(25, 4, rng=np.random.default_rng(2))

        def collect(workers):
            sketcher = Sketcher(
                params, prf, sketch_bits=8, rng=np.random.default_rng(99)
            )
            return publish_database(database, sketcher, [(0, 1)], workers=workers)

        assert dumps_store(collect(1), include_iterations=True) == dumps_store(
            collect(2), include_iterations=True
        )

    def test_extends_existing_store(self):
        _, _, sketcher = make_stack()
        early = bernoulli_panel(10, 4, rng=np.random.default_rng(3))
        late = bernoulli_panel(10, 4, rng=np.random.default_rng(4))
        # Distinct user ids for the second wave.
        for profile in late:
            object.__setattr__(profile, "user_id", "late-" + profile.user_id)
        store = publish_database(early, sketcher, [(0, 1)], workers=2, seed=1)
        grown = publish_database(late, sketcher, [(0, 1)], store=store, workers=2, seed=2)
        assert grown is store
        assert store.num_users((0, 1)) == 20

    def test_accountant_charged_for_every_user(self):
        _, _, sketcher = make_stack()
        database = bernoulli_panel(12, 4, rng=np.random.default_rng(5))
        # epsilon generous enough for 3 sketches/user at p = 0.3.
        accountant = PrivacyAccountant(PrivacyParams(p=0.3), epsilon=1e6)
        publish_database(
            database, sketcher, SUBSETS, accountant=accountant, workers=2, seed=3
        )
        for profile in database:
            assert accountant.spent(profile.user_id).num_sketches == len(SUBSETS)

    def test_workers_zero_rejected(self):
        _, _, sketcher = make_stack()
        database = bernoulli_panel(5, 4, rng=np.random.default_rng(6))
        with pytest.raises(ValueError, match="workers must be >= 1"):
            publish_database(database, sketcher, [(0,)], workers=0)

    def test_empty_database_returns_empty_store(self):
        _, _, sketcher = make_stack()
        database = bernoulli_panel(0, 4)
        store = publish_database(database, sketcher, [(0,)], workers=4, seed=1)
        assert store.subsets == ()


class TestOracleRestriction:
    def test_oracle_rejected_across_processes(self):
        params = PrivacyParams(p=0.3)
        oracle = TrueRandomOracle(p=0.3, rng=np.random.default_rng(0))
        sketcher = Sketcher(params, oracle, sketch_bits=6)
        database = bernoulli_panel(8, 2, rng=np.random.default_rng(1))
        with pytest.raises(ValueError, match="stateless"):
            publish_database(database, sketcher, [(0,)], workers=2, seed=1)

    def test_oracle_rejection_is_data_independent(self):
        # A one-user database collapses to a single in-process shard, but
        # the contract is about the *requested* worker count — the same
        # call must raise regardless of database size.
        params = PrivacyParams(p=0.3)
        oracle = TrueRandomOracle(p=0.3, rng=np.random.default_rng(0))
        sketcher = Sketcher(params, oracle, sketch_bits=6)
        database = bernoulli_panel(1, 2, rng=np.random.default_rng(1))
        with pytest.raises(ValueError, match="stateless"):
            publish_database(database, sketcher, [(0,)], workers=2, seed=1)

    def test_rejected_call_spends_no_budget(self):
        # Validation precedes charging: a call that publishes nothing
        # must not burn the users' privacy budget.
        params = PrivacyParams(p=0.3)
        oracle = TrueRandomOracle(p=0.3, rng=np.random.default_rng(0))
        sketcher = Sketcher(params, oracle, sketch_bits=6)
        database = bernoulli_panel(8, 2, rng=np.random.default_rng(1))
        accountant = PrivacyAccountant(PrivacyParams(p=0.3), epsilon=1e6)
        with pytest.raises(ValueError, match="stateless"):
            publish_database(
                database, sketcher, [(0,)], accountant=accountant, workers=2, seed=1
            )
        for profile in database:
            assert accountant.spent(profile.user_id).num_sketches == 0

    def test_oracle_allowed_in_process(self):
        # workers=1 stays in this address space, so the memoised draw
        # order is well-defined and sharding semantics still apply.
        params = PrivacyParams(p=0.3)
        oracle = TrueRandomOracle(p=0.3, rng=np.random.default_rng(0))
        sketcher = Sketcher(params, oracle, sketch_bits=6)
        database = bernoulli_panel(8, 2, rng=np.random.default_rng(1))
        store = publish_database(database, sketcher, [(0,)], workers=1, seed=1)
        assert store.num_users((0,)) == 8


class TestSketcherChunking:
    def test_block_sizes_publish_identical_sketches(self):
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
        runs = []
        for block_size in (1, 4, 64):
            sketcher = Sketcher(
                params, prf, sketch_bits=8,
                rng=np.random.default_rng(42), block_size=block_size,
            )
            runs.append(
                [sketcher.sketch(f"u{i}", [1, 0, 1], (0, 1, 2)) for i in range(150)]
            )
        assert runs[0] == runs[1] == runs[2]

    def test_oracle_stays_on_the_scalar_path(self):
        # A memoising oracle must never be evaluated speculatively: the
        # number of distinct points it has sampled equals the number of
        # iterations Algorithm 1 actually performed.
        params = PrivacyParams(p=0.3)
        oracle = TrueRandomOracle(p=0.3, rng=np.random.default_rng(7))
        sketcher = Sketcher(
            params, oracle, sketch_bits=6,
            rng=np.random.default_rng(8), block_size=16,
        )
        total_iterations = sum(
            sketcher.sketch(f"u{i}", [1], (0,)).iterations for i in range(60)
        )
        assert oracle.num_evaluations == total_iterations

    def test_evaluate_keys_matches_scalar_evaluate(self):
        prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
        keys = list(range(40))
        block = prf.evaluate_keys("user", (0, 2), (1, 0), keys)
        scalar = [prf.evaluate("user", (0, 2), (1, 0), key) for key in keys]
        assert block.tolist() == scalar

    def test_evaluate_keys_default_path_matches_override(self):
        oracle = TrueRandomOracle(p=0.3, rng=np.random.default_rng(9))
        keys = list(range(20))
        first = oracle.evaluate_keys("user", (1,), (0,), keys)
        again = [oracle.evaluate("user", (1,), (0,), key) for key in keys]
        assert first.tolist() == again


class TestMergeStores:
    def test_overlapping_subsets_union_into_one_column(self):
        east, west = SketchStore(), SketchStore()
        east.publish(Sketch("a", (0, 1), key=1, num_bits=4, iterations=1))
        east.publish(Sketch("b", (0, 1), key=2, num_bits=4, iterations=1))
        west.publish(Sketch("c", (0, 1), key=3, num_bits=4, iterations=1))
        west.publish(Sketch("c", (2,), key=0, num_bits=4, iterations=1))
        merged = merge_stores(east, west)
        assert merged.num_users((0, 1)) == 3
        assert merged.num_users((2,)) == 1
        assert [s.user_id for s in merged.sketches_for((0, 1))] == ["a", "b", "c"]

    def test_duplicate_publication_across_shards_raises(self):
        east, west = SketchStore(), SketchStore()
        east.publish(Sketch("a", (0,), key=1, num_bits=4, iterations=1))
        west.publish(Sketch("a", (0,), key=2, num_bits=4, iterations=1))
        with pytest.raises(ValueError, match="already published"):
            merge_stores(east, west)


class TestIterationsRoundTrip:
    def test_iterations_preserved_when_requested(self):
        store = SketchStore()
        store.publish(Sketch("a", (0,), key=1, num_bits=4, iterations=7))
        reloaded, _ = loads_store(dumps_store(store, include_iterations=True))
        assert reloaded.sketches_for((0,))[0].iterations == 7

    def test_iterations_dropped_by_default(self):
        store = SketchStore()
        store.publish(Sketch("a", (0,), key=1, num_bits=4, iterations=7))
        reloaded, _ = loads_store(dumps_store(store))
        assert reloaded.sketches_for((0,))[0].iterations == 0
