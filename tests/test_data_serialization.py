"""Unit tests for ground-truth database serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    Schema,
    ProfileDatabase,
    dumps_database,
    load_database,
    loads_database,
    salary_table,
    save_database,
    zipf_categorical,
)


class TestRoundTrip:
    def test_in_memory_round_trip(self, rng):
        db = salary_table(50, bits=5, rng=rng)
        loaded = loads_database(dumps_database(db))
        assert loaded.user_ids == db.user_ids
        assert np.array_equal(loaded.matrix(), db.matrix())
        assert loaded.schema.names == db.schema.names

    def test_file_round_trip(self, tmp_path, rng):
        db = zipf_categorical(30, cardinality=5, rng=rng)
        path = tmp_path / "db.jsonl"
        assert save_database(db, path) == 30
        loaded = load_database(path)
        assert np.array_equal(
            loaded.attribute_values("category"), db.attribute_values("category")
        )

    def test_mixed_schema_round_trip(self, rng):
        schema = Schema.build(
            boolean=["flag"], uint={"x": 7}, categorical={"cat": 6}
        )
        db = ProfileDatabase(schema)
        db.add_values("a", {"flag": 1, "x": 100, "cat": 5})
        db.add_values("b", {"flag": 0, "x": 0, "cat": 0})
        loaded = loads_database(dumps_database(db))
        assert loaded["a"].bits.tolist() == db["a"].bits.tolist()
        spec = loaded.schema.spec("cat")
        assert spec.kind == "categorical"
        assert spec.cardinality == 6

    def test_exact_queries_survive(self, rng):
        db = salary_table(100, bits=4, rng=rng)
        loaded = loads_database(dumps_database(db))
        assert loaded.exact_sum("salary") == db.exact_sum("salary")
        assert loaded.exact_interval("salary", 7) == db.exact_interval("salary", 7)


class TestValidation:
    def test_empty_file(self):
        with pytest.raises(ValueError, match="empty"):
            loads_database("")

    def test_wrong_format(self):
        with pytest.raises(ValueError, match="not a profile-db"):
            loads_database('{"format": "repro-sketch-store", "version": 1}\n')

    def test_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            loads_database(
                '{"format": "repro-profile-db", "version": 42, "schema": []}\n'
            )

    def test_malformed_record_line_number(self, rng):
        db = salary_table(1, bits=4, rng=rng)
        payload = dumps_database(db) + '{"id": "x"}\n'
        with pytest.raises(ValueError, match="line 3"):
            loads_database(payload)

    def test_duplicate_ids_rejected(self, rng):
        db = salary_table(1, bits=4, rng=rng)
        lines = dumps_database(db).splitlines()
        payload = "\n".join(lines + [lines[1]]) + "\n"
        with pytest.raises(ValueError):
            loads_database(payload)
