"""Shared fixtures: fixed keys and seeds so every test is deterministic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BiasedPRF, PrivacyParams, SketchEstimator, Sketcher

GLOBAL_KEY = b"reproduction-global-key-32bytes!"


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20060612)


@pytest.fixture
def params() -> PrivacyParams:
    """p = 0.3: comfortably private yet accurate at a few thousand users."""
    return PrivacyParams(p=0.3)


@pytest.fixture
def prf(params: PrivacyParams) -> BiasedPRF:
    return BiasedPRF(p=params.p, global_key=GLOBAL_KEY)


@pytest.fixture
def sketcher(params: PrivacyParams, prf: BiasedPRF, rng: np.random.Generator) -> Sketcher:
    return Sketcher(params, prf, sketch_bits=8, rng=rng)


@pytest.fixture
def estimator(params: PrivacyParams, prf: BiasedPRF) -> SketchEstimator:
    return SketchEstimator(params, prf)


def make_prf(p: float) -> BiasedPRF:
    """Non-fixture helper for tests that sweep the bias."""
    return BiasedPRF(p=p, global_key=GLOBAL_KEY)
