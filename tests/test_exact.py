"""Unit tests for the exact publish-probability analysis (Lemma 3.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    PrivacyParams,
    average_publish_probability,
    consider_probability,
    exact_failure_probability,
    publish_probability,
    worst_case_ratio,
)


def simulate_publish(num_keys, evaluations, accept_prob, rng, trials=200000):
    """Monte-Carlo Algorithm 1 on a fixed evaluation pattern; returns the
    empirical publish frequency of every key."""
    counts = np.zeros(num_keys)
    for _ in range(trials):
        order = rng.permutation(num_keys)
        for key in order:
            if evaluations[key] == 1 or rng.random() < accept_prob:
                counts[key] += 1
                break
    return counts / trials


class TestConsiderProbability:
    def test_all_ones_is_uniform(self):
        # Proof of Lemma 3.3: Z^(L) = 1/L when every key evaluates to 1.
        for num_keys in (2, 8, 16):
            assert consider_probability(num_keys, num_keys, 1, 0.2) == pytest.approx(
                1.0 / num_keys
            )

    def test_monotone_in_number_of_ones(self):
        # Z^(q) >= Z^(q+1): more ones elsewhere means earlier termination.
        accept = 0.25
        values = [
            consider_probability(16, q, 1, accept) for q in range(1, 17)
        ]
        assert values == sorted(values, reverse=True)

    def test_zero_zero_symmetry(self):
        # Z^(q)_0 = Z^(q+1)_1: considering is decided before evaluation.
        for q in range(0, 15):
            zero_side = consider_probability(16, q, 0, 0.3)
            one_side = consider_probability(16, q + 1, 1, 0.3)
            assert zero_side == pytest.approx(one_side)

    def test_z1_closed_form(self):
        # Proof computes Z^(1) = (1/L) sum_i (1-r)^i <= 1/(rL).
        num_keys, accept = 8, 0.2
        expected = sum((1 - accept) ** i for i in range(num_keys)) / num_keys
        assert consider_probability(num_keys, 1, 1, accept) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            consider_probability(4, 5, 1, 0.2)
        with pytest.raises(ValueError):
            consider_probability(4, 0, 1, 0.2)
        with pytest.raises(ValueError):
            consider_probability(4, 4, 0, 0.2)
        with pytest.raises(ValueError):
            consider_probability(4, 1, 2, 0.2)


class TestPublishProbability:
    def test_matches_monte_carlo_pattern(self):
        rng = np.random.default_rng(0)
        num_keys, accept = 4, 0.3
        evaluations = [1, 0, 0, 1]  # q = 2
        empirical = simulate_publish(num_keys, evaluations, accept, rng, trials=100000)
        for key, evaluation in enumerate(evaluations):
            expected = publish_probability(num_keys, 2, evaluation, accept)
            assert empirical[key] == pytest.approx(expected, abs=0.01)

    def test_total_publish_probability_at_most_one(self):
        for num_keys in (4, 16):
            for q in range(num_keys + 1):
                total = 0.0
                if q >= 1:
                    total += q * publish_probability(num_keys, q, 1, 0.25)
                if q <= num_keys - 1:
                    total += (num_keys - q) * publish_probability(num_keys, q, 0, 0.25)
                assert total <= 1.0 + 1e-12
                if q >= 1:
                    # With at least one 1-key the run always publishes.
                    assert total == pytest.approx(1.0)


class TestWorstCaseRatio:
    @pytest.mark.parametrize("p", [0.1, 0.25, 0.3, 0.4])
    @pytest.mark.parametrize("num_keys", [2, 8, 32])
    def test_lemma_33_bound_holds(self, p, num_keys):
        params = PrivacyParams(p)
        distribution = worst_case_ratio(num_keys, params.rejection_probability)
        assert distribution.worst_ratio <= params.privacy_ratio_bound() + 1e-9

    def test_bound_is_reasonably_tight(self):
        # As L grows the exact worst ratio approaches a constant fraction
        # of the ((1-p)/p)^4 bound; check it is within 2x at L = 64.
        params = PrivacyParams(p=0.25)
        distribution = worst_case_ratio(64, params.rejection_probability)
        assert distribution.worst_ratio >= params.privacy_ratio_bound() / 2.0

    def test_rejection_constant_ablation(self):
        # Why r = (p/(1-p))**2 and not the "naive" r = p/(1-p)?  The accept
        # probability controls a privacy-utility dial: the published key is
        # 1-evaluating with probability  p / (p + (1-p) r)  (proof of
        # Lemma 3.2).  The paper's squared constant makes that exactly
        # 1 - p — the bias Algorithm 2's de-biasing assumes — while the
        # naive constant collapses it to 1/2: *more* private (ratio
        # ((1-p)/p)^2 instead of ^4) but with a signal gap of 1/2 - p
        # instead of 1 - 2p.  The paper spends privacy for signal.
        p = 0.25
        naive = p / (1 - p)
        paper = (p / (1 - p)) ** 2

        def published_one_bias(accept):
            return p / (p + (1 - p) * accept)

        assert published_one_bias(paper) == pytest.approx(1 - p)
        assert published_one_bias(naive) == pytest.approx(0.5)
        # and the privacy side of the dial, measured exactly:
        naive_ratio = worst_case_ratio(32, naive).worst_ratio
        paper_ratio = worst_case_ratio(32, paper).worst_ratio
        assert naive_ratio < paper_ratio
        assert naive_ratio <= ((1 - p) / p) ** 2 + 1e-9
        assert paper_ratio <= ((1 - p) / p) ** 4 + 1e-9

    def test_ratio_decreases_with_larger_accept(self):
        ratios = [worst_case_ratio(16, r).worst_ratio for r in (0.05, 0.1, 0.3, 0.8)]
        assert ratios == sorted(ratios, reverse=True)

    def test_accept_prob_one_is_perfectly_private(self):
        # r = 1 publishes the first key regardless: uniform, ratio 1 — and
        # zero utility, mirroring the p = 1/2 coin discussion.
        distribution = worst_case_ratio(16, 1.0)
        assert distribution.worst_ratio == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            worst_case_ratio(8, 0.0)
        with pytest.raises(ValueError):
            worst_case_ratio(8, 1.5)


class TestFailureAndAverages:
    def test_exact_failure_below_lemma_31_bound(self):
        for p in (0.1, 0.3):
            params = PrivacyParams(p)
            for bits in (2, 4, 6):
                exact = exact_failure_probability(1 << bits, params)
                bound = params.failure_probability(bits)
                assert exact <= bound + 1e-15

    def test_average_publish_is_profile_independent(self):
        # Averaged over the random function, publish probabilities at a
        # fixed evaluation depend only on (L, w) — and weighting both w
        # values by the algorithm's Lemma 3.2 law gives total mass
        # 1 - failure.
        params = PrivacyParams(p=0.3)
        num_keys = 16
        mass = 0.0
        for tagged in (0, 1):
            avg = average_publish_probability(num_keys, tagged, params)
            weight = params.p if tagged == 1 else 1 - params.p
            mass += num_keys * weight * avg
        assert mass == pytest.approx(
            1.0 - exact_failure_probability(num_keys, params), abs=1e-9
        )

    def test_failure_validation(self):
        with pytest.raises(ValueError):
            exact_failure_probability(0, PrivacyParams(p=0.3))
