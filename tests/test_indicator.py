"""Unit tests for the Figure 1 indicator-vector mechanism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import IndicatorVectorMechanism


class TestValidation:
    def test_parameters(self):
        with pytest.raises(ValueError):
            IndicatorVectorMechanism(0.5, 8)
        with pytest.raises(ValueError):
            IndicatorVectorMechanism(0.2, 1)

    def test_publish_shape_and_domain(self, rng):
        mechanism = IndicatorVectorMechanism(0.2, 8, rng=rng)
        with pytest.raises(ValueError):
            mechanism.publish(np.array([[1, 2]]))
        with pytest.raises(ValueError):
            mechanism.publish(np.array([8]))

    def test_estimate_validation(self, rng):
        mechanism = IndicatorVectorMechanism(0.2, 8, rng=rng)
        published = mechanism.publish(np.array([0, 1]))
        with pytest.raises(ValueError):
            mechanism.estimate_fraction(published, 8)
        with pytest.raises(ValueError):
            mechanism.estimate_fraction(published[:, :4], 0)


class TestFigureOneMechanism:
    def test_published_vector_is_perturbed_indicator(self, rng):
        # Figure 1's example: value '100' (=4) over a 3-bit domain.
        mechanism = IndicatorVectorMechanism(0.2, 8, rng=rng)
        published = mechanism.publish(np.full(20000, 4))
        column_means = published.mean(axis=0)
        for value in range(8):
            expected = 0.8 if value == 4 else 0.2
            assert column_means[value] == pytest.approx(expected, abs=0.02)

    def test_density_of_published_vector(self, rng):
        # Mostly-p density: the inefficiency the sketch removes.
        mechanism = IndicatorVectorMechanism(0.2, 64, rng=rng)
        published = mechanism.publish(rng.integers(0, 64, size=2000))
        assert published.mean() == pytest.approx(0.2 + 0.6 / 64, abs=0.01)

    def test_histogram_recovery(self, rng):
        mechanism = IndicatorVectorMechanism(0.25, 8, rng=rng)
        weights = np.array([0.4, 0.2, 0.1, 0.1, 0.05, 0.05, 0.05, 0.05])
        values = rng.choice(8, size=40000, p=weights)
        published = mechanism.publish(values)
        histogram = mechanism.estimate_histogram(published)
        truth = np.bincount(values, minlength=8) / values.size
        assert np.abs(histogram - truth).max() < 0.02

    def test_unclamped_estimates_unbiased(self, rng):
        mechanism = IndicatorVectorMechanism(0.25, 4, rng=rng)
        values = np.zeros(50000, dtype=int)
        published = mechanism.publish(values)
        assert mechanism.estimate_fraction(published, 0, clamp=False) == pytest.approx(
            1.0, abs=0.02
        )
        assert mechanism.estimate_fraction(published, 3, clamp=False) == pytest.approx(
            0.0, abs=0.02
        )

    def test_privacy_ratio_is_squared_not_fourth(self):
        # The explicit mechanism pays ((1-p)/p)^2; the sketch simulation
        # pays ((1-p)/p)^4 — compression costs one square.
        mechanism = IndicatorVectorMechanism(0.25, 8)
        assert mechanism.privacy_ratio_bound() == pytest.approx(9.0)

    def test_size_is_exponential_in_k(self):
        assert IndicatorVectorMechanism(0.25, 1 << 10).published_bits_per_user == 1024

    def test_exact_likelihood_ratio_within_bound(self, rng):
        # Monte-Carlo check of the two-coordinate argument: the realised
        # per-observation likelihood ratio between two candidate values
        # never exceeds ((1-p)/p)^2.
        p = 0.3
        mechanism = IndicatorVectorMechanism(p, 4, rng=rng)
        bound = mechanism.privacy_ratio_bound()
        published = mechanism.publish(rng.integers(0, 4, size=200))

        def likelihood(vector, value):
            result = 1.0
            for position, bit in enumerate(vector):
                indicator = 1 if position == value else 0
                result *= (1 - p) if bit == indicator else p
            return result

        for vector in published:
            ratio = likelihood(vector, 0) / likelihood(vector, 1)
            assert 1.0 / bound - 1e-9 <= ratio <= bound + 1e-9
