"""Unit tests for Appendix E (a + b < 2^r via virtual XOR bits)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queries import (
    addition_event_literals,
    addition_interval_fraction,
    xor_bias,
    xor_virtual_bits,
)


def int_matrix(values, k):
    """MSB-first bit matrix of an integer vector."""
    values = np.asarray(values)
    return np.array([[(v >> (k - 1 - i)) & 1 for i in range(k)] for v in values])


class TestXorBasics:
    def test_xor_bias_formula(self):
        assert xor_bias(0.2) == pytest.approx(0.32)
        assert xor_bias(0.0) == 0.0
        assert xor_bias(0.5) == pytest.approx(0.5)

    def test_xor_bias_validation(self):
        with pytest.raises(ValueError):
            xor_bias(1.5)

    def test_xor_virtual_bits(self):
        a = np.array([[1, 0], [1, 1]])
        b = np.array([[0, 0], [1, 0]])
        assert xor_virtual_bits(a, b).tolist() == [[1, 0], [0, 1]]

    def test_xor_shape_mismatch(self):
        with pytest.raises(ValueError):
            xor_virtual_bits(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_xor_noise_rate_is_2p1p(self, rng):
        # Appendix E: the XOR of two p-perturbed bits is a 2p(1-p)-perturbed
        # version of the true XOR.
        p = 0.2
        truth_a = (rng.random((50000, 1)) < 0.5).astype(int)
        truth_b = (rng.random((50000, 1)) < 0.5).astype(int)
        noisy_a = truth_a ^ (rng.random(truth_a.shape) < p)
        noisy_b = truth_b ^ (rng.random(truth_b.shape) < p)
        observed = xor_virtual_bits(noisy_a, noisy_b)
        true_xor = truth_a ^ truth_b
        flip_rate = float((observed != true_xor).mean())
        assert flip_rate == pytest.approx(xor_bias(p), abs=0.01)


class TestEventDecomposition:
    def test_events_are_exhaustive_and_disjoint(self):
        # Brute force: for every (a, b) pair of 4-bit ints and every r,
        # exactly one event fires iff a + b < 2^r.
        k = 4
        for r in range(1, k + 1):
            events = addition_event_literals(k, r)
            for a in range(1 << k):
                for b in range(1 << k):
                    a_bits = [(a >> e) & 1 for e in range(k)]  # little-endian
                    b_bits = [(b >> e) & 1 for e in range(k)]
                    fired = 0
                    for zeros_a, zeros_b, xors in events:
                        ok = all(a_bits[e] == 0 for e in zeros_a)
                        ok = ok and all(b_bits[e] == 0 for e in zeros_b)
                        ok = ok and all(a_bits[e] ^ b_bits[e] == 1 for e in xors)
                        fired += ok
                    expected = 1 if a + b < (1 << r) else 0
                    assert fired == expected, (a, b, r)

    def test_event_count_is_r_plus_one(self):
        for k, r in [(4, 2), (6, 6), (8, 1)]:
            assert len(addition_event_literals(k, r)) == r + 1

    def test_r_out_of_range(self):
        with pytest.raises(ValueError):
            addition_event_literals(4, 0)
        with pytest.raises(ValueError):
            addition_event_literals(4, 5)


class TestAdditionIntervalEstimation:
    def test_noiseless_recovery_is_exact(self, rng):
        k = 4
        a = rng.integers(0, 16, size=4000)
        b = rng.integers(0, 16, size=4000)
        bits_a = int_matrix(a, k)
        bits_b = int_matrix(b, k)
        for r in (1, 2, 3, 4):
            estimate = addition_interval_fraction(bits_a, bits_b, p=0.0, r=r)
            truth = float((a + b < (1 << r)).mean())
            assert estimate == pytest.approx(truth, abs=1e-9)

    def test_noisy_recovery(self, rng):
        k, p = 4, 0.15
        num_users = 60000
        a = rng.integers(0, 6, size=num_users)  # small values -> mass below 2^3
        b = rng.integers(0, 6, size=num_users)
        bits_a = int_matrix(a, k) ^ (rng.random((num_users, k)) < p)
        bits_b = int_matrix(b, k) ^ (rng.random((num_users, k)) < p)
        estimate = addition_interval_fraction(bits_a, bits_b, p=p, r=3)
        truth = float((a + b < 8).mean())
        assert estimate == pytest.approx(truth, abs=0.05)

    def test_clamp_keeps_unit_interval(self, rng):
        k, p = 4, 0.4
        bits = (rng.random((200, k)) < 0.5).astype(int)
        estimate = addition_interval_fraction(bits, bits, p=p, r=2, clamp=True)
        assert 0.0 <= estimate <= 1.0

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            addition_interval_fraction(np.zeros((2, 3)), np.zeros((2, 4)), 0.1, 2)
        with pytest.raises(ValueError):
            addition_interval_fraction(
                np.zeros((0, 3)), np.zeros((0, 3)), 0.1, 2
            )
