"""Unit tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    bernoulli_panel,
    correlated_survey,
    salary_table,
    sparse_transactions,
    two_candidate_population,
    zipf_categorical,
)


class TestBernoulliPanel:
    def test_shape_and_density(self, rng):
        db = bernoulli_panel(2000, 10, density=0.3, rng=rng)
        assert len(db) == 2000
        assert db.schema.total_bits == 10
        assert db.matrix().mean() == pytest.approx(0.3, abs=0.03)

    def test_density_bounds(self, rng):
        with pytest.raises(ValueError):
            bernoulli_panel(10, 5, density=1.5, rng=rng)

    def test_user_ids_unique(self, rng):
        db = bernoulli_panel(100, 3, rng=rng)
        assert len(set(db.user_ids)) == 100


class TestCorrelatedSurvey:
    def test_adjacent_columns_correlate(self, rng):
        db = correlated_survey(5000, 4, base_rate=0.5, copy_prob=0.9, rng=rng)
        matrix = db.matrix()
        agreement = (matrix[:, 0] == matrix[:, 1]).mean()
        assert agreement > 0.85  # copy_prob 0.9 forces high agreement

    def test_validates_probabilities(self, rng):
        with pytest.raises(ValueError):
            correlated_survey(10, 3, base_rate=-0.1, rng=rng)
        with pytest.raises(ValueError):
            correlated_survey(10, 3, copy_prob=1.2, rng=rng)


class TestSparseTransactions:
    def test_row_sizes_exact(self, rng):
        db = sparse_transactions(500, 50, items_per_user=3, rng=rng)
        assert (db.matrix().sum(axis=1) == 3).all()

    def test_popular_items_more_frequent(self, rng):
        db = sparse_transactions(4000, 30, items_per_user=3, rng=rng)
        frequency = db.matrix().mean(axis=0)
        assert frequency[0] > frequency[-1]

    def test_validates_items_per_user(self, rng):
        with pytest.raises(ValueError):
            sparse_transactions(10, 5, items_per_user=6, rng=rng)


class TestSalaryTable:
    def test_values_fit_bit_width(self, rng):
        db = salary_table(1000, bits=6, rng=rng)
        for name in ("salary", "age"):
            values = db.attribute_values(name)
            assert values.min() >= 0
            assert values.max() <= 63

    def test_distribution_is_skewed(self, rng):
        db = salary_table(5000, bits=8, rng=rng)
        values = db.attribute_values("salary")
        assert np.median(values) < values.mean()  # right skew

    def test_custom_attributes(self, rng):
        db = salary_table(50, bits=4, attributes=("x", "y", "z"), rng=rng)
        assert set(db.schema.names) == {"x", "y", "z"}


class TestZipfCategorical:
    def test_skew(self, rng):
        db = zipf_categorical(5000, cardinality=8, rng=rng)
        values = db.attribute_values("category")
        counts = np.bincount(values, minlength=8)
        assert counts[0] == counts.max()

    def test_cardinality_validated(self, rng):
        with pytest.raises(ValueError):
            zipf_categorical(10, cardinality=1, rng=rng)


class TestTwoCandidatePopulation:
    def test_profiles_match_truth(self, rng):
        a = [1, 1, 0, 0]
        b = [0, 0, 1, 1]
        db, truth = two_candidate_population(200, a, b, prob_a=0.5, rng=rng)
        for profile, holds_a in zip(db, truth):
            expected = a if holds_a else b
            assert profile.bits.tolist() == expected

    def test_prob_a_respected(self, rng):
        _, truth = two_candidate_population(5000, [1, 0], [0, 1], prob_a=0.7, rng=rng)
        assert truth.mean() == pytest.approx(0.7, abs=0.03)

    def test_equal_candidates_rejected(self, rng):
        with pytest.raises(ValueError):
            two_candidate_population(10, [1, 0], [1, 0], rng=rng)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            two_candidate_population(10, [1, 0], [1, 0, 1], rng=rng)
