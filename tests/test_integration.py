"""Integration tests: the full user -> publish -> query pipeline.

These tests wire every layer together the way a deployment would and check
the paper's quantitative claims at test scale (the benchmarks re-run them
at full scale).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import empirical_coverage, fit_power_decay
from repro.baselines import RandomizedResponse
from repro.core import (
    BiasedPRF,
    PrivacyAccountant,
    PrivacyParams,
    SketchEstimator,
    Sketcher,
)
from repro.data import (
    bernoulli_panel,
    correlated_survey,
    salary_table,
    two_candidate_population,
)
from repro.attacks import attack_retention, attack_sketches, map_success_rate
from repro.baselines import RetentionReplacement
from repro.server import (
    QueryEngine,
    attribute_subsets,
    per_bit_subsets,
    prefix_subsets,
    publish_database,
)

KEY = b"reproduction-global-key-32bytes!"


def build_engine(db, params, seed, subsets):
    prf = BiasedPRF(p=params.p, global_key=KEY)
    sketcher = Sketcher(params, prf, sketch_bits=8, rng=np.random.default_rng(seed))
    store = publish_database(db, sketcher, subsets)
    return QueryEngine(db.schema, store, SketchEstimator(params, prf))


class TestEndToEndSurvey:
    def test_conjunctive_queries_on_correlated_survey(self):
        rng = np.random.default_rng(11)
        params = PrivacyParams(p=0.3)
        db = correlated_survey(4000, 5, base_rate=0.4, copy_prob=0.7, rng=rng)
        subset = (0, 1, 4)
        engine = build_engine(db, params, seed=12, subsets=[subset])
        for value in [(1, 1, 1), (1, 1, 0), (0, 0, 0)]:
            truth = db.exact_conjunction(subset, value)
            estimate = engine.estimate(subset, value)
            assert estimate.covers(truth), (value, estimate.fraction, truth)

    def test_negated_literals_work(self):
        # "HIV+ and NOT AIDS": a mixed-sign conjunction.
        rng = np.random.default_rng(13)
        params = PrivacyParams(p=0.3)
        db = correlated_survey(4000, 3, base_rate=0.3, copy_prob=0.8, rng=rng)
        subset = (0, 1)
        engine = build_engine(db, params, seed=14, subsets=[subset])
        truth = db.exact_conjunction(subset, (1, 0))
        assert engine.fraction(subset, (1, 0)) == pytest.approx(truth, abs=0.06)


class TestLemma41Reproduction:
    def test_error_decays_as_inverse_root_m(self):
        # Fit error ~ M^a over a size sweep; expect a ~ -1/2.
        params = PrivacyParams(p=0.25)
        prf = BiasedPRF(p=params.p, global_key=KEY)
        estimator = SketchEstimator(params, prf, clamp=False)
        sizes = [250, 1000, 4000, 16000]
        errors = []
        rng = np.random.default_rng(15)
        for m in sizes:
            trials = []
            for trial in range(8):
                db = bernoulli_panel(m, 3, density=0.5, rng=rng)
                sketcher = Sketcher(params, prf, sketch_bits=8, rng=rng)
                store = publish_database(db, sketcher, [(0, 1, 2)])
                estimate = estimator.estimate(
                    store.sketches_for((0, 1, 2)), (1, 0, 1)
                ).fraction
                truth = db.exact_conjunction((0, 1, 2), (1, 0, 1))
                trials.append(abs(estimate - truth))
            errors.append(float(np.mean(trials)))
        fit = fit_power_decay(sizes, errors)
        assert -0.75 < fit.exponent < -0.3

    def test_confidence_intervals_achieve_nominal_coverage(self):
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(p=params.p, global_key=KEY)
        estimator = SketchEstimator(params, prf, clamp=False)
        rng = np.random.default_rng(16)
        truths, lows, highs = [], [], []
        for trial in range(30):
            db = bernoulli_panel(600, 2, density=0.45, rng=rng)
            sketcher = Sketcher(params, prf, sketch_bits=8, rng=rng)
            store = publish_database(db, sketcher, [(0, 1)])
            estimate = estimator.estimate(store.sketches_for((0, 1)), (1, 1), delta=0.05)
            truths.append(db.exact_conjunction((0, 1), (1, 1)))
            lows.append(estimate.interval[0])
            highs.append(estimate.interval[1])
        # Hoeffding CIs are conservative: coverage should beat 95% nominal.
        assert empirical_coverage(truths, lows, highs) >= 0.9


class TestHeadlineWidthIndependence:
    def test_sketch_flat_rr_blows_up(self):
        # E7 at test scale: sketch error stays flat in query width while
        # the randomized-response reconstruction degrades.
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(p=params.p, global_key=KEY)
        estimator = SketchEstimator(params, prf, clamp=False)
        rng = np.random.default_rng(17)
        m = 3000
        sketch_errors, rr_errors = {}, {}
        for width in (2, 8):
            db = bernoulli_panel(m, width, density=0.8, rng=rng)
            subset = tuple(range(width))
            value = tuple([1] * width)
            truth = db.exact_conjunction(subset, value)
            # sketches
            sketcher = Sketcher(params, prf, sketch_bits=8, rng=rng)
            store = publish_database(db, sketcher, [subset])
            estimate = estimator.estimate(store.sketches_for(subset), value).fraction
            sketch_errors[width] = abs(estimate - truth)
            # randomized response with the same per-bit p
            mechanism = RandomizedResponse(params.p, rng=rng)
            perturbed = mechanism.perturb(db.matrix())
            rr_estimate = mechanism.estimate_conjunction(
                perturbed[:, list(subset)], value, clamp=False
            )
            rr_errors[width] = abs(rr_estimate - truth)
        bound = estimator.half_width(m, delta=0.001)
        assert sketch_errors[8] <= bound
        # RR at width 8 amplifies noise by cond(V) ~ 200x; its error
        # should visibly exceed the sketch error.
        assert rr_errors[8] > sketch_errors[8]


class TestAttackComparison:
    def test_sketches_resist_retention_falls(self):
        # E17 at test scale, on the paper's exact example vectors.
        rng = np.random.default_rng(18)
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(p=params.p, global_key=KEY)
        # Intro example: values <1,1,2,2,3,3> vs <4,4,5,5,6,6>, here in
        # 3-bit binary per component -> 18-bit profiles.
        def encode(vector):
            bits = []
            for v in vector:
                bits.extend([(v >> 2) & 1, (v >> 1) & 1, v & 1])
            return bits

        candidate_a = encode([1, 1, 2, 2, 3, 3])
        candidate_b = encode([4, 4, 5, 5, 6, 6])
        db, truth = two_candidate_population(
            120, candidate_a, candidate_b, rng=rng
        )
        # Sketch side: each user publishes ONE sketch of the whole profile.
        sketcher = Sketcher(params, prf, sketch_bits=6, rng=rng)
        subset = tuple(range(18))
        sketch_results = []
        for profile in db:
            sketch = sketcher.sketch(profile.user_id, profile.bits, subset)
            sketch_results.append(
                attack_sketches(prf, params, [sketch], candidate_a, candidate_b)
            )
        sketch_success = map_success_rate(sketch_results, truth.astype(bool))
        # Retention side: publish the 6 values with rho = 0.5, domain 0..7.
        mechanism = RetentionReplacement(0.5, 8, rng=rng)
        retention_results = []
        for holds_a in truth:
            vector = np.array([1, 1, 2, 2, 3, 3] if holds_a else [4, 4, 5, 5, 6, 6])
            observed = mechanism.perturb(vector)
            retention_results.append(
                attack_retention(
                    mechanism, observed, [1, 1, 2, 2, 3, 3], [4, 4, 5, 5, 6, 6]
                )
            )
        retention_success = map_success_rate(retention_results, truth.astype(bool))
        assert retention_success > 0.95  # "virtually reveals ... exact private data"
        assert sketch_success < 0.85     # sketches stay near coin-flipping


class TestBudgetedDeployment:
    def test_accountant_limits_and_queries_still_work(self):
        rng = np.random.default_rng(19)
        epsilon = 20.0  # generous demo budget
        num_subsets = 3
        params = PrivacyParams.from_epsilon(epsilon, num_sketches=num_subsets)
        prf = BiasedPRF(p=params.p, global_key=KEY)
        db = salary_table(4000, bits=4, attributes=("a",), rng=rng)
        accountant = PrivacyAccountant(params, epsilon=epsilon)
        sketcher = Sketcher(params, prf, sketch_bits=8, rng=rng)
        subsets = prefix_subsets(db.schema, "a")[:num_subsets]
        store = publish_database(db, sketcher, subsets, accountant=accountant)
        assert accountant.remaining_sketches(db.user_ids[0]) >= 0
        engine = QueryEngine(db.schema, store, SketchEstimator(params, prf))
        # p close to 1/2 -> noisy but still sane estimates at M = 4000.
        truth = db.exact_conjunction(subsets[0], (0,))
        assert engine.fraction(subsets[0], (0,)) == pytest.approx(truth, abs=0.25)
