"""Unit tests for ground-truth storage and exact queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Profile, ProfileDatabase, Schema


@pytest.fixture
def schema():
    return Schema.build(uint={"a": 4, "b": 4})


@pytest.fixture
def database(schema):
    db = ProfileDatabase(schema)
    for i, (a, b) in enumerate([(3, 1), (7, 2), (3, 9), (15, 0), (3, 3)]):
        db.add_values(f"u{i}", {"a": a, "b": b})
    return db


class TestProfile:
    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            Profile("u", np.array([0, 2]))

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            Profile("u", np.zeros((2, 2)))

    def test_projection(self):
        profile = Profile("u", np.array([1, 0, 1, 1]))
        assert profile.project((0, 3)) == (1, 1)
        assert profile.project((1,)) == (0,)


class TestDatabaseBasics:
    def test_width_mismatch_rejected(self, schema):
        db = ProfileDatabase(schema)
        with pytest.raises(ValueError):
            db.add(Profile("u", np.array([1, 0])))

    def test_duplicate_id_rejected(self, database):
        with pytest.raises(ValueError):
            database.add_values("u0", {"a": 0, "b": 0})

    def test_lookup(self, database):
        assert database["u1"].user_id == "u1"
        with pytest.raises(KeyError):
            database["nope"]

    def test_matrix_shape(self, database, schema):
        assert database.matrix().shape == (5, schema.total_bits)

    def test_empty_matrix(self, schema):
        assert ProfileDatabase(schema).matrix().shape == (0, 8)

    def test_attribute_values(self, database):
        assert database.attribute_values("a").tolist() == [3, 7, 3, 15, 3]


class TestExactQueries:
    def test_conjunction(self, database, schema):
        # a == 3 in binary over 4 bits is 0011.
        fraction = database.exact_conjunction(schema.bits("a"), (0, 0, 1, 1))
        assert fraction == pytest.approx(3 / 5)

    def test_conjunction_validates(self, database, schema):
        with pytest.raises(ValueError):
            database.exact_conjunction(schema.bits("a"), (1,))
        with pytest.raises(ValueError):
            ProfileDatabase(schema).exact_conjunction((0,), (1,))

    def test_count(self, database, schema):
        assert database.exact_count(schema.bits("a"), (0, 0, 1, 1)) == 3

    def test_sum_and_mean(self, database):
        assert database.exact_sum("a") == 3 + 7 + 3 + 15 + 3
        assert database.exact_mean("b") == pytest.approx((1 + 2 + 9 + 0 + 3) / 5)

    def test_inner_product(self, database):
        expected = 3 * 1 + 7 * 2 + 3 * 9 + 15 * 0 + 3 * 3
        assert database.exact_inner_product("a", "b") == expected

    def test_interval(self, database):
        assert database.exact_interval("a", 3) == pytest.approx(3 / 5)
        assert database.exact_interval("a", 14) == pytest.approx(4 / 5)

    def test_sum_below(self, database):
        # b-sum over users with a <= 3: users 0, 2, 4 -> 1 + 9 + 3.
        assert database.exact_sum_below("a", "b", 3) == pytest.approx(13.0)

    def test_addition_interval(self, database):
        # a + b: 4, 9, 12, 15, 6 -> below 8: users 0 and 4.
        assert database.exact_addition_interval("a", "b", 3) == pytest.approx(2 / 5)
