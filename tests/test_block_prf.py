"""The batched PRF engine: bitwise identity with the per-call path.

The block evaluator is an optimisation, not a semantic change — every
test here pins exact equality (bits and floats, not approx) between the
batched paths and the scalar Algorithm 2 machinery they replace.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PrivacyParams,
    Sketch,
    Sketcher,
    SketchEstimator,
    TrueRandomOracle,
)
from repro.core.prf import encode_input
from repro.data import ProfileDatabase, Schema
from repro.queries import evaluate_plan, group_terms_by_subset, range_plan, sum_plan
from repro.server import (
    QueryEngine,
    SketchEvaluationCache,
    SketchStore,
    publish_database,
)

from .conftest import make_prf

SUBSET = (0, 2, 5)


def all_values(width: int):
    return [
        tuple((v >> (width - 1 - i)) & 1 for i in range(width))
        for v in range(1 << width)
    ]


def reference_block(prf, user_ids, subset, values, keys) -> np.ndarray:
    """The seed per-call path, looped — ground truth for identity checks."""
    return np.asarray(
        [[prf.evaluate(uid, subset, v, key) for v in values] for uid, key in zip(user_ids, keys)],
        dtype=np.int8,
    )


class TestEvaluateBlock:
    @settings(max_examples=25, deadline=None)
    @given(
        num_users=st.integers(min_value=1, max_value=12),
        width=st.integers(min_value=1, max_value=3),
        p=st.floats(min_value=0.05, max_value=0.45),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_matches_pointwise_for_prf(self, num_users, width, p, seed):
        prf = make_prf(p)
        rng = np.random.default_rng(seed)
        ids = [f"user-{rng.integers(1 << 20)}" for _ in range(num_users)]
        keys = [int(k) for k in rng.integers(0, 1 << 10, size=num_users)]
        subset = tuple(range(0, 2 * width, 2))
        values = all_values(width)
        block = prf.evaluate_block(ids, subset, values, keys)
        assert block.dtype == np.int8
        assert block.shape == (num_users, len(values))
        np.testing.assert_array_equal(block, reference_block(prf, ids, subset, values, keys))

    @settings(max_examples=15, deadline=None)
    @given(
        num_users=st.integers(min_value=1, max_value=8),
        block_first=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_oracle_memo_consistent_in_both_orders(self, num_users, block_first, seed):
        oracle = TrueRandomOracle(p=0.3, rng=np.random.default_rng(seed))
        ids = [f"u{i}" for i in range(num_users)]
        keys = list(range(num_users))
        values = all_values(2)
        subset = (1, 4)
        if block_first:
            block = oracle.evaluate_block(ids, subset, values, keys)
            reference = reference_block(oracle, ids, subset, values, keys)
        else:
            reference = reference_block(oracle, ids, subset, values, keys)
            block = oracle.evaluate_block(ids, subset, values, keys)
        np.testing.assert_array_equal(block, reference)
        # both passes hit the same memo table: one point per (user, value)
        assert oracle.num_evaluations == num_users * len(values)

    def test_evaluate_many_is_single_column(self):
        prf = make_prf(0.3)
        ids = [f"u{i}" for i in range(50)]
        keys = list(range(50))
        vector = prf.evaluate_many(ids, SUBSET, (1, 0, 1), keys)
        expected = reference_block(prf, ids, SUBSET, [(1, 0, 1)], keys)[:, 0]
        np.testing.assert_array_equal(vector, expected)

    def test_payload_splice_matches_encode_input(self):
        # the block path must hash the exact canonical payloads
        from repro.core.prf import _payload_prefix, _payload_suffix, _payload_value

        spliced = _payload_prefix("alice", SUBSET) + _payload_value((0, 1, 1)) + _payload_suffix(9)
        assert spliced == encode_input("alice", SUBSET, (0, 1, 1), 9)

    def test_validates_alignment_and_width(self):
        prf = make_prf(0.3)
        with pytest.raises(ValueError, match="align"):
            prf.evaluate_block(["a", "b"], SUBSET, [(1, 1, 1)], [1])
        with pytest.raises(ValueError, match="equal length"):
            prf.evaluate_block(["a"], SUBSET, [(1, 1)], [1])

    def test_empty_block_shapes(self):
        prf = make_prf(0.3)
        assert prf.evaluate_block([], SUBSET, [(1, 1, 1)], []).shape == (0, 1)
        assert prf.evaluate_block(["a"], SUBSET, [], [1]).shape == (1, 0)


@pytest.fixture
def sketches(params, prf, rng):
    sketcher = Sketcher(params, prf, sketch_bits=8, rng=rng)
    out = []
    for i in range(60):
        bits = [int(b) for b in rng.integers(0, 2, size=6)]
        out.append(sketcher.sketch(f"u{i}", bits, SUBSET))
    return out


class TestEstimateMany:
    def test_exactly_matches_per_value_estimates(self, estimator, sketches):
        values = all_values(3)
        batched = estimator.estimate_many(sketches, values)
        for value, many in zip(values, batched):
            single = estimator.estimate(sketches, value)
            assert many == single  # dataclass equality: identical floats

    def test_oracle_backed_estimator_no_extra_points(self, params, sketches):
        oracle = TrueRandomOracle(p=params.p, rng=np.random.default_rng(1))
        estimator = SketchEstimator(params, oracle)
        values = all_values(3)
        batched = estimator.estimate_many(sketches, values)
        assert oracle.num_evaluations == len(sketches) * len(values)
        for value, many in zip(values, batched):
            assert many == estimator.estimate(sketches, value)
        # the re-estimates above were all memo hits
        assert oracle.num_evaluations == len(sketches) * len(values)

    def test_rejects_mixed_subsets_and_bad_width(self, estimator, sketches):
        with pytest.raises(ValueError, match="does not match subset size"):
            estimator.estimate_many(sketches, [(1, 1)])
        mixed = sketches[:2] + [Sketch("x", (0, 1, 2), key=0, num_bits=8, iterations=1)]
        with pytest.raises(ValueError, match="mixed subsets"):
            estimator.estimate_many(mixed, [(1, 1, 1)])


@pytest.fixture
def analytics(params, rng):
    schema = Schema.build(boolean=["f"], uint={"a": 4})
    database = ProfileDatabase(schema)
    for i in range(150):
        database.add_values(f"u{i}", {"f": int(rng.integers(2)), "a": int(rng.integers(16))})
    oracle = TrueRandomOracle(p=params.p, rng=np.random.default_rng(77))
    sketcher = Sketcher(params, oracle, sketch_bits=8, rng=rng)
    estimator = SketchEstimator(params, oracle)
    subsets = [(pos,) for pos in range(schema.total_bits)]
    subsets.append(schema.bits("a"))
    store = publish_database(database, sketcher, subsets)
    return schema, database, store, estimator, oracle, sketcher


class TestEngineBlockPaths:
    def test_estimate_matches_uncached_estimator(self, analytics):
        schema, _, store, estimator, _, _ = analytics
        engine = QueryEngine(schema, store, estimator)
        subset = schema.bits("a")
        for value in ((0, 0, 1, 1), (1, 0, 1, 0)):
            direct = estimator.estimate(store.sketches_for(subset), value)
            assert engine.estimate(subset, value) == direct

    def test_repeat_queries_never_rehash(self, analytics):
        schema, _, store, estimator, oracle, _ = analytics
        engine = QueryEngine(schema, store, estimator)
        plan = sum_plan(schema, "a")
        first = engine.evaluate(plan)
        points = oracle.num_evaluations
        for _ in range(5):
            assert engine.evaluate(plan) == first
        assert oracle.num_evaluations == points
        entries, cached = engine.cache.info()
        assert entries == plan.num_queries
        assert cached == entries * store.num_users((schema.bit("a", 1),))

    def test_grouped_plan_equals_per_term_path(self, analytics):
        schema, _, store, estimator, _, _ = analytics
        engine = QueryEngine(schema, store, estimator)
        plan = range_plan(schema, "a", 3, 12) + sum_plan(schema, "a")
        grouped = engine.evaluate(plan)
        per_term = evaluate_plan(plan, engine.count)
        assert grouped == per_term  # same counts, same summation order

    def test_group_terms_dedupes_within_subset(self, analytics):
        schema = analytics[0]
        plan = range_plan(schema, "a", 3, 12)
        groups = group_terms_by_subset(plan)
        for subset, values in groups.items():
            assert len(values) == len(set(values))
        assert sum(len(v) for v in groups.values()) <= plan.num_queries

    def test_marginal_matches_estimate_many(self, analytics):
        schema, database, store, estimator, _, _ = analytics
        engine = QueryEngine(schema, store, estimator)
        subset = schema.bits("a")
        marginal = engine.marginal(subset)
        assert marginal.shape == (16,)
        for value, fraction in zip(all_values(4), marginal):
            assert fraction == engine.estimate(subset, value).fraction
        truth = np.asarray(
            [database.exact_count(subset, v) / len(database) for v in all_values(4)]
        )
        assert np.abs(marginal - truth).max() < 0.25  # sanity, not accuracy

    def test_cache_extends_when_store_grows(self, analytics):
        schema, _, store, estimator, oracle, sketcher = analytics
        engine = QueryEngine(schema, store, estimator)
        subset = schema.bits("a")
        value = (0, 1, 1, 0)
        engine.estimate(subset, value)
        before = store.num_users(subset)
        for i in range(25):
            bits = [0] * schema.total_bits
            store.publish(sketcher.sketch(f"late{i}", bits, subset))
        grown = engine.estimate(subset, value)
        assert grown.num_users == before + 25
        # identical to a cold engine over the same (memoised) oracle
        cold = QueryEngine(schema, store, SketchEstimator(engine.estimator.params, oracle))
        assert grown == cold.estimate(subset, value)

    def test_cache_validates_value_width(self, analytics):
        schema, _, store, estimator, _, _ = analytics
        cache = SketchEvaluationCache(store, estimator)
        with pytest.raises(ValueError, match="does not match subset size"):
            cache.bits(schema.bits("a"), [(1, 0)])
