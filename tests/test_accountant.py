"""Unit tests for the multi-sketch privacy ledger (Corollary 3.4)."""

from __future__ import annotations

import pytest

from repro.core import BudgetExceeded, PrivacyAccountant, PrivacyParams


class TestBudgetArithmetic:
    def test_per_sketch_ratio_is_lemma_33(self):
        params = PrivacyParams(p=0.25)
        accountant = PrivacyAccountant(params, epsilon=100.0)
        assert accountant.per_sketch_ratio == pytest.approx(3.0**4)

    def test_max_sketches_matches_closed_form(self):
        params = PrivacyParams.from_epsilon(0.5, num_sketches=4)
        accountant = PrivacyAccountant(params, epsilon=0.5)
        # The params were sized for exactly 4 sketches at eps = 0.5.
        assert accountant.max_sketches == 4

    def test_max_sketches_zero_when_p_too_small(self):
        # p = 0.25 costs ratio 81 per sketch; a budget of eps = 0.5 cannot
        # afford even one.
        accountant = PrivacyAccountant(PrivacyParams(p=0.25), epsilon=0.5)
        assert accountant.max_sketches == 0
        assert not accountant.can_release("u")

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(PrivacyParams(p=0.3), epsilon=0.0)


class TestLedger:
    def make(self, sketches=8, epsilon=0.4):
        params = PrivacyParams.from_epsilon(epsilon, num_sketches=sketches)
        return PrivacyAccountant(params, epsilon=epsilon)

    def test_fresh_user_has_empty_record(self):
        accountant = self.make()
        record = accountant.spent("nobody")
        assert record.num_sketches == 0
        assert record.ratio == 1.0

    def test_charge_accumulates(self):
        accountant = self.make(sketches=8)
        accountant.charge("u", 3)
        accountant.charge("u", 2)
        record = accountant.spent("u")
        assert record.num_sketches == 5
        assert record.ratio == pytest.approx(
            accountant.params.privacy_ratio_bound(5)
        )

    def test_remaining_decreases(self):
        accountant = self.make(sketches=8)
        start = accountant.remaining_sketches("u")
        accountant.charge("u", 3)
        assert accountant.remaining_sketches("u") == start - 3

    def test_over_budget_raises_and_preserves_ledger(self):
        accountant = self.make(sketches=4)
        limit = accountant.max_sketches
        accountant.charge("u", limit)
        with pytest.raises(BudgetExceeded):
            accountant.charge("u", 1)
        assert accountant.spent("u").num_sketches == limit

    def test_budgets_are_per_user(self):
        accountant = self.make(sketches=4)
        accountant.charge("alice", accountant.max_sketches)
        # Bob's budget is untouched.
        assert accountant.can_release("bob", accountant.max_sketches)

    def test_charge_validates_count(self):
        accountant = self.make()
        with pytest.raises(ValueError):
            accountant.charge("u", 0)
        with pytest.raises(ValueError):
            accountant.can_release("u", -1)

    def test_cumulative_ratio_never_exceeds_budget(self):
        accountant = self.make(sketches=6, epsilon=0.3)
        for _ in range(accountant.max_sketches):
            accountant.charge("u", 1)
        assert accountant.spent("u").ratio <= 1.3 + 1e-9
