"""Ablation and adversarial-robustness tests.

DESIGN.md §5 calls out the design choices worth stress-testing:

* sampling with vs without replacement in Algorithm 1;
* privacy under an *adversarially chosen* public function (Lemma 3.3's
  "even an adversarial choice of the values of H would not compromise a
  user's privacy").
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import attack_sketches
from repro.core import (
    BiasedPRF,
    PrivacyParams,
    SketchEstimator,
    SketchFailure,
    Sketcher,
    TrueRandomOracle,
)

KEY = b"reproduction-global-key-32bytes!"


class TestWithReplacementAblation:
    def test_lemma_32_biases_preserved(self, rng):
        # The published key keeps the exact two-sided bias: the
        # per-consideration stop/accept law is identical.
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(0.3, global_key=KEY)
        sketcher = Sketcher(
            params, prf, sketch_bits=8, rng=rng, with_replacement=True
        )
        hits_true, hits_other = [], []
        for i in range(3000):
            sketch = sketcher.sketch(f"u{i}", [1, 0], (0, 1))
            hits_true.append(sketch.evaluate(prf, (1, 0)))
            hits_other.append(sketch.evaluate(prf, (0, 1)))
        assert np.mean(hits_true) == pytest.approx(0.7, abs=0.03)
        assert np.mean(hits_other) == pytest.approx(0.3, abs=0.03)

    def test_estimates_work_with_replacement_sketches(self, rng, estimator):
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(0.3, global_key=KEY)
        sketcher = Sketcher(
            params, prf, sketch_bits=8, rng=rng, with_replacement=True
        )
        profiles = [[1]] * 1200 + [[0]] * 1800
        sketches = [
            sketcher.sketch(f"u{i}", profile, (0,))
            for i, profile in enumerate(profiles)
        ]
        estimate = estimator.estimate(sketches, (1,))
        assert estimate.fraction == pytest.approx(0.4, abs=0.06)

    def test_iterations_can_exceed_key_space(self, rng):
        # With replacement the draw count is not bounded by L; a tiny key
        # space makes revisits overwhelmingly likely.
        params = PrivacyParams(p=0.1)  # low stop probability
        prf = BiasedPRF(0.1, global_key=KEY)
        sketcher = Sketcher(
            params, prf, sketch_bits=1, rng=rng, with_replacement=True
        )
        iterations = [
            sketcher.sketch(f"u{i}", [1], (0,)).iterations for i in range(400)
        ]
        assert max(iterations) > 2  # exceeded the 2-key space

    def test_cap_failure_is_explicit(self, rng):
        class ZeroOracle(TrueRandomOracle):
            def _uniform64(self, payload: bytes) -> int:
                return (1 << 64) - 1  # every evaluation is 0

        params = PrivacyParams(p=0.3)
        sketcher = Sketcher(
            params, ZeroOracle(0.3), sketch_bits=4, rng=rng,
            with_replacement=True, max_iterations=3,
        )

        class NoAcceptRng:
            def integers(self, low, high):
                return 0

            def random(self):
                return 1.0

        sketcher._rng = NoAcceptRng()
        with pytest.raises(SketchFailure, match="draw cap"):
            sketcher.sketch("u", [1], (0,))

    def test_max_iterations_validated(self, rng):
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(0.3, global_key=KEY)
        with pytest.raises(ValueError):
            Sketcher(params, prf, rng=rng, max_iterations=0)

    def test_default_cap_sized_for_negligible_failure(self, rng):
        # The cap must hold even conditioned on the worst evaluation
        # pattern (all keys evaluate to 0), where only the accept coin
        # (probability r per draw) can stop the loop.
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(0.3, global_key=KEY)
        sketcher = Sketcher(params, prf, rng=rng, with_replacement=True)
        failure = (1 - params.rejection_probability) ** sketcher.max_iterations
        assert failure <= 1e-12


class TestAdversarialOracle:
    """Lemma 3.3 holds "even [for] an adversarial choice of the values of
    H" — stress it with oracles rigged against one candidate profile."""

    class RiggedOracle(TrueRandomOracle):
        """Evaluates to 1 exactly on a chosen payload set."""

        def __init__(self, p, ones):
            super().__init__(p)
            self._ones = ones

        def _uniform64(self, payload: bytes) -> int:
            return 0 if payload in self._ones else (1 << 64) - 1

    def build_rigged(self, params, user_id, subset, value, num_keys):
        """An oracle where ONLY (value, key=0) evaluates to 1 — the
        maximally skewed pattern from the Lemma 3.3 proof (q = 1)."""
        from repro.core.prf import encode_input

        ones = {encode_input(user_id, subset, value, 0)}
        return self.RiggedOracle(params.p, ones)

    def test_posterior_bounded_under_rigged_oracle(self, rng):
        params = PrivacyParams(p=0.25)
        subset = (0, 1)
        candidate_a, candidate_b = (1, 1), (0, 0)
        bound = params.privacy_ratio_bound()
        for holds_a in (True, False):
            oracle = self.build_rigged(params, "victim", subset, candidate_a, 16)
            sketcher = Sketcher(params, oracle, sketch_bits=4, rng=rng)
            profile = list(candidate_a if holds_a else candidate_b)
            published = 0
            for _ in range(40):
                # The paper conditions all results on non-failure; with a
                # rigged all-zeros pattern the failure branch is reachable
                # ((1-r)^16 ~ 15%), so skip failed runs.
                try:
                    sketch = sketcher.sketch("victim", profile, subset)
                except SketchFailure:
                    continue
                published += 1
                result = attack_sketches(
                    oracle, params, [sketch], candidate_a, candidate_b
                )
                ratio = result.likelihood_ratio
                assert 1.0 / bound - 1e-9 <= ratio <= bound + 1e-9
            assert published > 10

    def test_estimator_ruined_but_privacy_intact(self, rng):
        # An adversarial H destroys utility (that is allowed — utility
        # assumes pseudorandomness) but the privacy ratio still holds.
        params = PrivacyParams(p=0.25)
        oracle = self.build_rigged(params, "u0", (0,), (1,), 16)
        sketcher = Sketcher(params, oracle, sketch_bits=4, rng=rng)
        estimator = SketchEstimator(params, oracle, clamp=False)
        sketches = [sketcher.sketch("u0", [0], (0,))]
        # No assertion on accuracy — only that nothing crashes and the
        # privacy check above is the one that matters.
        estimator.estimate(sketches, (1,))
