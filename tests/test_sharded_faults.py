"""Fault injection against the sharded serving tier.

The acceptance bar: killing a shard worker during live traffic must
yield the *structured* ``shard_unavailable`` error envelope at the
analyst — no hang, no traceback across the wire — the session must
survive to answer further requests, and once the shard rejoins the
coordinator must serve exact (byte-identical) answers again.  Plus the
crash-recovery story: the shard map checkpoints atomically, a truncated
checkpoint is refused with ``ValueError``, and a fresh supervisor can
be rebuilt from the checkpoint alone.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.core import BiasedPRF, PrivacyParams, SketchEstimator, Sketcher
from repro.data import bernoulli_panel
from repro.protocol import (
    CountsBlockRequest,
    EstimateManyRequest,
    dumps_response,
    error_from_exception,
    exception_from_error,
)
from repro.server import (
    QueryEngine,
    RemoteQueryEngine,
    RemoteServer,
    ShardMap,
    ShardUnavailableError,
    ShardedService,
    publish_database,
    serve_in_thread,
)

from .conftest import GLOBAL_KEY

SUBSETS = [(0, 1), (0,), (1,), (2,)]
REQUEST = CountsBlockRequest.build((0, 1), [(1, 1), (0, 0)])


def make_store_and_engine(num_users: int = 80, seed: int = 5):
    params = PrivacyParams(p=0.3)
    prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
    database = bernoulli_panel(num_users, 3, rng=np.random.default_rng(seed))
    sketcher = Sketcher(
        params, prf, sketch_bits=8, rng=np.random.default_rng(seed + 1)
    )
    store = publish_database(database, sketcher, SUBSETS, workers=1, seed=seed)
    engine = QueryEngine(database.schema, store, SketchEstimator(params, prf))
    return store, prf, engine


@pytest.fixture()
def service(tmp_path):
    store, prf, engine = make_store_and_engine()
    service = ShardedService.from_store(store, prf, 2, tmp_path).start()
    service.expected = dumps_response(engine.execute(REQUEST))
    try:
        yield service
    finally:
        service.close()


class TestKillAndRejoin:
    def test_killed_shard_yields_structured_error_and_session_survives(
        self, service
    ):
        front = RemoteServer(service.coordinator, {"alice": "sesame"})
        with serve_in_thread(front) as (host, port):
            with RemoteQueryEngine(host, port, "sesame") as client:
                assert dumps_response(client.execute(REQUEST)) == service.expected
                service.kill_shard("shard-1")
                # Structured error envelope, not a hang and not a wire
                # teardown: the mapped exception type crosses intact...
                with pytest.raises(ShardUnavailableError, match="shard-1"):
                    client.execute(REQUEST)
                # ...and the SAME session keeps answering: a second
                # request on the same connection gets the same typed
                # error instead of a dead socket.
                with pytest.raises(ShardUnavailableError, match="shard-1"):
                    client.execute(REQUEST)
                # After the shard rejoins, answers are exact again —
                # on the same analyst session.
                service.restart_shard("shard-1")
                assert dumps_response(client.execute(REQUEST)) == service.expected

    def test_kill_during_live_request_does_not_hang(self, service):
        """Kill the worker while a request is in flight: the caller gets
        a typed error within the timeout, never a stuck thread."""
        front = RemoteServer(service.coordinator, {"alice": "sesame"})
        outcome: dict = {}
        with serve_in_thread(front) as (host, port):
            with RemoteQueryEngine(host, port, "sesame") as client:
                assert dumps_response(client.execute(REQUEST)) == service.expected

                def fire() -> None:
                    try:
                        outcome["result"] = client.execute(REQUEST)
                    except Exception as exc:  # noqa: BLE001 - recorded for assert
                        outcome["error"] = exc

                worker = threading.Thread(target=fire)
                worker.start()
                service.kill_shard("shard-0")
                worker.join(timeout=30.0)
                assert not worker.is_alive(), "request hung after shard kill"
                # In-flight vs kill is a race: the request either
                # completed exactly before the worker died, or surfaced
                # the structured shard error — never anything else.
                if "error" in outcome:
                    assert isinstance(outcome["error"], ShardUnavailableError)
                else:
                    assert dumps_response(outcome["result"]) == service.expected

    def test_local_coordinator_raises_typed_error(self, service):
        service.kill_shard("shard-0")
        with pytest.raises(ShardUnavailableError, match="unreachable after one retry"):
            service.coordinator.execute(REQUEST)
        service.restart_shard("shard-0")
        assert dumps_response(service.coordinator.execute(REQUEST)) == service.expected

    def test_draining_leave_refuses_new_queries(self, service):
        service.coordinator.leave("shard-1")
        assert service.coordinator.live_shards() == ["shard-0"]
        with pytest.raises(ShardUnavailableError, match="left the cluster"):
            service.coordinator.execute(REQUEST)
        service.restart_shard("shard-1")
        assert dumps_response(service.coordinator.execute(REQUEST)) == service.expected


class TestErrorEnvelope:
    def test_shard_unavailable_round_trips_the_envelope(self):
        error = error_from_exception(ShardUnavailableError("shard 'x' is gone"))
        assert error.code == "shard_unavailable"
        assert error.message == "shard 'x' is gone"
        rebuilt = exception_from_error(error)
        assert isinstance(rebuilt, ShardUnavailableError)
        assert str(rebuilt) == "shard 'x' is gone"


class TestCheckpoint:
    def test_truncated_checkpoint_refused(self, service, tmp_path):
        path = os.path.join(service.base_dir, "shard_map.json")
        text = open(path, encoding="utf-8").read()
        truncated = tmp_path / "truncated.json"
        truncated.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.raises(ValueError, match="truncated or corrupt"):
            ShardMap.load(truncated)

    def test_foreign_and_future_checkpoints_refused(self, tmp_path):
        foreign = tmp_path / "foreign.json"
        foreign.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a shard-map checkpoint"):
            ShardMap.load(foreign)
        future = tmp_path / "future.json"
        future.write_text(
            '{"format": "repro-shard-map", "version": 99}', encoding="utf-8"
        )
        with pytest.raises(ValueError, match="unsupported shard-map version"):
            ShardMap.load(future)
        with pytest.raises(ValueError, match="unreadable shard-map checkpoint"):
            ShardMap.load(tmp_path / "absent.json")

    def test_recovery_from_checkpoint_alone(self, tmp_path):
        """Crash recovery: a brand-new supervisor built from the
        checkpointed shard map serves exact answers."""
        store, prf, engine = make_store_and_engine()
        expected = dumps_response(engine.execute(REQUEST))
        first = ShardedService.from_store(store, prf, 2, tmp_path)
        # Simulate a supervisor crash after layout but before serving:
        # nothing running, only shard-*.npz and shard_map.json on disk.
        first.close()
        recovered = ShardedService.from_checkpoint(tmp_path, prf).start()
        try:
            assert recovered.shard_map == first.shard_map
            assert dumps_response(recovered.coordinator.execute(REQUEST)) == expected
            other = EstimateManyRequest.build((2,), [(1,), (0,)])
            assert dumps_response(
                recovered.coordinator.execute(other)
            ) == dumps_response(engine.execute(other))
        finally:
            recovered.close()
