"""Unit tests for value <-> bit-vector codecs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    Schema,
    bits_to_int,
    decode_profile,
    decode_value,
    encode_profile,
    encode_value,
    int_to_bits,
)


class TestIntCodec:
    def test_round_trip_exhaustive_small(self):
        for width in (1, 3, 5):
            for value in range(1 << width):
                assert bits_to_int(int_to_bits(value, width)) == value

    def test_msb_first(self):
        assert int_to_bits(4, 3) == (1, 0, 0)
        assert int_to_bits(1, 3) == (0, 0, 1)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)
        with pytest.raises(ValueError):
            int_to_bits(-1, 3)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            bits_to_int((0, 2, 1))


class TestValueCodec:
    @pytest.fixture
    def schema(self):
        return Schema.build(
            boolean=["flag"], uint={"salary": 6}, categorical={"state": 5}
        )

    def test_encode_decode_round_trip(self, schema):
        for value in (0, 17, 63):
            bits = encode_value(schema, "salary", value)
            assert decode_value(schema, "salary", bits) == value

    def test_categorical_range_enforced(self, schema):
        encode_value(schema, "state", 4)
        with pytest.raises(ValueError):
            encode_value(schema, "state", 5)

    def test_bool_range_enforced(self, schema):
        with pytest.raises(ValueError):
            encode_value(schema, "flag", 2)

    def test_decode_wrong_width_rejected(self, schema):
        with pytest.raises(ValueError):
            decode_value(schema, "salary", (1, 0))

    def test_decode_invalid_categorical_rejected(self, schema):
        # 3-bit categorical with cardinality 5: pattern 111 = 7 is invalid.
        with pytest.raises(ValueError):
            decode_value(schema, "state", (1, 1, 1))


class TestProfileCodec:
    @pytest.fixture
    def schema(self):
        return Schema.build(boolean=["a"], uint={"x": 4})

    def test_round_trip(self, schema):
        values = {"a": 1, "x": 9}
        profile = encode_profile(schema, values)
        assert profile.dtype == np.int8
        assert decode_profile(schema, profile) == values

    def test_layout(self, schema):
        profile = encode_profile(schema, {"a": 1, "x": 0b1010})
        assert profile.tolist() == [1, 1, 0, 1, 0]

    def test_missing_attribute_rejected(self, schema):
        with pytest.raises(ValueError, match="missing"):
            encode_profile(schema, {"a": 1})

    def test_extra_attribute_rejected(self, schema):
        with pytest.raises(ValueError, match="unknown"):
            encode_profile(schema, {"a": 1, "x": 2, "bogus": 3})

    def test_decode_wrong_length_rejected(self, schema):
        with pytest.raises(ValueError):
            decode_profile(schema, [1, 0])
