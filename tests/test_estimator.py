"""Unit tests for Algorithm 2 (conjunctive-query estimation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BiasedPRF, PrivacyParams, SketchEstimator, Sketcher

KEY = b"reproduction-global-key-32bytes!"


def build_sketches(params, prf, profiles, subset, seed=0, bits=8):
    sketcher = Sketcher(params, prf, sketch_bits=bits, rng=np.random.default_rng(seed))
    return [
        sketcher.sketch(f"u{i}", profile, subset)
        for i, profile in enumerate(profiles)
    ]


class TestValidation:
    def test_rejects_bias_mismatch(self):
        with pytest.raises(ValueError):
            SketchEstimator(PrivacyParams(p=0.3), BiasedPRF(0.2, global_key=KEY))

    def test_rejects_empty_collection(self, params, prf, estimator):
        with pytest.raises(ValueError):
            estimator.estimate([], (1,))

    def test_rejects_value_width_mismatch(self, params, prf, estimator):
        sketches = build_sketches(params, prf, [[1, 0]] * 5, (0, 1))
        with pytest.raises(ValueError):
            estimator.estimate(sketches, (1,))

    def test_rejects_mixed_subsets(self, params, prf, estimator):
        a = build_sketches(params, prf, [[1, 0]] * 3, (0,))
        b = build_sketches(params, prf, [[1, 0]] * 3, (1,), seed=1)
        with pytest.raises(ValueError):
            estimator.estimate(a + b, (1,))

    def test_rejects_zero_users_bits(self, estimator):
        with pytest.raises(ValueError):
            estimator.estimate_from_bits(np.array([]))


class TestEstimation:
    def test_recovers_known_fraction(self, params, prf, estimator, rng):
        # 30% of users hold (1,1); the rest hold (0,0).
        profiles = [[1, 1]] * 900 + [[0, 0]] * 2100
        rng.shuffle(profiles)
        sketches = build_sketches(params, prf, profiles, (0, 1))
        result = estimator.estimate(sketches, (1, 1))
        assert result.fraction == pytest.approx(0.3, abs=0.05)
        assert result.count == pytest.approx(0.3 * 3000, abs=150)

    def test_complement_value_estimates_complement_fraction(self, params, prf, estimator):
        profiles = [[1]] * 700 + [[0]] * 1300
        sketches = build_sketches(params, prf, profiles, (0,))
        ones = estimator.estimate(sketches, (1,)).fraction
        zeros = estimator.estimate(sketches, (0,)).fraction
        assert ones == pytest.approx(0.35, abs=0.06)
        assert zeros == pytest.approx(0.65, abs=0.06)

    def test_debiasing_formula(self, estimator, params):
        # E[r~] = (1-p) r + p (1-r)  =>  inverse mapping is exact.
        for true_r in (0.0, 0.25, 0.5, 1.0):
            raw = (1 - params.p) * true_r + params.p * (1 - true_r)
            assert estimator.debias_fraction(raw) == pytest.approx(true_r)

    def test_custom_bias_debiasing(self, estimator):
        # Appendix E: XOR virtual bits carry bias 2p(1-p).
        bias = 2 * 0.3 * 0.7
        raw = (1 - bias) * 0.4 + bias * 0.6
        assert estimator.debias_fraction(raw, bias=bias) == pytest.approx(0.4)

    def test_clamping_behaviour(self, params, prf):
        clamped = SketchEstimator(params, prf, clamp=True)
        raw = SketchEstimator(params, prf, clamp=False)
        # All-zeros observed bits drive the raw estimate negative.
        bits = np.zeros(50, dtype=np.int8)
        assert clamped.estimate_from_bits(bits).fraction == 0.0
        assert raw.estimate_from_bits(bits).fraction < 0.0

    def test_estimate_from_bits_matches_estimate(self, params, prf, estimator):
        profiles = [[1]] * 40 + [[0]] * 60
        sketches = build_sketches(params, prf, profiles, (0,))
        bits = estimator.evaluations(sketches, (1,))
        assert estimator.estimate_from_bits(bits).fraction == pytest.approx(
            estimator.estimate(sketches, (1,)).fraction
        )


class TestConfidenceIntervals:
    def test_interval_is_symmetric(self, params, prf, estimator):
        sketches = build_sketches(params, prf, [[1]] * 100, (0,))
        result = estimator.estimate(sketches, (1,))
        low, high = result.interval
        assert high - result.fraction == pytest.approx(result.fraction - low)

    def test_covers_method(self, params, prf, estimator):
        sketches = build_sketches(params, prf, [[1]] * 400, (0,))
        result = estimator.estimate(sketches, (1,))
        assert result.covers(result.fraction)
        assert not result.covers(result.fraction + 2 * result.half_width)

    def test_half_width_shrinks_at_root_m(self, estimator):
        assert estimator.half_width(4000) == pytest.approx(
            estimator.half_width(1000) / 2
        )

    def test_half_width_grows_with_confidence(self, estimator):
        assert estimator.half_width(1000, delta=0.01) > estimator.half_width(
            1000, delta=0.1
        )

    def test_users_needed_inverts_half_width(self, estimator):
        for error in (0.05, 0.02):
            m = estimator.users_needed(error, delta=0.05)
            assert estimator.half_width(m, delta=0.05) <= error
            assert estimator.half_width(max(1, m - 2), delta=0.05) > error * 0.98

    def test_rejects_bad_arguments(self, estimator):
        with pytest.raises(ValueError):
            estimator.half_width(0)
        with pytest.raises(ValueError):
            estimator.half_width(10, delta=0.0)
        with pytest.raises(ValueError):
            estimator.users_needed(0.0)


class TestErrorIndependentOfWidth:
    def test_wide_queries_no_worse_than_narrow(self, params, prf, estimator, rng):
        # The headline claim: estimation error does not grow with the
        # number of attributes in the sketched subset.
        num_users = 3000
        errors = {}
        for width in (1, 4, 10):
            profiles = (rng.random((num_users, width)) < 0.5).astype(int)
            target = tuple([1] * width)
            truth = float((profiles == 1).all(axis=1).mean())
            sketches = build_sketches(
                params, prf, profiles.tolist(), tuple(range(width)), seed=width
            )
            estimate = estimator.estimate(sketches, target).fraction
            errors[width] = abs(estimate - truth)
        bound = estimator.half_width(num_users, delta=0.01)
        assert all(err <= bound for err in errors.values())
