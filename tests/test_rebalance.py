"""Live shard rebalancing: crash-safe range split/merge under traffic.

Four layers of coverage:

* **Properties** (hypothesis): range-bound split/merge round-trips, and
  carving a column set at a boundary then merging the halves back
  reconstructs the aligned keys bit-for-bit.
* **Parity**: every protocol query family answers byte-identically to
  the single-store engine before, *during*, and after a split and a
  merge — cold cache and warm, both PRF backends.
* **Crash safety**: a seeded SIGKILL matrix (driver dies at each phase
  boundary with no cleanup) recovers from the checkpoint alone —
  unfinished prepares roll back, acked commits roll forward — plus a
  write-crash regression for the fsync-before-replace checkpoint path.
* **Perimeter**: bounded event logs with drop accounting, and bearer
  token rotation with a grace window (old sessions survive, duplicates
  refused, SIGHUP-style reloads reconcile a fresh token map).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BiasedPRF,
    CounterPRF,
    PrivacyParams,
    SketchEstimator,
    Sketcher,
    merge_bounds,
    merge_columns,
    range_bounds,
    split_bounds,
    split_columns_at,
    user_universe,
)
from repro.data import bernoulli_panel
from repro.protocol import (
    AnyOfRequest,
    RemoteQueryError,
    BitMatrixRequest,
    CountsBlockRequest,
    EstimateManyRequest,
    ExactlyLRequest,
    FractionRequest,
    MarginalRequest,
    RebalanceMergeRequest,
    RebalanceSplitRequest,
    RebalanceStatusRequest,
    dumps_response,
)
from repro.server import (
    QueryEngine,
    RemoteQueryEngine,
    RemoteServer,
    ShardedService,
    publish_database,
    serve_in_thread,
)
from repro.server import sharded as sharded_module
from repro.server.collector import SketchStore
from repro.server.sharded import ShardMap, ShardSpec

from .conftest import GLOBAL_KEY

SUBSETS = [(0, 1), (1, 2), (0,), (1,), (2,)]

#: One request per public protocol family (the byte-parity surface).
REQUESTS = [
    CountsBlockRequest.build((0, 1), [(0, 0), (0, 1), (1, 1)]),
    EstimateManyRequest.build((1, 2), [(1, 0), (0, 0)]),
    MarginalRequest.build((0, 1)),
    FractionRequest.build((1, 2), (0, 1)),
    AnyOfRequest.build([((0,), (1,)), ((2,), (1,))]),
    ExactlyLRequest.build((0, 1, 2), 2),
    BitMatrixRequest.build((0, 1), 1),
]


def make_stack(prf_cls, num_users=80, seed=5):
    params = PrivacyParams(p=0.3)
    prf = prf_cls(p=0.3, global_key=GLOBAL_KEY)
    database = bernoulli_panel(num_users, 3, rng=np.random.default_rng(seed))
    sketcher = Sketcher(params, prf, sketch_bits=8, rng=np.random.default_rng(seed + 1))
    store = publish_database(database, sketcher, SUBSETS, workers=1, seed=seed)
    engine = QueryEngine(database.schema, store, SketchEstimator(params, prf))
    return store, prf, engine


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
class TestPartitionProperties:
    @given(
        n_users=st.integers(min_value=2, max_value=500),
        n_shards=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_then_merge_reconstructs_the_partition(
        self, n_users, n_shards, data
    ):
        bounds = range_bounds(n_users, n_shards)
        splittable = [i for i, (lo, hi) in enumerate(bounds) if hi - lo >= 2]
        if not splittable:
            return
        index = data.draw(st.sampled_from(splittable))
        lo, hi = bounds[index]
        at = data.draw(st.integers(min_value=lo + 1, max_value=hi - 1))
        left, right = split_bounds((lo, hi), at)
        assert merge_bounds(left, right) == (lo, hi)
        rebuilt = bounds[:index] + [left, right] + bounds[index + 1 :]
        # The rebuilt bound list still tiles range(n_users) contiguously.
        assert rebuilt[0][0] == 0 and rebuilt[-1][1] == n_users
        for (_, a_hi), (b_lo, _) in zip(rebuilt, rebuilt[1:]):
            assert a_hi == b_lo

    @given(
        n_users=st.integers(min_value=2, max_value=60),
        boundary_frac=st.floats(min_value=0.01, max_value=0.99),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_carved_columns_concat_back_bit_for_bit(
        self, n_users, boundary_frac, seed
    ):
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
        database = bernoulli_panel(n_users, 2, rng=np.random.default_rng(seed))
        sketcher = Sketcher(
            params, prf, sketch_bits=6, rng=np.random.default_rng(seed + 1)
        )
        store = publish_database(database, sketcher, [(0, 1), (0,)], workers=1, seed=seed)
        columns = store.to_columns()
        universe = user_universe(columns)
        at = universe[max(1, min(len(universe) - 1, int(len(universe) * boundary_frac)))]
        left, right = split_columns_at(columns, at)
        merged = merge_columns([left, right])
        assert set(merged) == set(columns)
        for subset, column in columns.items():
            rebuilt = merged[subset]
            # Same users; and once aligned by user id (the order every
            # query path uses), the key columns are identical bits.
            assert sorted(rebuilt.user_ids) == sorted(column.user_ids)
            order_want = np.argsort(np.asarray(column.user_ids))
            order_got = np.argsort(np.asarray(rebuilt.user_ids))
            for field in ("keys", "num_bits", "iterations"):
                want = np.asarray(getattr(column, field))[order_want]
                got = np.asarray(getattr(rebuilt, field))[order_got]
                assert np.array_equal(want, got), field

    def test_split_bounds_validates_interior_point(self):
        with pytest.raises(ValueError):
            split_bounds(("a", "m"), "a")
        with pytest.raises(ValueError):
            split_bounds(("a", "m"), "z")

    def test_merge_bounds_requires_adjacency(self):
        with pytest.raises(ValueError):
            merge_bounds(("a", "f"), ("g", "m"))

    def test_merge_columns_refuses_duplicate_users(self):
        store, _, _ = make_stack(BiasedPRF, num_users=10)
        columns = store.to_columns()
        with pytest.raises(ValueError, match="more than one part"):
            merge_columns([columns, columns])


# ----------------------------------------------------------------------
# Live rebalancing parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("prf_cls", [BiasedPRF, CounterPRF], ids=lambda c: c.algorithm)
class TestLiveRebalanceParity:
    def test_split_and_merge_under_traffic_stay_bit_identical(
        self, prf_cls, tmp_path
    ):
        store, prf, engine = make_stack(prf_cls)
        expected = [dumps_response(engine.execute(r)) for r in REQUESTS]
        service = ShardedService.from_store(store, prf, 2, tmp_path, cache=True)
        service.start()
        errors: list = []
        mismatches: list = []
        stop = threading.Event()

        def traffic() -> None:
            i = 0
            while not stop.is_set():
                request = REQUESTS[i % len(REQUESTS)]
                try:
                    got = dumps_response(service.coordinator.execute(request))
                except Exception as exc:  # noqa: BLE001 - collected for the assert
                    errors.append(repr(exc))
                    return
                if got != expected[i % len(REQUESTS)]:
                    mismatches.append(request.kind)
                    return
                i += 1

        thread = threading.Thread(target=traffic, daemon=True)
        try:
            for request, want in zip(REQUESTS, expected):
                assert dumps_response(service.coordinator.execute(request)) == want
            thread.start()
            out = service.rebalance_split("shard-0")
            merged = service.rebalance_merge(out["donor"], out["recipient"])
            assert merged["shards"] == ["shard-0", "shard-1"]
            stop.set()
            thread.join(timeout=30.0)
            assert errors == [] and mismatches == []
            # Cold pass (fresh entries for the new topology), then warm.
            for _pass in ("cold", "warm"):
                for request, want in zip(REQUESTS, expected):
                    got = dumps_response(service.coordinator.execute(request))
                    assert got == want, (request.kind, _pass)
            status = service.rebalance_status()
            assert status["completed"] == 2 and status["active"] is None
        finally:
            stop.set()
            service.close()

    def test_explicit_boundary_and_protocol_kinds(self, prf_cls, tmp_path):
        store, prf, engine = make_stack(prf_cls)
        expected = [dumps_response(engine.execute(r)) for r in REQUESTS]
        service = ShardedService.from_store(store, prf, 2, tmp_path, cache=True)
        service.start()
        try:
            universe = user_universe(store.to_columns())
            boundary = universe[10]
            response = service.coordinator.execute(
                RebalanceSplitRequest.build("shard-0", boundary=boundary)
            )
            assert response.result["boundary"] == boundary
            recipient = response.result["recipient"]
            status = service.coordinator.execute(
                RebalanceStatusRequest.build()
            ).result
            assert [s["shard_id"] for s in status["shards"]] == [
                "shard-0", recipient, "shard-1",
            ]
            assert all(s["live"] for s in status["shards"])
            for request, want in zip(REQUESTS, expected):
                assert dumps_response(service.coordinator.execute(request)) == want
            merged = service.coordinator.execute(
                RebalanceMergeRequest.build("shard-0", recipient)
            ).result
            assert merged["shards"] == ["shard-0", "shard-1"]
            for request, want in zip(REQUESTS, expected):
                assert dumps_response(service.coordinator.execute(request)) == want
        finally:
            service.close()


class TestRebalanceValidation:
    def test_bare_coordinator_refuses_rebalance_kinds(self):
        store, prf, engine = make_stack(BiasedPRF, num_users=20)
        from repro.server.sharded import ShardCoordinator

        shard_map = ShardMap(subsets=tuple(store.subsets), shards=())
        coordinator = ShardCoordinator(shard_map, prf)
        with pytest.raises(ValueError, match="no shard supervisor"):
            coordinator.execute(RebalanceStatusRequest.build())

    def test_merge_requires_adjacent_shards(self, tmp_path):
        store, prf, _ = make_stack(BiasedPRF, num_users=30)
        service = ShardedService.from_store(store, prf, 3, tmp_path)
        service.start()
        try:
            with pytest.raises(ValueError, match="not adjacent"):
                service.rebalance_merge("shard-0", "shard-2")
            with pytest.raises(ValueError, match="unknown shard"):
                service.rebalance_split("shard-9")
        finally:
            service.close()

    def test_rebalance_kinds_release_no_subsets(self):
        for request in (
            RebalanceSplitRequest.build("shard-0"),
            RebalanceMergeRequest.build("shard-0", "shard-1"),
            RebalanceStatusRequest.build(),
        ):
            assert request.subsets_released() == ()


# ----------------------------------------------------------------------
# Crash safety
# ----------------------------------------------------------------------
def _run_and_die(base_dir, phase, op, prf_cls, conn):
    """Child: drive a rebalance, then die at ``phase`` with no cleanup."""
    store, prf, _ = make_stack(prf_cls)
    service = ShardedService.from_store(store, prf, 2, base_dir, cache=True)
    service.start()
    out = None
    if op == "merge":
        out = service.rebalance_split("shard-0")

    def hook(p: str) -> None:
        if p == phase:
            for process in list(service._processes.values()):
                process.kill()
            conn.send("died")
            os._exit(0)

    service.rebalance_phase_hook = hook
    if op == "split":
        service.rebalance_split("shard-0")
    else:
        service.rebalance_merge(out["donor"], out["recipient"])
    conn.send("survived")
    os._exit(0)


@pytest.mark.parametrize("op", ["split", "merge"])
class TestSigkillMatrix:
    """Kill the whole service (driver + workers) at each phase boundary;
    a fresh :meth:`ShardedService.from_checkpoint` must recover an exact
    topology from the durable checkpoint alone."""

    PHASES = ("pre_prepare", "post_prepare", "post_ack", "post_commit")
    EXPECTED_RECOVERY = {
        "pre_prepare": None,
        "post_prepare": "rolled_back",
        "post_ack": "rolled_forward",
        "post_commit": None,
    }

    @pytest.mark.parametrize("phase", PHASES)
    def test_recovers_exactly_from_checkpoint(self, op, phase, tmp_path):
        store, prf, engine = make_stack(BiasedPRF)
        expected = [dumps_response(engine.execute(r)) for r in REQUESTS]
        context = multiprocessing.get_context("fork")
        parent_conn, child_conn = context.Pipe()
        child = context.Process(
            target=_run_and_die, args=(str(tmp_path), phase, op, BiasedPRF, child_conn)
        )
        child.start()
        child.join(timeout=180)
        assert child.exitcode == 0, f"driver child exited {child.exitcode}"
        assert parent_conn.poll(5) and parent_conn.recv() == "died"
        recovered = ShardedService.from_checkpoint(tmp_path, prf).start()
        try:
            assert recovered._rebalances_recovered == self.EXPECTED_RECOVERY[phase]
            for request, want in zip(REQUESTS, expected):
                got = dumps_response(recovered.coordinator.execute(request))
                assert got == want, (op, phase, request.kind)
        finally:
            recovered.close()


class TestLiveAbort:
    def test_participant_death_mid_handoff_aborts_and_heals(self, tmp_path):
        store, prf, engine = make_stack(BiasedPRF)
        expected = [dumps_response(engine.execute(r)) for r in REQUESTS]
        service = ShardedService.from_store(
            store, prf, 2, tmp_path, cache=True,
            watchdog_interval=0.3, watchdog_probe_timeout=1.0,
        )
        service.start()
        try:
            def hook(phase: str) -> None:
                if phase == "post_prepare":
                    # The donor dies mid-handoff; the *real* watchdog
                    # must flag an abort (not respawn it mid-handoff).
                    service._processes["shard-0"].kill()
                    service._processes["shard-0"].join(timeout=10)
                    deadline = time.monotonic() + 30
                    while (
                        not service._rebalance_abort.is_set()
                        and time.monotonic() < deadline
                    ):
                        time.sleep(0.05)

            service.rebalance_phase_hook = hook
            with pytest.raises(Exception, match="rebalance aborted"):
                service.rebalance_split("shard-0")
            service.rebalance_phase_hook = None
            status = service.rebalance_status()
            assert status["aborted"] == 1 and status["active"] is None
            assert [s["shard_id"] for s in status["shards"]] == ["shard-0", "shard-1"]
            kinds = [e["event"] for e in list(service.events)]
            assert "rebalance_abort_requested" in kinds
            assert "rebalance_aborted" in kinds
            # The committed topology still answers exactly (the watchdog
            # path restarts the dead donor from its committed file).
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    for request, want in zip(REQUESTS, expected):
                        assert (
                            dumps_response(service.coordinator.execute(request))
                            == want
                        )
                    break
                except Exception:  # noqa: BLE001 - donor still restarting
                    time.sleep(0.2)
            else:
                pytest.fail("service never healed after the aborted rebalance")
        finally:
            service.close()


class TestDurableCheckpoint:
    def test_write_crash_leaves_the_old_checkpoint_intact(self, tmp_path):
        path = os.path.join(tmp_path, "shard_map.json")
        spec = ShardSpec("shard-0", "s.npz", 3, "a", "c")
        original = ShardMap(subsets=((0,),), shards=(spec,))
        original.save(path)
        replacement = ShardMap(
            subsets=((0,),),
            shards=(spec,),
            rebalance={"op": "split", "phase": "prepared"},
        )

        class Crash(RuntimeError):
            pass

        def crash_hook(dest: str) -> None:
            raise Crash(f"power loss before replacing {dest}")

        sharded_module._write_crash_hook = crash_hook
        try:
            with pytest.raises(Crash):
                replacement.save(path)
        finally:
            sharded_module._write_crash_hook = None
        # The old checkpoint is untouched, loadable, and no temp files
        # linger next to it.
        reloaded = ShardMap.load(path)
        assert reloaded.rebalance is None
        assert reloaded.shards == original.shards
        assert os.listdir(tmp_path) == ["shard_map.json"]
        # The interrupted write succeeds once the "power" is back.
        replacement.save(path)
        assert ShardMap.load(path).rebalance == replacement.rebalance

    def test_checkpoint_version_is_written_and_v1_still_loads(self, tmp_path):
        path = os.path.join(tmp_path, "shard_map.json")
        spec = ShardSpec("shard-0", "s.npz", 3, "a", "c")
        ShardMap(subsets=((0,),), shards=(spec,)).save(path)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["version"] == sharded_module.SHARD_MAP_VERSION
        # A v1 checkpoint (no rebalance field) from an older deployment
        # still loads.
        payload["version"] = 1
        payload.pop("rebalance", None)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        assert ShardMap.load(path).rebalance is None


# ----------------------------------------------------------------------
# Bounded event logs
# ----------------------------------------------------------------------
class TestBoundedEvents:
    def test_events_deque_is_bounded_and_drops_are_counted(self, tmp_path):
        store, prf, _ = make_stack(BiasedPRF, num_users=20)
        service = ShardedService.from_store(
            store, prf, 1, tmp_path, events_limit=5
        )
        try:
            for i in range(12):
                service._log_event("synthetic", "shard-0", index=i)
            assert len(service.events) == 5
            summary = service.events_summary()
            assert summary == {
                "logged": 12, "dropped": 7, "buffered": 5, "limit": 5,
            }
            # The survivors are the *newest* events.
            assert [e["index"] for e in service.events] == list(range(7, 12))
        finally:
            service.close()

    def test_events_limit_must_be_positive(self, tmp_path):
        store, prf, _ = make_stack(BiasedPRF, num_users=20)
        shard_map = ShardMap(subsets=tuple(store.subsets), shards=())
        with pytest.raises(ValueError, match="events_limit"):
            ShardedService(shard_map, prf, tmp_path, events_limit=0)

    def test_status_surfaces_event_counters_over_the_wire(self, tmp_path):
        store, prf, _ = make_stack(BiasedPRF, num_users=20)
        service = ShardedService.from_store(store, prf, 1, tmp_path)
        service.start()
        try:
            server = RemoteServer(service.coordinator, {"ops": "secret"})
            with serve_in_thread(server) as (host, port):
                with RemoteQueryEngine(host, port, "secret") as client:
                    status = client.status()
            assert status["events"]["limit"] == 1000
            assert status["events"]["logged"] >= 0
        finally:
            service.close()


# ----------------------------------------------------------------------
# Token rotation
# ----------------------------------------------------------------------
class TestTokenRotation:
    def make_server(self, clock=None):
        store, prf, engine = make_stack(BiasedPRF, num_users=20)
        kwargs = {} if clock is None else {"clock": clock}
        return RemoteServer(engine, {"alice": "tok-a", "bob": "tok-b"}, **kwargs)

    def test_rotation_with_grace_honours_both_then_expires_old(self):
        now = [100.0]
        server = self.make_server(clock=lambda: now[0])
        server.rotate_token("alice", "tok-a2", grace_seconds=30.0)
        assert server._resolve_token("tok-a2") == "alice"
        assert server._resolve_token("tok-a") == "alice"  # inside grace
        now[0] = 131.0
        assert server._resolve_token("tok-a") is None  # grace expired
        assert server._resolve_token("tok-a2") == "alice"

    def test_rotation_without_grace_invalidates_immediately(self):
        server = self.make_server()
        server.rotate_token("alice", "tok-a2")
        assert server._resolve_token("tok-a") is None
        assert server._resolve_token("tok-a2") == "alice"

    def test_duplicate_tokens_refused_active_and_in_grace(self):
        now = [0.0]
        server = self.make_server(clock=lambda: now[0])
        with pytest.raises(ValueError, match="must be unique"):
            server.rotate_token("alice", "tok-b")
        server.rotate_token("alice", "tok-a2", grace_seconds=60.0)
        # tok-a is rotated out but still honoured — still a duplicate.
        with pytest.raises(ValueError, match="must be unique"):
            server.rotate_token("bob", "tok-a")
        now[0] = 61.0
        server.rotate_token("bob", "tok-a")  # grace over; token freed
        assert server._resolve_token("tok-a") == "bob"

    def test_unknown_analyst_refused(self):
        server = self.make_server()
        with pytest.raises(ValueError, match="unknown analyst"):
            server.rotate_token("mallory", "tok-m")

    def test_reload_tokens_reconciles_the_full_map(self):
        now = [0.0]
        server = self.make_server(clock=lambda: now[0])
        summary = server.reload_tokens(
            {"alice": "tok-a2", "carol": "tok-c"}, grace_seconds=10.0
        )
        assert summary["rotated"] == ["alice"]
        assert summary["added"] == ["carol"]
        assert summary["revoked"] == ["bob"]
        assert server._resolve_token("tok-b") is None  # revoked outright
        assert server._resolve_token("tok-a") == "alice"  # grace window
        assert server._resolve_token("tok-c") == "carol"
        now[0] = 11.0
        assert server._resolve_token("tok-a") is None
        summary = server.reload_tokens({"alice": "tok-a2", "carol": "tok-c"})
        assert summary["unchanged"] == ["alice", "carol"] or set(
            summary["unchanged"]
        ) == {"alice", "carol"}

    def test_open_sessions_survive_rotation(self):
        store, prf, engine = make_stack(BiasedPRF, num_users=20)
        server = RemoteServer(engine, {"alice": "tok-a"})
        with serve_in_thread(server) as (host, port):
            with RemoteQueryEngine(host, port, "tok-a") as client:
                assert client.ping() == {"ok": True}
                server.rotate_token("alice", "tok-a2")
                # The live connection authenticated at hello time; it
                # keeps answering after its token is rotated away.
                assert client.ping() == {"ok": True}
                assert client.fraction((0, 1), (1, 1)) >= 0.0
            # New connections need the new credential.
            with pytest.raises(RemoteQueryError, match="unauthorized"):
                RemoteQueryEngine(host, port, "tok-a")
            with RemoteQueryEngine(host, port, "tok-a2") as client:
                assert client.analyst == "alice"

    def test_sighup_reload_path_via_token_file(self, tmp_path):
        """The ``repro serve`` reload callback: re-read the token file
        and reconcile — exercised directly (signal delivery is wired in
        ``RemoteServer.run``, which needs a foreground event loop)."""
        from repro.cli import _read_token_file

        token_file = tmp_path / "tokens.txt"
        token_file.write_text("# analysts\nalice=tok-a\nbob=tok-b\n")
        store, prf, engine = make_stack(BiasedPRF, num_users=20)
        server = RemoteServer(engine, _read_token_file(token_file))
        with serve_in_thread(server) as (host, port):
            with RemoteQueryEngine(host, port, "tok-b") as client:
                token_file.write_text("alice=tok-a9\ncarol=tok-c\n")
                summary = server.reload_tokens(_read_token_file(token_file))
                assert summary["rotated"] == ["alice"]
                assert summary["revoked"] == ["bob"]
                # bob's open session survives; his token no longer
                # authenticates new connections.
                assert client.ping() == {"ok": True}
            with pytest.raises(RemoteQueryError, match="unauthorized"):
                RemoteQueryEngine(host, port, "tok-b")
            with RemoteQueryEngine(host, port, "tok-c") as client:
                assert client.analyst == "carol"
