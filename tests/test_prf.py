"""Unit tests for the p-biased pseudorandom function substrate (§3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BiasedPRF, TrueRandomOracle, encode_input


class TestEncoding:
    def test_is_deterministic(self):
        a = encode_input("alice", (1, 2), (0, 1), 7)
        b = encode_input("alice", (1, 2), (0, 1), 7)
        assert a == b

    def test_distinguishes_every_component(self):
        base = encode_input("alice", (1, 2), (0, 1), 7)
        assert encode_input("bob", (1, 2), (0, 1), 7) != base
        assert encode_input("alice", (1, 3), (0, 1), 7) != base
        assert encode_input("alice", (1, 2), (1, 1), 7) != base
        assert encode_input("alice", (1, 2), (0, 1), 8) != base

    def test_no_concatenation_collisions(self):
        # ("ab", subset) vs ("a", b-prefixed subset) style collisions are
        # prevented by length prefixes.
        a = encode_input("ab", (), (), 0)
        b = encode_input("a", (), (), 0)
        assert a != b

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            encode_input("alice", (1, 2), (0,), 7)


class TestBiasedPRF:
    def test_deterministic_given_key(self):
        prf1 = BiasedPRF(0.3, global_key=b"k" * 32)
        prf2 = BiasedPRF(0.3, global_key=b"k" * 32)
        for key in range(64):
            assert prf1.evaluate("u", (0, 1), (1, 0), key) == prf2.evaluate(
                "u", (0, 1), (1, 0), key
            )

    def test_different_global_keys_differ(self):
        prf1 = BiasedPRF(0.3, global_key=b"a" * 32)
        prf2 = BiasedPRF(0.3, global_key=b"b" * 32)
        values1 = [prf1.evaluate("u", (0,), (1,), k) for k in range(256)]
        values2 = [prf2.evaluate("u", (0,), (1,), k) for k in range(256)]
        assert values1 != values2

    def test_empirical_bias_matches_p(self):
        prf = BiasedPRF(0.3, global_key=b"k" * 32)
        draws = [prf.evaluate("u", (0,), (1,), key) for key in range(20000)]
        assert np.mean(draws) == pytest.approx(0.3, abs=0.02)

    @pytest.mark.parametrize("p", [0.05, 0.25, 0.45])
    def test_bias_sweep(self, p):
        prf = BiasedPRF(p, global_key=b"k" * 32)
        draws = [prf.evaluate("u", (0,), (0,), key) for key in range(20000)]
        assert np.mean(draws) == pytest.approx(p, abs=0.02)

    def test_evaluate_many_matches_scalar(self):
        prf = BiasedPRF(0.3, global_key=b"k" * 32)
        ids = [f"u{i}" for i in range(50)]
        keys = list(range(50))
        vector = prf.evaluate_many(ids, (0, 2), (1, 1), keys)
        scalar = [prf.evaluate(uid, (0, 2), (1, 1), key) for uid, key in zip(ids, keys)]
        assert vector.tolist() == scalar

    def test_random_key_by_default(self):
        assert len(BiasedPRF(0.3).global_key) == 32

    def test_rejects_bad_key_sizes(self):
        with pytest.raises(ValueError):
            BiasedPRF(0.3, global_key=b"short")
        with pytest.raises(ValueError):
            BiasedPRF(0.3, global_key=b"x" * 100)

    @pytest.mark.parametrize("bad_p", [0.0, 1.0, -0.2, 1.5])
    def test_rejects_bad_bias(self, bad_p):
        with pytest.raises(ValueError):
            BiasedPRF(bad_p, global_key=b"k" * 32)


class TestTrueRandomOracle:
    def test_memoises_evaluations(self):
        oracle = TrueRandomOracle(0.3, rng=np.random.default_rng(0))
        first = oracle.evaluate("u", (0,), (1,), 5)
        for _ in range(10):
            assert oracle.evaluate("u", (0,), (1,), 5) == first
        assert oracle.num_evaluations == 1

    def test_counts_distinct_points(self):
        oracle = TrueRandomOracle(0.3, rng=np.random.default_rng(0))
        for key in range(17):
            oracle.evaluate("u", (0,), (1,), key)
        assert oracle.num_evaluations == 17

    def test_empirical_bias(self):
        oracle = TrueRandomOracle(0.25, rng=np.random.default_rng(42))
        draws = [oracle.evaluate("u", (0,), (1,), key) for key in range(20000)]
        assert np.mean(draws) == pytest.approx(0.25, abs=0.02)
