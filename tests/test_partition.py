"""Property tests for contiguous user-range partitioning (the shard axis).

The partitioner must deliver three invariants for *any* store shape and
any ``n_shards``: shards are disjoint, they cover every user, and —
because ranges are contiguous slices of the sorted universe —
concatenating per-shard columns in shard order and argsorting by user
id reconstructs the original columns exactly, array for array.  The
last property is what makes sharded answers bit-identical rather than
merely unbiased, so it gets the hypothesis treatment.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BiasedPRF, PrivacyParams, Sketcher
from repro.core.partition import (
    range_bounds,
    split_columns_by_user_range,
    user_universe,
)
from repro.data import bernoulli_panel
from repro.server import SketchColumn, SketchStore, publish_database
from repro.server.serialization import load_store, save_store

from .conftest import GLOBAL_KEY


# ----------------------------------------------------------------------
# range_bounds
# ----------------------------------------------------------------------
class TestRangeBounds:
    @given(
        num_users=st.integers(min_value=0, max_value=500),
        n_shards=st.integers(min_value=1, max_value=40),
    )
    def test_balanced_cover(self, num_users, n_shards):
        bounds = range_bounds(num_users, n_shards)
        assert len(bounds) == n_shards
        # Contiguous cover of range(num_users), in order.
        assert bounds[0][0] == 0
        assert bounds[-1][1] == num_users
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo
        # Balanced: sizes differ by at most one, larger shards first.
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="n_shards must be >= 1"):
            range_bounds(10, 0)
        with pytest.raises(ValueError, match="num_users must be >= 0"):
            range_bounds(-1, 2)


# ----------------------------------------------------------------------
# split_columns_by_user_range — the hypothesis property
# ----------------------------------------------------------------------
@st.composite
def column_sets(draw):
    """A random ``{subset: SketchColumn}`` mapping.

    Users are drawn per column (so columns overlap arbitrarily) and each
    column's publication order is a random permutation — the partitioner
    must preserve *that* order within each shard, not invent a sorted one.
    """
    num_users = draw(st.integers(min_value=1, max_value=30))
    ids = [f"u{i:03d}" for i in range(num_users)]
    num_subsets = draw(st.integers(min_value=1, max_value=4))
    columns = {}
    for index in range(num_subsets):
        subset = (index,)
        members = draw(
            st.lists(
                st.sampled_from(ids), unique=True, min_size=0, max_size=num_users
            )
        )
        order = draw(st.permutations(members))
        size = len(order)
        keys = draw(
            st.lists(
                st.integers(min_value=0, max_value=255),
                min_size=size,
                max_size=size,
            )
        )
        columns[subset] = SketchColumn(
            user_ids=list(order),
            keys=np.asarray(keys, dtype=np.uint64),
            num_bits=np.full(size, 8, dtype=np.uint8),
            iterations=np.arange(size, dtype=np.uint16),
        )
    return columns


class TestSplitColumns:
    @given(columns=column_sets(), n_shards=st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_disjoint_cover_and_exact_reconstruction(self, columns, n_shards):
        shards = split_columns_by_user_range(columns, n_shards)
        assert len(shards) == n_shards

        universe = user_universe(columns)
        shard_universes = [user_universe(shard) for shard in shards]

        # Disjoint: no user appears in two shards.
        seen: set = set()
        for ids in shard_universes:
            assert not seen.intersection(ids)
            seen.update(ids)
        # Cover: together the shards hold exactly the original users.
        assert seen == set(universe)
        # Contiguity: concatenating per-shard universes in shard order
        # reproduces the sorted universe — the property the coordinator's
        # row-concatenation of aligned results rests on.
        concatenated = [uid for ids in shard_universes for uid in ids]
        assert concatenated == universe

        # Exact reconstruction: per subset, concatenate shard columns in
        # shard order and argsort by the position each user held in the
        # original publication order — every array must round-trip.
        for subset, column in columns.items():
            pieces = [shard[subset] for shard in shards if subset in shard]
            ids = [uid for piece in pieces for uid in piece.user_ids]
            assert sorted(ids) == sorted(column.user_ids)
            position = {uid: i for i, uid in enumerate(column.user_ids)}
            order = np.argsort(
                np.asarray([position[uid] for uid in ids], dtype=np.int64)
            )
            if not len(ids):
                assert not column.user_ids
                continue
            restored_ids = [ids[i] for i in order]
            assert restored_ids == column.user_ids
            for field in ("keys", "num_bits", "iterations"):
                restored = np.concatenate(
                    [np.asarray(getattr(piece, field)) for piece in pieces]
                )[order]
                np.testing.assert_array_equal(
                    restored, np.asarray(getattr(column, field))
                )

    def test_rejects_bad_shard_count(self):
        columns = {
            (0,): SketchColumn(
                user_ids=["a"],
                keys=np.asarray([1], dtype=np.uint64),
                num_bits=np.asarray([8], dtype=np.uint8),
                iterations=np.asarray([0], dtype=np.uint16),
            )
        }
        with pytest.raises(ValueError, match="n_shards must be >= 1"):
            split_columns_by_user_range(columns, 0)


# ----------------------------------------------------------------------
# SketchStore.split_by_user_range — columnar round-trip
# ----------------------------------------------------------------------
def make_store(num_users: int = 40, seed: int = 0) -> SketchStore:
    params = PrivacyParams(p=0.3)
    prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
    database = bernoulli_panel(num_users, 3, rng=np.random.default_rng(seed))
    sketcher = Sketcher(
        params, prf, sketch_bits=6, rng=np.random.default_rng(seed + 1)
    )
    return publish_database(
        database, sketcher, [(0, 1), (0,), (1,), (2,)], workers=1, seed=seed
    )


class TestStoreSplit:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
    def test_shard_stores_partition_the_population(self, n_shards):
        store = make_store()
        shards = store.split_by_user_range(n_shards)
        assert len(shards) == n_shards
        for subset in store.subsets:
            total = sum(
                shard.num_users(subset)
                for shard in shards
                if shard.has_subset(subset)
            )
            assert total == store.num_users(subset)

    def test_shards_round_trip_columnar_v2(self, tmp_path):
        prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
        store = make_store()
        for index, shard in enumerate(store.split_by_user_range(3)):
            path = tmp_path / f"shard-{index}.npz"
            save_store(
                shard, path, include_iterations=True, format="columnar", prf=prf
            )
            loaded, header = load_store(path, expected_prf=prf)
            assert header["prf"]["algorithm"] == prf.algorithm
            original = shard.to_columns()
            restored = loaded.to_columns()
            assert set(original) == set(restored)
            for subset, column in original.items():
                assert restored[subset].user_ids == column.user_ids
                np.testing.assert_array_equal(restored[subset].keys, column.keys)
                np.testing.assert_array_equal(
                    restored[subset].iterations, column.iterations
                )
