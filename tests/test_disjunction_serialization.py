"""Unit tests for disjunction queries and sketch-store serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PrivacyParams, Sketch, Sketcher
from repro.data import bernoulli_panel
from repro.queries import (
    Conjunction,
    disjunction_by_inclusion_exclusion,
    disjunction_fraction,
)
from repro.server import (
    QueryEngine,
    SketchStore,
    dumps_store,
    load_store,
    loads_store,
    publish_database,
    save_store,
)

from .conftest import make_prf


class TestDisjunction:
    @pytest.fixture
    def setup(self, params, prf, estimator, rng):
        db = bernoulli_panel(5000, 3, density=0.3, rng=rng)
        sketcher = Sketcher(params, prf, sketch_bits=8, rng=rng)
        store = publish_database(db, sketcher, [(0,), (1,), (2,)])
        return db, store, QueryEngine(db.schema, store, estimator)

    def test_disjunction_fraction_recovers_truth(self, setup, estimator):
        db, store, _ = setup
        matrix = db.matrix()
        truth = float(((matrix[:, 0] == 1) | (matrix[:, 1] == 1)).mean())
        groups = store.aligned_groups([(0,), (1,)])
        estimate = disjunction_fraction(estimator, groups, [(1,), (1,)])
        assert estimate == pytest.approx(truth, abs=0.07)

    def test_engine_any_of(self, setup):
        db, _, engine = setup
        matrix = db.matrix()
        queries = [Conjunction.of((0, 1)), Conjunction.of((2, 1))]
        truth = float(((matrix[:, 0] == 1) | (matrix[:, 2] == 1)).mean())
        assert engine.any_of(queries) == pytest.approx(truth, abs=0.07)

    def test_engine_any_of_missing_subset(self, setup):
        _, _, engine = setup
        from repro.server import MissingSketchError

        with pytest.raises(MissingSketchError):
            engine.any_of([Conjunction.of((0, 1), (1, 1))])
        with pytest.raises(ValueError):
            engine.any_of([])

    def test_inclusion_exclusion_exact(self, setup):
        db, _, _ = setup
        matrix = db.matrix()
        first = Conjunction.of((0, 1))
        second = Conjunction.of((1, 1), (2, 0))
        truth = float(
            ((matrix[:, 0] == 1) | ((matrix[:, 1] == 1) & (matrix[:, 2] == 0))).mean()
        )
        result = disjunction_by_inclusion_exclusion(
            lambda s, v: db.exact_count(s, v), first, second, len(db)
        )
        assert result == pytest.approx(truth)

    def test_inclusion_exclusion_rejects_overlap(self):
        first = Conjunction.of((0, 1))
        second = Conjunction.of((0, 0), (1, 1))
        with pytest.raises(ValueError, match="share bit positions"):
            disjunction_by_inclusion_exclusion(lambda s, v: 0, first, second, 10)

    def test_inclusion_exclusion_validates_users(self):
        with pytest.raises(ValueError):
            disjunction_by_inclusion_exclusion(
                lambda s, v: 0, Conjunction.of((0, 1)), Conjunction.of((1, 1)), 0
            )


class TestSerialization:
    def make_store(self):
        store = SketchStore()
        store.publish(Sketch("alice", (0, 2), key=5, num_bits=8, iterations=3))
        store.publish(Sketch("bob", (0, 2), key=250, num_bits=8, iterations=1))
        store.publish(Sketch("alice", (1,), key=0, num_bits=8, iterations=9))
        return store

    def test_round_trip_in_memory(self):
        store = self.make_store()
        payload = dumps_store(store, PrivacyParams(p=0.3))
        loaded, header = loads_store(payload)
        assert header["p"] == 0.3
        assert set(loaded.subsets) == set(store.subsets)
        for subset in store.subsets:
            original = {(s.user_id, s.key) for s in store.sketches_for(subset)}
            restored = {(s.user_id, s.key) for s in loaded.sketches_for(subset)}
            assert original == restored

    def test_round_trip_file(self, tmp_path):
        store = self.make_store()
        path = tmp_path / "store.jsonl"
        written = save_store(store, path, PrivacyParams(p=0.25))
        assert written == 3
        loaded, header = load_store(path)
        assert header["p"] == 0.25
        assert loaded.total_published_bits() == store.total_published_bits()

    def test_loaded_store_is_queryable(self, params, prf, estimator, rng):
        db = bernoulli_panel(2000, 2, density=0.5, rng=rng)
        sketcher = Sketcher(params, prf, sketch_bits=8, rng=rng)
        store = publish_database(db, sketcher, [(0, 1)])
        loaded, _ = loads_store(dumps_store(store, params))
        truth = db.exact_conjunction((0, 1), (1, 1))
        estimate = estimator.estimate(loaded.sketches_for((0, 1)), (1, 1))
        assert estimate.fraction == pytest.approx(truth, abs=0.07)

    def test_header_validation(self):
        with pytest.raises(ValueError, match="empty"):
            loads_store("")
        with pytest.raises(ValueError, match="not a sketch-store"):
            loads_store('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="version"):
            loads_store('{"format": "repro-sketch-store", "version": 99}\n')

    def test_malformed_record_reports_line(self):
        payload = (
            '{"format": "repro-sketch-store", "version": 1}\n'
            '{"id": "a", "subset": [0], "key": 1, "bits": 8}\n'
            '{"id": "b", "subset": [0]}\n'
        )
        with pytest.raises(ValueError, match="line 3"):
            loads_store(payload)

    def test_blank_lines_tolerated(self):
        payload = (
            '{"format": "repro-sketch-store", "version": 1}\n'
            "\n"
            '{"id": "a", "subset": [0], "key": 1, "bits": 8}\n'
            "\n"
        )
        loaded, _ = loads_store(payload)
        assert loaded.num_users((0,)) == 1
