"""The typed query protocol: round trips, error envelopes, legacy shims.

Three layers of guarantees:

* every request kind satisfies ``loads_request(dumps_request(x)) == x``
  (property-tested over generated subsets/values/plans);
* every failure crosses the wire as the structured error envelope —
  code + message, never a raw traceback — and maps back to the exception
  type a local caller would have caught;
* the legacy block request/response of ``repro.server.serialization``
  stay byte-compatible with their pre-protocol output, and
  ``handle_block_request`` never lets an exception escape to the
  transport caller.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BiasedPRF, PrivacyParams, SketchEstimator, Sketcher
from repro.core.accountant import BudgetExceeded
from repro.core.estimator import QueryEstimate
from repro.data import bernoulli_panel
from repro.protocol import (
    PROTOCOL_VERSION,
    AnyOfRequest,
    BitMatrixRequest,
    CountsBlockRequest,
    EstimateManyRequest,
    EvaluatePlanRequest,
    ExactlyLRequest,
    FractionRequest,
    MarginalRequest,
    ProtocolError,
    ShardPartialRequest,
    QueryError,
    RemoteQueryError,
    REQUEST_KINDS,
    REQUEST_TAG,
    dumps_error,
    dumps_request,
    dumps_response,
    dumps_wire_message,
    error_from_exception,
    estimate_from_payload,
    estimate_to_payload,
    exception_from_error,
    loads_error,
    loads_request,
    loads_response,
    loads_wire_message,
    parse_reply,
)
from repro.protocol.messages import QueryResponse
from repro.queries.ast import Conjunction, Literal
from repro.queries.conjunctive import LinearPlan, PlanTerm
from repro.server import MissingSketchError, QueryEngine, publish_database
from repro.server.serialization import (
    dumps_block_request,
    handle_block_request,
    loads_block_response,
)

from .conftest import GLOBAL_KEY

# ----------------------------------------------------------------------
# Strategies: structurally valid requests of every kind
# ----------------------------------------------------------------------
subsets = st.lists(
    st.integers(min_value=0, max_value=63), min_size=1, max_size=5, unique=True
).map(tuple)


def values_for(subset):
    width = len(subset)
    return st.lists(
        st.lists(
            st.integers(min_value=0, max_value=1), min_size=width, max_size=width
        ).map(tuple),
        min_size=1,
        max_size=6,
    )


block_requests = subsets.flatmap(
    lambda s: values_for(s).map(lambda vs: (s, vs))
)


@st.composite
def any_of_requests(draw):
    components = draw(
        st.lists(
            subsets.flatmap(
                lambda s: values_for(s).map(lambda vs: (s, vs[0]))
            ),
            min_size=1,
            max_size=4,
        )
    )
    return AnyOfRequest.build(components)


@st.composite
def plan_requests(draw):
    terms = draw(
        st.lists(
            st.tuples(
                subsets.flatmap(lambda s: values_for(s).map(lambda vs: (s, vs[0]))),
                st.floats(
                    allow_nan=False, allow_infinity=False, min_value=-64, max_value=64
                ),
            ),
            min_size=1,
            max_size=4,
        )
    )
    return EvaluatePlanRequest.build(
        [(subset, value, coeff) for (subset, value), coeff in terms],
        description=draw(st.text(max_size=20)),
    )


class TestRoundTrips:
    """Every kind: ``loads_request(dumps_request(x)) == x``."""

    @settings(max_examples=50, deadline=None)
    @given(block_requests)
    def test_counts_block(self, pair):
        subset, values = pair
        request = CountsBlockRequest.build(subset, values)
        assert loads_request(dumps_request(request)) == request

    @settings(max_examples=50, deadline=None)
    @given(block_requests)
    def test_estimate_many(self, pair):
        subset, values = pair
        request = EstimateManyRequest.build(subset, values)
        assert loads_request(dumps_request(request)) == request

    @settings(max_examples=50, deadline=None)
    @given(subsets)
    def test_marginal(self, subset):
        request = MarginalRequest.build(subset)
        assert loads_request(dumps_request(request)) == request

    @settings(max_examples=50, deadline=None)
    @given(block_requests)
    def test_fraction(self, pair):
        subset, values = pair
        request = FractionRequest.build(subset, values[0])
        assert loads_request(dumps_request(request)) == request

    @settings(max_examples=50, deadline=None)
    @given(any_of_requests())
    def test_any_of(self, request):
        assert loads_request(dumps_request(request)) == request

    @settings(max_examples=50, deadline=None)
    @given(subsets, st.integers(min_value=0, max_value=5))
    def test_exactly_l(self, positions, l):
        request = ExactlyLRequest.build(positions, l)
        assert loads_request(dumps_request(request)) == request

    @settings(max_examples=50, deadline=None)
    @given(subsets, st.integers(min_value=0, max_value=1))
    def test_bit_matrix(self, positions, target):
        request = BitMatrixRequest.build(positions, target)
        assert loads_request(dumps_request(request)) == request

    @settings(max_examples=50, deadline=None)
    @given(plan_requests())
    def test_evaluate_plan(self, request):
        assert loads_request(dumps_request(request)) == request

    @settings(max_examples=50, deadline=None)
    @given(plan_requests())
    def test_plan_survives_ast_round_trip(self, request):
        """to_plan canonicalises literal order (sorted by position), after
        which from_plan/to_plan is the identity."""
        canonical = EvaluatePlanRequest.from_plan(request.to_plan())
        assert EvaluatePlanRequest.from_plan(canonical.to_plan()) == canonical
        # Canonicalisation only reorders literals within a term.
        for (subset, value, coeff), (c_subset, c_value, c_coeff) in zip(
            request.terms, canonical.terms
        ):
            assert sorted(zip(c_subset, c_value)) == sorted(zip(subset, value))
            assert c_coeff == coeff

    @settings(max_examples=50, deadline=None)
    @given(
        st.sampled_from(ShardPartialRequest.OPS),
        st.lists(subsets, min_size=1, max_size=3, unique=True),
        st.data(),
    )
    def test_shard_partial(self, op, subset_list, data):
        groups = data.draw(
            st.lists(
                st.tuples(
                    *[
                        st.tuples(
                            *[st.integers(0, 1) for _ in subset]
                        )
                        for subset in subset_list
                    ]
                ),
                min_size=0,
                max_size=3,
            )
        )
        request = ShardPartialRequest.build(op, subset_list, groups)
        assert loads_request(dumps_request(request)) == request

    def test_every_registered_kind_is_covered(self):
        assert sorted(REQUEST_KINDS) == sorted(
            [
                "counts_block",
                "estimate_many",
                "marginal",
                "fraction",
                "any_of",
                "exactly_l",
                "bit_matrix",
                "evaluate_plan",
                "shard_partial",
                "ping",
                "status",
                # PR 10 rebalancing surface; round-trips are covered in
                # tests/test_rebalance.py.
                "shard_snapshot",
                "shard_adopt",
                "shard_drop",
                "rebalance_split",
                "rebalance_merge",
                "rebalance_status",
            ]
        )

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=10**9),
    )
    def test_estimate_payload_is_exact(self, fraction, num_users):
        estimate = QueryEstimate(
            fraction=fraction,
            count=fraction * num_users,
            raw_fraction=fraction / 3.0 if fraction else 0.0,
            num_users=num_users,
            half_width=abs(fraction) / 7.0 if fraction else 0.125,
            delta=0.05,
        )
        # JSON text round trip included: repr shortest-round-trip floats.
        payload = json.loads(json.dumps(estimate_to_payload(estimate)))
        assert estimate_from_payload(payload) == estimate


class TestEnvelope:
    def test_malformed_json(self):
        with pytest.raises(ProtocolError, match="malformed wire message") as info:
            loads_request("{not json")
        assert info.value.code == "malformed_request"

    def test_wrong_tag(self):
        with pytest.raises(ProtocolError, match="expected a repro-query-request"):
            loads_request(json.dumps({"format": "nope", "version": PROTOCOL_VERSION}))

    def test_wrong_version(self):
        with pytest.raises(ProtocolError, match="version") as info:
            loads_request(json.dumps({"format": REQUEST_TAG, "version": 99}))
        assert info.value.code == "unsupported_version"

    def test_unknown_kind(self):
        payload = dumps_wire_message(
            REQUEST_TAG, PROTOCOL_VERSION, {"kind": "histogram_3d"}
        )
        with pytest.raises(ProtocolError, match="unknown request kind") as info:
            loads_request(payload)
        assert info.value.code == "unknown_kind"

    def test_missing_field(self):
        payload = dumps_wire_message(
            REQUEST_TAG, PROTOCOL_VERSION, {"kind": "counts_block", "subset": [0]}
        )
        with pytest.raises(ProtocolError, match="missing required field"):
            loads_request(payload)

    def test_width_mismatch(self):
        with pytest.raises(ProtocolError, match="width"):
            CountsBlockRequest.build((0, 1), [(1,)])

    def test_protocol_error_is_a_value_error(self):
        """Legacy callers catching ValueError keep working."""
        assert issubclass(ProtocolError, ValueError)

    def test_error_envelope_round_trip(self):
        error = QueryError("budget_exceeded", "analyst 'a' is out of budget")
        assert loads_error(dumps_error(error)) == error

    def test_response_round_trip_is_json_native(self):
        response = QueryResponse(kind="marginal", result=[0.25, 0.75])
        assert loads_response(dumps_response(response)).result == [0.25, 0.75]

    def test_parse_reply_raises_mapped_exception(self):
        with pytest.raises(BudgetExceeded):
            parse_reply(dumps_error(QueryError("budget_exceeded", "spent")))
        with pytest.raises(MissingSketchError):
            parse_reply(dumps_error(QueryError("missing_sketch", "no (7, 9)")))
        with pytest.raises(ValueError):
            parse_reply(dumps_error(QueryError("invalid_query", "bad width")))
        with pytest.raises(RemoteQueryError) as info:
            parse_reply(dumps_error(QueryError("rate_limited", "slow down")))
        assert info.value.code == "rate_limited"

    def test_error_from_exception_codes(self):
        assert error_from_exception(BudgetExceeded("x")).code == "budget_exceeded"
        assert error_from_exception(MissingSketchError("x")).code == "missing_sketch"
        assert error_from_exception(ValueError("x")).code == "invalid_query"
        assert (
            error_from_exception(ProtocolError("unknown_kind", "x")).code
            == "unknown_kind"
        )
        internal = error_from_exception(RuntimeError("boom"))
        assert internal.code == "internal_error"
        assert "Traceback" not in internal.message
        assert "boom" in internal.message

    def test_exception_round_trip_preserves_type(self):
        for exc in (
            BudgetExceeded("a"),
            MissingSketchError("b"),
            ValueError("c"),
            ProtocolError("malformed_request", "d"),
        ):
            mapped = exception_from_error(error_from_exception(exc))
            assert type(mapped) is type(exc)


# ----------------------------------------------------------------------
# Legacy block-request shims
# ----------------------------------------------------------------------
def make_engine(num_users: int = 120, seed: int = 3):
    params = PrivacyParams(p=0.3)
    prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
    database = bernoulli_panel(num_users, 4, rng=np.random.default_rng(seed))
    sketcher = Sketcher(params, prf, sketch_bits=8, rng=np.random.default_rng(seed + 1))
    store = publish_database(
        database, sketcher, [(0, 1), (1, 2, 3)], workers=1, seed=seed
    )
    return QueryEngine(database.schema, store, SketchEstimator(params, prf))


class TestLegacyShims:
    def test_block_request_bytes_are_unchanged(self):
        """The shim emits exactly the historical payload, byte for byte."""
        payload = dumps_block_request((0, 1), [(0, 0), (1, 1)])
        assert payload == json.dumps(
            {
                "format": "repro-block-request",
                "version": 1,
                "subset": [0, 1],
                "values": [[0, 0], [1, 1]],
            }
        )

    def test_handle_returns_error_envelope_for_malformed_payload(self):
        engine = make_engine()
        reply = handle_block_request(engine, "{truncated")
        error = loads_error(reply)
        assert error.code == "malformed_request"
        assert "Traceback" not in error.message

    def test_handle_returns_error_envelope_for_unknown_format(self):
        engine = make_engine()
        reply = handle_block_request(
            engine, json.dumps({"format": "mystery", "version": 1})
        )
        assert loads_error(reply).code == "malformed_request"

    def test_handle_returns_error_envelope_for_wrong_version(self):
        engine = make_engine()
        reply = handle_block_request(
            engine, json.dumps({"format": "repro-block-request", "version": 9})
        )
        assert loads_error(reply).code == "unsupported_version"

    def test_handle_returns_error_envelope_for_missing_sketch(self):
        engine = make_engine()
        request = dumps_block_request((5, 7), [(1, 1)])
        error = loads_error(handle_block_request(engine, request))
        assert error.code == "missing_sketch"
        assert "(5, 7)" in error.message

    def test_handle_success_path_unchanged(self):
        engine = make_engine()
        values = [(0, 0), (0, 1), (1, 0), (1, 1)]
        reply = handle_block_request(engine, dumps_block_request((0, 1), values))
        assert loads_block_response(reply) == engine.counts_block((0, 1), values)
