"""Unit tests for the query AST (literals, conjunctions, plans)."""

from __future__ import annotations

import pytest

from repro.data import Schema
from repro.queries import Conjunction, LinearPlan, Literal, PlanTerm, evaluate_plan


class TestLiteral:
    def test_validation(self):
        with pytest.raises(ValueError):
            Literal(-1, 0)
        with pytest.raises(ValueError):
            Literal(0, 2)

    def test_negation(self):
        literal = Literal(3, 1)
        assert literal.negated == Literal(3, 0)
        assert literal.negated.negated == literal

    def test_str(self):
        assert str(Literal(3, 1)) == "d[3]"
        assert str(Literal(3, 0)) == "!d[3]"


class TestConjunction:
    def test_sorts_literals(self):
        conjunction = Conjunction.of((5, 0), (2, 1))
        assert conjunction.subset == (2, 5)
        assert conjunction.value == (1, 0)

    def test_duplicate_positions_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            Conjunction.of((2, 1), (2, 0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Conjunction(())

    def test_matches(self):
        conjunction = Conjunction.of((0, 1), (2, 0))
        assert conjunction.matches([1, 1, 0])
        assert not conjunction.matches([1, 1, 1])
        assert not conjunction.matches([0, 0, 0])

    def test_equals_builder(self):
        schema = Schema.build(uint={"a": 4})
        conjunction = Conjunction.equals(schema, "a", 5)  # 0101
        assert conjunction.subset == (0, 1, 2, 3)
        assert conjunction.value == (0, 1, 0, 1)

    def test_and_also(self):
        joined = Conjunction.of((0, 1)).and_also(Conjunction.of((3, 0)))
        assert joined.subset == (0, 3)
        assert joined.value == (1, 0)

    def test_and_also_overlap_rejected(self):
        with pytest.raises(ValueError):
            Conjunction.of((0, 1)).and_also(Conjunction.of((0, 0)))

    def test_width(self):
        assert Conjunction.of((0, 1), (4, 0), (9, 1)).width == 3


class TestLinearPlan:
    def make_plan(self):
        return LinearPlan(
            (
                PlanTerm(Conjunction.of((0, 1)), 2.0),
                PlanTerm(Conjunction.of((1, 0), (2, 1)), -1.0),
            ),
            description="demo",
        )

    def test_empty_plan_is_valid_and_answers_zero(self):
        # Unsatisfiable queries (e.g. a < 0) compile to the empty plan.
        plan = LinearPlan((), description="empty")
        assert plan.num_queries == 0
        assert plan.max_width == 0
        assert evaluate_plan(plan, lambda subset, value: 1e9) == 0.0

    def test_num_queries_and_width(self):
        plan = self.make_plan()
        assert plan.num_queries == 2
        assert plan.max_width == 2

    def test_scaled(self):
        plan = self.make_plan().scaled(3.0)
        assert [t.coefficient for t in plan.terms] == [6.0, -3.0]

    def test_addition_concatenates(self):
        plan = self.make_plan() + self.make_plan()
        assert plan.num_queries == 4

    def test_evaluate_plan_weights_counts(self):
        plan = self.make_plan()
        counts = {((0,), (1,)): 10.0, ((1, 2), (0, 1)): 4.0}
        result = evaluate_plan(plan, lambda s, v: counts[(s, v)])
        assert result == pytest.approx(2.0 * 10.0 - 1.0 * 4.0)

    def test_str_contains_description(self):
        assert "demo" in str(self.make_plan())
