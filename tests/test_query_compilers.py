"""Unit tests for the Section 4.1 query compilers.

The key invariant: every compiled plan, executed against the *exact*
ground-truth count oracle, must reproduce the exact typed answer.  That
validates the algebra (eq. 4, the interval decomposition, the combined
constructions) independently of any sketching noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Profile, ProfileDatabase, Schema
from repro.queries import (
    DecisionNode,
    decision_tree_plan,
    equal_and_less_plan,
    evaluate_plan,
    exact_count_fn,
    inner_product_plan,
    less_equal_plan,
    less_than_plan,
    moment_plan,
    range_plan,
    sum_plan,
    sum_where_less_equal_plan,
    sum_where_less_plan,
)


@pytest.fixture
def schema():
    return Schema.build(uint={"a": 5, "b": 5})


@pytest.fixture
def database(schema, rng):
    db = ProfileDatabase(schema)
    for i in range(200):
        db.add_values(
            f"u{i}", {"a": int(rng.integers(0, 32)), "b": int(rng.integers(0, 32))}
        )
    return db


class TestSumPlans:
    def test_sum_plan_exact(self, schema, database):
        plan = sum_plan(schema, "a")
        assert evaluate_plan(plan, exact_count_fn(database)) == pytest.approx(
            database.exact_sum("a")
        )

    def test_sum_plan_costs_k_single_bit_queries(self, schema):
        plan = sum_plan(schema, "a")
        assert plan.num_queries == 5
        assert plan.max_width == 1

    def test_sum_plan_weights_are_powers_of_two(self, schema):
        plan = sum_plan(schema, "a")
        assert sorted(t.coefficient for t in plan.terms) == [1, 2, 4, 8, 16]

    def test_inner_product_exact(self, schema, database):
        plan = inner_product_plan(schema, "a", "b")
        assert evaluate_plan(plan, exact_count_fn(database)) == pytest.approx(
            database.exact_inner_product("a", "b")
        )

    def test_inner_product_costs_k_squared_two_bit_queries(self, schema):
        plan = inner_product_plan(schema, "a", "b")
        assert plan.num_queries == 25
        assert plan.max_width == 2

    def test_inner_product_self_rejected(self, schema):
        with pytest.raises(ValueError):
            inner_product_plan(schema, "a", "a")

    def test_second_moment_exact(self, schema, database):
        plan = moment_plan(schema, "a")
        expected = float((database.attribute_values("a").astype(np.int64) ** 2).sum())
        assert evaluate_plan(plan, exact_count_fn(database)) == pytest.approx(expected)


class TestIntervalPlans:
    @pytest.mark.parametrize("threshold", [1, 7, 13, 21, 31])
    def test_less_than_exact(self, schema, database, threshold):
        plan = less_than_plan(schema, "a", threshold)
        expected = int((database.attribute_values("a") < threshold).sum())
        assert evaluate_plan(plan, exact_count_fn(database)) == pytest.approx(expected)

    @pytest.mark.parametrize("threshold", [0, 1, 7, 13, 31])
    def test_less_equal_exact(self, schema, database, threshold):
        plan = less_equal_plan(schema, "a", threshold)
        expected = int((database.attribute_values("a") <= threshold).sum())
        assert evaluate_plan(plan, exact_count_fn(database)) == pytest.approx(expected)

    def test_cost_is_popcount(self, schema):
        # The paper: "the number of queries ... is equal to how many 1s are
        # in the binary representation of c".
        for threshold in (1, 7, 13, 21, 31):
            plan = less_than_plan(schema, "a", threshold)
            assert plan.num_queries == bin(threshold).count("1")

    def test_less_equal_adds_one_query(self, schema):
        assert (
            less_equal_plan(schema, "a", 13).num_queries
            == less_than_plan(schema, "a", 13).num_queries + 1
        )

    def test_paper_formula_is_strict_inequality(self, schema):
        # Reproduces the paper's off-by-one: its displayed <= formula
        # actually computes <.  Build a database where the distinction
        # matters (mass exactly at the threshold).
        db = ProfileDatabase(schema)
        for i in range(10):
            db.add_values(f"u{i}", {"a": 13, "b": 0})
        strict = evaluate_plan(less_than_plan(schema, "a", 13), exact_count_fn(db))
        loose = evaluate_plan(less_equal_plan(schema, "a", 13), exact_count_fn(db))
        assert strict == pytest.approx(0.0)
        assert loose == pytest.approx(10.0)

    def test_less_than_zero_is_empty_plan(self, schema, database):
        # a < 0 is unsatisfiable: the plan is empty and the answer exactly 0.
        plan = less_than_plan(schema, "a", 0)
        assert plan.num_queries == 0
        assert evaluate_plan(plan, exact_count_fn(database)) == 0.0

    def test_boundary_consistency_at_zero(self, schema, database):
        # <=0 still costs one query and agrees with ground truth; the
        # range [0, high] matches <=high term-for-term.
        loose = less_equal_plan(schema, "a", 0)
        assert loose.num_queries == 1
        expected = int((database.attribute_values("a") <= 0).sum())
        assert evaluate_plan(loose, exact_count_fn(database)) == pytest.approx(expected)
        assert range_plan(schema, "a", 0, 13).terms == less_equal_plan(schema, "a", 13).terms

    @pytest.mark.parametrize("low,high", [(0, 31), (5, 10), (13, 13), (1, 30)])
    def test_range_exact(self, schema, database, low, high):
        plan = range_plan(schema, "a", low, high)
        values = database.attribute_values("a")
        expected = int(((values >= low) & (values <= high)).sum())
        assert evaluate_plan(plan, exact_count_fn(database)) == pytest.approx(expected)

    def test_range_validates_order(self, schema):
        with pytest.raises(ValueError):
            range_plan(schema, "a", 10, 5)


class TestCombinedPlans:
    @pytest.mark.parametrize("value_eq,threshold", [(3, 9), (0, 31), (17, 5)])
    def test_equal_and_less_exact(self, schema, database, value_eq, threshold):
        plan = equal_and_less_plan(schema, "a", value_eq, "b", threshold)
        a = database.attribute_values("a")
        b = database.attribute_values("b")
        expected = int(((a == value_eq) & (b < threshold)).sum())
        assert evaluate_plan(plan, exact_count_fn(database)) == pytest.approx(expected)

    @pytest.mark.parametrize("threshold", [5, 16, 31])
    def test_sum_where_less_exact(self, schema, database, threshold):
        plan = sum_where_less_plan(schema, "b", "a", threshold)
        a = database.attribute_values("a")
        b = database.attribute_values("b")
        expected = float(b[a < threshold].sum())
        assert evaluate_plan(plan, exact_count_fn(database)) == pytest.approx(expected)

    @pytest.mark.parametrize("threshold", [0, 5, 16, 31])
    def test_sum_where_less_equal_exact(self, schema, database, threshold):
        plan = sum_where_less_equal_plan(schema, "b", "a", threshold)
        expected = database.exact_sum_below("a", "b", threshold)
        assert evaluate_plan(plan, exact_count_fn(database)) == pytest.approx(expected)

    def test_cost_matches_paper(self, schema):
        # popcount(c) * k queries for the conditional sum.
        plan = sum_where_less_plan(schema, "b", "a", 21)  # popcount(10101) = 3
        assert plan.num_queries == 3 * 5


class TestDecisionTrees:
    def build_tree(self):
        # (x0 = 1 AND x1 = 0) OR (x0 = 0 AND x2 = 1)
        return DecisionNode.split(
            0,
            if_zero=DecisionNode.split(
                2, if_zero=DecisionNode.leaf(False), if_one=DecisionNode.leaf(True)
            ),
            if_one=DecisionNode.split(
                1, if_zero=DecisionNode.leaf(True), if_one=DecisionNode.leaf(False)
            ),
        )

    def test_plan_matches_classify(self, rng):
        schema = Schema.build(boolean=["x0", "x1", "x2"])
        db = ProfileDatabase(schema)
        matrix = (rng.random((300, 3)) < 0.5).astype(np.int8)
        for i, row in enumerate(matrix):
            db.add(Profile(f"u{i}", row))
        tree = self.build_tree()
        plan = decision_tree_plan(tree)
        expected = sum(tree.classify(row) for row in matrix)
        assert evaluate_plan(plan, exact_count_fn(db)) == pytest.approx(expected)

    def test_one_query_per_accepting_path(self):
        plan = decision_tree_plan(self.build_tree())
        assert plan.num_queries == 2
        assert all(term.coefficient == 1.0 for term in plan.terms)

    def test_degenerate_trees_rejected(self):
        with pytest.raises(ValueError):
            decision_tree_plan(DecisionNode.leaf(True))
        with pytest.raises(ValueError):
            decision_tree_plan(DecisionNode.leaf(False))

    def test_node_validation(self):
        with pytest.raises(ValueError):
            DecisionNode(position=1, accept=True)
        with pytest.raises(ValueError):
            DecisionNode(position=1, if_zero=DecisionNode.leaf(True))
