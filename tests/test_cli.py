"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestBounds:
    def test_prints_all_bounds(self, capsys):
        assert main(["bounds", "--p", "0.25", "--users", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 3.3" in out
        assert "Lemma 3.1" in out
        assert "Lemma 4.1" in out
        assert "81.000" in out  # ((1-.25)/.25)^4

    def test_rejects_bad_p(self, capsys):
        assert main(["bounds", "--p", "0.7"]) == 2
        assert "error" in capsys.readouterr().err

    def test_multi_sketch_ratio(self, capsys):
        main(["bounds", "--p", "0.25", "--sketches", "2"])
        out = capsys.readouterr().out
        assert "6561.000" in out  # 81^2


class TestDemo:
    def test_demo_runs_and_covers_truth(self, capsys):
        assert main(["demo", "--users", "2000", "--width", "2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "estimate" in out
        assert "truth" in out

    def test_demo_validates_arguments(self, capsys):
        assert main(["demo", "--p", "0.9"]) == 2
        assert main(["demo", "--users", "5"]) == 2


class TestExperiments:
    def test_lists_all_nineteen(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in [f"E{i}" for i in range(1, 20)]:
            assert name in out
        assert "--benchmark-only" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
