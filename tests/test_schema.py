"""Unit tests for schemas and bit layout."""

from __future__ import annotations

import pytest

from repro.data import AttributeSpec, Schema


class TestAttributeSpec:
    def test_bool_must_be_one_bit(self):
        with pytest.raises(ValueError):
            AttributeSpec("flag", "bool", 2)

    def test_categorical_needs_cardinality(self):
        with pytest.raises(ValueError):
            AttributeSpec("cat", "categorical", 3, cardinality=1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            AttributeSpec("x", "float", 32)

    def test_max_values(self):
        assert AttributeSpec("f", "bool", 1).max_value == 1
        assert AttributeSpec("u", "uint", 6).max_value == 63
        assert AttributeSpec("c", "categorical", 4, cardinality=10).max_value == 9


class TestSchemaLayout:
    def test_build_and_total_bits(self):
        schema = Schema.build(
            boolean=["smoker"], uint={"salary": 8}, categorical={"state": 50}
        )
        assert schema.total_bits == 1 + 8 + 6  # ceil(log2(50)) = 6
        assert set(schema.names) == {"smoker", "salary", "state"}

    def test_offsets_are_contiguous(self):
        schema = Schema.build(boolean=["a", "b"], uint={"x": 4})
        assert schema.offset("a") == 0
        assert schema.offset("b") == 1
        assert schema.offset("x") == 2
        assert schema.bits("x") == (2, 3, 4, 5)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([AttributeSpec("x", "bool", 1), AttributeSpec("x", "uint", 3)])

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            Schema([])

    def test_unknown_attribute_lookup(self):
        schema = Schema.build(boolean=["a"])
        with pytest.raises(KeyError):
            schema.offset("missing")
        with pytest.raises(KeyError):
            schema.spec("missing")

    def test_contains(self):
        schema = Schema.build(boolean=["a"])
        assert "a" in schema
        assert "b" not in schema


class TestSubsetBuilders:
    @pytest.fixture
    def schema(self):
        return Schema.build(boolean=["flag"], uint={"salary": 6})

    def test_full_attribute_subset(self, schema):
        assert schema.bits("salary") == (1, 2, 3, 4, 5, 6)

    def test_bit_is_one_indexed_msb_first(self, schema):
        # The paper's A_i: i-th *highest* bit.
        assert schema.bit("salary", 1) == 1  # MSB
        assert schema.bit("salary", 6) == 6  # LSB

    def test_prefix_is_highest_bits(self, schema):
        assert schema.prefix("salary", 1) == (1,)
        assert schema.prefix("salary", 3) == (1, 2, 3)
        assert schema.prefix("salary", 6) == schema.bits("salary")

    def test_bit_and_prefix_bounds(self, schema):
        with pytest.raises(ValueError):
            schema.bit("salary", 0)
        with pytest.raises(ValueError):
            schema.bit("salary", 7)
        with pytest.raises(ValueError):
            schema.prefix("salary", 0)
        with pytest.raises(ValueError):
            schema.prefix("salary", 7)
