"""Unit tests for the analytic-bounds and statistics helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (
    bit_flip_is_private,
    bit_flip_max_constant,
    bit_flip_ratio,
    conditioning_sweep,
    empirical_coverage,
    error_quantile,
    fit_exponential_base,
    fit_power_decay,
    mae,
    max_abs_error,
    privacy_ratio_bound,
    rmse,
    sketch_failure_bound,
    sketch_length_bound,
    utility_error_bound,
    utility_tail_bound,
    worst_case_iterations,
)


class TestBoundWrappers:
    def test_sketch_length_matches_params(self):
        assert sketch_length_bound(10**6, 1e-6, 0.3) >= 1

    def test_failure_bound_decreases_in_bits(self):
        values = [sketch_failure_bound(b, 1000, 0.3) for b in (2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_privacy_ratio(self):
        assert privacy_ratio_bound(0.25, 1) == pytest.approx(81.0)

    def test_utility_wrappers(self):
        assert utility_error_bound(10000, 0.05, 0.25) > 0
        assert 0 < utility_tail_bound(0.1, 1000, 0.25) < 1

    def test_worst_case_iterations_formula(self):
        expected = math.log(1000 / 1e-6) / abs(math.log(1 - 0.09))
        assert worst_case_iterations(1000, 1e-6, 0.3) == pytest.approx(expected)

    def test_worst_case_iterations_validation(self):
        with pytest.raises(ValueError):
            worst_case_iterations(0, 0.1, 0.3)
        with pytest.raises(ValueError):
            worst_case_iterations(10, 2.0, 0.3)
        with pytest.raises(ValueError):
            worst_case_iterations(10, 0.1, 0.6)


class TestAppendixB:
    def test_ratio(self):
        assert bit_flip_ratio(0.25) == pytest.approx(3.0)

    def test_privacy_check(self):
        # p = 1/2 - eps/(2(2+eps)) is exactly eps-private (boundary case;
        # checked via the ratio to dodge float round-off at equality).
        epsilon = 0.4
        c = bit_flip_max_constant(epsilon)
        p = 0.5 - c * epsilon
        assert bit_flip_ratio(p) == pytest.approx(1.0 + epsilon)
        # Strictly inside the region it passes the boolean check; a
        # slightly larger constant breaks it.
        assert bit_flip_is_private(0.5 - (c - 0.02) * epsilon, epsilon)
        assert not bit_flip_is_private(0.5 - (c + 0.02) * epsilon, epsilon)

    def test_constant_converges_to_quarter(self):
        # The paper states c <= 1/4; the exact constant 1/(2(2+eps))
        # approaches 1/4 from below as eps -> 0.
        assert bit_flip_max_constant(1e-9) == pytest.approx(0.25, abs=1e-9)
        assert bit_flip_max_constant(0.5) < 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            bit_flip_ratio(0.6)
        with pytest.raises(ValueError):
            bit_flip_is_private(0.3, 0.0)
        with pytest.raises(ValueError):
            bit_flip_max_constant(-1.0)


class TestConditioning:
    def test_sweep_shape(self):
        rows = conditioning_sweep([1, 2, 3], [0.2, 0.3])
        assert len(rows) == 6
        assert {row.p for row in rows} == {0.2, 0.3}

    def test_fitted_base_tracks_inverse_gap(self):
        # Appendix F: base of the exponential growth ~ 1/(1-2p).
        base_02, r2_02 = fit_exponential_base(range(2, 10), 0.2)
        base_04, r2_04 = fit_exponential_base(range(2, 10), 0.4)
        assert base_04 > base_02  # closer to 1/2 -> faster growth
        assert r2_02 > 0.98 and r2_04 > 0.98  # growth really is exponential

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_exponential_base([3], 0.3)


class TestStats:
    def test_error_metrics(self):
        estimates = [1.0, 2.0, 3.0]
        truths = [1.5, 2.0, 5.0]
        assert mae(estimates, truths) == pytest.approx((0.5 + 0 + 2) / 3)
        assert rmse(estimates, truths) == pytest.approx(
            math.sqrt((0.25 + 0 + 4) / 3)
        )
        assert max_abs_error(estimates, truths) == pytest.approx(2.0)

    def test_error_quantile(self):
        errors = np.arange(100) / 100.0
        assert error_quantile(errors, np.zeros(100), 0.95) == pytest.approx(
            0.9405, abs=0.01
        )

    def test_metrics_validate(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            mae([], [])
        with pytest.raises(ValueError):
            error_quantile([1.0], [1.0], quantile=0.0)

    def test_coverage(self):
        truths = [0.5, 0.5, 0.5]
        lows = [0.4, 0.6, 0.0]
        highs = [0.6, 0.7, 1.0]
        assert empirical_coverage(truths, lows, highs) == pytest.approx(2 / 3)

    def test_coverage_validates(self):
        with pytest.raises(ValueError):
            empirical_coverage([0.5], [0.4, 0.3], [0.6, 0.7])
        with pytest.raises(ValueError):
            empirical_coverage([], [], [])

    def test_power_decay_fit_recovers_half(self):
        sizes = np.array([100, 400, 1600, 6400, 25600])
        errors = 3.0 / np.sqrt(sizes)
        fit = fit_power_decay(sizes, errors)
        assert fit.exponent == pytest.approx(-0.5, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_power_decay_validates(self):
        with pytest.raises(ValueError):
            fit_power_decay([100], [0.1])
        with pytest.raises(ValueError):
            fit_power_decay([100, 200], [0.1, -0.1])
