"""Unit tests for the frontier analysis and the §5 relaxed accountant."""

from __future__ import annotations

import pytest

from repro.analysis import capacity_comparison, privacy_utility_frontier
from repro.core import (
    BudgetExceeded,
    PrivacyAccountant,
    PrivacyParams,
    RelaxedPrivacyAccountant,
    p_for_epsilon,
)


class TestFrontier:
    def test_monotone_tradeoff(self):
        points = privacy_utility_frontier((0.1, 0.2, 0.3, 0.4), num_users=10000)
        epsilons = [pt.per_sketch_epsilon for pt in points]
        errors = [pt.query_error for pt in points]
        # Larger p: less leakage, more error.
        assert epsilons == sorted(epsilons, reverse=True)
        assert errors == sorted(errors)

    def test_users_for_one_percent_scales(self):
        points = privacy_utility_frontier((0.1, 0.4), num_users=100)
        assert points[1].users_for_1pct > points[0].users_for_1pct

    def test_validates_users(self):
        with pytest.raises(ValueError):
            privacy_utility_frontier((0.3,), num_users=0)


class TestRelaxedAccountant:
    def test_validates_parameters(self):
        params = PrivacyParams(p=0.4)
        with pytest.raises(ValueError):
            RelaxedPrivacyAccountant(params, epsilon=0.0, delta=0.5)
        with pytest.raises(ValueError):
            RelaxedPrivacyAccountant(params, epsilon=0.5, delta=0.0)

    def test_never_below_deterministic(self):
        for target in (1, 5, 50):
            p = p_for_epsilon(0.5, target)
            params = PrivacyParams(p)
            det = PrivacyAccountant(params, 0.5).max_sketches
            rel = RelaxedPrivacyAccountant(params, 0.5, 1e-9).max_sketches
            assert rel >= det

    def test_quadratic_advantage_at_scale(self):
        # §5: "quadratically more sketches" — the gain over the
        # deterministic ledger grows roughly linearly in the deterministic
        # capacity (relaxed ~ det^2 / constant).
        rows = capacity_comparison(0.5, (100, 1000), delta=1e-9)
        assert rows[0]["relaxed"] > 2 * rows[0]["deterministic"]
        assert rows[1]["gain"] > 5 * rows[0]["gain"]

    def test_ledger_behaviour_matches_deterministic_interface(self):
        params = PrivacyParams(p=p_for_epsilon(0.5, 100))
        accountant = RelaxedPrivacyAccountant(params, 0.5, 1e-6)
        limit = accountant.max_sketches
        accountant.charge("u", limit)
        assert accountant.remaining_sketches("u") == 0
        with pytest.raises(BudgetExceeded):
            accountant.charge("u", 1)
        # other users unaffected
        assert accountant.can_release("v", limit)

    def test_charge_validates_count(self):
        params = PrivacyParams(p=0.49)
        accountant = RelaxedPrivacyAccountant(params, 0.5, 1e-6)
        with pytest.raises(ValueError):
            accountant.charge("u", 0)
        with pytest.raises(ValueError):
            accountant.can_release("u", -1)

    def test_capacity_comparison_validates(self):
        with pytest.raises(ValueError):
            capacity_comparison(0.0, (1,))
        with pytest.raises(ValueError):
            capacity_comparison(0.5, (0,))
