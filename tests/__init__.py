"""Test package marker.

Makes ``tests`` a proper package so pytest imports the suite under a
stable package name and ``from .conftest import make_prf`` resolves from
any working directory.
"""
