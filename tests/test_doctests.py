"""Doctests of the documented deployment modules, run as part of tier 1.

The CI docs job runs the same doctests standalone; running them here too
keeps the examples in the collector/streaming docstrings from rotting
between doc builds.
"""

from __future__ import annotations

import doctest

import repro.core.params
import repro.server.collector
import repro.server.streaming

DOCUMENTED_MODULES = [
    repro.server.collector,
    repro.server.streaming,
    repro.core.params,
]


def test_documented_modules_doctests():
    for module in DOCUMENTED_MODULES:
        result = doctest.testmod(module, verbose=False)
        assert result.failed == 0, f"{module.__name__}: {result.failed} doctest failures"
        assert result.attempted > 0, f"{module.__name__} has no doctests to run"
