"""Unit tests for the Bayesian and dictionary adversaries (E17/E18 logic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    attack_randomized_response,
    attack_retention,
    attack_sketches,
    dictionary_attack_hash,
    dictionary_attack_sketch,
    hash_publish,
    map_success_rate,
    posterior_entropy,
    posterior_from_likelihoods,
    sketch_likelihood,
    sketch_likelihoods,
)
from repro.baselines import RandomizedResponse, RetentionReplacement
from repro.core import Sketcher


class TestBayesMachinery:
    def test_posterior_formula(self):
        result = posterior_from_likelihoods(0.8, 0.2, prior_a=0.5)
        assert result.posterior_a == pytest.approx(0.8)
        assert result.likelihood_ratio == pytest.approx(4.0)
        assert result.map_guess_a

    def test_prior_shapes_posterior(self):
        result = posterior_from_likelihoods(0.8, 0.2, prior_a=0.1)
        expected = 0.8 * 0.1 / (0.8 * 0.1 + 0.2 * 0.9)
        assert result.posterior_a == pytest.approx(expected)

    def test_impossible_observation_keeps_prior(self):
        result = posterior_from_likelihoods(0.0, 0.0, prior_a=0.3)
        assert result.posterior_a == pytest.approx(0.3)
        assert result.advantage == pytest.approx(0.0)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            posterior_from_likelihoods(0.5, 0.5, prior_a=0.0)
        with pytest.raises(ValueError):
            posterior_from_likelihoods(-0.1, 0.5)

    def test_map_success_rate(self):
        results = [
            posterior_from_likelihoods(0.9, 0.1),
            posterior_from_likelihoods(0.1, 0.9),
        ]
        assert map_success_rate(results, [True, False]) == 1.0
        assert map_success_rate(results, [False, True]) == 0.0
        with pytest.raises(ValueError):
            map_success_rate(results, [True])
        with pytest.raises(ValueError):
            map_success_rate([], [])


class TestSketchAttack:
    def test_likelihood_ratio_respects_lemma_33(self, params, prf, rng):
        # The exact two-candidate likelihood ratio of any published sketch
        # must sit inside the ((1-p)/p)^4 band.
        sketcher = Sketcher(params, prf, sketch_bits=6, rng=rng)
        bound = params.privacy_ratio_bound()
        candidate_a = (1, 1, 0)
        candidate_b = (0, 0, 1)
        for i in range(60):
            truth = candidate_a if i % 2 == 0 else candidate_b
            profile = list(truth)
            sketch = sketcher.sketch(f"u{i}", profile, (0, 1, 2))
            lik_a = sketch_likelihood(prf, params, sketch, candidate_a)
            lik_b = sketch_likelihood(prf, params, sketch, candidate_b)
            ratio = lik_a / lik_b
            assert 1.0 / bound - 1e-9 <= ratio <= bound + 1e-9

    def test_sketch_attack_near_blind(self, params, prf, rng):
        # MAP attack on sketches barely beats coin flipping.
        sketcher = Sketcher(params, prf, sketch_bits=6, rng=rng)
        candidate_a = [1, 1, 0, 0]
        candidate_b = [0, 0, 1, 1]
        results, truth = [], []
        for i in range(400):
            holds_a = bool(rng.random() < 0.5)
            profile = candidate_a if holds_a else candidate_b
            sketch = sketcher.sketch(f"u{i}", profile, (0, 1, 2, 3))
            results.append(
                attack_sketches(prf, params, [sketch], candidate_a, candidate_b)
            )
            truth.append(holds_a)
        success = map_success_rate(results, truth)
        # Lemma 3.3 caps the best possible accuracy at
        # bound/(1+bound); with p = 0.3 that's ~0.97, but the *realised*
        # advantage at typical sketches is far smaller.  We assert the
        # posterior never moves beyond the deterministic cap, and that
        # the attack is far from perfect identification.
        bound = params.privacy_ratio_bound()
        cap = bound / (1.0 + bound)
        assert all(result.posterior_a <= cap + 1e-9 for result in results)
        assert success < 0.9

    def test_multi_sketch_attack_composes(self, params, prf, rng):
        # More sketches -> more leakage (still bounded by Cor 3.4).
        sketcher = Sketcher(params, prf, sketch_bits=6, rng=rng)
        candidate_a = [1, 0]
        candidate_b = [0, 1]
        sketches = [
            sketcher.sketch("victim", candidate_a, (0,)),
            sketcher.sketch("victim", candidate_a, (1,)),
        ]
        result = attack_sketches(prf, params, sketches, candidate_a, candidate_b)
        bound = params.privacy_ratio_bound(num_sketches=2)
        assert 1.0 / bound - 1e-9 <= result.likelihood_ratio <= bound + 1e-9


class TestBaselineAttacks:
    def test_retention_attack_identifies_profiles(self, rng):
        # The introduction's example: disjoint candidate vectors, one
        # retained component suffices.
        mechanism = RetentionReplacement(0.8, 10, rng=rng)
        candidate_a = [1, 1, 2, 2, 3, 3]
        candidate_b = [4, 4, 5, 5, 6, 6]
        results, truth = [], []
        for _ in range(300):
            holds_a = bool(rng.random() < 0.5)
            profile = np.array(candidate_a if holds_a else candidate_b)
            observed = mechanism.perturb(profile)
            results.append(attack_retention(mechanism, observed, candidate_a, candidate_b))
            truth.append(holds_a)
        assert map_success_rate(results, truth) > 0.95

    def test_rr_attack_bounded_for_short_vectors(self, rng):
        mechanism = RandomizedResponse(0.3, rng=rng)
        candidate_a = [1, 0]
        candidate_b = [0, 1]
        observed = mechanism.perturb(np.array([candidate_a]))[0]
        result = attack_randomized_response(
            mechanism, observed, candidate_a, candidate_b
        )
        # Hamming distance 2 -> ratio at most ((1-p)/p)^2.
        assert result.likelihood_ratio <= ((0.7 / 0.3) ** 2) + 1e-9

    def test_rr_attack_sharpens_with_width(self, rng):
        # Wide disjoint candidates are nearly identified — flipping's
        # width-dependent weakness.
        mechanism = RandomizedResponse(0.3, rng=rng)
        width = 64
        candidate_a = [1] * width
        candidate_b = [0] * width
        results, truth = [], []
        for _ in range(200):
            holds_a = bool(rng.random() < 0.5)
            profile = np.array([candidate_a if holds_a else candidate_b])
            observed = mechanism.perturb(profile)[0]
            results.append(
                attack_randomized_response(mechanism, observed, candidate_a, candidate_b)
            )
            truth.append(holds_a)
        assert map_success_rate(results, truth) > 0.95

    def test_shape_validation(self, rng):
        mechanism = RandomizedResponse(0.3, rng=rng)
        with pytest.raises(ValueError):
            attack_randomized_response(mechanism, [1, 0], [1], [0])


class TestDictionaryAttack:
    def test_hash_attack_recovers_exactly(self):
        candidates = [tuple(int(b) for b in f"{i:07b}") for i in range(100)]
        secret = candidates[42]
        published = hash_publish(secret)
        assert dictionary_attack_hash(published, candidates) == 42

    def test_hash_attack_out_of_dictionary(self):
        candidates = [(0, 0), (0, 1)]
        assert dictionary_attack_hash(hash_publish((1, 1)), candidates) is None

    def test_salt_does_not_help(self):
        candidates = [(0, 1), (1, 0)]
        published = hash_publish((1, 0), salt=b"public-salt")
        assert dictionary_attack_hash(published, candidates, salt=b"public-salt") == 1

    def test_sketch_posterior_stays_flat(self, params, prf, rng):
        # 100-candidate dictionary: the sketch posterior stays within the
        # Lemma 3.3 band of uniform.
        sketcher = Sketcher(params, prf, sketch_bits=6, rng=rng)
        candidates = [tuple(int(b) for b in f"{i:07b}") for i in range(100)]
        secret = list(candidates[42])
        sketch = sketcher.sketch("victim", secret, tuple(range(7)))
        posterior = dictionary_attack_sketch(prf, params, sketch, candidates)
        bound = params.privacy_ratio_bound()
        uniform = 1.0 / 100
        assert posterior.max() <= uniform * bound + 1e-9
        assert posterior.min() >= uniform / bound - 1e-9
        # The attacker keeps almost all of their initial uncertainty.
        assert posterior_entropy(posterior) > 5.0  # out of log2(100) ~ 6.64

    def test_posterior_prior_handling(self, params, prf, rng):
        sketcher = Sketcher(params, prf, sketch_bits=6, rng=rng)
        sketch = sketcher.sketch("u", [1, 0], (0, 1))
        with pytest.raises(ValueError):
            dictionary_attack_sketch(prf, params, sketch, [])
        with pytest.raises(ValueError):
            dictionary_attack_sketch(
                prf, params, sketch, [(0, 0), (1, 1)], prior=[0.5]
            )
        with pytest.raises(ValueError):
            dictionary_attack_sketch(
                prf, params, sketch, [(0, 0), (1, 1)], prior=[0.9, 0.9]
            )

    def test_entropy_of_uniform(self):
        assert posterior_entropy(np.full(8, 1 / 8)) == pytest.approx(3.0)
        assert posterior_entropy(np.array([1.0, 0.0])) == pytest.approx(0.0)


class TestBatchedLikelihoodParity:
    """The grid-batched attack path must match the scalar path bit for bit."""

    def _sketch(self, params, prf, rng, bits=5):
        sketcher = Sketcher(params, prf, sketch_bits=bits, rng=rng)
        return sketcher.sketch("victim", [1, 0, 1], (0, 1, 2))

    def test_likelihood_matches_scalar_evaluate_loop(self, params, rng):
        from repro.core import BiasedPRF, CounterPRF

        for prf in (BiasedPRF(p=params.p), CounterPRF(p=params.p)):
            sketch = self._sketch(params, prf, rng)
            for candidate in ((1, 0, 1), (0, 1, 1), (0, 0, 0)):
                scalar_bits = [
                    prf.evaluate(sketch.user_id, sketch.subset, candidate, key)
                    for key in range(1 << sketch.num_bits)
                ]
                from repro.core.exact import publish_probability

                expected = publish_probability(
                    1 << sketch.num_bits,
                    sum(scalar_bits),
                    scalar_bits[sketch.key],
                    params.rejection_probability,
                )
                got = sketch_likelihood(prf, params, sketch, candidate)
                assert got == expected

    def test_sketch_likelihoods_matches_per_candidate(self, params, rng):
        from repro.core import BiasedPRF, CounterPRF

        candidates = [tuple(int(b) for b in f"{i:03b}") for i in range(8)]
        for prf in (BiasedPRF(p=params.p), CounterPRF(p=params.p)):
            sketch = self._sketch(params, prf, rng)
            batched = sketch_likelihoods(prf, params, sketch, candidates)
            scalar = np.asarray(
                [
                    sketch_likelihood(prf, params, sketch, candidate)
                    for candidate in candidates
                ]
            )
            np.testing.assert_array_equal(batched, scalar)
        assert sketch_likelihoods(prf, params, sketch, []).shape == (0,)

    def test_dictionary_posterior_matches_scalar_path(self, params, rng):
        from repro.core import CounterPRF

        prf = CounterPRF(p=params.p)
        sketch = self._sketch(params, prf, rng)
        candidates = [tuple(int(b) for b in f"{i:03b}") for i in range(8)]
        posterior = dictionary_attack_sketch(prf, params, sketch, candidates)
        scalar = np.asarray(
            [
                sketch_likelihood(prf, params, sketch, candidate)
                for candidate in candidates
            ]
        )
        np.testing.assert_allclose(posterior, scalar / scalar.sum(), rtol=1e-12)
