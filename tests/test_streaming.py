"""Unit tests for streaming estimation and store merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Sketch, Sketcher
from repro.data import bernoulli_panel
from repro.server import (
    SketchStore,
    StreamingEstimator,
    merge_stores,
    publish_database,
)


class TestStreamingEstimator:
    @pytest.fixture
    def feed(self, params, prf, rng):
        db = bernoulli_panel(3000, 2, density=0.4, rng=rng)
        sketcher = Sketcher(params, prf, sketch_bits=8, rng=rng)
        sketches = [
            sketcher.sketch(p.user_id, p.bits, (0, 1)) for p in db
        ]
        return db, sketches

    def test_matches_batch_estimator_exactly(self, feed, estimator):
        db, sketches = feed
        streaming = StreamingEstimator(estimator)
        streaming.register((0, 1), (1, 1))
        streaming.ingest_many(sketches)
        batch = estimator.estimate(sketches, (1, 1))
        live = streaming.estimate((0, 1), (1, 1))
        assert live.fraction == pytest.approx(batch.fraction)
        assert live.num_users == batch.num_users
        assert live.half_width == pytest.approx(batch.half_width)

    def test_incremental_reads_track_truth(self, feed, estimator):
        db, sketches = feed
        streaming = StreamingEstimator(estimator)
        streaming.register((0, 1), (0, 0))
        truth = db.exact_conjunction((0, 1), (0, 0))
        for sketch in sketches[:500]:
            streaming.ingest(sketch)
        early = streaming.estimate((0, 1), (0, 0))
        streaming.ingest_many(sketches[500:])
        late = streaming.estimate((0, 1), (0, 0))
        assert late.num_users == len(sketches)
        assert abs(late.fraction - truth) <= early.half_width
        assert late.half_width < early.half_width  # CI tightens with data

    def test_multiple_queries_same_subset(self, feed, estimator):
        _, sketches = feed
        streaming = StreamingEstimator(estimator)
        streaming.register((0, 1), (1, 1))
        streaming.register((0, 1), (0, 0))
        updated = streaming.ingest(sketches[0])
        assert updated == 2
        assert len(streaming.registered()) == 2

    def test_unmatched_subset_not_counted(self, feed, estimator):
        _, sketches = feed
        streaming = StreamingEstimator(estimator)
        streaming.register((0,), (1,))
        assert streaming.ingest(sketches[0]) == 0
        with pytest.raises(ValueError, match="no sketches ingested"):
            streaming.estimate((0,), (1,))

    def test_duplicate_ingestion_rejected(self, feed, estimator):
        _, sketches = feed
        streaming = StreamingEstimator(estimator)
        streaming.register((0, 1), (1, 1))
        streaming.ingest(sketches[0])
        with pytest.raises(ValueError, match="already ingested"):
            streaming.ingest(sketches[0])

    def test_unregistered_query_raises(self, estimator):
        streaming = StreamingEstimator(estimator)
        with pytest.raises(KeyError):
            streaming.estimate((0,), (1,))

    def test_register_validates_width(self, estimator):
        streaming = StreamingEstimator(estimator)
        with pytest.raises(ValueError):
            streaming.register((0, 1), (1,))


class TestMergeStores:
    def test_union_of_shards(self, params, prf, rng, estimator):
        db = bernoulli_panel(1000, 1, density=0.5, rng=rng)
        sketcher = Sketcher(params, prf, sketch_bits=8, rng=rng)
        profiles = list(db)
        shard_a, shard_b = SketchStore(), SketchStore()
        for profile in profiles[:500]:
            shard_a.publish(sketcher.sketch(profile.user_id, profile.bits, (0,)))
        for profile in profiles[500:]:
            shard_b.publish(sketcher.sketch(profile.user_id, profile.bits, (0,)))
        merged = merge_stores(shard_a, shard_b)
        assert merged.num_users((0,)) == 1000
        truth = db.exact_conjunction((0,), (1,))
        estimate = estimator.estimate(merged.sketches_for((0,)), (1,))
        assert estimate.fraction == pytest.approx(truth, abs=0.08)

    def test_duplicate_across_shards_rejected(self):
        a, b = SketchStore(), SketchStore()
        a.publish(Sketch("u", (0,), key=0, num_bits=4, iterations=1))
        b.publish(Sketch("u", (0,), key=1, num_bits=4, iterations=1))
        with pytest.raises(ValueError, match="already published"):
            merge_stores(a, b)

    def test_empty_args_rejected(self):
        with pytest.raises(ValueError):
            merge_stores()

    def test_merge_does_not_mutate_inputs(self):
        a = SketchStore()
        a.publish(Sketch("u", (0,), key=0, num_bits=4, iterations=1))
        merged = merge_stores(a)
        merged.publish(Sketch("v", (0,), key=1, num_bits=4, iterations=1))
        assert a.num_users((0,)) == 1


class TestBatchedIngestMany:
    """ingest_many's grouped block path vs the per-sketch scalar path."""

    @pytest.fixture
    def feeds(self, params, prf, rng):
        from repro.core import Sketcher as _Sketcher

        db = bernoulli_panel(400, 3, density=0.4, rng=rng)
        sketcher = _Sketcher(params, prf, sketch_bits=6, rng=rng)
        subsets = [(0, 1), (1, 2)]
        sketches = [
            sketcher.sketch(p.user_id, p.bits, subset)
            for p in db
            for subset in subsets
        ]
        return sketches

    def _fresh(self, estimator):
        streaming = StreamingEstimator(estimator)
        streaming.register((0, 1), (1, 1))
        streaming.register((0, 1), (0, 0))
        streaming.register((1, 2), (1, 0))
        return streaming

    def test_matches_per_sketch_ingestion(self, feeds, estimator):
        batched = self._fresh(estimator)
        scalar = self._fresh(estimator)
        updates_batched = batched.ingest_many(feeds)
        updates_scalar = sum(scalar.ingest(sketch) for sketch in feeds)
        assert updates_batched == updates_scalar
        for subset, value in batched.registered():
            live = batched.estimate(subset, value)
            ref = scalar.estimate(subset, value)
            assert live.fraction == ref.fraction
            assert live.num_users == ref.num_users

    def test_rejected_batch_is_atomic(self, feeds, estimator):
        streaming = self._fresh(estimator)
        streaming.ingest(feeds[0])
        before = {
            key: streaming.estimate(*key).num_users
            for key in streaming.registered()
            if key[0] == feeds[0].subset
        }
        # feeds[0] reappears mid-batch: the whole batch must be rejected
        # without counting the earlier sketches of the batch.
        with pytest.raises(ValueError, match="already ingested"):
            streaming.ingest_many(feeds[1:4] + [feeds[0]])
        after = {
            key: streaming.estimate(*key).num_users
            for key in streaming.registered()
            if key[0] == feeds[0].subset
        }
        assert before == after
        # ...and the rejected sketches were not marked seen: a clean batch
        # of the same sketches now succeeds.
        assert streaming.ingest_many(feeds[1:4]) > 0

    def test_duplicate_within_batch_rejected(self, feeds, estimator):
        streaming = self._fresh(estimator)
        with pytest.raises(ValueError, match="already ingested"):
            streaming.ingest_many([feeds[2], feeds[2]])
        assert streaming.ingest(feeds[2]) > 0
