"""Unit tests for Appendix F combination (and the mixed-bias extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BiasedPRF,
    PrivacyParams,
    SketchEstimator,
    Sketcher,
    combine_mixed_bits,
    combine_sketch_groups,
    combine_virtual_bits,
    condition_number,
    mixed_perturbation_matrix,
    perturbation_matrix,
    solve_weight_counts,
    transition_probability,
    weight_histogram,
)

KEY = b"reproduction-global-key-32bytes!"


class TestTransitionProbability:
    def test_columns_are_distributions(self):
        for k in (1, 3, 6):
            for p in (0.1, 0.3, 0.49):
                for before in range(k + 1):
                    total = sum(
                        transition_probability(k, before, after, p)
                        for after in range(k + 1)
                    )
                    assert total == pytest.approx(1.0)

    def test_single_bit_kernel(self):
        assert transition_probability(1, 1, 1, 0.2) == pytest.approx(0.8)
        assert transition_probability(1, 1, 0, 0.2) == pytest.approx(0.2)
        assert transition_probability(1, 0, 1, 0.2) == pytest.approx(0.2)

    def test_no_noise_is_identity(self):
        for before in range(4):
            for after in range(4):
                expected = 1.0 if before == after else 0.0
                assert transition_probability(3, before, after, 0.0) == pytest.approx(
                    expected
                )

    def test_symmetry_of_full_flip(self):
        # p = 1 maps weight l deterministically to k - l.
        for k in (2, 5):
            for l in range(k + 1):
                assert transition_probability(k, l, k - l, 1.0) == pytest.approx(1.0)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        k, p, before = 5, 0.3, 2
        word = np.array([1, 1, 0, 0, 0])
        flips = rng.random((200000, k)) < p
        after = (word ^ flips).sum(axis=1)
        for target in range(k + 1):
            expected = transition_probability(k, before, target, p)
            assert (after == target).mean() == pytest.approx(expected, abs=0.005)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            transition_probability(-1, 0, 0, 0.2)
        with pytest.raises(ValueError):
            transition_probability(3, 4, 0, 0.2)
        with pytest.raises(ValueError):
            transition_probability(3, 0, 0, 1.2)


class TestPerturbationMatrix:
    def test_shape_and_column_sums(self):
        matrix = perturbation_matrix(4, 0.25)
        assert matrix.shape == (5, 5)
        assert matrix.sum(axis=0) == pytest.approx(np.ones(5))

    def test_condition_grows_with_k(self):
        conditions = [condition_number(k, 0.3) for k in (1, 3, 5, 8)]
        assert conditions == sorted(conditions)

    def test_condition_grows_as_p_approaches_half(self):
        conditions = [condition_number(5, p) for p in (0.1, 0.25, 0.4, 0.45)]
        assert conditions == sorted(conditions)


class TestWeightHistogram:
    def test_counts_correctly(self):
        bits = np.array([[1, 1, 0], [0, 0, 0], [1, 1, 1], [1, 0, 0]])
        histogram = weight_histogram(bits)
        assert histogram == pytest.approx([0.25, 0.25, 0.25, 0.25])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            weight_histogram(np.array([1, 0, 1]))


class TestSolveAndCombine:
    def test_perfect_recovery_without_noise(self):
        x = np.array([0.1, 0.2, 0.3, 0.4])
        y = perturbation_matrix(3, 0.2) @ x
        assert solve_weight_counts(y, 0.2) == pytest.approx(x)

    def test_recovers_all_ones_fraction(self):
        rng = np.random.default_rng(1)
        truth_rows = (rng.random((60000, 3)) < 0.6).astype(int)
        flips = rng.random(truth_rows.shape) < 0.2
        observed = truth_rows ^ flips
        estimate = combine_virtual_bits(observed, 0.2)
        truth = float((truth_rows.sum(axis=1) == 3).mean())
        assert estimate.fraction == pytest.approx(truth, abs=0.02)
        assert estimate.none_fraction == pytest.approx(
            float((truth_rows.sum(axis=1) == 0).mean()), abs=0.02
        )

    def test_weight_distribution_sums_to_one(self):
        rng = np.random.default_rng(2)
        observed = (rng.random((5000, 4)) < 0.5).astype(int)
        estimate = combine_virtual_bits(observed, 0.25)
        assert estimate.weight_distribution.sum() == pytest.approx(1.0)

    def test_clamped_fraction_in_unit_interval(self):
        rng = np.random.default_rng(3)
        observed = (rng.random((50, 6)) < 0.5).astype(int)
        estimate = combine_virtual_bits(observed, 0.45)
        assert 0.0 <= estimate.clamped_fraction <= 1.0


class TestCombineSketchGroups:
    def test_matches_direct_estimate_shape(self, params, prf, estimator):
        rng = np.random.default_rng(4)
        num_users = 4000
        profiles = (rng.random((num_users, 2)) < 0.5).astype(int)
        sketcher = Sketcher(params, prf, sketch_bits=8, rng=rng)
        group0 = [
            sketcher.sketch(f"u{i}", profiles[i], (0,)) for i in range(num_users)
        ]
        group1 = [
            sketcher.sketch(f"u{i}", profiles[i], (1,)) for i in range(num_users)
        ]
        combined = combine_sketch_groups(estimator, [group0, group1], [(1,), (1,)])
        truth = float((profiles.sum(axis=1) == 2).mean())
        assert combined.fraction == pytest.approx(truth, abs=0.06)
        assert combined.num_users == num_users

    def test_rejects_mismatched_groups(self, params, prf, estimator):
        sketcher = Sketcher(params, prf, sketch_bits=6, rng=np.random.default_rng(5))
        group0 = [sketcher.sketch("a", [1, 0], (0,))]
        group1 = [sketcher.sketch("b", [1, 0], (1,))]
        with pytest.raises(ValueError):
            combine_sketch_groups(estimator, [group0, group1], [(1,), (1,)])
        with pytest.raises(ValueError):
            combine_sketch_groups(estimator, [group0], [(1,), (1,)])
        with pytest.raises(ValueError):
            combine_sketch_groups(estimator, [], [])


class TestMixedBias:
    def test_kron_structure(self):
        kernel = mixed_perturbation_matrix(2, 0.2, 1, 0.32)
        expected = np.kron(perturbation_matrix(2, 0.2), perturbation_matrix(1, 0.32))
        assert kernel == pytest.approx(expected)

    def test_recovers_joint_all_ones(self):
        rng = np.random.default_rng(6)
        num_users = 80000
        group1 = (rng.random((num_users, 2)) < 0.7).astype(int)
        group2 = (rng.random((num_users, 1)) < 0.5).astype(int)
        truth = float(
            ((group1.sum(axis=1) == 2) & (group2.sum(axis=1) == 1)).mean()
        )
        p1, p2 = 0.2, 0.32
        noisy1 = group1 ^ (rng.random(group1.shape) < p1)
        noisy2 = group2 ^ (rng.random(group2.shape) < p2)
        estimate = combine_mixed_bits(noisy1, noisy2, p1, p2)
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_empty_group_degenerates_to_single_system(self):
        rng = np.random.default_rng(7)
        bits = (rng.random((20000, 2)) < 0.5).astype(int)
        noisy = bits ^ (rng.random(bits.shape) < 0.25)
        empty = np.zeros((20000, 0), dtype=int)
        single = combine_virtual_bits(noisy, 0.25).fraction
        assert combine_mixed_bits(noisy, empty, 0.25, 0.4) == pytest.approx(single)
        assert combine_mixed_bits(empty, noisy, 0.4, 0.25) == pytest.approx(single)

    def test_rejects_misaligned_rows(self):
        with pytest.raises(ValueError):
            combine_mixed_bits(np.zeros((3, 1)), np.zeros((4, 1)), 0.2, 0.2)

    def test_rejects_double_empty(self):
        with pytest.raises(ValueError):
            combine_mixed_bits(np.zeros((3, 0)), np.zeros((3, 0)), 0.2, 0.2)
