"""Unit tests for Algorithm 1 (the sketching algorithm)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BiasedPRF,
    PrivacyParams,
    Sketch,
    SketchFailure,
    Sketcher,
    TrueRandomOracle,
)

KEY = b"reproduction-global-key-32bytes!"


class TestSketchRecord:
    def test_key_range_enforced(self):
        with pytest.raises(ValueError):
            Sketch("u", (0,), key=256, num_bits=8, iterations=1)

    def test_size_is_num_bits(self):
        sketch = Sketch("u", (0, 3), key=5, num_bits=8, iterations=2)
        assert sketch.size_bits == 8

    def test_evaluate_delegates_to_prf(self):
        prf = BiasedPRF(0.3, global_key=KEY)
        sketch = Sketch("u", (0, 3), key=5, num_bits=8, iterations=2)
        assert sketch.evaluate(prf, (1, 0)) == prf.evaluate("u", (0, 3), (1, 0), 5)


class TestSketcherValidation:
    def test_rejects_bias_mismatch(self):
        with pytest.raises(ValueError):
            Sketcher(PrivacyParams(p=0.3), BiasedPRF(0.25, global_key=KEY))

    def test_rejects_silly_lengths(self):
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(0.3, global_key=KEY)
        with pytest.raises(ValueError):
            Sketcher(params, prf, sketch_bits=0)
        with pytest.raises(ValueError):
            Sketcher(params, prf, sketch_bits=31)

    def test_rejects_non_binary_profile(self):
        params = PrivacyParams(p=0.3)
        sketcher = Sketcher(params, BiasedPRF(0.3, global_key=KEY), sketch_bits=6)
        with pytest.raises(ValueError):
            sketcher.sketch("u", [0, 2, 1], (1,))

    def test_out_of_range_subset_raises(self):
        params = PrivacyParams(p=0.3)
        sketcher = Sketcher(params, BiasedPRF(0.3, global_key=KEY), sketch_bits=6)
        with pytest.raises(IndexError):
            sketcher.sketch("u", [0, 1], (5,))


class TestAlgorithmBehaviour:
    def test_published_key_in_range(self):
        params = PrivacyParams(p=0.3)
        sketcher = Sketcher(
            params, BiasedPRF(0.3, global_key=KEY), sketch_bits=6,
            rng=np.random.default_rng(0),
        )
        for i in range(50):
            sketch = sketcher.sketch(f"u{i}", [1, 0, 1], (0, 1, 2))
            assert 0 <= sketch.key < 64
            assert sketch.subset == (0, 1, 2)
            assert sketch.num_bits == 6

    def test_iterations_within_key_space(self):
        params = PrivacyParams(p=0.3)
        sketcher = Sketcher(
            params, BiasedPRF(0.3, global_key=KEY), sketch_bits=5,
            rng=np.random.default_rng(1),
        )
        for i in range(100):
            sketch = sketcher.sketch(f"u{i}", [1], (0,))
            assert 1 <= sketch.iterations <= 32

    def test_expected_iterations_below_paper_bound(self):
        # §3: expected iterations < (1-p)^2/p^2.
        params = PrivacyParams(p=0.3)
        sketcher = Sketcher(
            params, BiasedPRF(0.3, global_key=KEY), sketch_bits=10,
            rng=np.random.default_rng(2),
        )
        iterations = [
            sketcher.sketch(f"u{i}", [1, 1, 0], (0, 1, 2)).iterations
            for i in range(800)
        ]
        margin = 3 * np.std(iterations) / np.sqrt(len(iterations))
        assert np.mean(iterations) <= params.iteration_bound + margin

    def test_lemma_32_bias_on_true_value(self):
        # Pr[H(id,B,d_B,s) = 1] = 1 - p over the algorithm's randomness.
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(0.3, global_key=KEY)
        sketcher = Sketcher(params, prf, sketch_bits=8, rng=np.random.default_rng(3))
        hits = [
            sketcher.sketch(f"u{i}", [1, 0], (0, 1)).evaluate(prf, (1, 0))
            for i in range(4000)
        ]
        assert np.mean(hits) == pytest.approx(1 - params.p, abs=0.03)

    def test_lemma_32_bias_on_other_values(self):
        # Pr[H(id,B,v,s) = 1] = p for every v != d_B.
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(0.3, global_key=KEY)
        sketcher = Sketcher(params, prf, sketch_bits=8, rng=np.random.default_rng(4))
        for other in [(0, 0), (0, 1), (1, 1)]:
            hits = [
                sketcher.sketch(f"{other}-u{i}", [1, 0], (0, 1)).evaluate(prf, other)
                for i in range(3000)
            ]
            assert np.mean(hits) == pytest.approx(params.p, abs=0.03)

    def test_failure_is_raised_when_keyspace_is_hostile(self):
        # An oracle that always answers 0 forces the rejection branch; with
        # the accept coin also forced to fail, the key space exhausts.
        class ZeroOracle(TrueRandomOracle):
            def _uniform64(self, payload: bytes) -> int:
                return (1 << 64) - 1  # always above any threshold -> 0

        params = PrivacyParams(p=0.3)
        sketcher = Sketcher(params, ZeroOracle(0.3), sketch_bits=3)

        class NoAcceptRng:
            def permutation(self, n):
                return np.arange(n)

            def random(self):
                return 1.0  # never below accept_prob

        sketcher._rng = NoAcceptRng()
        with pytest.raises(SketchFailure):
            sketcher.sketch("u", [1], (0,))

    def test_failure_never_happens_at_recommended_length(self):
        params = PrivacyParams(p=0.3)
        bits = params.sketch_length(num_users=500, failure_prob=1e-9)
        sketcher = Sketcher(
            params, BiasedPRF(0.3, global_key=KEY), sketch_bits=bits,
            rng=np.random.default_rng(5),
        )
        for i in range(500):
            sketcher.sketch(f"u{i}", [0, 1, 1, 0], (0, 1, 2, 3))

    def test_subset_projection(self):
        assert Sketcher._project([1, 0, 1, 1], (0, 2, 3)) == (1, 1, 1)
        assert Sketcher._project([1, 0, 1, 1], (1,)) == (0,)
