"""Property-based tests for the extension modules (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import PrivacyParams, Sketch
from repro.data import ProfileDatabase, Schema, dumps_database, loads_database
from repro.queries import simplex_project
from repro.server import SketchStore, dumps_store, loads_store

BIASES = st.floats(min_value=0.05, max_value=0.45)


class TestSimplexProjectionProperties:
    @given(
        vector=st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            min_size=1, max_size=16,
        )
    )
    def test_output_always_a_distribution(self, vector):
        projected = simplex_project(np.asarray(vector))
        assert projected.min() >= -1e-12
        assert projected.sum() == pytest.approx(1.0)

    @given(
        vector=st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=10
        )
    )
    def test_distribution_is_fixed_point(self, vector):
        values = np.asarray(vector)
        values /= values.sum()
        assert simplex_project(values) == pytest.approx(values, abs=1e-9)

    @given(
        vector=st.lists(
            st.floats(min_value=-3, max_value=3), min_size=2, max_size=10
        ),
        shift=st.floats(min_value=-2, max_value=2),
    )
    def test_shift_invariance(self, vector, shift):
        # Projection onto the simplex is invariant to adding a constant.
        values = np.asarray(vector)
        assert simplex_project(values + shift) == pytest.approx(
            simplex_project(values), abs=1e-9
        )


class TestStoreSerializationProperties:
    @given(
        records=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),   # user index
                st.integers(min_value=0, max_value=3),    # subset choice
                st.integers(min_value=0, max_value=255),  # key
            ),
            min_size=1, max_size=40, unique_by=lambda r: (r[0], r[1]),
        ),
        p=BIASES,
    )
    @settings(max_examples=40)
    def test_round_trip_any_store(self, records, p):
        subsets = [(0,), (1, 2), (3,), (0, 4, 5)]
        store = SketchStore()
        for user_index, subset_choice, key in records:
            store.publish(
                Sketch(
                    f"user-{user_index}",
                    subsets[subset_choice],
                    key=key,
                    num_bits=8,
                    iterations=1,
                )
            )
        loaded, header = loads_store(dumps_store(store, PrivacyParams(p)))
        assert header["p"] == p
        assert set(loaded.subsets) == set(store.subsets)
        for subset in store.subsets:
            original = {(s.user_id, s.key) for s in store.sketches_for(subset)}
            restored = {(s.user_id, s.key) for s in loaded.sketches_for(subset)}
            assert original == restored


class TestDatabaseSerializationProperties:
    @given(
        values=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=0, max_value=63),
            ),
            min_size=1, max_size=25,
        )
    )
    @settings(max_examples=40)
    def test_round_trip_any_database(self, values):
        schema = Schema.build(boolean=["flag"], uint={"x": 6})
        database = ProfileDatabase(schema)
        for index, (flag, x) in enumerate(values):
            database.add_values(f"u{index}", {"flag": flag, "x": x})
        loaded = loads_database(dumps_database(database))
        assert np.array_equal(loaded.matrix(), database.matrix())
        assert loaded.user_ids == database.user_ids
