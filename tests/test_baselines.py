"""Unit tests for the three comparator mechanisms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines import RandomizedResponse, RetentionReplacement, SelectASize


class TestRandomizedResponse:
    def test_validates_p(self):
        for bad in (0.0, 0.5, 0.7):
            with pytest.raises(ValueError):
                RandomizedResponse(bad)

    def test_perturb_flip_rate(self, rng):
        mechanism = RandomizedResponse(0.2, rng=rng)
        original = (rng.random((20000, 4)) < 0.5).astype(int)
        flipped = mechanism.perturb(original)
        assert float((flipped != original).mean()) == pytest.approx(0.2, abs=0.01)

    def test_perturb_rejects_non_binary(self, rng):
        with pytest.raises(ValueError):
            RandomizedResponse(0.2, rng=rng).perturb(np.array([[0, 2]]))

    def test_bit_fraction_recovery(self, rng):
        mechanism = RandomizedResponse(0.3, rng=rng)
        original = (rng.random(50000) < 0.42).astype(int)
        perturbed = mechanism.perturb(original.reshape(-1, 1))[:, 0]
        assert mechanism.estimate_bit_fraction(perturbed) == pytest.approx(
            0.42, abs=0.02
        )

    def test_conjunction_recovery_narrow(self, rng):
        mechanism = RandomizedResponse(0.2, rng=rng)
        original = (rng.random((60000, 2)) < 0.6).astype(int)
        perturbed = mechanism.perturb(original)
        truth = float(((original[:, 0] == 1) & (original[:, 1] == 0)).mean())
        estimate = mechanism.estimate_conjunction(perturbed, (1, 0))
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_privacy_ratio_grows_with_width(self):
        mechanism = RandomizedResponse(0.3)
        single = mechanism.privacy_ratio_bound(1)
        assert mechanism.privacy_ratio_bound(10) == pytest.approx(single**10)

    def test_density_after_perturbation(self):
        mechanism = RandomizedResponse(0.3)
        # Sparse data comes out dense — the paper's critique of flipping.
        assert mechanism.density_after_perturbation(0.01) == pytest.approx(
            0.7 * 0.01 + 0.3 * 0.99
        )

    def test_condition_grows_with_width(self):
        mechanism = RandomizedResponse(0.3)
        conditions = [mechanism.conjunction_condition(k) for k in (1, 4, 8)]
        assert conditions == sorted(conditions)

    def test_published_size_is_profile_width(self):
        assert RandomizedResponse(0.3).published_bits_per_user(128) == 128


class TestRetentionReplacement:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            RetentionReplacement(0.0, 10)
        with pytest.raises(ValueError):
            RetentionReplacement(0.5, 1)

    def test_perturb_keeps_domain(self, rng):
        mechanism = RetentionReplacement(0.8, 6, rng=rng)
        values = rng.integers(0, 6, size=10000)
        perturbed = mechanism.perturb(values)
        assert perturbed.min() >= 0 and perturbed.max() < 6

    def test_perturb_rejects_out_of_domain(self, rng):
        with pytest.raises(ValueError):
            RetentionReplacement(0.8, 4, rng=rng).perturb(np.array([5]))

    def test_retention_rate(self, rng):
        mechanism = RetentionReplacement(0.8, 6, rng=rng)
        values = rng.integers(0, 6, size=50000)
        perturbed = mechanism.perturb(values)
        # match rate = rho + (1 - rho)/D
        expected = 0.8 + 0.2 / 6
        assert float((perturbed == values).mean()) == pytest.approx(expected, abs=0.01)

    def test_point_fraction_recovery(self, rng):
        mechanism = RetentionReplacement(0.7, 8, rng=rng)
        values = np.where(rng.random(60000) < 0.35, 3, 5)
        perturbed = mechanism.perturb(values)
        assert mechanism.estimate_point_fraction(perturbed, 3) == pytest.approx(
            0.35, abs=0.02
        )

    def test_interval_fraction_recovery(self, rng):
        mechanism = RetentionReplacement(0.7, 16, rng=rng)
        values = rng.integers(0, 16, size=60000)
        perturbed = mechanism.perturb(values)
        truth = float((values <= 5).mean())
        assert mechanism.estimate_interval_fraction(perturbed, 5) == pytest.approx(
            truth, abs=0.02
        )

    def test_likelihood_is_a_probability(self, rng):
        mechanism = RetentionReplacement(0.6, 4, rng=rng)
        # Sum over all observable vectors of likelihood = 1.
        candidate = [1, 3]
        total = sum(
            mechanism.likelihood([x, y], candidate)
            for x in range(4)
            for y in range(4)
        )
        assert total == pytest.approx(1.0)

    def test_single_value_ratio_large(self):
        mechanism = RetentionReplacement(0.8, 6)
        assert mechanism.single_value_ratio() > 20  # nowhere near eps-private

    def test_undetectable_probability_vanishes(self):
        mechanism = RetentionReplacement(0.8, 6)
        assert mechanism.undetectable_probability(6) == pytest.approx(0.2**6)


class TestSelectASize:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            SelectASize(0.0, 0.1)
        with pytest.raises(ValueError):
            SelectASize(0.5, 0.5)
        with pytest.raises(ValueError):
            SelectASize(0.2, 0.3)

    def test_perturb_rates(self, rng):
        mechanism = SelectASize(0.8, 0.1, rng=rng)
        original = (rng.random((30000, 5)) < 0.4).astype(int)
        perturbed = mechanism.perturb(original)
        kept = perturbed[original == 1].mean()
        inserted = perturbed[original == 0].mean()
        assert float(kept) == pytest.approx(0.8, abs=0.01)
        assert float(inserted) == pytest.approx(0.1, abs=0.01)

    def test_kernel_columns_are_distributions(self):
        mechanism = SelectASize(0.7, 0.15)
        kernel = mechanism.mixture_kernel(4)
        assert kernel.sum(axis=0) == pytest.approx(np.ones(5))

    def test_itemset_support_recovery(self, rng):
        mechanism = SelectASize(0.85, 0.05, rng=rng)
        # Plant a frequent pair: items 0 and 1 co-occur in 30% of rows.
        num_users = 60000
        rows = np.zeros((num_users, 6), dtype=int)
        planted = rng.random(num_users) < 0.3
        rows[planted, 0] = 1
        rows[planted, 1] = 1
        rows[:, 2] = rng.random(num_users) < 0.2
        perturbed = mechanism.perturb(rows)
        support = mechanism.estimate_itemset_support(perturbed, [0, 1])
        assert support == pytest.approx(0.3, abs=0.02)

    def test_condition_grows_with_itemset_size(self):
        mechanism = SelectASize(0.8, 0.1)
        conditions = [mechanism.itemset_condition(k) for k in (1, 3, 6)]
        assert conditions == sorted(conditions)

    def test_expected_row_size(self):
        mechanism = SelectASize(0.8, 0.01)
        assert mechanism.expected_row_size(3, 1000) == pytest.approx(
            0.8 * 3 + 0.01 * 997
        )

    def test_privacy_ratio_without_insertion_is_infinite(self):
        mechanism = SelectASize(0.8, 0.0)
        assert math.isinf(mechanism.privacy_ratio_bound(1))

    def test_privacy_ratio_compounds(self):
        mechanism = SelectASize(0.8, 0.1)
        single = mechanism.privacy_ratio_bound(1)
        assert mechanism.privacy_ratio_bound(3) == pytest.approx(single**3)
