"""Tests for the counter-mode PRF backend, the Philox core, and the
encoding-injectivity bugfix."""

from __future__ import annotations

import json
import subprocess
import sys
import os

import numpy as np
import pytest

from repro.core import (
    BiasedPRF,
    CounterPRF,
    PrivacyParams,
    SketchEstimator,
    Sketcher,
    TrueRandomOracle,
    encode_input,
    prf_from_spec,
)
from repro.core.philox import (
    philox4x64,
    philox4x64_rows,
    philox4x64_zero_tail,
    uniform_doubles,
)
from repro.data import bernoulli_panel
from repro.server import QueryEngine, publish_database
from repro.server.engine import store_content_hash

from .conftest import GLOBAL_KEY

SUBSET = (0, 2, 5)
VALUES = [(1, 0, 1), (0, 0, 0), (1, 1, 1), (0, 1, 0)]


def make_counter(p: float = 0.3) -> CounterPRF:
    return CounterPRF(p=p, global_key=GLOBAL_KEY)


class TestPhiloxCore:
    def test_matches_numpy_philox_bitwise(self):
        # np.random.Philox increments the counter's low word once before
        # its first block: random_raw(4) at counter c equals the pure
        # block function at (c0+1, c1, c2, c3).
        rng = np.random.default_rng(7)
        for _ in range(25):
            key = rng.integers(0, 2**64, size=2, dtype=np.uint64)
            counter = rng.integers(0, 2**63, size=4, dtype=np.uint64)
            expected = np.random.Philox(counter=counter, key=key).random_raw(4)
            words = philox4x64(
                np.uint64(counter[0] + 1),
                np.uint64(counter[1]),
                np.uint64(counter[2]),
                np.uint64(counter[3]),
                np.uint64(key[0]),
                np.uint64(key[1]),
            )
            assert [int(w) for w in words] == expected.tolist()

    def test_zero_tail_bulk_matches_reference(self):
        rng = np.random.default_rng(8)
        for size in (1, 7, 8191, 8192, 8193, 20000):
            c0 = rng.integers(0, 2**64, size=size, dtype=np.uint64)
            c1 = rng.integers(0, 2**64, size=size, dtype=np.uint64)
            k0 = rng.integers(0, 2**64, size=size, dtype=np.uint64)
            k1 = rng.integers(0, 2**64, size=size, dtype=np.uint64)
            reference = philox4x64(c0, c1, np.uint64(0), np.uint64(0), k0, k1)
            bulk = philox4x64_zero_tail(c0, c1, k0, k1)
            for ref, got in zip(reference, bulk):
                assert np.array_equal(ref, got)

    def test_rows_form_matches_reference(self):
        rng = np.random.default_rng(9)
        users, blocks = 37, 11
        c0 = rng.integers(0, 2**64, size=blocks, dtype=np.uint64)
        c1 = rng.integers(0, 2**64, size=users, dtype=np.uint64)
        k0 = rng.integers(0, 2**64, size=users, dtype=np.uint64)
        k1 = rng.integers(0, 2**64, size=users, dtype=np.uint64)
        rows = philox4x64_rows(c0[None, :], c1[:, None], k0, k1)
        for u in range(users):
            for b in range(blocks):
                reference = philox4x64(
                    c0[b], c1[u], np.uint64(0), np.uint64(0), k0[u], k1[u]
                )
                assert [int(w[u, b]) for w in rows] == [int(w) for w in reference]

    def test_uniform_doubles_in_unit_interval(self):
        words = np.random.default_rng(1).integers(
            0, 2**64, size=1000, dtype=np.uint64
        )
        doubles = uniform_doubles(words)
        assert doubles.min() >= 0.0 and doubles.max() < 1.0


class TestCounterPRFParity:
    def test_evaluate_block_matches_scalar(self):
        prf = make_counter()
        users = [f"u{i}" for i in range(40)] + ["ünïcode-üser"]
        keys = list(range(5, 46))
        block = prf.evaluate_block(users, SUBSET, VALUES, keys)
        for u, (uid, key) in enumerate(zip(users, keys)):
            for j, value in enumerate(VALUES):
                assert block[u, j] == prf.evaluate(uid, SUBSET, value, key)

    def test_full_marginal_fast_path_matches_scalar(self):
        prf = make_counter()
        users = [f"u{i}" for i in range(30)]
        keys = list(range(30))
        values = [tuple(int(b) for b in np.binary_repr(v, 3)) for v in range(8)]
        block = prf.evaluate_block(users, SUBSET, values, keys)
        for u in range(30):
            for j, value in enumerate(values):
                assert block[u, j] == prf.evaluate(users[u], SUBSET, value, keys[u])

    def test_evaluate_keys_matches_scalar(self):
        prf = make_counter()
        keys = list(range(64))
        chunk = prf.evaluate_keys("alice", SUBSET, (1, 0, 1), keys)
        assert chunk.tolist() == [
            prf.evaluate("alice", SUBSET, (1, 0, 1), key) for key in keys
        ]

    def test_evaluate_grid_matches_scalar(self):
        prf = make_counter()
        users = [f"u{i}" for i in range(25)]
        values = [VALUES[i % len(VALUES)] for i in range(25)]
        rows = (np.arange(75, dtype=np.uint64).reshape(25, 3) * 13) % 128
        grid = prf.evaluate_grid(users, SUBSET, values, rows)
        for u in range(25):
            for k in range(3):
                assert grid[u, k] == prf.evaluate(
                    users[u], SUBSET, values[u], int(rows[u, k])
                )

    @pytest.mark.parametrize("user_id", ["bob", "üsér", "名前", "u🙂id", ""])
    def test_base_class_payload_path_matches(self, user_id):
        # The base-class fallbacks hand CounterPRF spliced payloads; the
        # structured parse must evaluate the same point — including ids
        # whose utf-8 byte length differs from their character count.
        prf = make_counter()
        payload = encode_input(user_id, SUBSET, (1, 1, 0), 17)
        word = prf._uniform64(payload)
        assert (1 if word < prf._threshold else 0) == prf.evaluate(
            user_id, SUBSET, (1, 1, 0), 17
        )

    def test_backends_are_distinct_functions(self):
        blake = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
        counter = make_counter()
        users = [f"u{i}" for i in range(200)]
        keys = list(range(200))
        a = blake.evaluate_block(users, SUBSET, VALUES, keys)
        b = counter.evaluate_block(users, SUBSET, VALUES, keys)
        assert not np.array_equal(a, b)

    def test_wide_subsets_rejected(self):
        prf = make_counter()
        subset = tuple(range(63))
        value = (0,) * 63
        with pytest.raises(ValueError, match="62-bit"):
            prf.evaluate("u", subset, value, 1)


class TestCounterPRFStatistics:
    @pytest.mark.parametrize("p", [0.1, 0.25, 0.3, 0.45])
    def test_empirical_bias_within_hoeffding_bound(self, p):
        # N i.i.d. {0,1} draws with mean p: |mean - p| stays inside the
        # delta=1e-6 Hoeffding radius sqrt(log(2/delta) / (2N)) unless the
        # construction is biased.
        prf = CounterPRF(p=p, global_key=GLOBAL_KEY)
        num_users, num_values = 4000, 8
        users = [f"u{i}" for i in range(num_users)]
        keys = list(range(num_users))
        values = [tuple(int(b) for b in np.binary_repr(v, 3)) for v in range(8)]
        bits = prf.evaluate_block(users, (1, 4, 6), values, keys)
        n = num_users * num_values
        radius = np.sqrt(np.log(2 / 1e-6) / (2 * n))
        assert abs(float(bits.mean()) - p) < radius

    def test_distinct_points_look_independent(self):
        # Adjacent counter lanes (value v and v+1) must decorrelate: the
        # correlation of their bit columns stays within sampling noise.
        prf = make_counter()
        users = [f"u{i}" for i in range(5000)]
        keys = list(range(5000))
        values = [(0, 0, 0), (0, 0, 1)]
        bits = prf.evaluate_block(users, SUBSET, values, keys).astype(float)
        correlation = np.corrcoef(bits[:, 0], bits[:, 1])[0, 1]
        assert abs(correlation) < 0.05


class TestCrossProcessDeterminism:
    def test_block_is_bitwise_reproducible_in_a_fresh_process(self):
        prf = make_counter()
        users = [f"u{i}" for i in range(64)]
        keys = list(range(64))
        local = prf.evaluate_block(users, SUBSET, VALUES, keys)
        script = (
            "import sys, json, numpy as np\n"
            f"sys.path.insert(0, {json.dumps(os.path.join(os.path.dirname(os.path.dirname(__file__)), 'src'))})\n"
            "from repro.core import CounterPRF\n"
            f"prf = CounterPRF(p=0.3, global_key={GLOBAL_KEY!r})\n"
            f"users = [f'u{{i}}' for i in range(64)]\n"
            f"block = prf.evaluate_block(users, {SUBSET!r}, {VALUES!r}, list(range(64)))\n"
            "print(json.dumps(block.tolist()))\n"
        )
        output = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, check=True
        )
        assert json.loads(output.stdout) == local.tolist()


class TestSpecs:
    def test_spec_round_trips_both_backends(self):
        for backend in (BiasedPRF, CounterPRF):
            prf = backend(p=0.25, global_key=GLOBAL_KEY)
            rebuilt = prf_from_spec(prf.spec())
            assert type(rebuilt) is backend
            assert rebuilt.p == prf.p
            assert rebuilt.global_key == prf.global_key

    def test_oracle_has_no_spec(self):
        with pytest.raises(TypeError, match="no serializable spec"):
            TrueRandomOracle(p=0.3).spec()

    def test_unknown_algorithm_rejected(self):
        spec = {"algorithm": "md5", "p": 0.3, "global_key": GLOBAL_KEY.hex()}
        with pytest.raises(ValueError, match="unknown PRF algorithm"):
            prf_from_spec(spec)

    def test_malformed_spec_rejected(self):
        with pytest.raises(ValueError, match="malformed PRF spec"):
            prf_from_spec({"algorithm": "counter"})


class TestCacheIdentity:
    def test_backends_hash_to_distinct_cache_domains(self, rng):
        params = PrivacyParams(p=0.3)
        blake = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
        counter = make_counter()
        database = bernoulli_panel(30, 3, rng=rng)
        sketcher = Sketcher(params, blake, sketch_bits=6, rng=np.random.default_rng(0))
        store = publish_database(database, sketcher, [(0, 1)], workers=1, seed=3)
        assert store_content_hash(store, blake) != store_content_hash(store, counter)

    def test_counter_persistent_cache_round_trips(self, tmp_path):
        params = PrivacyParams(p=0.3)
        counter = make_counter()
        database = bernoulli_panel(60, 3, rng=np.random.default_rng(1))
        sketcher = Sketcher(params, counter, sketch_bits=6, rng=np.random.default_rng(0))
        store = publish_database(database, sketcher, [(0, 1)], workers=1, seed=3)
        estimator = SketchEstimator(params, counter)
        engine = QueryEngine(database.schema, store, estimator, cache_dir=tmp_path)
        cold = engine.marginal((0, 1))
        restarted = QueryEngine(database.schema, store, estimator, cache_dir=tmp_path)
        calls = {"n": 0}
        original = counter.evaluate_block

        def counted(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        counter.evaluate_block = counted
        try:
            warm = restarted.marginal((0, 1))
        finally:
            counter.evaluate_block = original
        assert calls["n"] == 0
        assert np.array_equal(cold, warm)

    def test_backends_never_share_cache_directories(self, tmp_path):
        params = PrivacyParams(p=0.3)
        blake = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
        counter = make_counter()
        database = bernoulli_panel(40, 2, rng=np.random.default_rng(2))
        sketcher = Sketcher(params, blake, sketch_bits=6, rng=np.random.default_rng(0))
        store = publish_database(database, sketcher, [(0,)], workers=1, seed=4)
        QueryEngine(
            database.schema, store, SketchEstimator(params, blake), cache_dir=tmp_path
        ).estimate((0,), (1,))
        QueryEngine(
            database.schema, store, SketchEstimator(params, counter), cache_dir=tmp_path
        ).estimate((0,), (1,))
        directories = sorted(
            entry for entry in os.listdir(tmp_path) if entry.startswith("store-")
        )
        assert len(directories) == 2


class TestProvenanceGuard:
    def _store(self):
        params = PrivacyParams(p=0.3)
        prf = CounterPRF(p=0.3, global_key=GLOBAL_KEY)
        database = bernoulli_panel(20, 2, rng=np.random.default_rng(5))
        sketcher = Sketcher(params, prf, sketch_bits=6, rng=np.random.default_rng(0))
        return params, prf, publish_database(
            database, sketcher, [(0, 1)], workers=1, seed=2
        )

    @pytest.mark.parametrize("format", ["jsonl", "columnar"])
    def test_wrong_backend_rejected_on_load(self, tmp_path, format):
        from repro.server import load_store, save_store

        params, counter, store = self._store()
        path = tmp_path / "store.bin"
        save_store(store, path, params, format=format, prf=counter)
        # Matching backend loads fine; the recorded spec survives.
        _, header = load_store(path, expected_prf=counter)
        assert header["prf"]["algorithm"] == "counter"
        with pytest.raises(ValueError, match="different functions"):
            load_store(path, expected_prf=BiasedPRF(p=0.3, global_key=GLOBAL_KEY))

    def test_files_without_spec_stay_loadable(self, tmp_path):
        from repro.server import load_store, save_store

        params, counter, store = self._store()
        path = tmp_path / "store.jsonl"
        save_store(store, path, params)  # no prf recorded (older writer)
        load_store(path, expected_prf=counter)  # nothing to check against


class TestEncodingInjectivityRegression:
    """`_payload_value` used to mask bits with `& 1`, so a value bit of 2
    silently collided with 0 — contradicting encode_input's injectivity."""

    @pytest.mark.parametrize("bad_bit", [2, -1, 7])
    def test_encode_input_rejects_non_binary_bits(self, bad_bit):
        with pytest.raises(ValueError, match="must be 0 or 1"):
            encode_input("u", (0, 1), (1, bad_bit), 3)

    @pytest.mark.parametrize("backend", [BiasedPRF, CounterPRF])
    def test_evaluate_paths_reject_non_binary_bits(self, backend):
        prf = backend(p=0.3, global_key=GLOBAL_KEY)
        with pytest.raises(ValueError, match="must be 0 or 1"):
            prf.evaluate("u", (0, 1), (1, 2), 3)
        with pytest.raises(ValueError, match="must be 0 or 1"):
            prf.evaluate_keys("u", (0, 1), (2, 0), [1, 2])
        with pytest.raises(ValueError, match="must be 0 or 1"):
            prf.evaluate_block(["u"], (0, 1), [(1, 1), (0, 2)], [3])

    def test_oracle_block_path_rejects_non_binary_bits(self):
        oracle = TrueRandomOracle(p=0.3)
        with pytest.raises(ValueError, match="must be 0 or 1"):
            oracle.evaluate_block(["u"], (0,), [(2,)], [1])

    def test_cache_rejects_non_binary_bits(self, rng):
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
        database = bernoulli_panel(20, 2, rng=rng)
        sketcher = Sketcher(params, prf, sketch_bits=6, rng=np.random.default_rng(0))
        store = publish_database(database, sketcher, [(0, 1)], workers=1, seed=1)
        engine = QueryEngine(database.schema, store, SketchEstimator(params, prf))
        with pytest.raises(ValueError, match="must be 0 or 1"):
            engine.estimate((0, 1), (1, 2))
