"""Smoke tests for the example scripts.

Importing each example compiles it and resolves every API reference
without running its (minutes-long, full-scale) ``main``; the quickstart —
the one a new user runs first — is additionally executed end to end.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        names = {path.stem for path in ALL_EXAMPLES}
        assert {
            "quickstart",
            "salary_analytics",
            "privacy_audit",
            "dual_mode_server",
            "frequent_itemsets",
            "streaming_collection",
        } <= names

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.stem)
    def test_example_imports_cleanly(self, path):
        module = load_example(path)
        assert callable(module.main)

    def test_quickstart_runs_end_to_end(self, capsys):
        module = load_example(EXAMPLES_DIR / "quickstart.py")
        module.main()  # asserts internally that the CI covers the truth
        out = capsys.readouterr().out
        assert "OK" in out
