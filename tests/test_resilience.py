"""The self-healing serving tier: retry schedules, circuit breakers,
deadlines, the ops surface, and graceful shutdown.

The failure-handling primitives are pinned property-first: a seeded
:class:`RetryPolicy` must emit the *same* bounded schedule on every
machine (chaos tests are only reproducible if backoff is), and the
:class:`CircuitBreaker` state machine is driven by a fake clock so the
open->half-open->closed walk is exact, not timing-dependent.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BiasedPRF, PrivacyParams, SketchEstimator, Sketcher
from repro.data import bernoulli_panel
from repro.protocol import (
    CountsBlockRequest,
    PingRequest,
    ProtocolError,
    StatusRequest,
    dumps_request,
    loads_request_envelope,
)
from repro.server import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    QueryEngine,
    RemoteQueryEngine,
    RemoteServer,
    RetryPolicy,
    current_deadline,
    deadline_scope,
    publish_database,
    save_store,
    serve_in_thread,
)
from repro.server.resilience import run_with_deadline
from repro.testing import FaultInjectingProxy, FaultSchedule

from .conftest import GLOBAL_KEY

SUBSETS = [(0, 1), (0,), (1,)]


def make_engine(num_users: int = 100, seed: int = 9) -> QueryEngine:
    params = PrivacyParams(p=0.3)
    prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
    database = bernoulli_panel(num_users, 4, rng=np.random.default_rng(seed))
    sketcher = Sketcher(params, prf, sketch_bits=8, rng=np.random.default_rng(seed + 1))
    store = publish_database(database, sketcher, SUBSETS, workers=1, seed=seed)
    return QueryEngine(database.schema, store, SketchEstimator(params, prf))


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        retries=st.integers(min_value=0, max_value=8),
        base=st.floats(min_value=0.001, max_value=1.0),
        jitter=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_schedule_is_deterministic_and_bounded(self, seed, retries, base, jitter):
        policy = RetryPolicy(
            max_retries=retries, base_delay=base, jitter=jitter, seed=seed
        )
        first = policy.schedule("counts_block")
        again = policy.schedule("counts_block")
        assert first == again, "seeded schedule must be reproducible"
        assert len(first) <= retries
        for delay in first:
            assert 0.0 <= delay <= policy.max_delay

    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        budget=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=40)
    def test_budget_caps_total_sleep(self, seed, budget):
        policy = RetryPolicy(
            max_retries=10, base_delay=0.05, jitter=0.3, seed=seed, budget=budget
        )
        assert sum(policy.schedule("any")) <= budget + 1e-9

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(
            max_retries=4, base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0
        )
        assert policy.schedule() == pytest.approx((0.1, 0.2, 0.4, 0.8))

    def test_tokens_decorrelate_schedules(self):
        policy = RetryPolicy(max_retries=5, base_delay=0.1, jitter=0.9, seed=1)
        assert policy.schedule("shard-0") != policy.schedule("shard-1")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers_via_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=5.0, clock=clock)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow(), "open circuit sheds load"
        clock.advance(5.1)
        assert breaker.state == "half_open"
        assert breaker.allow(), "half-open admits exactly one probe"
        assert not breaker.allow(), "second caller is shed while the probe flies"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=2.0, clock=clock)
        breaker.record_failure()
        clock.advance(2.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        # The reset window restarts from the reopen, not the first open.
        clock.advance(2.1)
        assert breaker.state == "half_open"

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=1.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed", "non-consecutive failures never open"

    def test_snapshot_is_json_ready(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=3.0, clock=clock)
        breaker.record_failure()
        snap = breaker.snapshot()
        json.dumps(snap)
        assert snap["state"] == "open"


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.remaining() == pytest.approx(1.0)
        assert not deadline.expired
        clock.advance(0.6)
        assert deadline.remaining() == pytest.approx(0.4)
        clock.advance(0.6)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded):
            deadline.check("dispatch")

    def test_from_ms_round_trip(self):
        clock = FakeClock()
        deadline = Deadline.from_ms(2500, clock=clock)
        assert deadline.remaining_ms() == pytest.approx(2500, abs=1)

    def test_scope_and_thread_handoff(self):
        deadline = Deadline(30.0)
        assert current_deadline() is None
        with deadline_scope(deadline):
            assert current_deadline() is deadline
        assert current_deadline() is None
        # run_with_deadline is how the dispatch pool inherits the scope.
        seen = run_with_deadline(lambda: current_deadline(), deadline)
        assert seen is deadline


# ----------------------------------------------------------------------
# The deadline on the wire
# ----------------------------------------------------------------------
class TestDeadlineEnvelope:
    def test_absent_deadline_is_none_and_version_is_unchanged(self):
        line = dumps_request(CountsBlockRequest.build((0, 1), [(1, 1)]))
        payload = json.loads(line)
        assert payload["version"] == 1
        assert "deadline_ms" not in payload
        _, deadline_s = loads_request_envelope(line)
        assert deadline_s is None

    def test_deadline_rides_the_envelope(self):
        line = dumps_request(
            CountsBlockRequest.build((0, 1), [(1, 1)]), deadline_ms=750
        )
        payload = json.loads(line)
        assert payload["version"] == 1, "deadline is additive, not a version bump"
        assert payload["deadline_ms"] == 750
        request, deadline_s = loads_request_envelope(line)
        assert request.kind == "counts_block"
        assert deadline_s == pytest.approx(0.75)

    @pytest.mark.parametrize("bad", ["1.5s", True, -3, [100]])
    def test_malformed_deadline_is_typed(self, bad):
        payload = json.loads(dumps_request(PingRequest.build()))
        payload["deadline_ms"] = bad
        with pytest.raises(ProtocolError) as excinfo:
            loads_request_envelope(json.dumps(payload))
        assert excinfo.value.code == "malformed_request"


# ----------------------------------------------------------------------
# Server perimeter: ping, status, deadline enforcement
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def engine():
    return make_engine()


@pytest.fixture()
def budget_server(engine):
    # epsilon=5000 with p=0.3 affords ~10 subset releases — plenty for
    # the repeat-query traffic here, while keeping remaining_sketches
    # finite so the no-charge assertions bite.
    server = RemoteServer(engine, {"alice": "sesame"}, epsilon=5000.0)
    with serve_in_thread(server) as (host, port):
        with RemoteQueryEngine(host, port, "sesame") as client:
            yield server, client


class TestOpsSurface:
    def test_ping_round_trips(self, budget_server):
        _, client = budget_server
        assert client.ping() == {"ok": True}

    def test_ping_and_status_charge_no_budget(self, budget_server):
        server, client = budget_server
        before = client.status()["remaining_sketches"]
        for _ in range(3):
            client.ping()
        client.status()
        assert client.status()["remaining_sketches"] == before

    def test_status_reports_counts_uptime_and_kernel(self, budget_server):
        _, client = budget_server
        client.ping()
        client.count((0, 1), (1, 1))
        status = client.status()
        assert status["uptime_s"] >= 0.0
        assert status["request_counts"]["ping"] >= 1
        assert status["request_counts"]["counts_block"] >= 1
        assert status["kernel"] in ("c", "numpy")
        assert "cache" in status

    def test_expired_wire_deadline_is_rejected_before_dispatch(self, budget_server):
        server, client = budget_server
        before = client.status()["remaining_sketches"]
        request = CountsBlockRequest.build((0, 1), [(1, 1)])
        with pytest.raises(DeadlineExceeded):
            client.execute(request, deadline=Deadline.from_ms(0))
        assert client.status()["remaining_sketches"] == before, (
            "a dead-on-arrival request must not charge the accountant"
        )

    def test_generous_deadline_answers_exactly(self, engine, budget_server):
        _, client = budget_server
        expected = engine.counts_block((0, 1), [(1, 1), (0, 0)])
        assert client.execute(
            CountsBlockRequest.build((0, 1), [(1, 1), (0, 0)]),
            deadline=30.0,
        ).result == expected


# ----------------------------------------------------------------------
# Client knobs
# ----------------------------------------------------------------------
class TestClientKnobs:
    def test_deadline_must_be_positive(self):
        # Validation precedes dialing, so no server is needed.
        with pytest.raises(ValueError):
            RemoteQueryEngine("127.0.0.1", 1, "t", deadline=0.0)

    def test_int_retry_becomes_policy(self, engine):
        server = RemoteServer(engine, {"alice": "sesame"})
        with serve_in_thread(server) as (host, port):
            with RemoteQueryEngine(host, port, "sesame", retry=3) as client:
                assert client._retry.max_retries == 3
                assert client.ping() == {"ok": True}

    def test_retries_recover_from_connection_drops(self, engine):
        """Three straight drops, then clean passes: a retry=3 client
        answers bit-identically; a fail-fast client surfaces OSError."""
        expected = engine.count((0, 1), (1, 1))
        server = RemoteServer(engine, {"alice": "sesame"})
        drop_everything = FaultSchedule(
            seed=0,
            weights={action: 0 for action in ("pass", "drop_after", "delay", "truncate", "garbage")},
        )
        with serve_in_thread(server) as (host, port):
            with FaultInjectingProxy(host, port, drop_everything, delay_s=0.0) as dead:
                client = RemoteQueryEngine(*dead.address, "sesame", retry=2, timeout=5.0)
                with pytest.raises(OSError):
                    client.count((0, 1), (1, 1))
                client.close()
            # Against the real server a retrying client answers exactly.
            with RemoteQueryEngine(host, port, "sesame", retry=3, deadline=30.0) as client:
                assert client.count((0, 1), (1, 1)) == expected


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
@pytest.mark.timeout(120)
def test_sigterm_drains_and_removes_ready_file(tmp_path):
    """`repro serve` under SIGTERM: exit code 0, ready-file gone."""
    params = PrivacyParams(p=0.3)
    prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
    database = bernoulli_panel(60, 4, rng=np.random.default_rng(2))
    sketcher = Sketcher(params, prf, sketch_bits=8, rng=np.random.default_rng(3))
    store = publish_database(database, sketcher, SUBSETS, workers=1, seed=2)
    store_path = tmp_path / "store.npz"
    save_store(store, store_path, format="columnar", prf=prf)
    ready = tmp_path / "ready.txt"

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")]
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", str(store_path),
         "--token", "alice=sesame", "--key-seed", "resilience-test",
         "--port", "0", "--ready-file", str(ready)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        for _ in range(200):
            if ready.exists():
                break
            time.sleep(0.1)
        else:
            pytest.fail(f"server never became ready: {proc.stdout.read()[:2000]}")
        host, port = ready.read_text().split()
        with RemoteQueryEngine(host, int(port), "sesame") as client:
            assert client.ping() == {"ok": True}
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0, proc.stdout.read()[:2000]
        assert not ready.exists(), "clean shutdown must remove the ready-file"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
