"""Tests for the object-free multi-subset query path (PR 4).

Three contracts:

* ``SketchStore.aligned_columns`` — the array-level intersection — agrees
  with the materialised ``aligned_groups`` shim exactly;
* the rewired multi-subset queries (``any_of``, ``exactly_l``,
  ``addition_below``, partition-path ``fraction``/``counts_block``,
  ``bit_matrix``) are bitwise/float identical to the pre-refactor object
  path, on randomized stores loaded directly, from JSONL, and from the
  columnar v2 format;
* the persistent-cache controls: bit-packed entries round-trip
  bit-identically, the LRU sweep respects the byte budget and never
  corrupts a concurrently-read entry, budget 0 disables persistence
  cleanly, and prefix-hash migration seeds a grown store's directory only
  from validated column prefixes.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import (
    BiasedPRF,
    PrivacyParams,
    Sketch,
    SketchEstimator,
    Sketcher,
    combine_sketch_groups,
)
from repro.data import Profile, ProfileDatabase, Schema, bernoulli_panel
from repro.queries import Conjunction, disjunction_fraction, exactly_l_fraction
from repro.queries.virtual import addition_interval_fraction
from repro.server import (
    QueryEngine,
    SketchEvaluationCache,
    SketchStore,
    publish_database,
)
from repro.server.engine import store_content_hash
from repro.server.serialization import dumps_store, loads_store

from .conftest import GLOBAL_KEY

P = 0.3


def make_stack(seed: int = 3):
    params = PrivacyParams(p=P)
    prf = BiasedPRF(p=P, global_key=GLOBAL_KEY)
    sketcher = Sketcher(params, prf, sketch_bits=8, rng=np.random.default_rng(seed))
    return params, prf, sketcher


def integer_panel(num_users: int, seed: int) -> ProfileDatabase:
    """Two 3-bit uint attributes — wide enough for addition_below."""
    schema = Schema.build(uint={"a": 3, "b": 3})
    rng = np.random.default_rng(seed)
    matrix = (rng.random((num_users, schema.total_bits)) < 0.5).astype(np.int8)
    return ProfileDatabase(
        schema, [Profile(f"user-{i:04d}", row) for i, row in enumerate(matrix)]
    )


# Subsets: every single bit (Appendix E pipelines) plus two multi-bit
# pieces so (0, 1, 2) partitions as [(0, 1), (2,)].
SUBSETS = [(0,), (1,), (2,), (3,), (4,), (5,), (0, 1), (4, 5)]


def published_store(database, sketcher, seed: int):
    return publish_database(database, sketcher, SUBSETS, workers=1, seed=seed)


def store_variants(store, params):
    """The same store direct, via JSONL, and via columnar v2 (lazy)."""
    return {
        "direct": store,
        "jsonl": loads_store(dumps_store(store, include_iterations=True))[0],
        "columnar": loads_store(
            dumps_store(store, include_iterations=True, format="columnar")
        )[0],
    }


# ----------------------------------------------------------------------
# Object-path reference implementations (the pre-refactor engine code)
# ----------------------------------------------------------------------
def object_fraction(store, estimator, partition, values):
    groups = store.aligned_groups(partition)
    return combine_sketch_groups(estimator, groups, values).clamped_fraction


def object_any_of(store, estimator, queries):
    groups = store.aligned_groups([q.subset for q in queries])
    return disjunction_fraction(estimator, groups, [q.value for q in queries])


def object_bit_matrix(store, estimator, positions, target=1):
    groups = store.aligned_groups([(int(p),) for p in positions])
    return np.column_stack(
        [estimator.evaluations(group, (target,)) for group in groups]
    )


class CountingEstimator(SketchEstimator):
    """Records the user-count of every PRF block call — the cache probe."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.block_calls = 0
        self.call_sizes = []

    def evaluations_block(self, sketches, values):
        self.block_calls += 1
        self.call_sizes.append(len(sketches))
        return super().evaluations_block(sketches, values)

    def evaluations_block_columns(self, subset, user_ids, keys, values):
        self.block_calls += 1
        self.call_sizes.append(len(user_ids))
        return super().evaluations_block_columns(subset, user_ids, keys, values)


class TestAlignedColumns:
    def test_matches_aligned_groups(self):
        params, prf, sketcher = make_stack()
        store = published_store(integer_panel(40, 1), sketcher, seed=11)
        subsets = [(0, 1), (2,), (4, 5)]
        aligned = store.aligned_columns(subsets)
        groups = store.aligned_groups(subsets)
        assert aligned.user_ids == [s.user_id for s in groups[0]]
        for group, index, keys, subset in zip(
            groups, aligned.indices, aligned.keys, subsets
        ):
            assert [s.user_id for s in group] == aligned.user_ids
            assert keys.tolist() == [s.key for s in group]
            column = store.column_for(subset)
            assert [column.user_ids[i] for i in index.tolist()] == aligned.user_ids

    def test_intersection_and_sorted_order(self):
        store = SketchStore()
        for uid in ("c", "a", "b"):
            store.publish(Sketch(uid, (0,), key=0, num_bits=4, iterations=1))
        for uid in ("b", "d", "c"):
            store.publish(Sketch(uid, (1,), key=1, num_bits=4, iterations=1))
        aligned = store.aligned_columns([(0,), (1,)])
        assert aligned.user_ids == ["b", "c"]
        # indices point into each column's own publication order
        assert aligned.indices[0].tolist() == [2, 0]
        assert aligned.indices[1].tolist() == [0, 2]
        assert aligned.keys[0].tolist() == [0, 0]
        assert aligned.keys[1].tolist() == [1, 1]

    def test_missing_subset_and_empty_intersection(self):
        store = SketchStore()
        store.publish(Sketch("a", (0,), key=0, num_bits=4, iterations=1))
        store.publish(Sketch("b", (1,), key=0, num_bits=4, iterations=1))
        with pytest.raises(KeyError, match="no sketches published"):
            store.aligned_columns([(0,), (7,)])
        with pytest.raises(ValueError, match="no user published"):
            store.aligned_columns([(0,), (1,)])

    def test_lazy_columns_stay_lazy(self):
        """The array-level intersection must not materialise Sketch records."""
        params, prf, sketcher = make_stack()
        store = published_store(integer_panel(30, 2), sketcher, seed=12)
        lazy_store = store_variants(store, params)["columnar"]
        assert lazy_store._lazy  # loaded lazily
        lazy_store.aligned_columns([(0,), (1,), (0, 1)])
        assert set(lazy_store._lazy) == set(SUBSETS)  # still lazy, all of them


class TestMultiSubsetParity:
    """Bitwise/float identity of the cache-fed paths vs the object path."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("variant", ["direct", "jsonl", "columnar"])
    def test_any_of_and_bit_matrix_and_exactly_l(self, seed, variant):
        params, prf, sketcher = make_stack(seed + 40)
        database = integer_panel(35 + 7 * seed, seed)
        store = store_variants(
            published_store(database, sketcher, seed=seed + 50), params
        )[variant]
        estimator = SketchEstimator(params, prf)
        engine = QueryEngine(database.schema, store, estimator)

        queries = [Conjunction.of((0, 1), (1, 0)), Conjunction.of((4, 1), (5, 1))]
        assert engine.any_of(queries) == object_any_of(store, estimator, queries)

        positions = [0, 1, 2, 3]
        engine_matrix = engine.bit_matrix(positions)
        object_matrix = object_bit_matrix(store, estimator, positions)
        assert engine_matrix.dtype == object_matrix.dtype
        assert np.array_equal(engine_matrix, object_matrix)
        for l in range(len(positions) + 1):
            assert engine.exactly_l(positions, l) == exactly_l_fraction(
                object_matrix, P, l
            )

    @pytest.mark.parametrize("variant", ["direct", "jsonl", "columnar"])
    def test_addition_below_parity(self, variant):
        params, prf, sketcher = make_stack(77)
        database = integer_panel(40, 9)
        store = store_variants(
            published_store(database, sketcher, seed=60), params
        )[variant]
        estimator = SketchEstimator(params, prf)
        engine = QueryEngine(database.schema, store, estimator)
        schema = database.schema
        for power in (1, 2, 3):
            expected = addition_interval_fraction(
                object_bit_matrix(store, estimator, schema.bits("a")),
                object_bit_matrix(store, estimator, schema.bits("b")),
                P,
                power,
            )
            assert engine.addition_below("a", "b", power) == expected

    @pytest.mark.parametrize("variant", ["direct", "jsonl", "columnar"])
    def test_partition_fraction_and_counts_block_parity(self, variant):
        params, prf, sketcher = make_stack(23)
        database = integer_panel(45, 5)
        store = store_variants(
            published_store(database, sketcher, seed=70), params
        )[variant]
        estimator = SketchEstimator(params, prf)
        engine = QueryEngine(database.schema, store, estimator)
        # (0, 1, 2) is unsketched; exact cover = [(0, 1), (2,)].
        target = (0, 1, 2)
        values = [(1, 0, 1), (0, 0, 0), (1, 1, 1)]
        partition = engine._find_partition(target)
        assert partition == [(0, 1), (2,)]
        for value in values:
            projections = QueryEngine._project_value(target, value, partition)
            assert engine.fraction(target, value) == object_fraction(
                store, estimator, partition, projections
            )
        # Batched partition counts equal the scalar path exactly.
        assert engine.counts_block(target, values) == [
            engine.count(target, value) for value in values
        ]
        assert engine.counts_block(target, []) == []

    def test_partition_counts_block_single_intersection(self):
        """One aligned intersection + one block call per piece, not per value."""
        params, prf, sketcher = make_stack(29)
        database = integer_panel(30, 6)
        store = published_store(database, sketcher, seed=71)
        counting = CountingEstimator(params, prf)
        engine = QueryEngine(database.schema, store, counting)
        values = [(1, 0, 1), (0, 0, 0), (1, 1, 1), (0, 1, 0)]
        engine.counts_block((0, 1, 2), values)
        # Two partition pieces -> exactly two PRF block calls for 4 values.
        assert counting.block_calls == 2
        # Warm repeat: fully cache-fed.
        engine.counts_block((0, 1, 2), values)
        assert counting.block_calls == 2

    def test_warm_multi_subset_queries_need_no_prf(self):
        params, prf, sketcher = make_stack(31)
        database = integer_panel(30, 7)
        store = published_store(database, sketcher, seed=72)
        counting = CountingEstimator(params, prf)
        engine = QueryEngine(database.schema, store, counting)
        queries = [Conjunction.of((0, 1)), Conjunction.of((1, 1))]
        first = engine.any_of(queries)
        cold_calls = counting.block_calls
        assert cold_calls == 2  # one per component subset
        assert engine.any_of(queries) == first
        engine.exactly_l([0, 1], 1)  # same (subset, value) columns: no new calls
        assert counting.block_calls == cold_calls


class TestAlignedMemo:
    def test_intersection_memoised_until_column_grows(self, monkeypatch):
        params, prf, sketcher = make_stack(17)
        database = integer_panel(25, 10)
        store = published_store(database, sketcher, seed=74)
        engine = QueryEngine(database.schema, store, SketchEstimator(params, prf))
        intersections = {"n": 0}
        original = SketchStore.aligned_columns

        def counted(self, subsets):
            intersections["n"] += 1
            return original(self, subsets)

        monkeypatch.setattr(SketchStore, "aligned_columns", counted)
        queries = [Conjunction.of((0, 1)), Conjunction.of((1, 1))]
        before = engine.any_of(queries)
        engine.any_of(queries)
        engine.exactly_l([0, 1], 1)  # same subset tuple -> same memo entry
        assert intersections["n"] == 1
        # Append-only growth of a participating column invalidates it ...
        store.publish(Sketch("late-user", (0,), key=3, num_bits=8, iterations=1))
        after = engine.any_of(queries)
        assert intersections["n"] == 2
        # ... and the recomputed intersection drops the partial user, so
        # the aligned answer is unchanged.
        assert after == before


class TestPartitionMemo:
    def test_partition_search_memoised_until_subsets_change(self, monkeypatch):
        params, prf, sketcher = make_stack(13)
        database = integer_panel(25, 8)
        store = published_store(database, sketcher, seed=73)
        engine = QueryEngine(database.schema, store, SketchEstimator(params, prf))
        searches = {"n": 0}
        original = QueryEngine._search_partition

        def counted(self, target):
            searches["n"] += 1
            return original(self, target)

        monkeypatch.setattr(QueryEngine, "_search_partition", counted)
        engine.fraction((0, 1, 2), (1, 0, 1))
        engine.count((0, 1, 2), (0, 0, 0))
        engine.counts_block((0, 1, 2), [(1, 1, 1)])
        assert searches["n"] == 1
        # Publishing a *new subset* invalidates the memo ...
        store.publish(Sketch("user-0000", (0, 1, 2), key=5, num_bits=8, iterations=1))
        engine.fraction((0, 1, 2), (1, 0, 1))  # now directly sketched: no search
        assert searches["n"] == 1
        # ... and a fresh target searches again.
        engine._find_partition((3, 4))
        assert searches["n"] == 2


class TestCacheControls:
    def make_cached_store(self, num_users=41, seed=3):
        """Odd user count so packbits needs (and validates) its padding."""
        params, prf, sketcher = make_stack(seed)
        database = integer_panel(num_users, seed)
        store = published_store(database, sketcher, seed=seed + 80)
        return params, prf, database, store

    def test_packbits_round_trip_bit_identical(self, tmp_path):
        params, prf, database, store = self.make_cached_store()
        estimator = SketchEstimator(params, prf)
        writer = SketchEvaluationCache(store, estimator, cache_dir=tmp_path)
        memory_bits = writer.bits((0, 1), [(1, 1), (0, 1)])
        counting = CountingEstimator(params, prf)
        reader = SketchEvaluationCache(store, counting, cache_dir=tmp_path)
        disk_bits = reader.bits((0, 1), [(1, 1), (0, 1)])
        assert counting.block_calls == 0
        for memory, disk in zip(memory_bits, disk_bits):
            assert disk.dtype == np.int8
            assert np.array_equal(memory, disk)
        assert reader.stats["hits"] == 2 and reader.stats["misses"] == 0

    def test_budget_zero_disables_persistence_cleanly(self, tmp_path):
        params, prf, database, store = self.make_cached_store()
        estimator = SketchEstimator(params, prf)
        engine = QueryEngine(
            database.schema, store, estimator,
            cache_dir=tmp_path, cache_budget_bytes=0,
        )
        plain = QueryEngine(database.schema, store, estimator)
        assert engine.estimate((0, 1), (1, 1)).fraction == plain.estimate(
            (0, 1), (1, 1)
        ).fraction
        assert list(tmp_path.iterdir()) == []  # nothing created, read, or written

    def test_negative_budget_rejected(self, tmp_path):
        params, prf, database, store = self.make_cached_store()
        with pytest.raises(ValueError, match="cache_budget_bytes"):
            SketchEvaluationCache(
                store, SketchEstimator(params, prf),
                cache_dir=tmp_path, cache_budget_bytes=-1,
            )

    def test_sweep_keeps_directory_within_budget(self, tmp_path):
        params, prf, database, store = self.make_cached_store()
        estimator = SketchEstimator(params, prf)
        cache = SketchEvaluationCache(store, estimator, cache_dir=tmp_path)
        cache.bits((0, 1), [(1, 1)])
        directory = tmp_path / f"store-{store_content_hash(store, prf)}"
        entry_bytes = sum(
            p.stat().st_size for p in directory.iterdir() if p.suffix == ".npy"
        )
        # Budget fits about two entries; querying four values must sweep.
        budget = 2 * entry_bytes + entry_bytes // 2
        capped = SketchEvaluationCache(
            store, estimator, cache_dir=tmp_path, cache_budget_bytes=budget
        )
        capped.bits((0, 1), [(0, 0), (0, 1), (1, 0), (1, 1)])
        total = sum(
            p.stat().st_size for p in directory.iterdir() if p.suffix == ".npy"
        )
        assert total <= budget
        assert (directory / "meta.json").exists()  # meta is never swept
        assert capped.stats["sweeps"] >= 1
        assert capped.stats["swept_entries"] >= 1
        assert capped.stats["swept_bytes"] > 0

    def test_sweep_never_corrupts_concurrent_read(self, tmp_path):
        """An evicted entry stays readable through handles opened before the
        unlink (POSIX semantics — here a sibling's memory-map), and later
        cache reads recompute cleanly."""
        params, prf, database, store = self.make_cached_store()
        estimator = SketchEstimator(params, prf)
        cache = SketchEvaluationCache(store, estimator, cache_dir=tmp_path)
        reference = cache.bits((0, 1), [(1, 1)])[0].copy()
        directory = tmp_path / f"store-{store_content_hash(store, prf)}"
        [entry] = [p for p in directory.iterdir() if p.suffix == ".npy"]
        held = np.load(entry, mmap_mode="r", allow_pickle=False)

        # A one-byte budget evicts everything on the next write.
        capped = SketchEvaluationCache(
            store, estimator, cache_dir=tmp_path, cache_budget_bytes=1
        )
        capped.bits((0, 1), [(0, 0)])
        assert not entry.exists()
        # The concurrently-held mapping still decodes to the exact column.
        num_bits = int.from_bytes(held[:8].tobytes(), "little")
        recovered = np.unpackbits(np.asarray(held[8:]), count=num_bits).astype(np.int8)
        assert np.array_equal(recovered, reference)
        # And a fresh cache simply recomputes the evicted entry.
        counting = CountingEstimator(params, prf)
        fresh = SketchEvaluationCache(store, counting, cache_dir=tmp_path)
        assert np.array_equal(fresh.bits((0, 1), [(1, 1)])[0], reference)
        assert counting.block_calls == 1

    # ------------------------------------------------------------------
    # Prefix-hash migration
    # ------------------------------------------------------------------
    def grown_pair(self, tmp_path, tamper=None):
        """An old cache dir for a 40-user store, plus the same store grown
        to 60 users (append-only tail extension) hashing elsewhere."""
        params, prf, _ = make_stack(5)
        database = integer_panel(60, 14)
        profiles = list(database)
        first = ProfileDatabase(database.schema, profiles[:40])
        extra = ProfileDatabase(database.schema, profiles[40:])

        def fresh_sketcher():
            return Sketcher(
                PrivacyParams(p=P), prf, sketch_bits=8, rng=np.random.default_rng(5)
            )

        old_store = publish_database(first, fresh_sketcher(), SUBSETS, workers=1, seed=90)
        old_engine = QueryEngine(
            database.schema, old_store, SketchEstimator(params, prf), cache_dir=tmp_path
        )
        old_engine.estimate((0, 1), (1, 1))
        old_engine.cache.bits((2,), [(0,), (1,)])
        if tamper is not None:
            tamper(tmp_path / f"store-{store_content_hash(old_store, prf)}")

        grown_store = publish_database(
            first, fresh_sketcher(), SUBSETS, workers=1, seed=90
        )
        publish_database(
            extra, fresh_sketcher(), SUBSETS, store=grown_store, workers=1, seed=91
        )
        return params, prf, database, old_store, grown_store

    def test_grown_store_seeds_from_old_directory(self, tmp_path):
        params, prf, database, old_store, grown_store = self.grown_pair(tmp_path)
        counting = CountingEstimator(params, prf)
        engine = QueryEngine(
            database.schema, grown_store, counting, cache_dir=tmp_path
        )
        estimate = engine.estimate((0, 1), (1, 1))
        # Seeded from the old directory: only the 20-user tail hits the PRF.
        assert counting.call_sizes == [20]
        expected = SketchEstimator(params, prf).evaluations(
            grown_store.sketches_for((0, 1)), (1, 1)
        )
        assert np.array_equal(engine.cache.bits((0, 1), [(1, 1)])[0], expected)
        # The seeded+extended column was re-spilled at full length: a fresh
        # engine answers from the new directory with zero PRF calls.
        warm = CountingEstimator(params, prf)
        warm_engine = QueryEngine(
            database.schema, grown_store, warm, cache_dir=tmp_path
        )
        assert warm_engine.estimate((0, 1), (1, 1)).fraction == estimate.fraction
        assert warm.block_calls == 0
        # Several seeded-prefix values of one subset tail-extend in ONE
        # batched block call over the 20 new rows, not one call per value.
        batched = CountingEstimator(params, prf)
        batch_engine = QueryEngine(
            database.schema, grown_store, batched, cache_dir=tmp_path
        )
        batch_engine.cache.bits((2,), [(0,), (1,)])
        assert batched.call_sizes == [20]
        expected_tail = SketchEstimator(params, prf).evaluations(
            grown_store.sketches_for((2,)), (0,)
        )
        assert np.array_equal(
            batch_engine.cache.bits((2,), [(0,)])[0], expected_tail
        )

    def test_new_subset_growth_seeds_full_columns_and_respills(self, tmp_path):
        """Growth that only *adds subsets* leaves old columns whole: they
        seed at full length, and the new directory re-spills them so it
        survives the old directory's deletion."""
        import shutil

        params, prf, _ = make_stack(5)
        database = integer_panel(40, 21)

        def fresh_sketcher():
            return Sketcher(
                PrivacyParams(p=P), prf, sketch_bits=8, rng=np.random.default_rng(9)
            )

        old_store = publish_database(
            database, fresh_sketcher(), SUBSETS[:4], workers=1, seed=95
        )
        QueryEngine(
            database.schema, old_store, SketchEstimator(params, prf), cache_dir=tmp_path
        ).estimate((0,), (1,))
        old_dir = tmp_path / f"store-{store_content_hash(old_store, prf)}"

        grown_store = publish_database(
            database, fresh_sketcher(), SUBSETS[:4], workers=1, seed=95
        )
        publish_database(
            database, fresh_sketcher(), [SUBSETS[6]], store=grown_store,
            workers=1, seed=96,
        )
        counting = CountingEstimator(params, prf)
        engine = QueryEngine(database.schema, grown_store, counting, cache_dir=tmp_path)
        first = engine.estimate((0,), (1,))
        assert counting.block_calls == 0  # full-length seed, no PRF at all
        # The seeded column was copied into the new directory, so deleting
        # the old one does not cost the evaluations again.
        shutil.rmtree(old_dir)
        warm = CountingEstimator(params, prf)
        restarted = QueryEngine(
            database.schema, grown_store, warm, cache_dir=tmp_path
        )
        assert restarted.estimate((0,), (1,)).fraction == first.fraction
        assert warm.block_calls == 0

    def test_migration_refuses_mismatched_hash(self, tmp_path):
        def tamper(old_dir):
            import json

            meta_path = old_dir / "meta.json"
            meta = json.loads(meta_path.read_text())
            for record in meta["columns"].values():
                record["hash"] = "0" * 32
            meta_path.write_text(json.dumps(meta))

        params, prf, database, old_store, grown_store = self.grown_pair(
            tmp_path, tamper=tamper
        )
        counting = CountingEstimator(params, prf)
        engine = QueryEngine(
            database.schema, grown_store, counting, cache_dir=tmp_path
        )
        engine.estimate((0, 1), (1, 1))
        # Every recorded hash mismatches -> nothing seeds; full recompute.
        assert counting.call_sizes == [60]

    def test_unrelated_store_never_seeds(self, tmp_path):
        params, prf, sketcher = make_stack(5)
        database = integer_panel(40, 14)
        other = published_store(integer_panel(40, 99), sketcher, seed=92)
        QueryEngine(
            database.schema, other, SketchEstimator(params, prf), cache_dir=tmp_path
        ).estimate((0, 1), (1, 1))

        target_store = published_store(
            database,
            Sketcher(params, prf, sketch_bits=8, rng=np.random.default_rng(6)),
            seed=93,
        )
        counting = CountingEstimator(params, prf)
        engine = QueryEngine(
            database.schema, target_store, counting, cache_dir=tmp_path
        )
        engine.estimate((0, 1), (1, 1))
        assert counting.call_sizes == [40]  # no prefix relation, no seeding

    def test_warm_persistent_disjunction_zero_prf_calls(self, tmp_path):
        params, prf, database, store = self.make_cached_store(num_users=30, seed=6)
        queries = [Conjunction.of((0, 1)), Conjunction.of((1, 1)), Conjunction.of((2, 1))]
        cold = CountingEstimator(params, prf)
        first = QueryEngine(database.schema, store, cold, cache_dir=tmp_path).any_of(
            queries
        )
        assert cold.block_calls == 3
        warm = CountingEstimator(params, prf)
        engine = QueryEngine(database.schema, store, warm, cache_dir=tmp_path)
        assert engine.any_of(queries) == first
        assert warm.block_calls == 0
        # exactly_l over the same bits is also fully cache-fed.
        engine.exactly_l([0, 1, 2], 2)
        assert warm.block_calls == 0
