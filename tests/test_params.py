"""Unit tests for the privacy-parameter algebra (Lemma 3.1, Cor 3.4, §3)."""

from __future__ import annotations

import math

import pytest

from repro.core import PrivacyParams, epsilon_for_p, p_for_epsilon
from repro.core.params import p_for_epsilon_corollary


class TestValidation:
    @pytest.mark.parametrize("bad", [0.0, 0.5, -0.1, 1.0, 0.75])
    def test_rejects_out_of_range_p(self, bad):
        with pytest.raises(ValueError):
            PrivacyParams(p=bad)

    @pytest.mark.parametrize("good", [1e-6, 0.1, 0.25, 0.3, 0.49, 0.499999])
    def test_accepts_open_interval(self, good):
        assert PrivacyParams(p=good).p == good


class TestDerivedConstants:
    def test_rejection_probability_formula(self):
        params = PrivacyParams(p=0.25)
        assert params.rejection_probability == pytest.approx((0.25 / 0.75) ** 2)

    def test_rejection_probability_below_one(self):
        for p in (0.05, 0.2, 0.4, 0.49):
            assert 0.0 < PrivacyParams(p).rejection_probability < 1.0

    def test_termination_probability_matches_proof_of_lemma_32(self):
        # Pr[stop per iteration] = p + p^2/(1-p), used in Appendix D.
        params = PrivacyParams(p=0.3)
        expected = 0.3 + 0.3**2 / 0.7
        assert params.termination_probability == pytest.approx(expected)

    def test_expected_iterations_below_paper_bound(self):
        # The paper bounds expected iterations by (1-p)^2/p^2.
        for p in (0.1, 0.25, 0.4):
            params = PrivacyParams(p)
            assert params.expected_iterations <= params.iteration_bound

    def test_debias_denominator(self):
        assert PrivacyParams(p=0.2).debias_denominator == pytest.approx(0.6)


class TestPrivacyBounds:
    def test_single_sketch_ratio_is_fourth_power(self):
        params = PrivacyParams(p=0.25)
        assert params.privacy_ratio_bound() == pytest.approx(3.0**4)

    def test_multi_sketch_ratio_composes_multiplicatively(self):
        params = PrivacyParams(p=0.3)
        single = params.privacy_ratio_bound(1)
        assert params.privacy_ratio_bound(5) == pytest.approx(single**5)

    def test_ratio_monotone_decreasing_in_p(self):
        ratios = [PrivacyParams(p).privacy_ratio_bound() for p in (0.1, 0.2, 0.3, 0.4)]
        assert ratios == sorted(ratios, reverse=True)

    def test_epsilon_is_ratio_minus_one(self):
        params = PrivacyParams(p=0.4)
        assert params.epsilon(3) == pytest.approx(params.privacy_ratio_bound(3) - 1.0)

    def test_invalid_sketch_count(self):
        with pytest.raises(ValueError):
            PrivacyParams(p=0.3).privacy_ratio_bound(0)


class TestCorollary34Conversions:
    def test_exact_inversion_hits_target_ratio(self):
        for epsilon in (0.05, 0.2, 0.5, 2.0):
            for sketches in (1, 4, 16):
                p = p_for_epsilon(epsilon, sketches)
                assert epsilon_for_p(p, sketches) == pytest.approx(epsilon)

    def test_round_trip_is_conservative(self):
        # The exact ratio at the chosen p must respect the target epsilon.
        for epsilon in (0.1, 0.5, 1.0):
            for sketches in (1, 2, 8):
                p = p_for_epsilon(epsilon, sketches)
                achieved = epsilon_for_p(p, sketches)
                assert achieved <= epsilon + 1e-9

    def test_corollary_formula_is_first_order_of_exact(self):
        # The paper's p = 1/2 - eps/(16 l) converges to the exact inversion
        # as eps -> 0 ...
        for sketches in (1, 3):
            exact = p_for_epsilon(1e-4, sketches)
            approx = p_for_epsilon_corollary(1e-4, sketches)
            assert exact == pytest.approx(approx, abs=1e-7)
        # ... but at finite eps it overshoots the target ratio slightly
        # (the "(1 + eps/q)^q ~ 1 + eps" step of the corollary's proof).
        p_approx = p_for_epsilon_corollary(0.1, 1)
        assert epsilon_for_p(p_approx, 1) > 0.1
        assert epsilon_for_p(p_approx, 1) < 0.11

    def test_epsilon_for_p_exact_formula(self):
        assert epsilon_for_p(0.25, 1) == pytest.approx(3.0**4 - 1.0)

    def test_from_epsilon_constructor(self):
        params = PrivacyParams.from_epsilon(0.2, num_sketches=3)
        assert params.epsilon(3) <= 0.2 + 1e-9

    def test_corollary_floors_p_for_huge_epsilon(self):
        assert p_for_epsilon_corollary(1e9) == pytest.approx(1e-6)

    @pytest.mark.parametrize("bad_eps", [0.0, -1.0])
    def test_rejects_nonpositive_epsilon(self, bad_eps):
        with pytest.raises(ValueError):
            p_for_epsilon(bad_eps)
        with pytest.raises(ValueError):
            p_for_epsilon_corollary(bad_eps)


class TestSketchLength:
    def test_ten_bits_suffice_for_practical_use(self):
        # "if p > 1/4, then a 10 bit sketch is sufficient for any
        # foreseeable practical use" — 1e9 users, tau = 1e-9.
        params = PrivacyParams(p=0.26)
        assert params.sketch_length(10**9, 1e-9) <= 10

    def test_length_grows_doubly_logarithmically(self):
        params = PrivacyParams(p=0.3)
        # Squaring the user count should add at most one bit.
        for m in (10**3, 10**6):
            assert params.sketch_length(m**2) <= params.sketch_length(m) + 1

    def test_failure_bound_respected_at_recommended_length(self):
        params = PrivacyParams(p=0.3)
        for m, tau in ((1000, 1e-6), (10**6, 1e-3)):
            bits = params.sketch_length(m, tau)
            assert params.failure_probability(bits, m) <= tau * 1.0000001

    def test_failure_probability_decreases_in_bits(self):
        params = PrivacyParams(p=0.2)
        probs = [params.failure_probability(b) for b in range(1, 12)]
        assert probs == sorted(probs, reverse=True)

    def test_rejects_bad_inputs(self):
        params = PrivacyParams(p=0.3)
        with pytest.raises(ValueError):
            params.sketch_length(0)
        with pytest.raises(ValueError):
            params.sketch_length(10, failure_prob=0.0)
        with pytest.raises(ValueError):
            params.failure_probability(0)


class TestUtilityBounds:
    def test_tail_formula(self):
        params = PrivacyParams(p=0.25)
        expected = math.exp(-(0.1**2) * (0.5**2) * 1000 / 4)
        assert params.utility_tail(0.1, 1000) == pytest.approx(expected)

    def test_error_shrinks_at_root_m_rate(self):
        params = PrivacyParams(p=0.25)
        error_1k = params.utility_error(1000)
        error_4k = params.utility_error(4000)
        assert error_4k == pytest.approx(error_1k / 2.0)

    def test_error_blows_up_as_p_approaches_half(self):
        errors = [PrivacyParams(p).utility_error(1000) for p in (0.1, 0.3, 0.45, 0.49)]
        assert errors == sorted(errors)

    def test_rejects_bad_inputs(self):
        params = PrivacyParams(p=0.3)
        with pytest.raises(ValueError):
            params.utility_tail(-0.1, 100)
        with pytest.raises(ValueError):
            params.utility_error(0)
        with pytest.raises(ValueError):
            params.utility_error(100, delta=1.5)
