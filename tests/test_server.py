"""Unit tests for the collector, query engine and Appendix A server."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PrivacyAccountant, PrivacyParams, Sketch, Sketcher
from repro.data import ProfileDatabase, Schema, bernoulli_panel, salary_table
from repro.queries import Conjunction, DecisionNode
from repro.server import (
    DualModeServer,
    MissingSketchError,
    QueryBudgetExhausted,
    QueryEngine,
    SketchStore,
    SulqServer,
    attribute_subsets,
    per_bit_subsets,
    prefix_subsets,
    publish_database,
)

from .conftest import make_prf


class TestSketchStore:
    def test_publish_and_retrieve(self):
        store = SketchStore()
        sketch = Sketch("u", (0, 1), key=3, num_bits=4, iterations=1)
        store.publish(sketch)
        assert store.has_subset((0, 1))
        assert store.num_users((0, 1)) == 1
        assert store.sketches_for((0, 1)) == [sketch]

    def test_double_publish_rejected(self):
        store = SketchStore()
        store.publish(Sketch("u", (0,), key=0, num_bits=4, iterations=1))
        with pytest.raises(ValueError, match="already published"):
            store.publish(Sketch("u", (0,), key=1, num_bits=4, iterations=1))

    def test_missing_subset_raises(self):
        with pytest.raises(KeyError):
            SketchStore().sketches_for((0,))

    def test_aligned_groups_intersect_users(self):
        store = SketchStore()
        for uid in ("a", "b", "c"):
            store.publish(Sketch(uid, (0,), key=0, num_bits=4, iterations=1))
        for uid in ("b", "c", "d"):
            store.publish(Sketch(uid, (1,), key=0, num_bits=4, iterations=1))
        groups = store.aligned_groups([(0,), (1,)])
        assert [s.user_id for s in groups[0]] == ["b", "c"]
        assert [s.user_id for s in groups[1]] == ["b", "c"]

    def test_aligned_groups_no_common_users(self):
        store = SketchStore()
        store.publish(Sketch("a", (0,), key=0, num_bits=4, iterations=1))
        store.publish(Sketch("b", (1,), key=0, num_bits=4, iterations=1))
        with pytest.raises(ValueError):
            store.aligned_groups([(0,), (1,)])

    def test_total_published_bits(self):
        store = SketchStore()
        store.publish(Sketch("a", (0,), key=0, num_bits=8, iterations=1))
        store.publish(Sketch("a", (1,), key=0, num_bits=8, iterations=1))
        assert store.total_published_bits() == 16


class TestPolicies:
    def test_per_bit(self):
        schema = Schema.build(uint={"a": 3})
        assert per_bit_subsets(schema) == [(0,), (1,), (2,)]

    def test_attribute(self):
        schema = Schema.build(boolean=["f"], uint={"a": 3})
        assert attribute_subsets(schema) == [(0,), (1, 2, 3)]
        assert attribute_subsets(schema, ["a"]) == [(1, 2, 3)]

    def test_prefix(self):
        schema = Schema.build(uint={"a": 3})
        assert prefix_subsets(schema, "a") == [(0,), (0, 1), (0, 1, 2)]


class TestPublishDatabase:
    def test_publishes_every_user_and_subset(self, params, prf, rng):
        db = bernoulli_panel(30, 4, rng=rng)
        sketcher = Sketcher(params, prf, sketch_bits=6, rng=rng)
        store = publish_database(db, sketcher, [(0,), (1, 2)])
        assert store.num_users((0,)) == 30
        assert store.num_users((1, 2)) == 30

    def test_accountant_enforced(self, params, prf, rng):
        db = bernoulli_panel(5, 4, rng=rng)
        sketcher = Sketcher(params, prf, sketch_bits=6, rng=rng)
        accountant = PrivacyAccountant(params, epsilon=1e9)
        publish_database(db, sketcher, [(0,), (1,)], accountant=accountant)
        assert accountant.spent(db.user_ids[0]).num_sketches == 2

    def test_accountant_blocks_over_release(self, rng):
        # epsilon so small even one sketch at p=0.3 is too many.
        params = PrivacyParams(p=0.3)
        prf = make_prf(0.3)
        db = bernoulli_panel(3, 2, rng=rng)
        sketcher = Sketcher(params, prf, sketch_bits=6, rng=rng)
        accountant = PrivacyAccountant(params, epsilon=0.1)
        from repro.core import BudgetExceeded

        with pytest.raises(BudgetExceeded):
            publish_database(db, sketcher, [(0,)], accountant=accountant)


class TestQueryEngine:
    @pytest.fixture
    def setup(self, params, prf, rng, estimator):
        db = salary_table(2500, bits=5, attributes=("a", "b"), rng=rng)
        sketcher = Sketcher(params, prf, sketch_bits=8, rng=rng)
        subsets = list(
            dict.fromkeys(
                per_bit_subsets(db.schema)
                + prefix_subsets(db.schema, "a")
                + attribute_subsets(db.schema)
            )
        )
        store = publish_database(db, sketcher, subsets)
        engine = QueryEngine(db.schema, store, estimator)
        return db, engine

    def test_direct_estimate_with_ci(self, setup):
        db, engine = setup
        subset = db.schema.bits("a")
        value = (0, 1, 0, 1, 1)
        result = engine.estimate(subset, value)
        assert result.covers(db.exact_conjunction(subset, value))

    def test_missing_subset_raises(self, setup):
        _, engine = setup
        with pytest.raises(MissingSketchError):
            engine.estimate((99,), (1,))

    def test_fraction_falls_back_to_partition(self, setup):
        db, engine = setup
        # bits of b at positions (b1, b2): each bit sketched individually;
        # the pair subset was never sketched directly.
        positions = (db.schema.bit("b", 1), db.schema.bit("b", 2))
        assert not engine.store.has_subset(positions)
        truth = db.exact_conjunction(positions, (0, 0))
        assert engine.fraction(positions, (0, 0)) == pytest.approx(truth, abs=0.08)

    def test_unpartitionable_subset_raises(self, setup, params, prf, estimator):
        db, engine = setup
        # Remove everything and keep only a pair subset that cannot cover
        # a requested triple.
        store = SketchStore()
        store.publish(Sketch("u", (0, 1), key=0, num_bits=4, iterations=1))
        lonely = QueryEngine(db.schema, store, estimator)
        with pytest.raises(MissingSketchError):
            lonely.fraction((0, 1, 2), (1, 1, 1))

    def test_sum_and_mean(self, setup):
        db, engine = setup
        tolerance = 0.15 * db.exact_sum("a") + 200
        assert engine.sum("a") == pytest.approx(db.exact_sum("a"), abs=tolerance)
        assert engine.mean("a") == pytest.approx(
            db.exact_mean("a"), abs=tolerance / len(db)
        )

    def test_variance(self, setup):
        db, engine = setup
        truth = float(np.var(db.attribute_values("a")))
        estimate = engine.variance("a")
        assert estimate == pytest.approx(truth, rel=0.5)
        assert estimate >= 0.0

    def test_interval_queries(self, setup):
        db, engine = setup
        truth = db.exact_interval("a", 11) * len(db)
        assert engine.count_less_equal("a", 11) == pytest.approx(truth, abs=450)

    def test_conjunction_helper(self, setup):
        db, engine = setup
        query = Conjunction.equals(db.schema, "a", 7)
        truth = db.exact_conjunction(query.subset, query.value)
        assert engine.conjunction(query) == pytest.approx(truth, abs=0.08)

    def test_decision_tree(self, setup):
        db, engine = setup
        bit = db.schema.bit("a", 1)
        tree = DecisionNode.split(
            bit, if_zero=DecisionNode.leaf(True), if_one=DecisionNode.leaf(False)
        )
        truth = float(np.mean([tree.classify(p.bits) for p in db]))
        assert engine.decision_tree(tree) == pytest.approx(truth, abs=0.08)

    def test_bit_matrix_requires_per_bit_policy(self, setup, estimator):
        db, _ = setup
        store = SketchStore()
        store.publish(Sketch("u", (0, 1), key=0, num_bits=4, iterations=1))
        engine = QueryEngine(db.schema, store, estimator)
        with pytest.raises(MissingSketchError):
            engine.bit_matrix([0, 1])

    def test_exactly_l(self, setup):
        db, engine = setup
        positions = db.schema.bits("a")[:3]
        truth = float(
            np.mean(
                [sum(p.bits[pos] for pos in positions) == 1 for p in db]
            )
        )
        estimate = engine.exactly_l(positions, 1)
        assert estimate == pytest.approx(truth, abs=0.12)


class TestSulqServer:
    def test_validates_noise(self, rng):
        db = bernoulli_panel(100, 3, rng=rng)
        with pytest.raises(ValueError):
            SulqServer(db, noise_magnitude=0.0, rng=rng)
        with pytest.raises(ValueError):
            SulqServer(db, noise_magnitude=50.0, rng=rng)  # > sqrt(100)

    def test_budget_is_min_of_e2_and_m(self, rng):
        db = bernoulli_panel(100, 3, rng=rng)
        assert SulqServer(db, 5.0, rng=rng).query_budget == 25
        assert SulqServer(db, 10.0, rng=rng).query_budget == 100

    def test_budget_exhaustion(self, rng):
        db = bernoulli_panel(100, 3, rng=rng)
        server = SulqServer(db, 2.0, rng=rng)
        for _ in range(server.query_budget):
            server.count((0,), (1,))
        with pytest.raises(QueryBudgetExhausted):
            server.count((0,), (1,))

    def test_noise_magnitude(self, rng):
        db = bernoulli_panel(2500, 3, rng=rng)
        server = SulqServer(db, 10.0, rng=rng)
        exact = db.exact_count((0,), (1,))
        answers = [server.count((0,), (1,)) for _ in range(100)]
        assert np.std(answers) == pytest.approx(10.0, rel=0.35)
        assert np.mean(answers) == pytest.approx(exact, abs=5.0)

    def test_audit_log(self, rng):
        db = bernoulli_panel(100, 3, rng=rng)
        server = SulqServer(db, 5.0, rng=rng)
        server.count((0,), (1,))
        assert len(server.audit_log) == 1
        assert server.audit_log[0].mode == "paid"


class TestDualModeServer:
    @pytest.fixture
    def server(self, params, prf, rng, estimator):
        db = bernoulli_panel(900, 4, density=0.4, rng=rng)
        sketcher = Sketcher(params, prf, sketch_bits=8, rng=rng)
        return (
            db,
            DualModeServer(
                db, sketcher, estimator,
                subsets=[(0,), (1,), (0, 1)],
                noise_magnitude=10.0, rng=rng,
            ),
        )

    def test_free_mode_unlimited(self, server):
        db, dual = server
        exact = db.exact_count((0, 1), (1, 1))
        for _ in range(dual.paid.query_budget + 10):
            answer = dual.count((0, 1), (1, 1), mode="free")
        assert answer == pytest.approx(exact, abs=0.25 * len(db))

    def test_paid_mode_budgeted(self, server):
        _, dual = server
        for _ in range(dual.paid.query_budget):
            dual.count((0,), (1,), mode="paid")
        with pytest.raises(QueryBudgetExhausted):
            dual.count((0,), (1,), mode="paid")

    def test_unknown_mode(self, server):
        _, dual = server
        with pytest.raises(ValueError):
            dual.count((0,), (1,), mode="premium")

    def test_free_mode_unknown_subset(self, server):
        _, dual = server
        with pytest.raises(KeyError):
            dual.count((2, 3), (1, 1), mode="free")

    def test_combined_audit_log(self, server):
        _, dual = server
        dual.count((0,), (1,), mode="free")
        dual.count((0,), (1,), mode="paid")
        modes = {record.mode for record in dual.audit_log}
        assert modes == {"free", "paid"}
