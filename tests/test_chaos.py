"""The chaos parity suite: seeded fault injection against live servers.

The contract under chaos is *exactness or a typed refusal*: with a
:class:`~repro.testing.faults.FaultInjectingProxy` mangling the wire —
dropped connections, replies delayed past the deadline, truncated
lines, garbage bytes — every request either returns the bit-identical
answer the local engine gives, or raises one of the mapped error types.
Never a hang, never a silently corrupt partial.  And the self-healing
bar: after a worker is SIGKILLed or wedged (SIGSTOP), the watchdog
restores full exactness with zero operator action, rejoining the
worker *warm* from its persistent cache (no new PRF calls for repeat
queries — strictly less cold work than a cold boot).
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core import (
    BiasedPRF,
    CounterPRF,
    PrivacyParams,
    SketchEstimator,
    Sketcher,
    kernels,
)
from repro.data import bernoulli_panel
from repro.protocol import CountsBlockRequest, ProtocolError, RemoteQueryError
from repro.server import (
    DeadlineExceeded,
    QueryEngine,
    RemoteQueryEngine,
    RemoteServer,
    ShardUnavailableError,
    ShardedService,
    publish_database,
    serve_in_thread,
)
from repro.testing import FaultInjectingProxy, FaultSchedule

from .conftest import GLOBAL_KEY

SUBSETS = [(0, 1), (0,), (1,), (2,)]

#: The full set of refusals a chaos-era client may observe.  Anything
#: else (a hang, a raw traceback, an unparseable partial) is a bug.
TYPED_ERRORS = (
    DeadlineExceeded,
    ShardUnavailableError,
    RemoteQueryError,
    ProtocolError,
    ConnectionError,
    OSError,
)

QUERY_CYCLE = [
    ((0, 1), [(1, 1), (0, 0)]),
    ((0,), [(1,), (0,)]),
    ((1,), [(1,)]),
    ((2,), [(0,)]),
]


def make_engine(prf_cls, num_users: int = 90, seed: int = 13) -> QueryEngine:
    params = PrivacyParams(p=0.3)
    prf = prf_cls(p=0.3, global_key=GLOBAL_KEY)
    database = bernoulli_panel(num_users, 3, rng=np.random.default_rng(seed))
    sketcher = Sketcher(params, prf, sketch_bits=8, rng=np.random.default_rng(seed + 1))
    store = publish_database(database, sketcher, SUBSETS, workers=1, seed=seed)
    return QueryEngine(database.schema, store, SketchEstimator(params, prf))


def drive_chaos(client, expected, rounds: int = 40):
    """Issue ``rounds`` queries; return (successes, error_types).

    Asserts the chaos contract per request: bit-identical or typed.
    """
    successes = 0
    error_types = set()
    for i in range(rounds):
        subset, values = QUERY_CYCLE[i % len(QUERY_CYCLE)]
        request = CountsBlockRequest.build(subset, values)
        try:
            result = client.execute(request).result
        except TYPED_ERRORS as exc:
            error_types.add(type(exc).__name__)
            continue
        assert result == expected[(subset, tuple(map(tuple, values)))], (
            f"round {i}: chaos corrupted an answer for {subset}/{values}"
        )
        successes += 1
    return successes, error_types


def expected_answers(engine_or_coordinator):
    return {
        (subset, tuple(map(tuple, values))): engine_or_coordinator.execute(
            CountsBlockRequest.build(subset, values)
        ).result
        for subset, values in QUERY_CYCLE
    }


# ----------------------------------------------------------------------
# Single-store chaos, both kernel tiers
# ----------------------------------------------------------------------
class TestSingleStoreChaos:
    @pytest.mark.timeout(300)
    @pytest.mark.parametrize("tier", ["numpy", "c"])
    def test_parity_or_typed_error_under_faults(self, tier):
        if tier == "c" and not kernels.available():
            pytest.skip("compiled kernel extension not built")
        before = kernels.active()
        try:
            kernels.select(tier)
            # CounterPRF so the selected kernel actually runs the hot loop.
            engine = make_engine(CounterPRF)
            expected = expected_answers(engine)
            server = RemoteServer(engine, {"alice": "sesame"})
            with serve_in_thread(server) as (host, port):
                schedule = FaultSchedule(seed=11)
                with FaultInjectingProxy(host, port, schedule, delay_s=1.5) as proxy:
                    with RemoteQueryEngine(
                        *proxy.address, "sesame", timeout=5.0, retry=3, deadline=1.0
                    ) as client:
                        successes, _ = drive_chaos(client, expected)
                    assert successes > 0, "chaos must not refuse everything"
                    injected = sum(
                        count
                        for action, count in proxy.stats.items()
                        if action != "pass"
                    )
                    assert injected > 0, "seed 11 must actually inject faults"
                # Chaos over: a direct client answers every query exactly.
                with RemoteQueryEngine(host, port, "sesame") as direct:
                    clean, errors = drive_chaos(direct, expected, rounds=8)
                    assert clean == 8 and not errors
        finally:
            kernels.select(before)


# ----------------------------------------------------------------------
# Sharded chaos
# ----------------------------------------------------------------------
class TestShardedChaos:
    @pytest.mark.timeout(300)
    def test_scatter_gather_parity_under_faults(self, tmp_path):
        params = PrivacyParams(p=0.3)
        prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
        database = bernoulli_panel(90, 3, rng=np.random.default_rng(13))
        sketcher = Sketcher(
            params, prf, sketch_bits=8, rng=np.random.default_rng(14)
        )
        store = publish_database(database, sketcher, SUBSETS, workers=1, seed=13)
        local = QueryEngine(database.schema, store, SketchEstimator(params, prf))
        expected = expected_answers(local)
        with ShardedService.from_store(store, prf, 2, tmp_path) as service:
            service.start()
            front = RemoteServer(service.coordinator, {"alice": "sesame"})
            with serve_in_thread(front) as (host, port):
                schedule = FaultSchedule(seed=23)
                with FaultInjectingProxy(host, port, schedule, delay_s=1.5) as proxy:
                    with RemoteQueryEngine(
                        *proxy.address, "sesame", timeout=10.0, retry=3, deadline=2.0
                    ) as client:
                        successes, _ = drive_chaos(client, expected)
                    assert successes > 0
                with RemoteQueryEngine(host, port, "sesame") as direct:
                    clean, errors = drive_chaos(direct, expected, rounds=8)
                    assert clean == 8 and not errors


# ----------------------------------------------------------------------
# Watchdog: self-healing with zero operator action
# ----------------------------------------------------------------------
def wait_for_exact(client, expected, deadline_s: float = 30.0):
    """Poll until every query in the cycle answers exactly again."""
    t0 = time.monotonic()
    while True:
        try:
            clean, errors = drive_chaos(
                client, expected, rounds=len(QUERY_CYCLE)
            )
            if clean == len(QUERY_CYCLE) and not errors:
                return time.monotonic() - t0
        except TYPED_ERRORS:
            pass
        if time.monotonic() - t0 > deadline_s:
            pytest.fail("service never recovered full exactness")
        time.sleep(0.2)


@pytest.fixture()
def healing_service(tmp_path):
    params = PrivacyParams(p=0.3)
    prf = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
    database = bernoulli_panel(90, 3, rng=np.random.default_rng(13))
    sketcher = Sketcher(params, prf, sketch_bits=8, rng=np.random.default_rng(14))
    store = publish_database(database, sketcher, SUBSETS, workers=1, seed=13)
    local = QueryEngine(database.schema, store, SketchEstimator(params, prf))
    service = ShardedService.from_store(
        store, prf, 2, tmp_path,
        cache=True,
        watchdog_interval=0.2,
        watchdog_probe_timeout=1.0,
        watchdog_max_restarts=5,
        breaker_reset=0.3,
    ).start()
    service.expected = expected_answers(local)
    try:
        yield service
    finally:
        service.close()


def event_kinds(service):
    with service._events_lock:
        return [event["event"] for event in service.events]


class TestWatchdog:
    @pytest.mark.timeout(300)
    def test_sigkilled_worker_heals_unaided(self, healing_service):
        service = healing_service
        coordinator = service.coordinator
        assert expected_answers(coordinator) == service.expected
        service.kill_shard("shard-1")
        # Zero operator action from here: the watchdog must notice the
        # dead worker, respawn it, and restore exact answers.
        recovery = wait_for_exact(coordinator, service.expected)
        assert recovery < 30.0
        kinds = event_kinds(service)
        assert "probe_failed" in kinds
        assert "restarted" in kinds

    @pytest.mark.timeout(300)
    def test_sigstopped_worker_counts_as_hung_and_heals(self, healing_service):
        service = healing_service
        coordinator = service.coordinator
        assert expected_answers(coordinator) == service.expected
        pid = service._processes["shard-0"].pid
        os.kill(pid, signal.SIGSTOP)
        recovery = wait_for_exact(coordinator, service.expected)
        assert recovery < 30.0
        kinds = event_kinds(service)
        assert "probe_failed" in kinds
        assert "restarted" in kinds
        with service._events_lock:
            reasons = {
                event.get("reason")
                for event in service.events
                if event["event"] == "probe_failed"
            }
        assert "hung" in reasons, "a stopped (alive but mute) worker is hung"

    @pytest.mark.timeout(300)
    def test_watchdog_rejoin_is_warm(self, healing_service):
        """The restarted worker reattaches to its persistent cache: the
        repeat query costs zero cache misses (no new PRF calls), which a
        cold boot provably cannot do (its first pass misses every value)."""
        service = healing_service
        coordinator = service.coordinator

        def worker_cache_stats(shard_id):
            host, port = service._addresses[shard_id]
            with RemoteQueryEngine(host, port, service._token) as probe:
                return probe.status()["cache"]

        # Cold boot: the first pass over the query cycle misses.
        assert expected_answers(coordinator) == service.expected
        cold = worker_cache_stats("shard-1")
        assert cold["misses"] > 0, "a cold worker must do PRF work"

        service.kill_shard("shard-1")
        recovery = wait_for_exact(coordinator, service.expected)
        assert recovery < 30.0
        assert "restarted" in event_kinds(service)

        warm = worker_cache_stats("shard-1")
        assert warm["misses"] == 0, (
            f"watchdog rejoin must be warm (no new PRF evaluations); "
            f"saw {warm['misses']} misses vs {cold['misses']} on cold boot"
        )
        assert warm["hits"] > 0, "repeat queries must hit the persisted cache"
        assert warm["misses"] < cold["misses"]


# ----------------------------------------------------------------------
# Live rebalancing under chaos, both kernel tiers
# ----------------------------------------------------------------------
class TestRebalanceChaos:
    """Faults fire *while a handoff is in flight*: the proxy swaps to a
    heavier fault schedule during the prepare/commit phases (via the
    rebalance phase hook), and the chaos contract must hold throughout —
    every concurrent query is bit-identical or a typed refusal, the
    split and the merge both commit, and a clean client afterwards sees
    full exactness."""

    CALM = {"pass": 18, "drop_before": 1, "drop_after": 1,
            "delay": 0, "truncate": 1, "garbage": 1}
    STORM = {"pass": 8, "drop_before": 2, "drop_after": 2,
             "delay": 0, "truncate": 2, "garbage": 2}

    @pytest.mark.timeout(300)
    @pytest.mark.parametrize("tier", ["numpy", "c"])
    def test_split_and_merge_commit_under_faults(self, tier, tmp_path):
        if tier == "c" and not kernels.available():
            pytest.skip("compiled kernel extension not built")
        before = kernels.active()
        try:
            kernels.select(tier)
            # CounterPRF so the selected kernel runs the cold hot loop.
            params = PrivacyParams(p=0.3)
            prf = CounterPRF(p=0.3, global_key=GLOBAL_KEY)
            database = bernoulli_panel(90, 3, rng=np.random.default_rng(13))
            sketcher = Sketcher(
                params, prf, sketch_bits=8, rng=np.random.default_rng(14)
            )
            store = publish_database(database, sketcher, SUBSETS, workers=1, seed=13)
            local = QueryEngine(database.schema, store, SketchEstimator(params, prf))
            expected = expected_answers(local)
            service = ShardedService.from_store(store, prf, 2, tmp_path, cache=True)
            service.start()
            try:
                front = RemoteServer(service.coordinator, {"alice": "sesame"})
                with serve_in_thread(front) as (host, port):
                    calm = FaultSchedule(seed=31, weights=self.CALM)
                    storm = FaultSchedule(seed=37, weights=self.STORM)
                    with FaultInjectingProxy(host, port, calm, delay_s=1.5) as proxy:
                        def hook(phase: str) -> None:
                            in_handoff = phase in ("post_prepare", "post_ack")
                            proxy.set_schedule(storm if in_handoff else calm)

                        service.rebalance_phase_hook = hook
                        outcome: dict = {}

                        def traffic() -> None:
                            with RemoteQueryEngine(
                                *proxy.address, "sesame",
                                timeout=10.0, retry=4, deadline=3.0,
                            ) as client:
                                outcome["result"] = drive_chaos(
                                    client, expected, rounds=60
                                )

                        thread = threading.Thread(target=traffic, daemon=True)
                        thread.start()
                        time.sleep(0.2)  # let chaos traffic start flowing
                        out = service.rebalance_split("shard-0")
                        service.rebalance_merge(out["donor"], out["recipient"])
                        thread.join(timeout=180)
                        assert not thread.is_alive(), "chaos traffic hung"
                        successes, _ = outcome["result"]
                        assert successes > 0, "chaos must not refuse everything"
                        injected = sum(
                            count
                            for action, count in proxy.stats.items()
                            if action != "pass"
                        )
                        assert injected > 0, "the schedules must inject faults"
                    # Chaos over: both handoffs committed and a clean
                    # client answers every query exactly.
                    status = service.rebalance_status()
                    assert status["completed"] == 2 and status["aborted"] == 0
                    with RemoteQueryEngine(host, port, "sesame") as direct:
                        clean, errors = drive_chaos(direct, expected, rounds=8)
                        assert clean == 8 and not errors
            finally:
                service.rebalance_phase_hook = None
                service.close()
        finally:
            kernels.select(before)
