"""E28 — resilience overhead and watchdog recovery.

PR 9 made the serving tier self-healing: client retries with seeded
exponential backoff, per-shard circuit breakers, end-to-end deadlines
riding the envelope (``deadline_ms``), and a watchdog that respawns
dead or hung shard workers warm from their persistent caches.  None of
that may tax the fault-free fast path.  This benchmark pins both sides
of the bargain:

* **overhead** — replay the E25 mixed warm/cold trace against a healthy
  server twice: once with a plain fail-fast client, once with the full
  resilient stack (``retry=3``, ``deadline=10s``, so every request
  carries a deadline the server must arm and check).  The resilient
  run must keep >= 95% of baseline throughput (full mode; the CI quick
  mode allows more scheduler noise), with bit-identical replies.
* **recovery** — a 2-shard service under a 200 ms watchdog: SIGKILL one
  worker and measure wall-clock time until the full query cycle answers
  exactly again, with zero operator action.  The restarted worker must
  rejoin warm (zero cache misses after recovery).

Results append to ``BENCH_resilience.json`` at the repo root (one entry
per run, a trajectory CI can track) and the usual text table goes to
``benchmarks/results/``.

Run directly (``--quick`` for CI sizing) or via pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import threading
import time

import numpy as np

from repro.data import bernoulli_panel
from repro.protocol import (
    AnyOfRequest,
    BitMatrixRequest,
    CountsBlockRequest,
    EstimateManyRequest,
    ExactlyLRequest,
    FractionRequest,
    MarginalRequest,
)
from repro.protocol.messages import _jsonable
from repro.server import (
    QueryEngine,
    RemoteQueryEngine,
    RemoteServer,
    ShardedService,
    publish_database,
    serve_in_thread,
)

from _harness import make_stack, write_table

SEED = 28
SUBSETS = [(0, 1), (1, 2, 3), (0,), (1,), (2,), (3,)]
CONCURRENCY = 4
JSON_PATH = os.path.normpath(
    os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_resilience.json"
    )
)


def build_trace(repeats: int) -> list:
    """The E25 request mix: one cold pass, ``repeats - 1`` warm ones."""
    base = [
        ("counts_block", CountsBlockRequest.build((0, 1), [(0, 0), (0, 1), (1, 0), (1, 1)])),
        ("marginal", MarginalRequest.build((0, 1))),
        ("estimate_many", EstimateManyRequest.build((1, 2, 3), [(1, 1, 1), (0, 1, 0)])),
        ("fraction", FractionRequest.build((1, 2, 3), (1, 0, 1))),
        ("any_of", AnyOfRequest.build([((0, 1), (1, 1)), ((2,), (1,))])),
        ("exactly_l", ExactlyLRequest.build((0, 1, 2, 3), 2)),
        ("bit_matrix", BitMatrixRequest.build((0, 1, 2, 3), 1)),
    ]
    return base * repeats


def drive(host, port, token, trace, concurrency, client_kwargs) -> dict:
    """Split the trace round-robin over ``concurrency`` connections."""
    replies = {}
    errors = []
    lock = threading.Lock()

    def worker(index: int) -> None:
        try:
            with RemoteQueryEngine(host, port, token, **client_kwargs) as client:
                for position in range(index, len(trace), concurrency):
                    _, request = trace[position]
                    response = client.execute(request)
                    with lock:
                        replies[position] = response.result
        except Exception as exc:  # noqa: BLE001 - benchmark: count, then assert 0
            with lock:
                errors.append(f"worker {index}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"driver-{i}")
        for i in range(concurrency)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    return {
        "requests": len(trace),
        "errors": errors,
        "replies": replies,
        "wall_s": wall,
        "throughput_rps": len(trace) / wall,
    }


def assert_parity(engine: QueryEngine, trace, result: dict, label: str) -> None:
    assert not result["errors"], f"{label}: {result['errors'][:3]}"
    assert len(result["replies"]) == len(trace), f"{label}: lost replies"
    for position, reply in result["replies"].items():
        expected = json.loads(
            json.dumps(_jsonable(engine.execute(trace[position][1]).result))
        )
        assert reply == expected, (
            f"{label}: request {position} ({trace[position][0]}) deviates"
        )


def measure_overhead(num_users: int, repeats: int, min_ratio: float) -> dict:
    _params, _prf, sketcher, estimator, rng = make_stack(p=0.3, seed=SEED)
    database = bernoulli_panel(num_users, 4, density=0.5, rng=rng)
    store = publish_database(database, sketcher, SUBSETS, workers=1, seed=SEED)
    engine = QueryEngine(database.schema, store, estimator)
    server = RemoteServer(engine, {"bench": "bench-token"})
    trace = build_trace(repeats)

    resilient_kwargs = {"retry": 3, "deadline": 10.0}
    with serve_in_thread(server) as (host, port):
        # One unrecorded pass pays the cold PRF/cache bill so both timed
        # runs ride the same warm columns.
        drive(host, port, "bench-token", trace, CONCURRENCY, {})
        baseline = drive(host, port, "bench-token", trace, CONCURRENCY, {})
        resilient = drive(
            host, port, "bench-token", trace, CONCURRENCY, resilient_kwargs
        )

    assert_parity(engine, trace, baseline, "baseline")
    assert_parity(engine, trace, resilient, "resilient")
    ratio = resilient["throughput_rps"] / baseline["throughput_rps"]
    assert ratio >= min_ratio, (
        f"resilient client keeps only {ratio:.1%} of baseline throughput "
        f"(floor {min_ratio:.0%}): deadlines/retry wrapping costs too much"
    )
    for result in (baseline, resilient):
        del result["replies"]
    return {
        "num_users": num_users,
        "trace_requests": len(trace),
        "concurrency": CONCURRENCY,
        "baseline": baseline,
        "resilient": resilient,
        "client_kwargs": {"retry": 3, "deadline_s": 10.0},
        "throughput_ratio": ratio,
        "floor": min_ratio,
    }


def measure_recovery(num_users: int) -> dict:
    """SIGKILL one shard under the watchdog; time the return to exactness."""
    _params, prf, sketcher, estimator, rng = make_stack(p=0.3, seed=SEED + 1)
    database = bernoulli_panel(num_users, 4, density=0.5, rng=rng)
    store = publish_database(database, sketcher, SUBSETS, workers=1, seed=SEED + 1)
    engine = QueryEngine(database.schema, store, estimator)
    cycle = [
        CountsBlockRequest.build((0, 1), [(1, 1), (0, 0)]),
        MarginalRequest.build((0, 1)),
        FractionRequest.build((1, 2, 3), (1, 0, 1)),
    ]
    expected = [
        json.loads(json.dumps(_jsonable(engine.execute(request).result)))
        for request in cycle
    ]

    base_dir = tempfile.mkdtemp(prefix="repro-bench-resilience-")
    watchdog_interval = 0.2
    try:
        with ShardedService.from_store(
            store, prf, 2, base_dir,
            cache=True,
            watchdog_interval=watchdog_interval,
            watchdog_probe_timeout=1.0,
            breaker_reset=0.3,
        ) as service:
            service.start()
            coordinator = service.coordinator

            def exact_cycle() -> bool:
                for request, want in zip(cycle, expected):
                    try:
                        got = json.loads(
                            json.dumps(_jsonable(coordinator.execute(request).result))
                        )
                    except Exception:  # noqa: BLE001 - typed refusals while healing
                        return False
                    if got != want:
                        raise AssertionError("recovered answer deviates")
                return True

            assert exact_cycle(), "service must answer exactly before the kill"
            service.kill_shard("shard-1")
            start = time.perf_counter()
            deadline = start + 60.0
            while not exact_cycle():
                if time.perf_counter() > deadline:
                    raise AssertionError("watchdog never restored exactness")
                time.sleep(0.05)
            recovery_s = time.perf_counter() - start
            events = [event["event"] for event in service.events]
            assert "restarted" in events, "recovery must come from the watchdog"

            # Warm-rejoin proof: the respawned worker served the repeat
            # cycle purely from its persistent cache.
            host, port = service._addresses["shard-1"]
            with RemoteQueryEngine(host, port, service._token) as probe:
                cache = probe.status()["cache"]
            assert cache["misses"] == 0, (
                f"watchdog rejoin must be warm; saw {cache['misses']} misses"
            )
            return {
                "shards": 2,
                "watchdog_interval_s": watchdog_interval,
                "recovery_s": recovery_s,
                "watchdog_events": {
                    event: events.count(event) for event in set(events)
                },
                "rejoin_cache": {
                    "hits": cache["hits"], "misses": cache["misses"]
                },
            }
    finally:
        shutil.rmtree(base_dir, ignore_errors=True)


def run(num_users: int = 20_000, repeats: int = 5, quick: bool = False) -> dict:
    # The quick floor absorbs CI scheduler noise on a 2-core runner; the
    # full run holds the tight <=5% overhead contract.
    min_ratio = 0.80 if quick else 0.95
    overhead = measure_overhead(num_users, repeats, min_ratio)
    recovery = measure_recovery(num_users=min(num_users, 4_000))

    record = {
        "experiment": "E28",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": quick,
        "overhead": overhead,
        "recovery": recovery,
    }
    history = {"experiment": "E28", "runs": []}
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                history = loaded
        except (OSError, ValueError):
            pass  # corrupt history: start a fresh trajectory
    history["runs"].append(record)
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)

    write_table(
        "E28",
        f"Resilience: M={overhead['num_users']}, "
        f"{overhead['trace_requests']} requests at concurrency {CONCURRENCY}",
        ["path", "throughput req/s", "notes"],
        [
            ("fail-fast baseline", f"{overhead['baseline']['throughput_rps']:.0f}", ""),
            (
                "retry=3 + deadline=10s",
                f"{overhead['resilient']['throughput_rps']:.0f}",
                f"{overhead['throughput_ratio']:.1%} of baseline "
                f"(floor {overhead['floor']:.0%})",
            ),
            (
                "watchdog recovery",
                "-",
                f"{recovery['recovery_s']:.2f}s after SIGKILL "
                f"({recovery['watchdog_interval_s']}s probe, warm rejoin)",
            ),
        ],
        notes=(
            "Fault-free overhead: the resilient client arms a deadline per\n"
            "request (deadline_ms on the envelope; the server checks it and\n"
            "bounds dispatch) and wraps sends in the retry loop.  Both runs\n"
            "replay the same warm trace and must answer bit-identically.\n"
            "Recovery: a 2-shard service under a 200 ms watchdog; SIGKILL\n"
            "one worker, measure wall time until the query cycle is exact\n"
            "again with zero operator action.  The respawned worker serves\n"
            "repeats from its persistent cache (misses == 0: warm rejoin)."
        ),
    )
    print(f"\nappended run to {JSON_PATH} ({len(history['runs'])} run(s) on record)")
    return record


def test_e28_resilience():
    # CI sizing; the throughput floor is relaxed to absorb runner noise,
    # the exactness and warm-rejoin contracts stay strict.
    run(num_users=2_000, repeats=3, quick=True)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: M=2k, 3-pass trace, relaxed throughput floor",
    )
    args = parser.parse_args()
    if args.quick:
        run(num_users=2_000, repeats=3, quick=True)
    else:
        run(num_users=20_000, repeats=5)
