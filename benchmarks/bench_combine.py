"""E14 — Appendix F: union-of-subsets combination and cond(V) growth.

* accuracy of the (k+1)-system combination of per-subset sketches, vs the
  direct whole-subset sketch, as the number of combined pieces grows;
* the closing empirical claim: cond(V) grows exponentially in k with base
  ~ 1/(1 - 2p).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import fit_exponential_base
from repro.core import Sketcher, combine_sketch_groups, condition_number
from repro.data import bernoulli_panel
from repro.server import publish_database

from _harness import make_stack, write_table

NUM_USERS = 8000
P = 0.25


def test_e14_combination_accuracy(benchmark):
    params, prf, _, estimator, rng = make_stack(P, seed=14, clamp=False)

    def sweep():
        rows = []
        for pieces in (2, 3, 4, 6):
            db = bernoulli_panel(NUM_USERS, pieces, density=0.8, rng=rng)
            subset = tuple(range(pieces))
            value = tuple([1] * pieces)
            truth = db.exact_conjunction(subset, value)
            sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
            piece_subsets = [(i,) for i in range(pieces)]
            store = publish_database(db, sketcher, piece_subsets + [subset])
            # Appendix F: combine the per-bit sketches.
            groups = store.aligned_groups(piece_subsets)
            combined = combine_sketch_groups(
                estimator, groups, [(1,)] * pieces
            )
            # Direct: one sketch of the whole subset.
            direct = estimator.estimate(store.sketches_for(subset), value)
            rows.append(
                (
                    pieces,
                    f"{truth:.4f}",
                    f"{combined.fraction:.4f}",
                    f"{abs(combined.fraction - truth):.4f}",
                    f"{direct.fraction:.4f}",
                    f"{abs(direct.fraction - truth):.4f}",
                    f"{combined.condition:.1f}",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "E14",
        f"Appendix F — combining q single-bit sketches vs one whole-subset sketch "
        f"(M = {NUM_USERS}, p = {P})",
        ["q", "truth", "combined", "|err|", "direct", "|err|", "cond(V)"],
        rows,
        notes=(
            "Paper claim: sketches for B_1..B_q answer conjunctions on their union\n"
            "via a (q+1)-sized system.  The combination works but its error is\n"
            "amplified by cond(V); the direct whole-subset sketch stays at the\n"
            "single-query noise floor — the reason to sketch whole subsets of\n"
            "interest when they are known in advance."
        ),
    )
    direct_errors = [float(r[5]) for r in rows]
    combined_errors = [float(r[3]) for r in rows]
    assert max(direct_errors) < 0.06
    assert combined_errors[-1] >= combined_errors[0] * 0.5  # no free lunch


def test_e14b_conditioning_growth(benchmark):
    widths = list(range(2, 11))

    def sweep():
        rows = []
        for p in (0.1, 0.2, 0.3, 0.4, 0.45):
            base, r_squared = fit_exponential_base(widths, p)
            rows.append(
                (
                    p,
                    f"{condition_number(4, p):.2e}",
                    f"{condition_number(10, p):.2e}",
                    f"{base:.3f}",
                    f"{1.0 / (1.0 - 2.0 * p):.3f}",
                    f"{r_squared:.4f}",
                )
            )
        return rows

    rows = benchmark(sweep)
    write_table(
        "E14b",
        "Appendix F closing claim — cond(V) ~ C * base^k with base ~ 1/(1-2p)",
        ["p", "cond(V_4)", "cond(V_10)", "fitted base", "1/(1-2p)", "R^2"],
        rows,
        notes=(
            "Paper claim: conditioning degrades exponentially in k with the base\n"
            "of the exponent proportional to 1/(p - 1/2).  The fitted growth base\n"
            "tracks 1/(1-2p) closely and the log-linear fit is essentially exact\n"
            "(R^2 ~ 1)."
        ),
    )
    bases = [float(r[3]) for r in rows]
    predictions = [float(r[4]) for r in rows]
    assert bases == sorted(bases)
    for base, prediction in zip(bases, predictions):
        assert 0.4 * prediction < base < 2.5 * prediction
