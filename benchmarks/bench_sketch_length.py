"""E1 + E2 — Lemma 3.1 (sketch length) and the running-time remark (§3).

Regenerates:

* the required sketch length across user counts and failure budgets, with
  the paper's headline check "p > 1/4  =>  10 bits suffice";
* measured failure rates at the recommended length (must be ~0);
* measured Algorithm 1 iteration counts vs the paper's expected-iteration
  bound (1-p)^2/p^2 and worst-case bound log(M/tau)/|log(1-p^2)|.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import worst_case_iterations
from repro.core import Sketcher
from repro.core import PrivacyParams, exact_failure_probability

from _harness import make_stack, write_table


def test_e1_sketch_length_table(benchmark):
    params_by_p = {p: PrivacyParams(p) for p in (0.1, 0.25, 0.3, 0.4)}

    def build_rows():
        rows = []
        for p, params in params_by_p.items():
            for num_users in (10**3, 10**6, 10**9):
                for tau in (1e-3, 1e-9):
                    bits = params.sketch_length(num_users, tau)
                    rows.append(
                        (
                            p,
                            f"{num_users:.0e}",
                            f"{tau:.0e}",
                            bits,
                            f"{params.failure_probability(bits, num_users):.1e}",
                            f"{exact_failure_probability(1 << bits, params) * num_users:.1e}",
                        )
                    )
        return rows

    rows = benchmark(build_rows)
    write_table(
        "E1",
        "Lemma 3.1 — minimal sketch length ceil(log2(log(tau/M)/log(1-p^2)))",
        ["p", "M", "tau", "bits", "union bound", "exact failure"],
        rows,
        notes=(
            "Paper claim: doubly logarithmic in M and tau; 'if p > 1/4, a 10 bit\n"
            "sketch is sufficient for any foreseeable practical use'.  Check: at\n"
            "p = 0.3, M = 1e9, tau = 1e-9 the table shows <= 10 bits.  The exact\n"
            "failure column uses ((1-p)(1-r))^L, strictly below the lemma's\n"
            "(1-p^2)^L union bound."
        ),
    )
    ten_bit = PrivacyParams(0.26).sketch_length(10**9, 1e-9)
    assert ten_bit <= 10


def test_e2_iteration_counts(benchmark):
    p = 0.3
    params, _, sketcher, _, _ = make_stack(p, seed=21)
    num_trials = 2000

    def run_trials():
        iterations = []
        for i in range(num_trials):
            sketch = sketcher.sketch(f"user-{i}", [1, 0, 1, 1], (0, 1, 2, 3))
            iterations.append(sketch.iterations)
        return iterations

    iterations = benchmark.pedantic(run_trials, rounds=1, iterations=1)
    mean = float(np.mean(iterations))
    worst = int(np.max(iterations))
    write_table(
        "E2",
        "Algorithm 1 running time (p = 0.3, 2000 runs)",
        ["quantity", "measured", "paper bound"],
        [
            ("mean iterations", f"{mean:.2f}", f"{params.iteration_bound:.2f}  ((1-p)^2/p^2)"),
            ("exact expectation", f"{params.expected_iterations:.2f}", "(1/(p + p^2/(1-p)))"),
            ("max iterations", worst, f"{worst_case_iterations(num_trials, 1e-6, p):.1f}  (log(M/tau)/|log(1-p^2)|)"),
        ],
        notes="Paper claim: expected iterations below (1-p)^2/p^2; worst case logarithmic in M/tau.",
    )
    assert mean <= params.iteration_bound
    assert worst <= worst_case_iterations(num_trials, 1e-6, p)


def test_e2b_replacement_ablation(benchmark):
    """DESIGN.md ablation: with- vs without-replacement sampling."""
    p = 0.3
    params, prf, _, _, rng = make_stack(p, seed=22)
    num_trials = 1500

    def run_both():
        results = {}
        for label, flag in (("without (paper)", False), ("with", True)):
            sketcher = Sketcher(
                params, prf, sketch_bits=10, rng=rng, with_replacement=flag
            )
            iterations = [
                sketcher.sketch(f"{label}-{i}", [1, 0, 1], (0, 1, 2)).iterations
                for i in range(num_trials)
            ]
            results[label] = iterations
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for label, iterations in results.items():
        rows.append(
            (
                label,
                f"{np.mean(iterations):.2f}",
                int(np.max(iterations)),
                "2**l = 1024 (deterministic)" if "without" in label else "draw cap (probabilistic)",
            )
        )
    write_table(
        "E2b",
        "Ablation — Algorithm 1 key sampling with vs without replacement (p = 0.3)",
        ["variant", "mean iterations", "max iterations", "termination guarantee"],
        rows,
        notes=(
            "Lemma 3.2's biases hold under both variants (tested); the paper's\n"
            "without-replacement choice buys a deterministic iteration bound of\n"
            "2**l and hence Lemma 3.1's clean failure analysis, at identical\n"
            "expected cost."
        ),
    )
    means = {label: np.mean(it) for label, it in results.items()}
    assert abs(means["without (paper)"] - means["with"]) < 0.5
