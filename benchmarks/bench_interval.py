"""E11 + E12 — Section 4.1 interval and combined queries.

* E11: "salary <= c" via popcount(c) prefix queries, sweeping thresholds;
  query cost verified against the paper's popcount claim.
* E12: "a = c AND b < d" and the conditional mean of b given a <= c.
"""

from __future__ import annotations

from repro.core import Sketcher
from repro.data import salary_table
from repro.queries import equal_and_less_plan, less_equal_plan
from repro.server import (
    QueryEngine,
    per_bit_subsets,
    prefix_subsets,
    publish_database,
)

from _harness import make_stack, write_table

NUM_USERS = 12000
BITS = 6


def build_engine(seed):
    params, prf, _, estimator, rng = make_stack(0.25, seed=seed)
    db = salary_table(NUM_USERS, bits=BITS, attributes=("salary", "age"), rng=rng)
    subsets = list(
        dict.fromkeys(
            per_bit_subsets(db.schema)
            + prefix_subsets(db.schema, "salary")
            + prefix_subsets(db.schema, "age")
        )
    )
    sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
    store = publish_database(db, sketcher, subsets)
    return db, QueryEngine(db.schema, store, estimator)


def test_e11_interval_queries(benchmark):
    db, engine = build_engine(seed=11)

    def sweep():
        rows = []
        for threshold in (5, 10, 21, 42, 55):
            estimate = engine.count_less_equal("salary", threshold)
            truth = db.exact_interval("salary", threshold) * NUM_USERS
            plan = less_equal_plan(db.schema, "salary", threshold)
            rows.append(
                (
                    threshold,
                    bin(threshold).count("1") + 1,
                    plan.num_queries,
                    f"{estimate:.0f}",
                    f"{truth:.0f}",
                    f"{abs(estimate - truth) / NUM_USERS:.3f}",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "E11",
        f"Section 4.1 — interval queries salary <= c (M = {NUM_USERS}, p = 0.25)",
        ["c", "popcount(c)+1", "plan queries", "estimate", "truth", "|err|/M"],
        rows,
        notes=(
            "Paper claim: c-threshold queries cost one conjunctive query per set\n"
            "bit of c (plus the boundary term for <=; the paper's displayed formula\n"
            "is the strict-< variant).  Error stays at the single-query noise level\n"
            "times popcount(c)."
        ),
    )
    for _, expected_queries, plan_queries, _, _, error in rows:
        assert int(plan_queries) == int(expected_queries)
        assert float(error) < 0.1


def test_e12_combined_queries(benchmark):
    db, engine = build_engine(seed=12)

    def run():
        rows = []
        a = db.attribute_values("salary")
        b = db.attribute_values("age")
        # a = c AND b < d
        for c, d in ((10, 20), (15, 32)):
            estimate = engine.count_equal_and_less("salary", c, "age", d)
            truth = int(((a == c) & (b < d)).sum())
            plan = equal_and_less_plan(db.schema, "salary", c, "age", d)
            rows.append(
                (
                    f"salary={c} & age<{d}",
                    plan.num_queries,
                    f"{estimate:.0f}",
                    truth,
                    f"{abs(estimate - truth) / NUM_USERS:.3f}",
                )
            )
        # conditional mean
        threshold = 21
        estimate = engine.mean_where_less_equal("age", "salary", threshold)
        mask = a <= threshold
        truth_mean = float(b[mask].mean())
        rows.append(
            (
                f"mean(age | salary<={threshold})",
                "popcount*k + k",
                f"{estimate:.2f}",
                f"{truth_mean:.2f}",
                f"{abs(estimate - truth_mean) / max(truth_mean, 1):.3f}",
            )
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_table(
        "E12",
        f"Section 4.1 — combined constraints (M = {NUM_USERS})",
        ["query", "plan queries", "estimate", "truth", "rel/abs err"],
        rows,
        notes=(
            "Paper claim: constraints on different attributes combine by\n"
            "conjoining the equality conjunction with each interval branch\n"
            "(popcount(d) queries), and conditional means divide two estimates."
        ),
    )
    assert float(rows[-1][4]) < 0.2
