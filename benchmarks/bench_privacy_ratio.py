"""E4 + E5 + E16 — the privacy side: Lemma 3.3, Corollary 3.4, Appendix B.

* E4: exact worst-case publish ratio (dynamic program over evaluation
  patterns) against the ((1-p)/p)^4 bound, across key-space sizes, plus
  the rejection-constant ablation from DESIGN.md.
* E5: multi-sketch composition and the Corollary 3.4 p(eps, l) rule —
  paper's first-order formula vs this library's exact inversion.
* E16: the single-bit flipping privacy region of Appendix B.
"""

from __future__ import annotations

from repro.analysis import bit_flip_max_constant, bit_flip_ratio
from repro.core import PrivacyParams, epsilon_for_p, p_for_epsilon, worst_case_ratio
from repro.core.params import p_for_epsilon_corollary

from _harness import write_table


def test_e4_worst_case_ratio(benchmark):
    biases = (0.1, 0.25, 0.3, 0.4)

    def sweep():
        rows = []
        for p in biases:
            params = PrivacyParams(p)
            for bits in (2, 4, 6, 8):
                dist = benchmark_target(params, bits)
                rows.append(
                    (
                        p,
                        1 << bits,
                        f"{dist.worst_ratio:.3f}",
                        f"{params.privacy_ratio_bound():.3f}",
                        f"{dist.worst_ratio / params.privacy_ratio_bound():.3f}",
                    )
                )
        return rows

    def benchmark_target(params, bits):
        return worst_case_ratio(1 << bits, params.rejection_probability)

    rows = benchmark(sweep)
    write_table(
        "E4",
        "Lemma 3.3 — exact worst-case publish ratio vs ((1-p)/p)^4",
        ["p", "L", "exact worst ratio", "paper bound", "tightness"],
        rows,
        notes=(
            "Paper claim: for any profile pair and any fixed evaluation pattern the\n"
            "publish ratio stays below ((1-p)/p)^4.  Measured: the exact DP value is\n"
            "always below the bound and converges to it (tightness -> 1.0) as L\n"
            "grows — Lemma 3.3 is asymptotically tight."
        ),
    )
    for p, L, ratio, bound, _ in rows:
        assert float(ratio) <= float(bound) + 1e-9


def test_e4b_rejection_constant_ablation(benchmark):
    p = 0.25

    def ablate():
        rows = []
        for label, accept in [
            ("paper r=(p/(1-p))^2", (p / (1 - p)) ** 2),
            ("naive r=p/(1-p)", p / (1 - p)),
            ("r=1 (publish first)", 1.0),
        ]:
            dist = worst_case_ratio(64, accept)
            signal_bias = p / (p + (1 - p) * accept)
            rows.append(
                (
                    label,
                    f"{accept:.4f}",
                    f"{dist.worst_ratio:.2f}",
                    f"{signal_bias:.3f}",
                    f"{signal_bias - p:+.3f}",
                )
            )
        return rows

    rows = benchmark(ablate)
    write_table(
        "E4b",
        "Ablation — rejection constant r: privacy/signal dial (p = 0.25, L = 64)",
        ["variant", "r", "worst ratio", "P[f=1|published]", "signal gap"],
        rows,
        notes=(
            "The paper's squared constant is the unique choice making the published\n"
            "key exactly (1-p)-biased at the true value (signal gap 1-2p), which\n"
            "Algorithm 2's de-biasing assumes.  Smaller ratios are available (naive\n"
            "r, or r=1 = uniform key) but only by shrinking the signal gap to\n"
            "1/2 - p or 0."
        ),
    )


def test_e5_multi_sketch_composition(benchmark):
    def build():
        rows = []
        for epsilon in (0.1, 0.5, 1.0):
            for sketches in (1, 4, 16, 64):
                exact_p = p_for_epsilon(epsilon, sketches)
                paper_p = p_for_epsilon_corollary(epsilon, sketches)
                rows.append(
                    (
                        epsilon,
                        sketches,
                        f"{paper_p:.5f}",
                        f"{exact_p:.5f}",
                        f"{epsilon_for_p(paper_p, sketches):.4f}",
                        f"{epsilon_for_p(exact_p, sketches):.4f}",
                    )
                )
        return rows

    rows = benchmark(build)
    write_table(
        "E5",
        "Corollary 3.4 — p needed for (1 +/- eps)-privacy over l sketches",
        ["eps", "l", "paper p=1/2-eps/16l", "exact p", "eps @ paper p", "eps @ exact p"],
        rows,
        notes=(
            "Paper claim: p >= 1/2 - eps/(16 l) gives ratio within 1 +/- eps.  The\n"
            "first-order formula overshoots eps slightly (e.g. 0.1052 at eps=0.1,\n"
            "l=1); the exact inversion p = 1/(1+(1+eps)^(1/4l)) hits eps exactly."
        ),
    )
    for _, sketches, _, exact_p, _, achieved in rows:
        assert abs(float(achieved) - float(rows[0][0])) < 10  # sanity only


def test_e16_bit_flip_region(benchmark):
    def build():
        rows = []
        for epsilon in (0.01, 0.1, 0.5, 1.0):
            c_exact = bit_flip_max_constant(epsilon)
            p = 0.5 - c_exact * epsilon
            rows.append(
                (
                    epsilon,
                    "1/4",
                    f"{c_exact:.4f}",
                    f"{p:.4f}",
                    f"{bit_flip_ratio(p):.4f}",
                    f"{1 + epsilon:.4f}",
                )
            )
        return rows

    rows = benchmark(build)
    write_table(
        "E16",
        "Appendix B — eps-privacy region of single-bit flipping p = 1/2 - c*eps",
        ["eps", "paper c", "exact max c", "p", "ratio (1-p)/p", "target 1+eps"],
        rows,
        notes=(
            "Paper claim (Lemma B.1): c <= 1/4 suffices.  Exactly, the largest\n"
            "constant is c = 1/(2(2+eps)) -> 1/4 as eps -> 0; at the exact c the\n"
            "ratio equals 1+eps on the nose."
        ),
    )
    for epsilon, _, c, _, ratio, target in rows:
        assert float(c) <= 0.25
        assert abs(float(ratio) - float(target)) < 1e-6
