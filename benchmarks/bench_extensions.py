"""X1 + X2 + X3 — the paper's §5 future-work items, made concrete.

* X1: sketching arbitrary functions of the profile (parity, comparators)
  — "the same privacy guarantees apply"; measures the utility gained over
  expressing the same query with bit subsets.
* X2: the relaxed privacy budget — "quadratically more sketches while
  giving essentially the same privacy guarantees".
* X3: streaming/incremental estimation — engineering extension; verifies
  the running estimate equals the batch Algorithm 2 output exactly.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import capacity_comparison
from repro.core import (
    FunctionEstimator,
    FunctionSketcher,
    ProfileFunction,
    Sketcher,
)
from repro.data import bernoulli_panel
from repro.server import StreamingEstimator, publish_database

from _harness import make_stack, write_table

NUM_USERS = 5000


def test_x1_function_sketches(benchmark):
    params, prf, _, _, rng = make_stack(0.25, seed=31)
    sketcher = FunctionSketcher(params, prf, sketch_bits=10, rng=rng)
    estimator = FunctionEstimator(params, prf, clamp=False)
    width = 6
    profiles = (rng.random((NUM_USERS, width)) < 0.5).astype(int)
    parity = ProfileFunction.parity(tuple(range(width)))
    greater = ProfileFunction.comparator((0, 1, 2), (3, 4, 5))

    def publish_and_query():
        results = {}
        for function, name in ((parity, "parity"), (greater, "a>b")):
            sketches = [
                sketcher.sketch(f"user-{i}", profiles[i], function)
                for i in range(NUM_USERS)
            ]
            results[name] = estimator.estimate(sketches, (1,)).fraction
        return results

    results = benchmark.pedantic(publish_and_query, rounds=1, iterations=1)
    parity_truth = float((profiles.sum(axis=1) % 2 == 1).mean())
    a = profiles[:, :3] @ np.array([4, 2, 1])
    b = profiles[:, 3:] @ np.array([4, 2, 1])
    greater_truth = float((a > b).mean())
    rows = [
        (
            f"parity of {width} bits",
            "1 function sketch",
            f"{results['parity']:.4f}",
            f"{parity_truth:.4f}",
            f"{abs(results['parity'] - parity_truth):.4f}",
        ),
        (
            "a > b (3-bit ints)",
            "1 function sketch",
            f"{results['a>b']:.4f}",
            f"{greater_truth:.4f}",
            f"{abs(results['a>b'] - greater_truth):.4f}",
        ),
    ]
    write_table(
        "X1",
        f"§5 extension — sketching arbitrary functions (M = {NUM_USERS}, p = 0.25)",
        ["query", "cost", "estimate", "truth", "|err|"],
        rows,
        notes=(
            "Paper remark: 'a natural generalization ... is sketching arbitrary\n"
            "functions of a user profile.  The same privacy guarantees apply.'\n"
            "Parity of k bits via bit subsets needs the full Appendix F system\n"
            "(cond(V) blow-up) or 2^(k-1) conjunctions; one function sketch gives\n"
            "it at single-query noise.  Same for order comparisons."
        ),
    )
    for row in rows:
        assert float(row[4]) < 0.05


def test_x2_relaxed_budget(benchmark):
    def build():
        return capacity_comparison(0.5, (1, 10, 100, 1000, 10000), delta=1e-9)

    rows = benchmark(build)
    table = [
        (
            row["target_l"],
            f"{row['p']:.6f}",
            row["deterministic"],
            row["relaxed"],
            f"{row['gain']:.1f}x",
        )
        for row in rows
    ]
    write_table(
        "X2",
        "§5 extension — deterministic vs relaxed sketch budgets (eps = 0.5, delta = 1e-9)",
        ["sized for l", "p", "deterministic capacity", "relaxed capacity", "gain"],
        table,
        notes=(
            "Paper remark: relaxing from deterministic guarantees to a negligible\n"
            "leak probability 'allows quadratically more sketches'.  The Azuma\n"
            "capacity eps^2/(2 b^2 ln(2/delta)) overtakes the union-bound capacity\n"
            "once budgets get large; the gain column grows linearly in l, i.e.\n"
            "relaxed ~ deterministic^2 / constant."
        ),
    )
    gains = [row["gain"] for row in rows]
    assert gains[-1] > 50  # clear quadratic separation at l = 10000


def test_x3_streaming_parity(benchmark):
    params, prf, sketcher, estimator, rng = make_stack(0.3, seed=33)
    db = bernoulli_panel(NUM_USERS, 2, density=0.4, rng=rng)
    store = publish_database(db, sketcher, [(0, 1)])
    sketches = store.sketches_for((0, 1))

    def stream_all():
        streaming = StreamingEstimator(estimator)
        streaming.register((0, 1), (1, 1))
        streaming.ingest_many(sketches)
        return streaming.estimate((0, 1), (1, 1))

    live = benchmark(stream_all)
    batch = estimator.estimate(sketches, (1, 1))
    write_table(
        "X3",
        f"Engineering extension — streaming vs batch estimation (M = {NUM_USERS})",
        ["estimator", "fraction", "users", "half-width"],
        [
            ("batch Algorithm 2", f"{batch.fraction:.6f}", batch.num_users, f"{batch.half_width:.4f}"),
            ("streaming", f"{live.fraction:.6f}", live.num_users, f"{live.half_width:.4f}"),
        ],
        notes="The running-mean estimator reproduces Algorithm 2 bit-exactly.",
    )
    assert live.fraction == batch.fraction
    assert live.num_users == batch.num_users
