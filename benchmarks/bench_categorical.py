"""E20 — non-binary data: categorical histograms from whole-attribute sketches.

The abstract's differentiator — prior randomizers were "of only limited
utility ... [for] various poll data or non-binary data" — exercised on a
Zipf-skewed categorical attribute: full histogram, mode and top-k from one
sketch per user.
"""

from __future__ import annotations

import numpy as np

from repro.core import Sketcher
from repro.data import zipf_categorical
from repro.server import QueryEngine, attribute_subsets, publish_database

from _harness import make_stack, write_table

NUM_USERS = 10000
CARDINALITY = 16


def test_e20_categorical_histogram(benchmark):
    params, prf, _, estimator, rng = make_stack(0.25, seed=20)
    db = zipf_categorical(NUM_USERS, cardinality=CARDINALITY, rng=rng)
    sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
    store = publish_database(db, sketcher, attribute_subsets(db.schema))
    engine = QueryEngine(db.schema, store, estimator)

    def full_histogram():
        return engine.histogram("category")

    histogram = benchmark(full_histogram)
    truth = np.bincount(db.attribute_values("category"), minlength=CARDINALITY)
    truth = truth / NUM_USERS
    mode, mode_freq = engine.mode("category")
    top = engine.top_k("category", 3)
    rows = [
        (value, f"{truth[value]:.4f}", f"{histogram[value]:.4f}",
         f"{abs(histogram[value] - truth[value]):.4f}")
        for value in range(6)
    ]
    rows.append(("...", "", "", ""))
    rows.append(
        (
            "total variation",
            "",
            "",
            f"{0.5 * np.abs(histogram - truth).sum():.4f}",
        )
    )
    write_table(
        "E20",
        f"Non-binary data — Zipf({CARDINALITY}) histogram from one sketch/user "
        f"(M = {NUM_USERS}, p = 0.25)",
        ["category", "truth", "estimate", "|err|"],
        rows,
        notes=(
            "Abstract claim: the scheme handles non-binary data where earlier\n"
            "randomizers degrade.  One whole-attribute sketch per user answers all\n"
            f"{CARDINALITY} point queries; mode recovered = {mode} (freq "
            f"{mode_freq:.3f}), top-3 = {[v for v, _ in top]}."
        ),
    )
    assert mode == 0
    assert float(0.5 * np.abs(histogram - truth).sum()) < 0.15
    assert [v for v, _ in top][0] == 0
