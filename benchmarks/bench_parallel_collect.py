"""E21 — sharded sketch collection vs single-process publishing.

Collection is embarrassingly parallel on the user axis: each user's
Algorithm 1 run is independent and the store is a pure union.  The
sharded ``publish_database(..., workers=N)`` path derives every user's
private coins from ``(seed, global user index)``, so any worker layout
publishes bit-identical sketches; this benchmark measures the M=50k,
4-subset collection on 1 vs 4 workers, asserts the stores are equal
byte for byte (iterations included), and asserts the >=2x wall-clock
speedup the subsystem exists for.  The sequential arm uses the same
deterministic per-user seeding, so the comparison isolates the pool
overhead (shard serialization round-trips + fork + merge) against the
parallel sketching gain.

Run directly (``--quick`` shrinks M for CI) or via pytest.
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.data import bernoulli_panel
from repro.server import publish_database
from repro.server.serialization import dumps_store

from _harness import make_stack, write_table

SUBSETS = [(0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 4, 5)]
SEED = 21


def run(num_users: int = 50_000, workers: int = 4, min_speedup: float = 2.0) -> float:
    params, prf, sketcher, _, rng = make_stack(p=0.3, seed=SEED)
    database = bernoulli_panel(num_users, 6, density=0.5, rng=rng)

    start = time.perf_counter()
    sequential = publish_database(database, sketcher, SUBSETS, workers=1, seed=SEED)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = publish_database(database, sketcher, SUBSETS, workers=workers, seed=SEED)
    sharded_s = time.perf_counter() - start

    assert dumps_store(sequential, include_iterations=True) == dumps_store(
        sharded, include_iterations=True
    ), "sharded store differs from the sequential store"
    speedup = sequential_s / sharded_s

    sketches = num_users * len(SUBSETS)
    write_table(
        "E21",
        f"Sharded collection: M={num_users}, {len(SUBSETS)} subsets "
        f"({sketches/1e3:.0f}k sketches)",
        ["path", "seconds", "k sketches/s", "speedup"],
        [
            ("workers=1", f"{sequential_s:.2f}", f"{sketches/sequential_s/1e3:.1f}", "1.0x"),
            (
                f"workers={workers}",
                f"{sharded_s:.2f}",
                f"{sketches/sharded_s/1e3:.1f}",
                f"{speedup:.1f}x",
            ),
        ],
        notes=(
            "Both arms use deterministic per-user coins derived from (seed, user\n"
            "index); the stores are asserted byte-identical including the iteration\n"
            "diagnostics, so the sharded path is a drop-in replacement."
        ),
    )
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    if cores is not None and cores < workers:
        # A speedup floor is a statement about the software, not the host:
        # on a machine with fewer usable cores than workers the pool is
        # oversubscribed and wall-clock parallelism is capped at `cores`,
        # so asserting it would only measure the hardware.  The bitwise
        # identity above is asserted unconditionally.
        print(
            f"\nNOTE: only {cores} usable core(s) for {workers} workers — "
            f"speedup floor of {min_speedup}x not enforced on this host."
        )
        return speedup
    assert speedup >= min_speedup, (
        f"sharded collection is only {speedup:.2f}x over one worker "
        f"(required {min_speedup}x)"
    )
    return speedup


def run_chunking(num_users: int = 8_000, min_speedup: float = 1.2) -> float:
    """The PR 5 leftover: small-M multi-worker collection was dominated
    by per-chunk serialization.  Autotuned chunk sizing (chunks floored
    at MIN_CHUNK_USERS users) must beat deliberately tiny chunks, and
    every chunking must publish the identical store.
    """
    params, prf, sketcher, _, rng = make_stack(p=0.3, seed=SEED)
    database = bernoulli_panel(num_users, 6, density=0.5, rng=rng)

    reference = dumps_store(
        publish_database(database, sketcher, SUBSETS, workers=1, seed=SEED),
        include_iterations=True,
    )
    # Identity sweep: explicit tiny chunks, the autotuned default, and a
    # single chunk covering the whole database (which skips the pool).
    for chunk_size in (256, None, num_users):
        store = publish_database(
            database, sketcher, SUBSETS, workers=2, seed=SEED, chunk_size=chunk_size
        )
        assert dumps_store(store, include_iterations=True) == reference, (
            f"chunk_size={chunk_size} changed the published store"
        )

    start = time.perf_counter()
    publish_database(database, sketcher, SUBSETS, workers=2, seed=SEED, chunk_size=64)
    tiny_s = time.perf_counter() - start
    start = time.perf_counter()
    publish_database(database, sketcher, SUBSETS, workers=2, seed=SEED)
    tuned_s = time.perf_counter() - start
    speedup = tiny_s / tuned_s

    write_table(
        "E21b",
        f"Chunk autotune at small M={num_users} (workers=2)",
        ["chunking", "seconds", "speedup"],
        [
            ("chunk_size=64 (serialization-bound)", f"{tiny_s:.2f}", "1.0x"),
            ("autotuned (>= MIN_CHUNK_USERS/chunk)", f"{tuned_s:.2f}", f"{speedup:.1f}x"),
        ],
        notes=(
            "Same pool, same host, same output store — the only variable is the\n"
            "chunk schedule, so this floor holds on any core count: tiny chunks\n"
            "pay per-chunk payload serialization ~M/64 times, the autotuned\n"
            "schedule amortizes it."
        ),
    )
    assert speedup >= min_speedup, (
        f"autotuned chunking is only {speedup:.2f}x over 64-user chunks "
        f"(required {min_speedup}x)"
    )
    return speedup


def test_e21_parallel_collect():
    # CI-sized run: identity is asserted exactly; the speedup floor is
    # disabled (a 2-core shared runner can legitimately see ~1x at small M,
    # where pool start-up and shard serialization dominate).
    run(num_users=2_000, workers=2, min_speedup=0.0)


def test_e21b_chunk_autotune():
    # The chunking floor compares two schedules on the same pool, so it
    # is asserted even on single-core CI — with generous slack for noise.
    run_chunking(num_users=4_000, min_speedup=1.05)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: M=2k, 2 workers, no speedup floor (noisy-runner safe) "
        "instead of M=50k / 4 workers / 2x",
    )
    args = parser.parse_args()
    if args.quick:
        run(num_users=2_000, workers=2, min_speedup=0.0)
        run_chunking(num_users=4_000, min_speedup=1.05)
    else:
        run(num_users=50_000, workers=4, min_speedup=2.0)
        run_chunking(num_users=8_000, min_speedup=1.2)
