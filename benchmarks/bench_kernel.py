"""E27 — compiled kernel tier: cold-path speedup + concurrent serving.

PR 5 moved the CounterPRF hot loop from per-point hashing to NumPy
counter-mode arithmetic; this PR adds the final tier — a C extension
(``repro.core.kernels._ckernel``) that fuses Philox4x64-10 expansion,
threshold compare and bit packing into single GIL-releasing passes — and
puts a thread pool behind ``RemoteServer`` so concurrent queries
actually overlap on it.  Two floors, both statements about the software:

* **cold path** — one single-threaded width-8 marginal
  (``evaluate_block`` at M users x 256 values) through the compiled
  tier vs the NumPy tier of the *same* ``CounterPRF``, asserting >=3x
  at M=50k (``--quick`` relaxes to 2x at M=8k, where fixed dispatch
  overhead weighs more).  The two blocks are asserted bit-identical at
  benchmark scale before any timing is trusted.
* **concurrent serving** — 16 clients hammering one ``RemoteServer``
  with cache-cold ``counts_block`` requests, thread-pool dispatch vs
  the inline (``pool_size=0``) baseline, asserting >=2x throughput.
  This floor needs real parallel hardware: on hosts with <4 usable
  cores it is reported but not enforced (the E21 convention — the
  bitwise response identity across both arms is still asserted).

Results land three places: the usual text table, the per-run
``benchmarks/results/BENCH_kernel.json`` (written *before* the floors
are asserted, so a failing run still ships its numbers), and one record
appended to the repo-root ``BENCH_kernel.json`` trajectory so speedups
are comparable across commits.

Run directly (``--quick`` for CI sizing) or via pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time

import numpy as np

from repro.core import CounterPRF, PrivacyParams, SketchEstimator, Sketcher, kernels
from repro.data import bernoulli_panel
from repro.protocol import CountsBlockRequest, dumps_response
from repro.server import QueryEngine, publish_database
from repro.server.remote import RemoteQueryEngine, RemoteServer, serve_in_thread

from _harness import RESULTS_DIR, GLOBAL_KEY, write_table

SEED = 27
WIDTH = 8  # 2**8 = 256 candidate values: the byte-attribute histogram
SERVE_WIDTH = 12  # serving subset: 4096 candidate values, enough for
                  # every request across all clients to stay cache-cold
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_kernel.json")
TRAJECTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_kernel.json"
)


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Part 1: single-threaded cold evaluate_block, compiled vs NumPy tier
# ----------------------------------------------------------------------
def _bench_cold_block(num_users: int) -> dict:
    counter = CounterPRF(p=0.3, global_key=GLOBAL_KEY)
    subset = tuple(range(WIDTH))
    values = [
        tuple(int(bit) for bit in np.binary_repr(v, WIDTH)) for v in range(1 << WIDTH)
    ]
    user_ids = [f"user-{i:07d}" for i in range(num_users)]
    keys = np.random.default_rng(SEED).integers(0, 1 << 10, size=num_users).tolist()

    kernels.select("numpy")
    start = time.perf_counter()
    numpy_block = counter.evaluate_block(user_ids, subset, values, keys)
    numpy_s = time.perf_counter() - start

    kernels.select("c")
    start = time.perf_counter()
    c_block = counter.evaluate_block(user_ids, subset, values, keys)
    c_s = time.perf_counter() - start

    assert np.array_equal(numpy_block, c_block), (
        "compiled and NumPy tiers disagree on evaluate_block output"
    )
    num_points = num_users * len(values)
    return {
        "num_users": num_users,
        "block_values": len(values),
        "numpy_s": numpy_s,
        "c_s": c_s,
        "numpy_ns_per_point": numpy_s / num_points * 1e9,
        "c_ns_per_point": c_s / num_points * 1e9,
        "speedup": numpy_s / c_s,
    }


# ----------------------------------------------------------------------
# Part 2: concurrent serving, thread-pool dispatch vs inline baseline
# ----------------------------------------------------------------------
def _make_engine(num_users: int) -> QueryEngine:
    params = PrivacyParams(p=0.3)
    prf = CounterPRF(p=0.3, global_key=GLOBAL_KEY)
    database = bernoulli_panel(num_users, SERVE_WIDTH, density=0.5,
                               rng=np.random.default_rng(SEED))
    sketcher = Sketcher(params, prf, sketch_bits=8, rng=np.random.default_rng(SEED + 1))
    store = publish_database(
        database, sketcher, [tuple(range(SERVE_WIDTH))], workers=1, seed=SEED
    )
    # A fresh engine per serving arm: both arms start cache-cold, so the
    # comparison isolates dispatch, not cache warmth.
    return QueryEngine(database.schema, store, SketchEstimator(params, prf))


def _serving_requests(concurrency: int, per_client: int, chunk: int = 16):
    """Distinct cache-cold counts_block requests, one list per client.

    Every request names a disjoint run of candidate values of the one
    published subset, so each one reaches the PRF (no warm-cache
    short-circuit) and the kernel tier does real, GIL-released work.
    """
    subset = tuple(range(SERVE_WIDTH))
    total = concurrency * per_client
    assert total * chunk <= 1 << SERVE_WIDTH, "value space exhausted; shrink the run"
    per_client_lists = []
    for client in range(concurrency):
        requests = []
        for r in range(per_client):
            base = (client * per_client + r) * chunk
            values = [
                tuple(int(bit) for bit in np.binary_repr(v, SERVE_WIDTH))
                for v in range(base, base + chunk)
            ]
            requests.append(CountsBlockRequest.build(subset, values))
        per_client_lists.append(requests)
    return per_client_lists


def _serve_arm(engine: QueryEngine, per_client_lists, pool_size) -> tuple:
    """Run one serving arm; returns (seconds, sorted response payloads)."""
    concurrency = len(per_client_lists)
    tokens = {f"analyst-{i}": f"token-{i}" for i in range(concurrency)}
    server = RemoteServer(engine, tokens, pool_size=pool_size)
    results: list = [None] * concurrency
    with serve_in_thread(server) as (host, port):
        clients = [
            RemoteQueryEngine(host, port, f"token-{i}") for i in range(concurrency)
        ]
        try:
            barrier = threading.Barrier(concurrency + 1)

            def worker(index: int) -> None:
                barrier.wait()
                results[index] = [
                    dumps_response(clients[index].execute(request))
                    for request in per_client_lists[index]
                ]

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(concurrency)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            start = time.perf_counter()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
        finally:
            for client in clients:
                client.close()
    return elapsed, results


def _bench_serving(num_users: int, concurrency: int, per_client: int) -> dict:
    kernels.select("c")
    inline_s, inline_results = _serve_arm(
        _make_engine(num_users), _serving_requests(concurrency, per_client), 0
    )
    pooled_s, pooled_results = _serve_arm(
        _make_engine(num_users), _serving_requests(concurrency, per_client), None
    )
    assert pooled_results == inline_results, (
        "thread-pool dispatch changed response bytes vs inline dispatch"
    )
    total = concurrency * per_client
    return {
        "num_users": num_users,
        "concurrency": concurrency,
        "requests": total,
        "inline_s": inline_s,
        "pooled_s": pooled_s,
        "inline_rps": total / inline_s,
        "pooled_rps": total / pooled_s,
        "speedup": inline_s / pooled_s,
    }


def run(
    num_users: int = 50_000,
    min_block: float = 3.0,
    serve_users: int = 4_000,
    concurrency: int = 16,
    per_client: int = 12,
    min_serve: float = 2.0,
) -> dict:
    if not kernels.available():
        raise RuntimeError(
            "E27 measures the compiled kernel tier; build it first with "
            "'python setup.py build_ext --inplace'"
        )
    tier_before = kernels.active()
    try:
        cold = _bench_cold_block(num_users)
        serving = _bench_serving(serve_users, concurrency, per_client)
    finally:
        kernels.select(tier_before)

    cores = _usable_cores()
    serve_enforced = cores >= 4
    results = {
        "experiment": "E27",
        "cold_block": {**cold, "floor": min_block},
        "serving": {
            **serving,
            "floor": min_serve,
            "floor_enforced": serve_enforced,
            "usable_cores": cores,
        },
    }
    write_table(
        "E27",
        f"Compiled kernel tier: M={num_users} cold path, "
        f"{concurrency}-way serving at M={serve_users}",
        ["path", "baseline s", "compiled s", "speedup", "floor"],
        [
            (
                f"cold evaluate_block ({cold['block_values']} values, numpy tier vs c)",
                f"{cold['numpy_s']:.3f}",
                f"{cold['c_s']:.3f}",
                f"{cold['speedup']:.1f}x",
                f"{min_block}x",
            ),
            (
                f"serving x{concurrency} (inline vs pool, {serving['requests']} reqs)",
                f"{serving['inline_s']:.3f}",
                f"{serving['pooled_s']:.3f}",
                f"{serving['speedup']:.1f}x",
                f"{min_serve}x" if serve_enforced else f"({min_serve}x, not enforced)",
            ),
        ],
        notes=(
            "Cold path is single-threaded: same CounterPRF, same inputs, only\n"
            "the kernel tier differs, and the outputs are asserted bit-identical\n"
            "first.  Serving compares thread-pool dispatch against the inline\n"
            "(pool_size=0) baseline on cache-cold counts_block requests; the\n"
            "response bytes are asserted identical across arms.  The serving\n"
            f"floor is enforced only on hosts with >=4 usable cores (this host:\n"
            f"{cores}) — wall-clock parallelism on fewer cores measures the\n"
            "hardware, not the dispatch path."
        ),
    )

    # Per-run JSON for the CI artifact, then the repo-root trajectory —
    # both land before any floor can fail the run.
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
    print(f"\nwrote {JSON_PATH}")
    trajectory = []
    if os.path.exists(TRAJECTORY_PATH):
        with open(TRAJECTORY_PATH, "r", encoding="utf-8") as handle:
            trajectory = json.load(handle)
    trajectory.append(
        {
            "num_users": num_users,
            "cold_block_speedup": round(cold["speedup"], 3),
            "serving_speedup": round(serving["speedup"], 3),
            "usable_cores": cores,
        }
    )
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    print(f"appended to {TRAJECTORY_PATH} ({len(trajectory)} records)")

    assert cold["speedup"] >= min_block, (
        f"compiled cold evaluate_block is only {cold['speedup']:.1f}x over the "
        f"NumPy tier (required {min_block}x)"
    )
    if serve_enforced:
        assert serving["speedup"] >= min_serve, (
            f"pooled serving is only {serving['speedup']:.1f}x over inline "
            f"dispatch (required {min_serve}x)"
        )
    else:
        print(
            f"\nNOTE: only {cores} usable core(s) — serving floor of "
            f"{min_serve}x reported ({serving['speedup']:.1f}x) but not enforced."
        )
    return results


def test_e27_kernel_tier():
    import pytest

    if not kernels.available():
        pytest.skip("compiled kernel extension not built")
    # CI-sized run: bit identity and cross-arm response identity are
    # asserted exactly; the cold floor is relaxed to 2x (fixed dispatch
    # overhead weighs more at small M) and the serving floor enforces
    # itself only on >=4-core hosts.
    run(num_users=8_000, min_block=2.0, serve_users=1_500,
        concurrency=8, per_client=6, min_serve=1.0)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: M=8k cold path / 8-way serving with relaxed floors "
        "instead of M=50k / 16-way with 3x/2x",
    )
    args = parser.parse_args()
    if args.quick:
        run(num_users=8_000, min_block=2.0, serve_users=1_500,
            concurrency=8, per_client=6, min_serve=1.0)
    else:
        run(num_users=50_000, min_block=3.0, serve_users=4_000,
            concurrency=16, per_client=12, min_serve=2.0)
