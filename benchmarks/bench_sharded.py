"""E26 — sharded serving: scatter-gather throughput vs shard count.

PR 7 split the store by contiguous user range into per-shard worker
processes with a :class:`~repro.server.sharded.ShardCoordinator` in
front, speaking the PR 6 typed protocol unchanged.  This benchmark
measures what that buys (and costs) end to end:

* the same **mixed warm/cold trace** of protocol requests E25 drives,
  executed against the coordinator at **1, 2 and 4 shards** — each
  shard a real OS process hosting its own ``QueryEngine`` and
  persistent cache;
* recording **throughput (requests/s) and p50/p95 latency** per shard
  count, so the trajectory captures the scatter-gather overhead at one
  shard (pure protocol tax) against the fan-out at four;
* an exact **parity gate**: every coordinator reply must equal the
  single-store engine's answer bit for bit, at every shard count, and
  the error count must be zero — sharding is a deployment choice, never
  an accuracy trade.

Results append to ``BENCH_sharded.json`` at the repo root (one entry
per run, so CI accumulates a trajectory) and the text table goes to
``benchmarks/results/``.

Run directly (``--quick`` for CI sizing) or via pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

import numpy as np

from repro.data import bernoulli_panel
from repro.protocol import (
    AnyOfRequest,
    BitMatrixRequest,
    CountsBlockRequest,
    EstimateManyRequest,
    ExactlyLRequest,
    FractionRequest,
    MarginalRequest,
)
from repro.protocol.messages import _jsonable
from repro.server import QueryEngine, ShardedService, publish_database

from _harness import make_stack, write_table

SEED = 26
SUBSETS = [(0, 1), (1, 2, 3), (0,), (1,), (2,), (3,)]
SHARD_COUNTS = [1, 2, 4]
JSON_PATH = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_sharded.json")
)


def build_trace(repeats: int) -> list:
    """``(kind, request)`` pairs: one cold pass, ``repeats - 1`` warm ones.

    The E25 mix plus the Appendix F partition path (``counts_block`` over
    a subset only coverable as a disjoint union) — the reduction that
    path exercises is merged weight histograms, not plain bit sums.
    """
    base = [
        ("counts_block", CountsBlockRequest.build((0, 1), [(0, 0), (0, 1), (1, 0), (1, 1)])),
        ("counts_block", CountsBlockRequest.build((0, 1, 2), [(1, 0, 1)])),
        ("marginal", MarginalRequest.build((0, 1))),
        ("estimate_many", EstimateManyRequest.build((1, 2, 3), [(1, 1, 1), (0, 1, 0)])),
        ("fraction", FractionRequest.build((1, 2, 3), (1, 0, 1))),
        ("any_of", AnyOfRequest.build([((0, 1), (1, 1)), ((2,), (1,))])),
        ("exactly_l", ExactlyLRequest.build((0, 1, 2, 3), 2)),
        ("bit_matrix", BitMatrixRequest.build((0, 1, 2, 3), 1)),
    ]
    return base * repeats


def drive(coordinator, trace) -> dict:
    """Execute the trace sequentially against one coordinator."""
    latencies = []
    replies = {}
    errors = []
    wall_start = time.perf_counter()
    for position, (_, request) in enumerate(trace):
        start = time.perf_counter()
        try:
            replies[position] = coordinator.execute(request).result
        except Exception as exc:  # noqa: BLE001 - benchmark: count, then assert 0
            errors.append(f"request {position}: {type(exc).__name__}: {exc}")
        latencies.append(time.perf_counter() - start)
    wall = time.perf_counter() - wall_start
    flat_ms = np.asarray([s * 1e3 for s in latencies])
    return {
        "requests": len(trace),
        "errors": errors,
        "replies": replies,
        "wall_s": wall,
        "throughput_rps": len(trace) / wall,
        "p50_ms": float(np.percentile(flat_ms, 50)),
        "p95_ms": float(np.percentile(flat_ms, 95)),
    }


def run(num_users: int = 20_000, repeats: int = 5) -> dict:
    _params, prf, sketcher, estimator, rng = make_stack(p=0.3, seed=SEED)
    database = bernoulli_panel(num_users, 4, density=0.5, rng=rng)
    store = publish_database(database, sketcher, SUBSETS, workers=1, seed=SEED)
    engine = QueryEngine(database.schema, store, estimator)
    trace = build_trace(repeats)

    levels = []
    with tempfile.TemporaryDirectory(prefix="bench-sharded-") as base_dir:
        for n_shards in SHARD_COUNTS:
            service = ShardedService.from_store(
                store, prf, n_shards, os.path.join(base_dir, f"n{n_shards}"),
                cache=True,
            )
            try:
                service.start()
                level = drive(service.coordinator, trace)
            finally:
                service.close()
            level["shards"] = n_shards
            levels.append(level)

    # Parity: every coordinator reply must equal the single-store engine's
    # answer bit for bit, at every shard count.
    expected = {}
    for position, (_, request) in enumerate(trace):
        expected[position] = json.loads(
            json.dumps(_jsonable(engine.execute(request).result))
        )
    for level in levels:
        assert not level["errors"], f"sharded serving errors: {level['errors'][:3]}"
        assert len(level["replies"]) == len(trace), "lost replies"
        for position, reply in level["replies"].items():
            normalised = json.loads(json.dumps(_jsonable(reply)))
            assert normalised == expected[position], (
                f"{level['shards']} shard(s), request {position} "
                f"({trace[position][0]}): coordinator deviates from single store"
            )
        del level["replies"]  # not for the JSON record

    kinds = sorted({kind for kind, _ in trace})
    record = {
        "experiment": "E26",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "num_users": num_users,
        "trace_requests": len(trace),
        "message_kinds": kinds,
        "levels": levels,
    }

    # Append to the repo-root trajectory file (one entry per run) BEFORE
    # asserting anything else about history shape — a failed run must not
    # lose the measurements CI already paid for.
    history = {"experiment": "E26", "runs": []}
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                history = loaded
        except (OSError, ValueError):
            pass  # corrupt history: start a fresh trajectory
    history["runs"].append(record)
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)

    write_table(
        "E26",
        f"Sharded serving: M={num_users}, {len(trace)} requests over "
        f"{len(kinds)} message kinds",
        ["shards", "throughput req/s", "p50 ms", "p95 ms"],
        [
            (
                str(level["shards"]),
                f"{level['throughput_rps']:.0f}",
                f"{level['p50_ms']:.2f}",
                f"{level['p95_ms']:.2f}",
            )
            for level in levels
        ],
        notes=(
            "One coordinator scatter-gathering over N worker processes on\n"
            "localhost; workers return integer partial statistics (bit\n"
            "sums, weight histograms, matrix rows) and the coordinator\n"
            "re-runs the float arithmetic once on the merged integers, so\n"
            "every answer is asserted bit-identical to the single-store\n"
            "engine.  N=1 prices the pure scatter-gather protocol tax;\n"
            "N=4 shows how fan-out amortises the cold PRF/cache bill."
        ),
    )
    print(f"\nappended run to {JSON_PATH} ({len(history['runs'])} run(s) on record)")
    return record


def test_e26_sharded():
    # CI sizing: small store, short trace; the parity and zero-error
    # contracts are asserted exactly at every shard count.
    run(num_users=2_000, repeats=3)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: M=2k and a 3-pass trace instead of M=20k / 5 passes",
    )
    args = parser.parse_args()
    if args.quick:
        run(num_users=2_000, repeats=3)
    else:
        run(num_users=20_000, repeats=5)
