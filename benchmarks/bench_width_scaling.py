"""E7 — the headline: error independent of query width k.

One sketch answers a width-k conjunction with the same O(1/sqrt(M)) noise
for every k; per-bit randomized response must invert a (k+1)-dimensional
system whose conditioning blows up exponentially (Appendix F).  This is
the paper's key difference from [10] and [24].
"""

from __future__ import annotations

import numpy as np

from repro.baselines import RandomizedResponse
from repro.core import Sketcher, condition_number
from repro.data import bernoulli_panel
from repro.server import publish_database

from _harness import make_stack, write_table

NUM_USERS = 4000
TRIALS = 4
WIDTHS = (1, 2, 4, 8, 12)
P = 0.3


def test_e7_width_scaling(benchmark):
    params, prf, _, estimator, rng = make_stack(P, seed=7, clamp=False)

    def sweep():
        rows = []
        for width in WIDTHS:
            sketch_errs, rr_errs = [], []
            for _ in range(TRIALS):
                # density high enough that the all-ones conjunction has mass
                density = 0.9 ** (1.0 / max(1, width)) if width > 1 else 0.5
                db = bernoulli_panel(NUM_USERS, width, density=density, rng=rng)
                subset = tuple(range(width))
                value = tuple([1] * width)
                truth = db.exact_conjunction(subset, value)
                sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
                store = publish_database(db, sketcher, [subset])
                estimate = estimator.estimate(store.sketches_for(subset), value)
                sketch_errs.append(abs(estimate.fraction - truth))
                mechanism = RandomizedResponse(P, rng=rng)
                perturbed = mechanism.perturb(db.matrix())
                rr_estimate = mechanism.estimate_conjunction(perturbed, value, clamp=False)
                rr_errs.append(abs(rr_estimate - truth))
            rows.append(
                (
                    width,
                    f"{np.mean(sketch_errs):.4f}",
                    f"{np.mean(rr_errs):.4f}",
                    f"{condition_number(width, P):.1e}",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    half_width = make_stack(P, seed=0)[3].half_width(NUM_USERS, delta=0.01)
    write_table(
        "E7",
        f"Headline — error vs query width k (M = {NUM_USERS}, p = {P})",
        ["k", "sketch |err|", "randomized-response |err|", "cond(V_k)"],
        rows,
        notes=(
            "Paper claim: sketch error is independent of k (bounded by the same\n"
            f"Lemma 4.1 half-width {half_width:.4f} for every k), while per-bit\n"
            "reconstruction error grows with cond(V) ~ exponential in k.  Expect\n"
            "the RR column to overtake the sketch column by k ~ 4-8 and explode\n"
            "after; crossover location shifts with M but the shape is stable."
        ),
    )
    sketch_errors = [float(r[1]) for r in rows]
    rr_errors = [float(r[2]) for r in rows]
    # Sketch error flat: every width below the analytic bound.
    assert max(sketch_errors) <= half_width
    # RR error at the widest query dwarfs the sketch error.
    assert rr_errors[-1] > 5 * sketch_errors[-1]
