"""E6 — Lemma 4.1: conjunctive-query error scales as O(sqrt(log(1/δ)/M)).

Sweeps the user count, measures mean and 95th-percentile estimation error
over repeated trials, fits the power law, and compares against the
analytic Chernoff half-width.  Also ablates the estimator's count-zeros
trick (clamping) from DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import error_quantile, fit_power_decay
from repro.data import bernoulli_panel
from repro.server import publish_database

from _harness import make_stack, write_table

SIZES = (250, 1000, 4000, 16000)
TRIALS = 6
SUBSET = (0, 1, 2)
VALUE = (1, 0, 1)


def run_sweep(clamp: bool):
    params, prf, _, estimator, rng = make_stack(0.25, seed=6, clamp=clamp)
    from repro.core import Sketcher

    rows = []
    errors_by_size = []
    for num_users in SIZES:
        estimates, truths = [], []
        for _ in range(TRIALS):
            db = bernoulli_panel(num_users, 3, density=0.5, rng=rng)
            sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
            store = publish_database(db, sketcher, [SUBSET])
            estimate = estimator.estimate(store.sketches_for(SUBSET), VALUE)
            estimates.append(estimate.fraction)
            truths.append(db.exact_conjunction(SUBSET, VALUE))
        abs_errors = np.abs(np.array(estimates) - np.array(truths))
        mean_error = float(abs_errors.mean())
        errors_by_size.append(mean_error)
        rows.append(
            (
                num_users,
                f"{mean_error:.4f}",
                f"{error_quantile(estimates, truths, 0.95):.4f}",
                f"{estimator.half_width(num_users, delta=0.05):.4f}",
            )
        )
    return rows, errors_by_size


def test_e6_error_decay(benchmark):
    rows, errors = benchmark.pedantic(lambda: run_sweep(clamp=False), rounds=1, iterations=1)
    fit = fit_power_decay(SIZES, errors)
    write_table(
        "E6",
        "Lemma 4.1 — query error vs user count M (p = 0.25, width-3 query)",
        ["M", "mean |err|", "p95 |err|", "Lemma 4.1 half-width (d=.05)"],
        rows,
        notes=(
            f"Paper claim: error O(sqrt(log(1/delta)/M)) — exponent -0.5 in M.\n"
            f"Fitted power law: error ~ {fit.coefficient:.2f} * M^{fit.exponent:.3f} "
            f"(R^2 = {fit.r_squared:.3f}).\n"
            "Every mean error sits below the analytic half-width."
        ),
    )
    assert -0.8 < fit.exponent < -0.25
    for (num_users, mean_error, _, half_width) in rows:
        assert float(mean_error) <= float(half_width)


def test_e6b_clamping_ablation(benchmark):
    def both():
        raw_rows, raw_errors = run_sweep(clamp=False)
        clamped_rows, clamped_errors = run_sweep(clamp=True)
        return raw_errors, clamped_errors

    raw_errors, clamped_errors = benchmark.pedantic(both, rounds=1, iterations=1)
    rows = [
        (m, f"{raw:.4f}", f"{cl:.4f}")
        for m, raw, cl in zip(SIZES, raw_errors, clamped_errors)
    ]
    write_table(
        "E6b",
        "Ablation — estimator clamping to [0,1] (mean |err|)",
        ["M", "raw (unbiased)", "clamped"],
        rows,
        notes=(
            "Clamping trades a small bias for never reporting impossible\n"
            "fractions; on rare-event queries it typically reduces error."
        ),
    )
