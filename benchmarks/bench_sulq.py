"""E15 — Appendix A: input vs output perturbation in a trusted server.

Measures per-query noise and query capacity of the two modes:

* paid (SULQ-style output perturbation): noise E, at most min(E^2, M)
  queries;
* free (sketch-backed input perturbation): noise O(sqrt(M)), unlimited
  queries.

The appendix's point: tuned to answer as many queries as possible
(E = sqrt(M)), SULQ's noise matches the sketch mode's — and the sketch
mode never stops answering.
"""

from __future__ import annotations

import numpy as np

from repro.core import Sketcher, SketchEstimator
from repro.data import bernoulli_panel
from repro.server import DualModeServer, QueryBudgetExhausted

from _harness import make_stack, write_table

NUM_USERS = 10000
P = 0.25


def test_e15_dual_mode_noise(benchmark):
    params, prf, _, estimator, rng = make_stack(P, seed=15, clamp=False)
    db = bernoulli_panel(NUM_USERS, 4, density=0.4, rng=rng)
    sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
    noise = float(np.sqrt(NUM_USERS))  # SULQ tuned for max queries
    server = DualModeServer(
        db, sketcher, estimator, subsets=[(0,), (1,), (0, 1)],
        noise_magnitude=noise, rng=rng,
    )

    def measure():
        exact = db.exact_count((0, 1), (1, 1))
        paid_errors = [
            abs(server.count((0, 1), (1, 1), mode="paid") - exact) for _ in range(60)
        ]
        free_errors = [abs(server.count((0, 1), (1, 1), mode="free") - exact)]
        return paid_errors, free_errors

    paid_errors, free_errors = benchmark.pedantic(measure, rounds=1, iterations=1)
    theoretical = estimator.half_width(NUM_USERS, delta=0.05) * NUM_USERS
    rows = [
        (
            "paid (SULQ, E=sqrt(M))",
            f"{noise:.0f}",
            f"{np.mean(paid_errors):.1f}",
            f"min(E^2, M) = {server.paid.query_budget}",
        ),
        (
            "free (sketches)",
            f"O(sqrt(M)) = {np.sqrt(NUM_USERS):.0f}",
            f"{np.mean(free_errors):.1f}",
            "unlimited",
        ),
        (
            "free theoretical",
            f"{theoretical:.0f} (Lemma 4.1 @95%)",
            "-",
            "unlimited",
        ),
    ]
    write_table(
        "E15",
        f"Appendix A — dual-mode server noise and capacity (M = {NUM_USERS})",
        ["mode", "noise scale", "measured mean |err| (counts)", "query budget"],
        rows,
        notes=(
            "Paper claim: sketches give O(sqrt(M)) noise on all but a negligible\n"
            "fraction of queries with NO query limit, sidestepping Dinur-Nissim;\n"
            "SULQ tuned to maximum capacity adds comparable noise but stops after\n"
            "min(E^2, M) queries.  Both measured errors are of order sqrt(M) = 100."
        ),
    )
    # Both in the sqrt(M) regime, far below linear.
    assert np.mean(paid_errors) < 5 * np.sqrt(NUM_USERS)
    assert np.mean(free_errors) < 30 * np.sqrt(NUM_USERS)


def test_e15b_budget_enforcement(benchmark):
    params, prf, _, estimator, rng = make_stack(P, seed=151)
    db = bernoulli_panel(400, 2, rng=rng)
    sketcher = Sketcher(params, prf, sketch_bits=8, rng=rng)
    server = DualModeServer(
        db, sketcher, estimator, subsets=[(0,)], noise_magnitude=5.0, rng=rng
    )

    def drain():
        answered = 0
        try:
            while True:
                server.paid.count((0,), (1,))
                answered += 1
        except QueryBudgetExhausted:
            pass
        # free mode still answers afterwards
        for _ in range(50):
            server.count((0,), (1,), mode="free")
        return answered

    answered = benchmark.pedantic(drain, rounds=1, iterations=1)
    write_table(
        "E15b",
        "Appendix A — budget enforcement",
        ["mode", "queries answered"],
        [("paid before shutdown", answered), ("free afterwards", "50 (and counting)")],
        notes="Paid mode answers exactly min(E^2, M) = 25 queries, then refuses; free mode continues.",
    )
    assert answered == server.paid.query_budget == 25
