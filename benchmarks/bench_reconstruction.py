"""X4 — the Dinur–Nissim reconstruction phase transition (Appendix A).

Appendix A's argument rests on [7]: a curator adding noise ``o(sqrt(M))``
falls to polynomial reconstruction; ``Omega(sqrt(M))`` noise — exactly
what both of its modes add — defeats it.  This bench traces attack
accuracy across the noise scale and marks the transition.
"""

from __future__ import annotations

import math

import numpy as np

from repro.attacks import noisy_subset_sum_oracle, reconstruction_attack

from _harness import write_table

NUM_ROWS = 128


def test_x4_reconstruction_phase_transition(benchmark):
    rng = np.random.default_rng(44)
    secret = (rng.random(NUM_ROWS) < 0.5).astype(np.int8)
    root_m = math.sqrt(NUM_ROWS)
    scales = [0.0, 0.25 * root_m, 0.5 * root_m, root_m, 2.0 * root_m, 4.0 * root_m]

    def sweep():
        rows = []
        for scale in scales:
            oracle = noisy_subset_sum_oracle(secret, scale, rng)
            result = reconstruction_attack(oracle, NUM_ROWS, rng=rng, truth=secret)
            rows.append(
                (
                    f"{scale / root_m:.2f} sqrt(M)" if scale else "0 (exact)",
                    f"{scale:.1f}",
                    result.num_queries,
                    f"{result.accuracy:.3f}",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "X4",
        f"Dinur–Nissim reconstruction vs curator noise (M = {NUM_ROWS}, "
        "least-squares attacker, 4M random queries)",
        ["noise", "sigma", "queries", "reconstruction accuracy"],
        rows,
        notes=(
            "Appendix A claim (via [7]): noise o(sqrt(M)) admits near-total\n"
            "reconstruction; Omega(sqrt(M)) — the level both Appendix A modes\n"
            "add — pushes the attacker towards the 0.5 coin-flip floor.  The\n"
            "accuracy cliff falls between 0.25 and 1 sqrt(M) at this M and\n"
            "query budget, and accuracy decays monotonically past it."
        ),
    )
    accuracies = [float(row[3]) for row in rows]
    assert accuracies[0] == 1.0           # exact curator fully reconstructed
    assert accuracies[1] > 0.9            # o(sqrt(M)) still broken
    assert accuracies[-1] < 0.75          # 4 sqrt(M) defeats the attack
    assert accuracies == sorted(accuracies, reverse=True)
