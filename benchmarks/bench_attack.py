"""E17 + E18 — the partial-knowledge and dictionary attacks.

* E17: the introduction's retention-replacement attack (<1,1,2,2,3,3> vs
  <4,4,5,5,6,6>) scored against sketches and randomized response.
* E18: Section 3's 100-candidate dictionary attack — hash vs sketch.
"""

from __future__ import annotations

import numpy as np

from repro.attacks import (
    attack_randomized_response,
    attack_retention,
    attack_sketches,
    dictionary_attack_hash,
    dictionary_attack_sketch,
    hash_publish,
    map_success_rate,
    posterior_entropy,
)
from repro.baselines import RandomizedResponse, RetentionReplacement
from repro.core import Sketcher
from repro.data import two_candidate_population

from _harness import make_stack, write_table

CANDIDATE_A = [1, 1, 2, 2, 3, 3]
CANDIDATE_B = [4, 4, 5, 5, 6, 6]
NUM_USERS = 250


def encode_bits(vector):
    bits = []
    for v in vector:
        bits.extend([(v >> 2) & 1, (v >> 1) & 1, v & 1])
    return bits


def test_e17_partial_knowledge_attack(benchmark):
    params, prf, _, _, rng = make_stack(0.3, seed=17)
    bits_a, bits_b = encode_bits(CANDIDATE_A), encode_bits(CANDIDATE_B)
    db, truth = two_candidate_population(NUM_USERS, bits_a, bits_b, rng=rng)
    truth_bool = truth.astype(bool)

    def run_attacks():
        sketcher = Sketcher(params, prf, sketch_bits=6, rng=rng)
        subset = tuple(range(18))
        sketch_results = []
        for profile in db:
            sketch = sketcher.sketch(profile.user_id, profile.bits, subset)
            sketch_results.append(
                attack_sketches(prf, params, [sketch], bits_a, bits_b)
            )
        retention = RetentionReplacement(0.5, 8, rng=rng)
        retention_results = []
        for holds_a in truth_bool:
            vector = np.array(CANDIDATE_A if holds_a else CANDIDATE_B)
            retention_results.append(
                attack_retention(
                    retention, retention.perturb(vector), CANDIDATE_A, CANDIDATE_B
                )
            )
        flip = RandomizedResponse(params.p, rng=rng)
        rr_results = []
        for holds_a in truth_bool:
            observed = flip.perturb(np.array([bits_a if holds_a else bits_b]))[0]
            rr_results.append(
                attack_randomized_response(flip, observed, bits_a, bits_b)
            )
        return sketch_results, retention_results, rr_results

    sketch_results, retention_results, rr_results = benchmark.pedantic(
        run_attacks, rounds=1, iterations=1
    )
    rows = [
        (
            "sketch (1 per user)",
            f"{map_success_rate(sketch_results, truth_bool):.1%}",
            f"{max(r.advantage for r in sketch_results):.3f}",
            f"{params.privacy_ratio_bound():.1f}",
        ),
        (
            "retention (rho=0.5)",
            f"{map_success_rate(retention_results, truth_bool):.1%}",
            f"{max(r.advantage for r in retention_results):.3f}",
            "unbounded",
        ),
        (
            "randomized response",
            f"{map_success_rate(rr_results, truth_bool):.1%}",
            f"{max(r.advantage for r in rr_results):.3f}",
            f"((1-p)/p)^18 = {RandomizedResponse(params.p).privacy_ratio_bound(18):.0f}",
        ),
    ]
    write_table(
        "E17",
        f"§1 partial-knowledge attack — {NUM_USERS} users, candidates "
        "<1,1,2,2,3,3> vs <4,4,5,5,6,6>, prior 50/50",
        ["mechanism", "MAP success", "worst posterior shift", "ratio bound"],
        rows,
        notes=(
            "Paper claim: retention replacement 'virtually reveals the exact\n"
            "private data' under two-candidate knowledge; sketches bound the\n"
            "posterior shift by Lemma 3.3 regardless of the attacker's prior.\n"
            "Expect: retention ~100%, randomized response >90% (18 differing\n"
            "bits), sketch close to the 50% coin-flip floor."
        ),
    )
    assert map_success_rate(retention_results, truth_bool) > 0.95
    assert map_success_rate(sketch_results, truth_bool) < 0.85


def test_e18_dictionary_attack(benchmark):
    params, prf, _, _, rng = make_stack(0.3, seed=18)
    dictionary = [tuple(int(b) for b in f"{i:07b}") for i in range(100)]
    secret_index = 42
    secret = list(dictionary[secret_index])

    def run():
        sketcher = Sketcher(params, prf, sketch_bits=6, rng=rng)
        sketch = sketcher.sketch("alice", secret, tuple(range(7)))
        posterior = dictionary_attack_sketch(prf, params, sketch, dictionary)
        hashed = hash_publish(tuple(secret))
        recovered = dictionary_attack_hash(hashed, dictionary)
        return posterior, recovered

    posterior, recovered = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            "plain hash",
            f"candidate #{recovered} (exact)",
            "1.000",
            "0.00",
        ),
        (
            "sketch",
            "posterior over all 100",
            f"{posterior.max():.4f}",
            f"{posterior_entropy(posterior):.2f}",
        ),
        ("uniform prior", "-", "0.0100", f"{np.log2(100):.2f}"),
    ]
    write_table(
        "E18",
        "§3 dictionary attack — Bob knows Alice's value is one of 100",
        ["publication", "attacker output", "max posterior", "residual entropy (bits)"],
        rows,
        notes=(
            "Paper claim: hashing is non-reversible yet NOT private — the\n"
            "dictionary attack recovers the value exactly.  A sketch's posterior\n"
            "is provably within ((1-p)/p)^4 of the prior for every candidate."
        ),
    )
    assert recovered == secret_index
    bound = params.privacy_ratio_bound()
    assert posterior.max() <= bound / 100 + 1e-9
    assert posterior_entropy(posterior) > 5.0
