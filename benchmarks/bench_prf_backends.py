"""E24 — counter-mode PRF backend + batched collection: the cold path.

PR 4 made *warm* queries answer from cached evaluation columns with zero
PRF work; every *cold* evaluation still paid one Python-level
``hashlib.blake2b`` call per ``(user, value)`` point, so collection and
cache-cold queries were bottlenecked on the interpreter.  The
``CounterPRF`` backend replaces per-point hashing with one keyed BLAKE2b
subkey per ``(id, B)`` plus counter-mode Philox4x64-10 expansion (pure
NumPy array arithmetic), and ``Sketcher.sketch_many`` vectorises
Algorithm 1's rejection loop across a whole chunk of users.

This benchmark measures, at M=50k users (``--quick`` shrinks M for CI):

* **cold ``evaluate_block``** — a full width-8 marginal (256 candidate
  values, the byte-attribute histogram workload) straight through each
  backend, asserting the ≥10x floor for ``CounterPRF`` over
  ``BiasedPRF``;
* **end-to-end single-worker collection** — ``publish_database`` with
  the counter backend (vectorised ``sketch_many`` path) against the
  classic per-user scalar loop with ``BiasedPRF`` (the pre-existing
  sequential path, still shipped as ``workers=None``), asserting the
  ≥3x floor; the vectorised ``BiasedPRF`` row is reported alongside;
* **contracts** — each backend's block output equals its scalar
  ``evaluate`` on a sample; collection is bitwise identical across
  worker counts for both backends; the two backends produce *different*
  evaluation-cache identity hashes for the same store (no cache-dir
  reuse).

Floors are statements about the software, not the host: the full run
asserts 10x/3x at M=50k; ``--quick`` (CI) keeps every exact contract but
relaxes the floors to 4x/2x, because at CI sizes fixed vector-dispatch
overheads weigh more against the smaller hashing bill (same convention
as E21's core-count relaxation).

Results are written as the usual text table and as
``benchmarks/results/BENCH_prf_backends.json`` for the CI artifact (the
JSON lands before the floors are asserted, so a failing run still ships
its numbers).

Run directly (``--quick`` for CI sizing) or via pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.core import BiasedPRF, CounterPRF, PrivacyParams, SketchEstimator, Sketcher
from repro.data import bernoulli_panel
from repro.server import publish_database
from repro.server.engine import store_content_hash
from repro.server.serialization import dumps_store

from _harness import RESULTS_DIR, GLOBAL_KEY, write_table

SEED = 24
WIDTH = 8  # 2**8 = 256 candidate values: the byte-attribute histogram
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_prf_backends.json")


def _spot_check_block(prf, user_ids, subset, values, keys, block, samples=40):
    """Assert block output == scalar evaluate at a deterministic sample."""
    rng = np.random.default_rng(0)
    for _ in range(samples):
        u = int(rng.integers(0, len(user_ids)))
        j = int(rng.integers(0, len(values)))
        scalar = prf.evaluate(user_ids[u], subset, values[j], keys[u])
        assert block[u, j] == scalar, (
            f"{type(prf).__name__} block[{u},{j}]={block[u, j]} != scalar {scalar}"
        )


def run(num_users: int = 50_000, min_block: float = 10.0, min_collect: float = 3.0) -> dict:
    params = PrivacyParams(p=0.3)
    blake = BiasedPRF(p=0.3, global_key=GLOBAL_KEY)
    counter = CounterPRF(p=0.3, global_key=GLOBAL_KEY)
    subset = tuple(range(WIDTH))
    values = [
        tuple(int(bit) for bit in np.binary_repr(v, WIDTH)) for v in range(1 << WIDTH)
    ]
    user_ids = [f"user-{i:07d}" for i in range(num_users)]
    keys = np.random.default_rng(SEED).integers(0, 1 << 10, size=num_users).tolist()

    # ------------------------------------------------------------------
    # Cold evaluate_block: full width-8 marginal through each backend.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    blake_block = blake.evaluate_block(user_ids, subset, values, keys)
    blake_block_s = time.perf_counter() - start
    start = time.perf_counter()
    counter_block = counter.evaluate_block(user_ids, subset, values, keys)
    counter_block_s = time.perf_counter() - start
    _spot_check_block(blake, user_ids, subset, values, keys, blake_block)
    _spot_check_block(counter, user_ids, subset, values, keys, counter_block)
    # Both are p-biased functions; their empirical means must sit at p
    # (they are *different* functions, so the bits themselves differ).
    for name, block in (("blake2b", blake_block), ("counter", counter_block)):
        mean = float(block.mean())
        sigma = (0.3 * 0.7 / block.size) ** 0.5
        assert abs(mean - 0.3) < 8 * sigma, f"{name} bias {mean} far from p=0.3"
    block_speedup = blake_block_s / counter_block_s

    # ------------------------------------------------------------------
    # End-to-end single-worker collection.  Baseline: the classic
    # sequential per-user scalar loop (workers=None) under BiasedPRF —
    # the pre-existing path.  Both workers=1 rows ride the vectorised
    # sketch_many path.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(SEED)
    database = bernoulli_panel(num_users, 4, density=0.5, rng=rng)
    collect_subsets = [(0, 1, 2, 3)]

    def collect(prf_instance, workers, chunk_size=None):
        sketcher = Sketcher(
            params, prf_instance, sketch_bits=10, rng=np.random.default_rng(SEED)
        )
        start = time.perf_counter()
        store = publish_database(
            database, sketcher, collect_subsets, workers=workers, seed=SEED,
            chunk_size=chunk_size,
        )
        return time.perf_counter() - start, store

    scalar_blake_s, _ = collect(blake, None)
    vector_blake_s, blake_store = collect(blake, 1)
    vector_counter_s, counter_store = collect(counter, 1)
    collect_speedup = scalar_blake_s / vector_counter_s

    # Bitwise identity across worker counts AND chunk schedules, both
    # backends (the chunk autotune must never leak into the store).
    for prf_instance, one_worker_store, name in (
        (blake, blake_store, "blake2b"),
        (counter, counter_store, "counter"),
    ):
        _, two = collect(prf_instance, 2)
        assert dumps_store(one_worker_store, include_iterations=True) == dumps_store(
            two, include_iterations=True
        ), f"{name}: workers=1 and workers=2 stores differ"
        _, chunked = collect(prf_instance, 2, chunk_size=max(1, num_users // 7))
        assert dumps_store(one_worker_store, include_iterations=True) == dumps_store(
            chunked, include_iterations=True
        ), f"{name}: explicit chunk_size changed the published store"

    # Distinct PRF identities: same store, different cache hash domain.
    blake_hash = store_content_hash(blake_store, blake)
    counter_hash = store_content_hash(blake_store, counter)
    assert blake_hash != counter_hash, (
        "CounterPRF must not reuse BLAKE2b evaluation-cache directories"
    )

    num_points = num_users * len(values)
    results = {
        "experiment": "E24",
        "num_users": num_users,
        "block_values": len(values),
        "evaluate_block": {
            "blake2b_s": blake_block_s,
            "counter_s": counter_block_s,
            "blake2b_ns_per_point": blake_block_s / num_points * 1e9,
            "counter_ns_per_point": counter_block_s / num_points * 1e9,
            "speedup": block_speedup,
            "floor": min_block,
        },
        "collection": {
            "blake2b_scalar_s": scalar_blake_s,
            "blake2b_sketch_many_s": vector_blake_s,
            "counter_sketch_many_s": vector_counter_s,
            "speedup_vs_scalar": collect_speedup,
            "speedup_vs_vector_blake2b": vector_blake_s / vector_counter_s,
            "floor": min_collect,
        },
        "identity": {
            "worker_counts_bitwise_identical": True,
            "distinct_cache_hashes": True,
        },
    }
    write_table(
        "E24",
        f"Counter-mode PRF backend + batched collection: M={num_users}",
        ["path", "blake2b s", "counter s", "speedup", "floor"],
        [
            (
                f"cold evaluate_block ({len(values)} values)",
                f"{blake_block_s:.3f}",
                f"{counter_block_s:.3f}",
                f"{block_speedup:.1f}x",
                f"{min_block}x",
            ),
            (
                "collection (vs scalar blake2b)",
                f"{scalar_blake_s:.3f}",
                f"{vector_counter_s:.3f}",
                f"{collect_speedup:.1f}x",
                f"{min_collect}x",
            ),
            (
                "collection (blake2b via sketch_many)",
                f"{vector_blake_s:.3f}",
                "-",
                f"{scalar_blake_s / vector_blake_s:.1f}x",
                "-",
            ),
        ],
        notes=(
            "Cold evaluate_block is a full width-8 marginal (the byte-\n"
            "attribute histogram).  The collection baseline is the classic\n"
            "per-user scalar loop (workers=None) under BiasedPRF; both\n"
            "workers=1 rows ride the vectorised sketch_many path.  Exact\n"
            "contracts asserted: block == scalar evaluate per backend,\n"
            "bitwise-identical stores across worker counts for both\n"
            "backends, and distinct evaluation-cache identity hashes."
        ),
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
    print(f"\nwrote {JSON_PATH}")
    assert block_speedup >= min_block, (
        f"cold evaluate_block is only {block_speedup:.1f}x over BiasedPRF "
        f"(required {min_block}x)"
    )
    assert collect_speedup >= min_collect, (
        f"end-to-end collection is only {collect_speedup:.1f}x over the "
        f"BiasedPRF scalar path (required {min_collect}x)"
    )
    return results


def test_e24_prf_backends():
    # CI-sized run: every exact contract (parity, worker-count identity,
    # distinct cache hashes) is asserted; the speedup floors are relaxed
    # because fixed vector-dispatch overheads weigh more at small M.
    run(num_users=4_000, min_block=4.0, min_collect=2.0)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: M=4k with 4x/2x floors instead of M=50k with 10x/3x",
    )
    args = parser.parse_args()
    if args.quick:
        run(num_users=4_000, min_block=4.0, min_collect=2.0)
    else:
        run(num_users=50_000, min_block=10.0, min_collect=3.0)
