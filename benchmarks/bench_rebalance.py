"""E29 — live rebalancing: split/merge under traffic, zero errors.

PR 10 made the shard topology *mutable under load*: a two-phase,
checkpointed handoff splits one shard's contiguous user range in two
(or merges two neighbours) while the coordinator keeps answering.  This
benchmark replays the E25/E26 mixed protocol trace against a 2-shard
service and drives a **split and then a merge mid-trace**, gating the
claims the design makes:

* **zero errors** — no request observes the handoff as a failure; the
  commit barrier drains in-flight fan-outs instead of breaking them;
* **exactness throughout** — every reply, before/during/after both
  handoffs, is bit-identical to the single-store engine's answer
  (mid-rebalance queries route by the committed map, so there is no
  double-count window);
* **throughput floor** — requests issued while a handoff is in flight
  sustain at least 90% (80% in quick/CI mode, where short windows on
  shared runners cannot average out scheduler noise — same relaxation
  E28 applies) of the steady-state throughput *of that
  window's own topology* (the split runs at 2 shards, the merge at 3;
  E26 prices the per-shard-count fan-out tax separately, and a handoff
  should not be billed for it): every heavy step (carve, export,
  staged drop/adopt) runs while workers keep serving, the commit
  barrier holds only for an engine pointer swap plus the map flip,
  and the handoff is paced (``pace_s``) so each phase's CPU ripple
  amortises over the window instead of concentrating.

Results append to ``BENCH_rebalance.json`` at the repo root (one entry
per run, so CI accumulates a trajectory) and the text table goes to
``benchmarks/results/``.

Run directly (``--quick`` for CI sizing) or via pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
import time

import numpy as np

from repro.data import bernoulli_panel
from repro.protocol import (
    AnyOfRequest,
    BitMatrixRequest,
    CountsBlockRequest,
    EstimateManyRequest,
    ExactlyLRequest,
    FractionRequest,
    MarginalRequest,
)
from repro.protocol.messages import _jsonable
from repro.server import QueryEngine, ShardedService, publish_database

from _harness import make_stack, write_table

SEED = 29
SUBSETS = [(0, 1), (1, 2, 3), (0,), (1,), (2,), (3,)]
THROUGHPUT_FLOOR = 0.90
#: Quick (CI) mode relaxes the floor the same way E28 does: shared CI
#: runners add scheduler noise that the short quick-mode windows cannot
#: average out, so the contract-strength 90% gate is the full run's.
QUICK_THROUGHPUT_FLOOR = 0.80
#: Pause between handoff phases — the operational throttle that bounds
#: serving impact (the phases themselves are off the query path).  A
#: bigger store means heavier prepare/stage steps, so the pace scales
#: with the sizing (see ``run``'s ``pace_s``).
QUICK_PACE_S = 0.4
FULL_PACE_S = 5.0
JSON_PATH = os.path.normpath(
    os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_rebalance.json"
    )
)

#: The E25/E26 request mix — one entry per public protocol family.
BASE_TRACE = [
    ("counts_block", CountsBlockRequest.build((0, 1), [(0, 0), (0, 1), (1, 0), (1, 1)])),
    ("counts_block", CountsBlockRequest.build((0, 1, 2), [(1, 0, 1)])),
    ("marginal", MarginalRequest.build((0, 1))),
    ("estimate_many", EstimateManyRequest.build((1, 2, 3), [(1, 1, 1), (0, 1, 0)])),
    ("fraction", FractionRequest.build((1, 2, 3), (1, 0, 1))),
    ("any_of", AnyOfRequest.build([((0, 1), (1, 1)), ((2,), (1,))])),
    ("exactly_l", ExactlyLRequest.build((0, 1, 2, 3), 2)),
    ("bit_matrix", BitMatrixRequest.build((0, 1, 2, 3), 1)),
]


def _normalise(result) -> object:
    return json.loads(json.dumps(_jsonable(result)))


def run(
    num_users: int = 20_000,
    steady_s: float = 3.0,
    pace_s: float = FULL_PACE_S,
    floor: float = THROUGHPUT_FLOOR,
) -> dict:
    _params, prf, sketcher, estimator, rng = make_stack(p=0.3, seed=SEED)
    database = bernoulli_panel(num_users, 4, density=0.5, rng=rng)
    store = publish_database(database, sketcher, SUBSETS, workers=1, seed=SEED)
    engine = QueryEngine(database.schema, store, estimator)
    expected = [_normalise(engine.execute(r).result) for _, r in BASE_TRACE]

    windows: dict = {}
    control_error: list = []
    go_split = threading.Event()
    split_done = threading.Event()
    go_merge = threading.Event()
    merge_done = threading.Event()

    samples = []  # (base_index, start, latency, normalised_reply | None)
    errors: list = []

    with tempfile.TemporaryDirectory(prefix="bench-rebalance-") as base_dir:
        service = ShardedService.from_store(store, prf, 2, base_dir, cache=True)
        service.start()

        def control() -> None:
            """Drive the two handoffs while the main thread replays trace."""
            try:
                go_split.wait(timeout=300)
                t0 = time.perf_counter()
                out = service.rebalance_split("shard-0", pace_s=pace_s)
                windows["split"] = (t0, time.perf_counter())
                split_done.set()
                go_merge.wait(timeout=300)
                t0 = time.perf_counter()
                service.rebalance_merge(
                    out["donor"], out["recipient"], pace_s=pace_s
                )
                windows["merge"] = (t0, time.perf_counter())
            except Exception as exc:  # noqa: BLE001 - surfaced by the gate
                control_error.append(f"{type(exc).__name__}: {exc}")
            finally:
                split_done.set()
                merge_done.set()

        def drive_pass(measure: bool = True) -> None:
            for index, (_, request) in enumerate(BASE_TRACE):
                start = time.perf_counter()
                try:
                    reply = service.coordinator.execute(request).result
                except Exception as exc:  # noqa: BLE001 - gated to zero below
                    errors.append(f"{type(exc).__name__}: {exc}")
                    reply = None
                latency = time.perf_counter() - start
                if measure:
                    samples.append((index, start, latency, _normalise(reply)))

        def drive_until(event: threading.Event) -> None:
            while not event.is_set():
                drive_pass()

        def drive_for(seconds: float) -> None:
            deadline = time.perf_counter() + seconds
            while time.perf_counter() < deadline:
                drive_pass()

        thread = threading.Thread(target=control, daemon=True)
        thread.start()
        try:
            drive_pass(measure=False)  # cold pass: steady state is warm
            drive_for(steady_s)  # 2-shard steady baseline
            go_split.set()
            drive_until(split_done)  # split window (2-shard topology)
            drive_for(steady_s)  # 3-shard steady baseline
            go_merge.set()
            drive_until(merge_done)  # merge window (3-shard topology)
            drive_for(steady_s)  # back to 2 shards: the steady tail
            thread.join(timeout=300)
            status = service.rebalance_status()
        finally:
            go_split.set()
            go_merge.set()
            service.close()

    # Structural gates: without both handoff windows there is nothing
    # to segment or record.  Everything else (errors, parity, floors)
    # is asserted only AFTER the JSON trajectory is written, so a
    # failed run still lands the measurements CI paid for.
    assert not control_error, f"rebalance failed mid-trace: {control_error}"
    assert "split" in windows and "merge" in windows, "handoffs never ran"

    # Segment the timeline: each handoff window is compared against the
    # steady-state segment serving the same topology (2 shards around
    # the split, 3 shards around the merge) — the shard-count fan-out
    # tax is E26's measurement, not a handoff cost.
    split_t0, split_t1 = windows["split"]
    merge_t0, merge_t1 = windows["merge"]
    segments: dict = {
        "steady2": [], "split": [], "steady3": [], "merge": [], "tail": []
    }
    for _, start, latency, _ in samples:
        if start < split_t0:
            segments["steady2"].append(latency)
        elif start <= split_t1:
            segments["split"].append(latency)
        elif start < merge_t0:
            segments["steady3"].append(latency)
        elif start <= merge_t1:
            segments["merge"].append(latency)
        else:
            segments["tail"].append(latency)
    for name, lats in segments.items():
        assert lats, f"trace missed the {name!r} segment entirely"

    def rps(lats: list) -> float:
        # Trimmed rate: drop the slowest 5% before summing.  Applied
        # identically to every segment, so the comparison stays fair —
        # it removes scheduler noise spikes (which land in whichever
        # segment is unlucky), not systematic handoff slowdown.
        keep = max(1, int(len(lats) * 0.95))
        trimmed = sorted(lats)[:keep]
        return len(trimmed) / sum(trimmed)

    ratios = {
        "split": rps(segments["split"]) / rps(segments["steady2"]),
        "merge": rps(segments["merge"]) / rps(segments["steady3"]),
    }

    def p50_ms(lats: list) -> float:
        return float(np.percentile(np.asarray(lats) * 1e3, 50))

    record = {
        "experiment": "E29",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "num_users": num_users,
        "requests": len(samples),
        "errors": len(errors),
        "pace_s": pace_s,
        "split_s": split_t1 - split_t0,
        "merge_s": merge_t1 - merge_t0,
        "split_ratio": ratios["split"],
        "merge_ratio": ratios["merge"],
        "segments": {
            name: {
                "requests": len(lats),
                "rps": rps(lats),
                "p50_ms": p50_ms(lats),
            }
            for name, lats in segments.items()
        },
    }

    history = {"experiment": "E29", "runs": []}
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                history = loaded
        except (OSError, ValueError):
            pass  # corrupt history: start a fresh trajectory
    history["runs"].append(record)
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)

    # -- gates (after the trajectory landed) ----------------------------
    assert not errors, f"requests errored during the handoff: {errors[:3]}"
    assert status["completed"] == 2 and status["aborted"] == 0, status
    for index, _start, _latency, reply in samples:
        assert reply == expected[index], (
            f"request {BASE_TRACE[index][0]} deviated from the single-store "
            "engine during rebalancing"
        )
    for op, ratio in ratios.items():
        assert ratio >= floor, (
            f"mid-{op} throughput {rps(segments[op]):.0f} req/s is "
            f"{ratio:.1%} of that topology's steady state "
            f"{rps(segments['steady2' if op == 'split' else 'steady3']):.0f} "
            f"req/s (floor: {floor:.0%})"
        )

    labels = {
        "steady2": "steady (2 shards)",
        "split": "mid-split",
        "steady3": "steady (3 shards)",
        "merge": "mid-merge",
        "tail": "steady tail (2 shards)",
    }
    write_table(
        "E29",
        f"Live rebalancing: M={num_users}, {len(samples)} requests with a "
        "split + merge mid-trace",
        ["segment", "requests", "req/s", "p50 ms"],
        [
            (
                labels[name],
                str(len(segments[name])),
                f"{rps(segments[name]):.0f}",
                f"{p50_ms(segments[name]):.2f}",
            )
            for name in ("steady2", "split", "steady3", "merge", "tail")
        ],
        notes=(
            "A 2-shard service replays the E25/E26 protocol mix while a\n"
            "range split and a merge commit underneath it.  Gates: zero\n"
            "request errors, every reply bit-identical to the single-store\n"
            "engine, and each handoff window sustains >= "
            f"{floor:.0%} of its own\n"
            "topology's steady-state throughput (heavy steps run while\n"
            "workers keep serving, the commit barrier holds only for a\n"
            f"pointer swap + map flip, and phases are paced {pace_s:.1f}s "
            "apart to\n"
            "spread the impact; the 2- vs 3-shard fan-out tax is E26's\n"
            "measurement, not a handoff cost).\n"
            f"This run: split {record['split_s'] * 1e3:.0f} ms at "
            f"{ratios['split']:.1%} of steady, "
            f"merge {record['merge_s'] * 1e3:.0f} ms at "
            f"{ratios['merge']:.1%}."
        ),
    )
    print(f"\nappended run to {JSON_PATH} ({len(history['runs'])} run(s) on record)")
    return record


def test_e29_rebalance():
    # CI sizing: small store, shorter steady segments; the zero-error
    # and parity gates are asserted exactly, the throughput floor is the
    # relaxed quick-mode one (noisy shared runners, short windows).
    run(
        num_users=2_000,
        steady_s=1.5,
        pace_s=QUICK_PACE_S,
        floor=QUICK_THROUGHPUT_FLOOR,
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: M=2k, 1.5s steady segments, relaxed 80% floor "
        "instead of M=20k / 5s / 90%",
    )
    args = parser.parse_args()
    if args.quick:
        run(
            num_users=2_000,
            steady_s=1.5,
            pace_s=QUICK_PACE_S,
            floor=QUICK_THROUGHPUT_FLOOR,
        )
    else:
        run(num_users=20_000, steady_s=5.0, pace_s=FULL_PACE_S)
