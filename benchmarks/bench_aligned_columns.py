"""E23 — object-free multi-subset queries: aligned columns + cached combination.

Before PR 4 every multi-subset query — Appendix F combination,
disjunctions (``any_of``), and the Appendix E virtual-bit pipelines
(``bit_matrix`` / ``exactly_l`` / ``addition_below``) — materialised
per-``Sketch`` records through ``SketchStore.aligned_groups`` and
re-evaluated the PRF on every call through the uncached
``SketchEstimator.evaluations``.  The rewired path intersects the store's
columns at the array level (``aligned_columns``), fetches **full cached**
``(subset, value)`` evaluation columns, and gathers the aligned rows by
fancy-indexing.

This benchmark measures, at M=50k users over per-bit subsets
(``--quick`` shrinks M for CI):

* **per-query wall-clock** of the object path (which cannot cache: it
  rebuilds groups and re-hashes per call) vs the rewired engine path
  cold (first call — pays the same PRF bill once) and warm (steady
  state — zero PRF work), asserting the ≥5x warm floor the path exists
  for on both ``any_of`` and ``bit_matrix``;
* **PRF block-call counts**: cold = exactly one per component subset,
  warm in-memory repeat = zero, and a **fresh engine over a warm
  persistent cache** (a restarted process) answering the repeated
  disjunction = zero;
* exact **parity**: the rewired answers equal the object path's floats
  (and the bit matrix bit for bit).

Results are written as the usual text table and as
``benchmarks/results/BENCH_aligned_columns.json`` for the CI artifact.

Run directly (``--quick`` for CI sizing) or via pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

import numpy as np

from repro.data import bernoulli_panel
from repro.queries import Conjunction, disjunction_fraction
from repro.server import QueryEngine, publish_database

from _harness import RESULTS_DIR, make_stack, write_table

SEED = 23
POSITIONS = [0, 1, 2]
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_aligned_columns.json")


def object_any_of(store, estimator, queries):
    """The pre-PR4 engine path: materialised groups, uncached evaluations."""
    groups = store.aligned_groups([q.subset for q in queries])
    return disjunction_fraction(estimator, groups, [q.value for q in queries])


def object_bit_matrix(store, estimator, positions, target=1):
    groups = store.aligned_groups([(int(p),) for p in positions])
    return np.column_stack(
        [estimator.evaluations(group, (target,)) for group in groups]
    )


def timed(fn, repeats=2):
    """(best wall-clock seconds, last result)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run(num_users: int = 50_000, min_speedup: float = 5.0) -> dict:
    params, prf, sketcher, estimator, rng = make_stack(p=0.3, seed=SEED)
    database = bernoulli_panel(num_users, len(POSITIONS), density=0.5, rng=rng)
    subsets = [(p,) for p in POSITIONS]
    store = publish_database(database, sketcher, subsets, workers=1, seed=SEED)
    queries = [Conjunction.of((p, 1)) for p in POSITIONS]

    # Count PRF block calls through the estimator (both the object path's
    # evaluate_many and the cache's evaluate_block funnel through here).
    calls = {"n": 0}
    original_evaluate_block = prf.evaluate_block

    def counted_evaluate_block(*args, **kwargs):
        calls["n"] += 1
        return original_evaluate_block(*args, **kwargs)

    prf.evaluate_block = counted_evaluate_block
    try:
        object_any_s, object_any = timed(
            lambda: object_any_of(store, estimator, queries)
        )
        object_bm_s, object_bm = timed(
            lambda: object_bit_matrix(store, estimator, POSITIONS)
        )

        with tempfile.TemporaryDirectory() as cache_root:
            engine = QueryEngine(
                database.schema, store, estimator, cache_dir=cache_root
            )
            calls["n"] = 0
            cold_any_s, cold_any = timed(lambda: engine.any_of(queries), repeats=1)
            cold_any_calls = calls["n"]
            warm_any_s, warm_any = timed(lambda: engine.any_of(queries))
            warm_any_calls = calls["n"] - cold_any_calls

            calls["n"] = 0
            # bit_matrix reuses the cached per-bit columns any_of filled.
            warm_bm_s, warm_bm = timed(lambda: engine.bit_matrix(POSITIONS))
            warm_bm_calls = calls["n"]

            # A restarted process: fresh engine over the same persistent
            # cache answers the repeated disjunction with zero PRF calls.
            restarted = QueryEngine(
                database.schema, store, estimator, cache_dir=cache_root
            )
            calls["n"] = 0
            restarted_any = restarted.any_of(queries)
            restarted_calls = calls["n"]
    finally:
        prf.evaluate_block = original_evaluate_block

    # Parity: the rewired path must answer exactly what the object path did.
    assert cold_any == warm_any == restarted_any == object_any, "any_of deviates"
    assert np.array_equal(warm_bm, object_bm), "bit_matrix deviates"
    assert cold_any_calls == len(queries), (
        f"cold any_of issued {cold_any_calls} PRF block calls; expected "
        f"exactly one per component subset ({len(queries)})"
    )
    assert warm_any_calls == 0, (
        f"warm any_of issued {warm_any_calls} PRF block calls; expected 0"
    )
    assert warm_bm_calls == 0, (
        f"warm bit_matrix issued {warm_bm_calls} PRF block calls; expected 0"
    )
    assert restarted_calls == 0, (
        f"warm persistent cache issued {restarted_calls} PRF block calls "
        "for the repeated disjunction; expected 0"
    )

    any_speedup = object_any_s / warm_any_s
    bm_speedup = object_bm_s / warm_bm_s
    results = {
        "experiment": "E23",
        "num_users": num_users,
        "components": len(queries),
        "any_of": {
            "object_s": object_any_s,
            "cold_s": cold_any_s,
            "warm_s": warm_any_s,
            "warm_speedup": any_speedup,
            "cold_prf_block_calls": cold_any_calls,
            "warm_prf_block_calls": warm_any_calls,
        },
        "bit_matrix": {
            "object_s": object_bm_s,
            "warm_s": warm_bm_s,
            "warm_speedup": bm_speedup,
            "warm_prf_block_calls": warm_bm_calls,
        },
        "persistent_restart_prf_block_calls": restarted_calls,
    }
    write_table(
        "E23",
        f"Object-free multi-subset queries: M={num_users}, "
        f"{len(queries)} per-bit components",
        ["query", "object s", "cold s", "warm s", "warm speedup", "PRF calls"],
        [
            (
                "any_of",
                f"{object_any_s:.4f}",
                f"{cold_any_s:.4f}",
                f"{warm_any_s:.4f}",
                f"{any_speedup:.1f}x",
                f"cold {cold_any_calls}, warm {warm_any_calls}",
            ),
            (
                "bit_matrix",
                f"{object_bm_s:.4f}",
                "-",
                f"{warm_bm_s:.4f}",
                f"{bm_speedup:.1f}x",
                f"warm {warm_bm_calls}",
            ),
            (
                "any_of restarted",
                "-",
                "-",
                "-",
                "persistent cache",
                f"{restarted_calls}",
            ),
        ],
        notes=(
            "The object path cannot cache: every call rebuilds per-Sketch\n"
            "groups and re-hashes the PRF.  The rewired path pays the PRF\n"
            "once (one block call per component subset, cold) and then\n"
            "answers from cached columns gathered by fancy-indexing; the\n"
            "restarted row is a fresh engine over the same cache_dir.\n"
            "All answers are asserted equal to the object path's floats\n"
            "(bit_matrix bit for bit)."
        ),
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
    print(f"\nwrote {JSON_PATH}")
    assert any_speedup >= min_speedup, (
        f"warm any_of is only {any_speedup:.1f}x over the object path "
        f"(required {min_speedup}x)"
    )
    assert bm_speedup >= min_speedup, (
        f"warm bit_matrix is only {bm_speedup:.1f}x over the object path "
        f"(required {min_speedup}x)"
    )
    return results


def test_e23_aligned_columns():
    # CI-sized run: parity and the PRF-call contracts are asserted exactly;
    # the speedup floor is relaxed — at small M fixed costs (intersection,
    # linear solve) weigh more against the smaller PRF bill.
    run(num_users=4_000, min_speedup=2.0)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: M=4k and a 2x warm-speedup floor instead of M=50k / 5x",
    )
    args = parser.parse_args()
    if args.quick:
        run(num_users=4_000, min_speedup=2.0)
    else:
        run(num_users=50_000, min_speedup=5.0)
