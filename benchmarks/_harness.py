"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md's index: it
computes the measured quantities, prints a paper-claim vs measured table,
and persists the table under ``benchmarks/results/`` so the numbers survive
pytest's output capture.  The ``benchmark`` fixture times the experiment's
core operation so ``pytest benchmarks/ --benchmark-only`` doubles as a
performance harness.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

import numpy as np

from repro.core import BiasedPRF, PrivacyParams, SketchEstimator, Sketcher

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
GLOBAL_KEY = b"benchmark-global-key-32-bytes-ok"


def make_stack(p: float, seed: int, sketch_bits: int = 10, clamp: bool = True):
    """Standard (params, prf, sketcher, estimator) stack for benchmarks."""
    params = PrivacyParams(p=p)
    prf = BiasedPRF(p=p, global_key=GLOBAL_KEY)
    rng = np.random.default_rng(seed)
    sketcher = Sketcher(params, prf, sketch_bits=sketch_bits, rng=rng)
    estimator = SketchEstimator(params, prf, clamp=clamp)
    return params, prf, sketcher, estimator, rng


def write_table(
    experiment: str,
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    notes: str = "",
) -> str:
    """Format, print and persist one experiment table."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [
        max(len(str(header[i])), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]

    def fmt(cells):
        return "  ".join(str(cell).rjust(width) for cell, width in zip(cells, widths))

    lines = [f"[{experiment}] {title}", fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    if notes:
        lines.append("")
        lines.append(notes)
    text = "\n".join(lines)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return text
