"""E22 — columnar store format v2 + persistent evaluation cache.

The published sketch store *is* the dataset, so its save/load path is a
deployment's real I/O bill.  This benchmark measures, at M=50k (one
three-bit subset = 50k sketches, ``--quick`` shrinks M for CI):

* **save/load wall-clock** for the JSONL v1 format vs the columnar v2
  ``.npz`` format, asserting the >=5x load speedup the columnar path
  exists for (the floor that matters: load happens on every consumer,
  save once at the publisher);
* **on-disk size** of both formats;
* **cold vs warm persistent-cache** latency for a repeated full marginal
  through a ``cache_dir``-backed :class:`QueryEngine`, asserting the warm
  engine issues **zero** new PRF block evaluations (restart-and-reuse is
  the whole point of spilling the cache to disk).

Results are written both as the usual text table and as
``benchmarks/results/BENCH_store_roundtrip.json`` so CI can track the
perf trajectory as an artifact.

Run directly (``--quick`` for CI sizing) or via pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

import numpy as np

from repro.data import bernoulli_panel
from repro.server import QueryEngine, publish_database
from repro.server.serialization import dumps_store, load_store, save_store

from _harness import RESULTS_DIR, make_stack, write_table

SUBSET = (0, 1, 2)
SEED = 22
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_store_roundtrip.json")


def run(num_users: int = 50_000, min_load_speedup: float = 5.0) -> dict:
    params, prf, sketcher, _, rng = make_stack(p=0.3, seed=SEED)
    database = bernoulli_panel(num_users, 3, density=0.5, rng=rng)
    store = publish_database(database, sketcher, [SUBSET], workers=1, seed=SEED)

    with tempfile.TemporaryDirectory() as workdir:
        jsonl_path = os.path.join(workdir, "store.jsonl")
        columnar_path = os.path.join(workdir, "store.npz")

        start = time.perf_counter()
        save_store(store, jsonl_path, params, include_iterations=True)
        jsonl_save_s = time.perf_counter() - start
        start = time.perf_counter()
        save_store(
            store, columnar_path, params, include_iterations=True, format="columnar"
        )
        columnar_save_s = time.perf_counter() - start

        start = time.perf_counter()
        from_jsonl, _ = load_store(jsonl_path)
        jsonl_load_s = time.perf_counter() - start
        start = time.perf_counter()
        from_columnar, _ = load_store(columnar_path)
        columnar_load_s = time.perf_counter() - start

        reference = dumps_store(store, include_iterations=True)
        assert dumps_store(from_jsonl, include_iterations=True) == reference
        assert dumps_store(from_columnar, include_iterations=True) == reference

        jsonl_bytes = os.path.getsize(jsonl_path)
        columnar_bytes = os.path.getsize(columnar_path)

        # Cold vs warm persistent cache: two engines over the same store
        # and cache_dir model a restart.  The PRF-call counter pins the
        # "warm = zero new evaluations" contract exactly.
        cache_dir = os.path.join(workdir, "evaluation-cache")
        prf_block_calls = {"n": 0}
        original_evaluate_block = prf.evaluate_block

        def counted_evaluate_block(*args, **kwargs):
            prf_block_calls["n"] += 1
            return original_evaluate_block(*args, **kwargs)

        prf.evaluate_block = counted_evaluate_block
        try:
            from repro.core import SketchEstimator

            cold_engine = QueryEngine(
                database.schema, store, SketchEstimator(params, prf), cache_dir=cache_dir
            )
            start = time.perf_counter()
            cold_marginal = cold_engine.marginal(SUBSET)
            cold_s = time.perf_counter() - start
            cold_calls = prf_block_calls["n"]

            warm_engine = QueryEngine(
                database.schema, store, SketchEstimator(params, prf), cache_dir=cache_dir
            )
            start = time.perf_counter()
            warm_marginal = warm_engine.marginal(SUBSET)
            warm_s = time.perf_counter() - start
            warm_calls = prf_block_calls["n"] - cold_calls
        finally:
            prf.evaluate_block = original_evaluate_block

        assert (cold_marginal == warm_marginal).all(), "warm marginal deviates"
        assert warm_calls == 0, (
            f"warm persistent cache issued {warm_calls} PRF block calls; expected 0"
        )

    load_speedup = jsonl_load_s / columnar_load_s
    results = {
        "experiment": "E22",
        "num_users": num_users,
        "jsonl": {
            "save_s": jsonl_save_s,
            "load_s": jsonl_load_s,
            "bytes": jsonl_bytes,
        },
        "columnar": {
            "save_s": columnar_save_s,
            "load_s": columnar_load_s,
            "bytes": columnar_bytes,
        },
        "load_speedup": load_speedup,
        "cache": {
            "cold_marginal_s": cold_s,
            "warm_marginal_s": warm_s,
            "cold_prf_block_calls": cold_calls,
            "warm_prf_block_calls": warm_calls,
            "warm_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        },
    }
    write_table(
        "E22",
        f"Store format v2 + persistent cache: M={num_users}",
        ["path", "save s", "load s", "bytes", "load speedup"],
        [
            ("jsonl v1", f"{jsonl_save_s:.3f}", f"{jsonl_load_s:.3f}", jsonl_bytes, "1.0x"),
            (
                "columnar v2",
                f"{columnar_save_s:.3f}",
                f"{columnar_load_s:.3f}",
                columnar_bytes,
                f"{load_speedup:.1f}x",
            ),
            (
                "marginal cold",
                "-",
                f"{cold_s:.3f}",
                "-",
                f"{cold_calls} PRF block call(s)",
            ),
            (
                "marginal warm",
                "-",
                f"{warm_s:.3f}",
                "-",
                f"{warm_calls} PRF block call(s)",
            ),
        ],
        notes=(
            "Both formats reload bit-identical stores (asserted against the\n"
            "canonical JSONL bytes, iterations included).  The warm engine is a\n"
            "fresh QueryEngine over the same cache_dir — a restarted process —\n"
            "and answers the full marginal from memory-mapped columns with zero\n"
            "new PRF evaluations."
        ),
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
    print(f"\nwrote {JSON_PATH}")
    assert load_speedup >= min_load_speedup, (
        f"columnar load is only {load_speedup:.1f}x over JSONL "
        f"(required {min_load_speedup}x)"
    )
    return results


def test_e22_store_roundtrip():
    # CI-sized run: correctness (bit-identity, zero warm PRF calls) is
    # asserted exactly; the load-speedup floor is relaxed — at small M the
    # columnar path's fixed costs (zip framing, npz open) weigh more.
    run(num_users=5_000, min_load_speedup=2.0)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: M=5k and a 2x load-speedup floor instead of "
        "M=50k / 5x",
    )
    args = parser.parse_args()
    if args.quick:
        run(num_users=5_000, min_load_speedup=2.0)
    else:
        run(num_users=50_000, min_load_speedup=5.0)
