"""E8 — published size: sketches vs every baseline.

The abstract's "the size of the sketch is minuscule: ceil(log log O(M))
bits".  Compares bits published per user per subset against randomized
response (the full q-bit vector, dense even for sparse data) and
select-a-size (an item list whose size scales with the catalogue).
"""

from __future__ import annotations

import math

from repro.baselines import RandomizedResponse, SelectASize
from repro.core import PrivacyParams

from _harness import write_table


def test_e8_published_size(benchmark):
    profile_bits = 1000         # q: catalogue size / questionnaire length
    true_items = 3              # sparse transaction
    item_id_bits = math.ceil(math.log2(profile_bits))

    def build():
        rows = []
        for num_users in (10**3, 10**6, 10**9):
            params = PrivacyParams(p=0.3)
            sketch_bits = params.sketch_length(num_users, 1e-9)
            rr = RandomizedResponse(0.3)
            rr_bits = rr.published_bits_per_user(profile_bits)
            rr_density = rr.density_after_perturbation(true_items / profile_bits)
            sas = SelectASize(0.8, 0.05)
            sas_items = sas.expected_row_size(true_items, profile_bits)
            sas_bits = sas_items * item_id_bits
            rows.append(
                (
                    f"{num_users:.0e}",
                    sketch_bits,
                    rr_bits,
                    f"{rr_density:.3f}",
                    f"{sas_bits:.0f}",
                )
            )
        return rows

    rows = benchmark(build)
    write_table(
        "E8",
        f"Published size per user (q = {profile_bits}-bit profiles, 3-item rows)",
        ["M", "sketch bits/subset", "RR bits", "RR density", "select-a-size bits"],
        rows,
        notes=(
            "Paper claim: sketch size ceil(log log O(M)) bits — single digits even\n"
            "at 1e9 users — vs the full q bits for bit flipping (which also turns a\n"
            "0.3%-dense row into a ~30%-dense one) and tens of inserted item ids for\n"
            "the transaction randomizer."
        ),
    )
    for _, sketch_bits, rr_bits, _, sas_bits in rows:
        assert int(sketch_bits) <= 10
        assert int(rr_bits) == profile_bits
        assert float(sas_bits) > 10 * int(sketch_bits)
