"""E13 — Appendix E: a + b < 2^r via virtual XOR bits.

The direct conjunctive expansion of the carry chain is exponential in k;
the appendix's XOR substitution answers it with r+1 mixed-bias
reconstructions.  Measured against ground truth across thresholds, from
per-bit randomized-response data (the appendix's own setting: "each bit of
the database is simply p-perturbed — or equivalently we sketch every
single bit").
"""

from __future__ import annotations

import numpy as np

from repro.data import salary_table
from repro.queries import addition_event_literals, addition_interval_fraction

from _harness import write_table

NUM_USERS = 60000
BITS = 6
P = 0.15


def test_e13_addition_interval(benchmark):
    rng = np.random.default_rng(13)
    db = salary_table(NUM_USERS, bits=BITS, attributes=("a", "b"), rng=rng)
    a = db.attribute_values("a")
    b = db.attribute_values("b")

    def bit_matrix(values):
        return np.array(
            [[(v >> (BITS - 1 - i)) & 1 for i in range(BITS)] for v in values],
            dtype=np.int8,
        )

    bits_a = bit_matrix(a) ^ (rng.random((NUM_USERS, BITS)) < P)
    bits_b = bit_matrix(b) ^ (rng.random((NUM_USERS, BITS)) < P)

    def sweep():
        rows = []
        for power in range(3, BITS + 1):
            estimate = addition_interval_fraction(bits_a, bits_b, P, power)
            truth = float((a + b < (1 << power)).mean())
            events = len(addition_event_literals(BITS, power))
            direct = 3 ** power  # scale of the naive expansion's term count
            rows.append(
                (
                    f"2^{power}",
                    events,
                    f"~{direct}",
                    f"{estimate:.4f}",
                    f"{truth:.4f}",
                    f"{abs(estimate - truth):.4f}",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "E13",
        f"Appendix E — frac(a + b < 2^r) via XOR virtual bits "
        f"(M = {NUM_USERS}, k = {BITS}, p = {P})",
        ["2^r", "events used", "naive terms", "estimate", "truth", "|err|"],
        rows,
        notes=(
            "Paper claim: the naive conjunctive expansion is exponential in k; the\n"
            "XOR substitution (q_i = a_i ^ b_i, perturbed at 2p(1-p)) needs only\n"
            "r+1 disjoint events, each a mixed real/virtual-bit reconstruction.\n"
            "Errors grow with r (more virtual bits -> worse conditioning) but stay\n"
            "far below the trivial 1.0."
        ),
    )
    for row in rows:
        assert float(row[5]) < 0.15
