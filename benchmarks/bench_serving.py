"""E25 — the remote serving tier: protocol throughput and tail latency.

PR 6 put a network face on the engine: every query family travels as one
typed protocol message (``repro/protocol``), dispatched through
``QueryEngine.execute`` behind an asyncio TCP server with auth, rate
limiting, and a per-analyst privacy budget at the perimeter.  This
benchmark drives that stack end to end on localhost:

* a **mixed warm/cold trace** over five message kinds — ``counts_block``,
  ``marginal``, ``estimate_many``, ``fraction``, ``any_of``,
  ``exactly_l``, ``bit_matrix`` — repeated so the first pass pays the
  engine's cold PRF/cache bill and later passes ride the warm columns;
* at **concurrency 1, 4, and 16**: that many blocking clients, each on
  its own connection, splitting the trace round-robin;
* recording **throughput (requests/s) and p50/p95/p99 latency** per
  concurrency level, plus an exact **parity check**: every reply must
  equal the local engine's answer bit for bit, and the error count must
  be zero.

Results append to ``BENCH_serving.json`` at the repo root — the start of
the ROADMAP item-5 serving trajectory, one entry per run so CI builds a
history — and the usual text table goes to ``benchmarks/results/``.

Run directly (``--quick`` for CI sizing) or via pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time

import numpy as np

from repro.data import bernoulli_panel
from repro.protocol import (
    AnyOfRequest,
    BitMatrixRequest,
    CountsBlockRequest,
    EstimateManyRequest,
    ExactlyLRequest,
    FractionRequest,
    MarginalRequest,
)
from repro.protocol.messages import _jsonable
from repro.server import (
    QueryEngine,
    RemoteQueryEngine,
    RemoteServer,
    publish_database,
    serve_in_thread,
)

from _harness import make_stack, write_table

SEED = 25
SUBSETS = [(0, 1), (1, 2, 3), (0,), (1,), (2,), (3,)]
CONCURRENCY_LEVELS = [1, 4, 16]
JSON_PATH = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_serving.json")
)


def build_trace(repeats: int) -> list:
    """``(kind, request)`` pairs: one cold pass, ``repeats - 1`` warm ones."""
    base = [
        ("counts_block", CountsBlockRequest.build((0, 1), [(0, 0), (0, 1), (1, 0), (1, 1)])),
        ("marginal", MarginalRequest.build((0, 1))),
        ("estimate_many", EstimateManyRequest.build((1, 2, 3), [(1, 1, 1), (0, 1, 0)])),
        ("fraction", FractionRequest.build((1, 2, 3), (1, 0, 1))),
        ("any_of", AnyOfRequest.build([((0, 1), (1, 1)), ((2,), (1,))])),
        ("exactly_l", ExactlyLRequest.build((0, 1, 2, 3), 2)),
        ("bit_matrix", BitMatrixRequest.build((0, 1, 2, 3), 1)),
    ]
    return base * repeats


def drive(host: str, port: int, token: str, trace, concurrency: int) -> dict:
    """Split the trace round-robin over ``concurrency`` connections."""
    latencies = [[] for _ in range(concurrency)]
    replies = {}
    errors = []
    lock = threading.Lock()

    def worker(index: int) -> None:
        try:
            with RemoteQueryEngine(host, port, token) as client:
                for position in range(index, len(trace), concurrency):
                    _, request = trace[position]
                    start = time.perf_counter()
                    response = client.execute(request)
                    latencies[index].append(time.perf_counter() - start)
                    with lock:
                        replies[position] = response.result
        except Exception as exc:  # noqa: BLE001 - benchmark: count, then assert 0
            with lock:
                errors.append(f"worker {index}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"driver-{i}")
        for i in range(concurrency)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    flat_ms = np.asarray([s * 1e3 for per in latencies for s in per])
    return {
        "concurrency": concurrency,
        "requests": len(trace),
        "errors": errors,
        "replies": replies,
        "wall_s": wall,
        "throughput_rps": len(trace) / wall,
        "p50_ms": float(np.percentile(flat_ms, 50)),
        "p95_ms": float(np.percentile(flat_ms, 95)),
        "p99_ms": float(np.percentile(flat_ms, 99)),
    }


def run(num_users: int = 20_000, repeats: int = 5) -> dict:
    _params, _prf, sketcher, estimator, rng = make_stack(p=0.3, seed=SEED)
    database = bernoulli_panel(num_users, 4, density=0.5, rng=rng)
    store = publish_database(database, sketcher, SUBSETS, workers=1, seed=SEED)
    engine = QueryEngine(database.schema, store, estimator)
    server = RemoteServer(engine, {"bench": "bench-token"})
    trace = build_trace(repeats)

    levels = []
    with serve_in_thread(server) as (host, port):
        for concurrency in CONCURRENCY_LEVELS:
            levels.append(drive(host, port, "bench-token", trace, concurrency))

    # Parity: every reply must equal the local engine's answer, bit for
    # bit.  Computed after the timed runs (the engine is warm either way;
    # answers are deterministic regardless of cache temperature).
    expected = {}
    for position, (_, request) in enumerate(trace):
        expected[position] = json.loads(
            json.dumps(_jsonable(engine.execute(request).result))
        )
    for level in levels:
        assert not level["errors"], f"serving errors: {level['errors'][:3]}"
        assert len(level["replies"]) == len(trace), "lost replies"
        for position, reply in level["replies"].items():
            assert reply == expected[position], (
                f"concurrency {level['concurrency']}, request {position} "
                f"({trace[position][0]}): remote reply deviates from local"
            )
        del level["replies"]  # not for the JSON record

    kinds = sorted({kind for kind, _ in trace})
    record = {
        "experiment": "E25",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "num_users": num_users,
        "trace_requests": len(trace),
        "message_kinds": kinds,
        "levels": levels,
    }

    # Append to the repo-root trajectory file (one entry per run).
    history = {"experiment": "E25", "runs": []}
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                history = loaded
        except (OSError, ValueError):
            pass  # corrupt history: start a fresh trajectory
    history["runs"].append(record)
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)

    write_table(
        "E25",
        f"Remote serving tier: M={num_users}, {len(trace)} requests over "
        f"{len(kinds)} message kinds",
        ["concurrency", "throughput req/s", "p50 ms", "p95 ms", "p99 ms"],
        [
            (
                str(level["concurrency"]),
                f"{level['throughput_rps']:.0f}",
                f"{level['p50_ms']:.2f}",
                f"{level['p95_ms']:.2f}",
                f"{level['p99_ms']:.2f}",
            )
            for level in levels
        ],
        notes=(
            "Localhost asyncio server, newline-delimited JSON protocol;\n"
            "requests dispatch inline on the event loop (engine caches are\n"
            "single-threaded), so concurrency overlaps socket I/O, not\n"
            "NumPy work.  The first trace pass is cold (PRF + cache fill),\n"
            "later passes are warm.  Every reply is asserted bit-identical\n"
            "to the local engine and the error count must be zero."
        ),
    )
    print(f"\nappended run to {JSON_PATH} ({len(history['runs'])} run(s) on record)")
    return record


def test_e25_serving():
    # CI sizing: small store, short trace; parity and zero-error contracts
    # are asserted exactly at every concurrency level.
    run(num_users=2_000, repeats=3)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: M=2k and a 3-pass trace instead of M=20k / 5 passes",
    )
    args = parser.parse_args()
    if args.quick:
        run(num_users=2_000, repeats=3)
    else:
        run(num_users=20_000, repeats=5)
