"""E19 — Section 4.1 boolean queries: decision trees and exactly-l-of-k.

* decision-tree acceptance fraction = sum of per-path conjunctive queries
  (paths are disjoint);
* "exactly l out of k bits" via the Appendix F weight distribution.
"""

from __future__ import annotations

import numpy as np

from repro.core import Sketcher
from repro.data import correlated_survey
from repro.queries import DecisionNode, decision_tree_plan
from repro.server import QueryEngine, per_bit_subsets, publish_database

from _harness import make_stack, write_table

NUM_USERS = 6000
P = 0.25


def build_tree():
    # "(x0 AND NOT x1) OR (NOT x0 AND x2 AND x3)" as a decision tree.
    return DecisionNode.split(
        0,
        if_zero=DecisionNode.split(
            2,
            if_zero=DecisionNode.leaf(False),
            if_one=DecisionNode.split(
                3, if_zero=DecisionNode.leaf(False), if_one=DecisionNode.leaf(True)
            ),
        ),
        if_one=DecisionNode.split(
            1, if_zero=DecisionNode.leaf(True), if_one=DecisionNode.leaf(False)
        ),
    )


def test_e19_decision_tree(benchmark):
    params, prf, _, estimator, rng = make_stack(P, seed=19)
    db = correlated_survey(NUM_USERS, 4, base_rate=0.4, copy_prob=0.6, rng=rng)
    tree = build_tree()
    plan = decision_tree_plan(tree)
    subsets = [term.subset for term in plan.terms]
    sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
    store = publish_database(db, sketcher, subsets)
    engine = QueryEngine(db.schema, store, estimator)

    def estimate():
        return engine.decision_tree(tree)

    measured = benchmark(estimate)
    truth = float(np.mean([tree.classify(p.bits) for p in db]))
    write_table(
        "E19",
        f"Section 4.1 — decision-tree fraction (M = {NUM_USERS}, p = {P})",
        ["quantity", "value"],
        [
            ("accepting paths (= queries)", plan.num_queries),
            ("estimate", f"{measured:.4f}"),
            ("truth", f"{truth:.4f}"),
            ("|err|", f"{abs(measured - truth):.4f}"),
        ],
        notes=(
            "Paper claim: each tree path is one conjunctive query; a user\n"
            "satisfies at most one path, so the acceptance fraction is the plain\n"
            "sum of path queries."
        ),
    )
    assert abs(measured - truth) < 0.1


def test_e19b_exactly_l(benchmark):
    params, prf, _, estimator, rng = make_stack(P, seed=191)
    db = correlated_survey(NUM_USERS, 4, base_rate=0.5, copy_prob=0.5, rng=rng)
    positions = (0, 1, 2, 3)
    sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
    store = publish_database(db, sketcher, per_bit_subsets(db.schema))
    engine = QueryEngine(db.schema, store, estimator)

    def estimate_all():
        return [engine.exactly_l(positions, l) for l in range(5)]

    estimates = benchmark.pedantic(estimate_all, rounds=1, iterations=1)
    weights = db.matrix().sum(axis=1)
    rows = []
    for l, estimate in enumerate(estimates):
        truth = float((weights == l).mean())
        rows.append((l, f"{estimate:.4f}", f"{truth:.4f}", f"{abs(estimate - truth):.4f}"))
    write_table(
        "E19b",
        f"Section 4.1 — exactly l of k = 4 bits set (M = {NUM_USERS}, Appendix F system)",
        ["l", "estimate", "truth", "|err|"],
        rows,
        notes=(
            "Paper claim: 'one can estimate the fraction of users that satisfy\n"
            "exactly l out of k bits' using the Appendix F system — the whole\n"
            "weight distribution comes from one (k+1)-sized inversion."
        ),
    )
    assert sum(float(r[3]) for r in rows) / len(rows) < 0.08
