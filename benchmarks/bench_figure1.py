"""F1 — Figure 1: the explicit indicator vector vs its sketch simulation.

The paper's pedagogy: a k-bit value as a perturbed 2^k-bit indicator is
"very private (but very inefficient)"; the pseudorandom sketch simulates
it in ceil(log log M) bits.  Measured head-to-head on the same population:
same answers, same error profile, exponentially different published size.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import IndicatorVectorMechanism
from repro.core import Sketcher
from repro.data import zipf_categorical
from repro.server import attribute_subsets, publish_database

from _harness import make_stack, write_table

NUM_USERS = 8000
BITS = 3  # Figure 1's 3-bit value -> 8-entry indicator


def test_f1_indicator_vs_sketch(benchmark):
    params, prf, _, estimator, rng = make_stack(0.25, seed=1)
    db = zipf_categorical(NUM_USERS, cardinality=1 << BITS, rng=rng)
    values = db.attribute_values("category")
    subset = db.schema.bits("category")

    def run_both():
        mechanism = IndicatorVectorMechanism(params.p, 1 << BITS, rng=rng)
        published = mechanism.publish(values)
        sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
        store = publish_database(db, sketcher, attribute_subsets(db.schema))
        sketches = store.sketches_for(subset)
        return mechanism, published, sketches

    mechanism, published, sketches = benchmark.pedantic(run_both, rounds=1, iterations=1)
    truth = np.bincount(values, minlength=1 << BITS) / NUM_USERS
    rows = []
    indicator_errors, sketch_errors = [], []
    for value in range(1 << BITS):
        indicator_estimate = mechanism.estimate_fraction(published, value)
        bits = tuple((value >> (BITS - 1 - i)) & 1 for i in range(BITS))
        sketch_estimate = estimator.estimate(sketches, bits).fraction
        indicator_errors.append(abs(indicator_estimate - truth[value]))
        sketch_errors.append(abs(sketch_estimate - truth[value]))
        rows.append(
            (
                format(value, f"0{BITS}b"),
                f"{truth[value]:.4f}",
                f"{indicator_estimate:.4f}",
                f"{sketch_estimate:.4f}",
            )
        )
    rows.append(("mean |err|", "", f"{np.mean(indicator_errors):.4f}", f"{np.mean(sketch_errors):.4f}"))
    rows.append(
        (
            "bits/user",
            "",
            str(mechanism.published_bits_per_user),
            "10",
        )
    )
    rows.append(
        (
            "priv. ratio",
            "",
            f"{mechanism.privacy_ratio_bound():.1f}",
            f"{params.privacy_ratio_bound():.1f}",
        )
    )
    write_table(
        "F1",
        f"Figure 1 — explicit perturbed indicator vs pseudorandom sketch "
        f"(M = {NUM_USERS}, {BITS}-bit values, p = {params.p})",
        ["value", "truth", "indicator est", "sketch est"],
        rows,
        notes=(
            "Paper claim: the sketch simulates the 2^k-bit indicator publication\n"
            "in ~log log M bits.  Same answers, comparable error; the explicit\n"
            "mechanism is actually *more* private per release (ratio ((1-p)/p)^2\n"
            "vs ^4) — the extra square is the price of compression via rejection\n"
            "sampling.  At k = 3 the size gap is 8 vs 10 bits; at k = 20 it is\n"
            "1,048,576 vs 10."
        ),
    )
    assert np.mean(sketch_errors) < 0.03
    assert np.mean(indicator_errors) < 0.03
