"""E9 + E10 — Section 4.1 numeric queries: sums/means and inner products.

Sums decompose into k single-bit queries (eq. 4); inner products into k^2
two-bit queries.  Measured relative errors against ground truth on the
skewed salary workload, across user counts.
"""

from __future__ import annotations

from repro.core import Sketcher
from repro.data import salary_table
from repro.server import QueryEngine, per_bit_subsets, publish_database
from repro.queries import inner_product_plan, sum_plan

from _harness import make_stack, write_table

BITS = 6


def build_engine(num_users, rng_seed):
    params, prf, _, estimator, rng = make_stack(0.25, seed=rng_seed)
    db = salary_table(num_users, bits=BITS, attributes=("salary", "age"), rng=rng)
    sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
    store = publish_database(db, sketcher, per_bit_subsets(db.schema))
    return db, QueryEngine(db.schema, store, estimator)


def test_e9_sums_and_means(benchmark):
    def sweep():
        rows = []
        for num_users in (1000, 4000, 16000):
            db, engine = build_engine(num_users, rng_seed=9)
            estimate = engine.sum("salary")
            truth = db.exact_sum("salary")
            mean_est = engine.mean("salary")
            mean_truth = db.exact_mean("salary")
            rows.append(
                (
                    num_users,
                    f"{estimate:.0f}",
                    truth,
                    f"{abs(estimate - truth) / truth:.2%}",
                    f"{mean_est:.2f}",
                    f"{mean_truth:.2f}",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    plan = sum_plan(build_engine(100, 0)[0].schema, "salary")
    write_table(
        "E9",
        f"Section 4.1 — sums and means via eq. 4 ({plan.num_queries} single-bit queries)",
        ["M", "sum est", "sum truth", "rel err", "mean est", "mean truth"],
        rows,
        notes=(
            "Paper claim: S = sum_i 2^(k-i) I(A_i, 1) — a k-query decomposition\n"
            "whose error inherits the O(1/sqrt(M)) rate, dominated by the high-bit\n"
            "terms.  Relative error should shrink ~2x per 4x users."
        ),
    )
    errors = [float(row[3].rstrip("%")) for row in rows]
    assert errors[-1] < 5.0  # within 5% at 16k users
    assert errors[-1] <= errors[0] + 1.0  # no degradation with scale


def test_e10_inner_product(benchmark):
    def sweep():
        rows = []
        for num_users in (4000, 16000):
            db, engine = build_engine(num_users, rng_seed=10)
            estimate = engine.inner_product("salary", "age")
            truth = db.exact_inner_product("salary", "age")
            rows.append(
                (
                    num_users,
                    f"{estimate:.0f}",
                    truth,
                    f"{abs(estimate - truth) / truth:.2%}",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_table(
        "E10",
        f"Section 4.1 — inner product via k^2 = {BITS * BITS} two-bit queries",
        ["M", "estimate", "truth", "rel err"],
        rows,
        notes=(
            "Paper claim: sum_u a_u b_u = sum_ij 2^(2k-i-j) I(A_i u B_j, 11).  The\n"
            "k^2 terms accumulate noise, so relative error is a few x the sum\n"
            "query's but still decays as 1/sqrt(M).  (Footnote 6: low-weight terms\n"
            "could be dropped below the noise floor; we keep all of them.)"
        ),
    )
    assert float(rows[-1][3].rstrip("%")) < 15.0
