"""E16 — the batched PRF engine vs the per-call aggregator hot path.

The aggregator cost of Algorithm 2 is one PRF evaluation per (user,
candidate value) pair.  The seed implementation paid a full payload
encode and a fresh keyed BLAKE2b per pair; ``evaluate_block`` builds each
user's payload prefix (and keyed hash state) once, splices in the
candidate values, and vectorises the threshold comparison.  This
benchmark measures the M=50k, |B|=8 full-marginal query (2**8 candidate
values — ~12.8M evaluations) and asserts the >=5x speedup the block
engine exists for, plus the (subset, value) evaluation cache that makes
repeated queries free.

Run directly (``--quick`` shrinks M for CI) or via pytest.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import Sketch, SketchEstimator
from repro.server import SketchEvaluationCache, SketchStore

from _harness import make_stack, write_table

SUBSET = tuple(range(8))
VALUES = [tuple((v >> (7 - i)) & 1 for i in range(8)) for v in range(1 << 8)]


def looped_evaluate_many(prf, user_ids, subset, value, keys) -> np.ndarray:
    """The seed ``evaluate_many``: one encode + one keyed hash per user."""
    return np.asarray(
        [prf.evaluate(uid, subset, value, key) for uid, key in zip(user_ids, keys)],
        dtype=np.int8,
    )


def run(num_users: int = 50_000, min_speedup: float = 5.0) -> float:
    params, prf, _, estimator, rng = make_stack(p=0.3, seed=16)
    ids = [f"user-{i}" for i in range(num_users)]
    keys = [int(k) for k in rng.integers(0, 1 << 10, size=num_users)]

    start = time.perf_counter()
    looped = np.column_stack(
        [looped_evaluate_many(prf, ids, SUBSET, value, keys) for value in VALUES]
    )
    looped_s = time.perf_counter() - start

    start = time.perf_counter()
    block = prf.evaluate_block(ids, SUBSET, VALUES, keys)
    block_s = time.perf_counter() - start

    np.testing.assert_array_equal(block, looped)
    speedup = looped_s / block_s

    # the evaluation cache: a repeated full marginal never re-hashes
    store = SketchStore()
    for uid, key in zip(ids, keys):
        store.publish(Sketch(uid, SUBSET, key=key, num_bits=10, iterations=1))
    cache = SketchEvaluationCache(store, estimator)
    start = time.perf_counter()
    cold = cache.estimates(SUBSET, VALUES)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm = cache.estimates(SUBSET, VALUES)
    warm_s = time.perf_counter() - start
    assert [e.fraction for e in warm] == [e.fraction for e in cold]

    pairs = num_users * len(VALUES)
    write_table(
        "E16",
        f"Batched PRF: full marginal, M={num_users}, |B|=8 ({pairs/1e6:.1f}M evaluations)",
        ["path", "seconds", "M eval/s", "speedup"],
        [
            ("looped evaluate_many (seed)", f"{looped_s:.2f}", f"{pairs/looped_s/1e6:.2f}", "1.0x"),
            ("evaluate_block", f"{block_s:.2f}", f"{pairs/block_s/1e6:.2f}", f"{speedup:.1f}x"),
            ("cached, cold", f"{cold_s:.2f}", f"{pairs/cold_s/1e6:.2f}", f"{looped_s/cold_s:.1f}x"),
            ("cached, warm", f"{warm_s:.4f}", "-", f"{looped_s/warm_s:.0f}x"),
        ],
        notes=(
            "Block path: per-user payload prefix and keyed BLAKE2b state built once,\n"
            "candidate values spliced via hash copy, threshold compared on a uint64\n"
            "vector.  Identical bits to the per-call path (asserted above)."
        ),
    )
    assert speedup >= min_speedup, (
        f"block path is only {speedup:.2f}x over looped evaluate_many "
        f"(required {min_speedup}x)"
    )
    assert warm_s < cold_s, "evaluation cache failed to make the repeat query cheap"
    return speedup


def test_e16_block_prf_speedup():
    # CI-sized run: the full M=50k case is the scripted default below.
    # The floor is deliberately loose (observed ~8x locally) so a noisy
    # shared runner can't fail CI without a real regression; the bitwise
    # identity assertions inside run() are exact regardless.
    run(num_users=4_000, min_speedup=1.5)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: M=4k and a loose 1.5x floor (noisy-runner safe) "
        "instead of M=50k / 5x",
    )
    args = parser.parse_args()
    if args.quick:
        run(num_users=4_000, min_speedup=1.5)
    else:
        run(num_users=50_000, min_speedup=5.0)
