"""E3 — Lemma 3.2: the two-sided bias of a published sketch.

Measured over many users: the published key must evaluate to 1 with
probability 1 - p at the user's true value, and with probability p at
every other value — the entire information content of a sketch.
"""

from __future__ import annotations

import numpy as np

from _harness import make_stack, write_table

NUM_USERS = 6000
SUBSET = (0, 1, 2)
TRUE_VALUE = (1, 0, 1)


def test_e3_lemma_32_bias(benchmark):
    params, prf, sketcher, _, _ = make_stack(0.3, seed=3)

    def publish_all():
        return [
            sketcher.sketch(f"user-{i}", list(TRUE_VALUE), SUBSET)
            for i in range(NUM_USERS)
        ]

    sketches = benchmark.pedantic(publish_all, rounds=1, iterations=1)

    rows = []
    for value in [(1, 0, 1), (0, 0, 0), (1, 1, 1), (0, 1, 0)]:
        hits = np.mean([s.evaluate(prf, value) for s in sketches])
        expected = 1 - params.p if value == TRUE_VALUE else params.p
        rows.append(
            (
                "".join(map(str, value)),
                "true value" if value == TRUE_VALUE else "other",
                f"{expected:.3f}",
                f"{hits:.3f}",
                f"{abs(hits - expected):.4f}",
            )
        )
        assert abs(hits - expected) < 0.03

    write_table(
        "E3",
        f"Lemma 3.2 — Pr[H(id,B,v,s) = 1] at p = {params.p}, {NUM_USERS} users",
        ["v", "role", "paper", "measured", "|diff|"],
        rows,
        notes=(
            "Paper claim: the sketch key is (1-p)-biased towards 1 exactly at the\n"
            "user's true value and p-biased everywhere else."
        ),
    )
