"""The Dinur–Nissim reconstruction attack — Appendix A's reference point.

Appendix A positions sketches against "a negative result of Dinur and
Nissim [7] ... which suggests that linear noise must be added in order to
protect from an attacker with unlimited computational power".  The attack
behind that theorem: query random subsets of rows, collect noisy counts,
and solve a least-squares/rounding problem for the private column.  With
per-query noise ``o(sqrt(M))`` and enough queries the attacker recovers
almost every bit; with ``Omega(sqrt(M))`` noise — what both of Appendix A's
modes add — reconstruction fails.

This module implements that attacker against any noisy subset-sum oracle,
so benchmark X4 can trace the accuracy-vs-noise curve and locate the
sqrt(M) phase transition the appendix leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["ReconstructionResult", "reconstruction_attack", "noisy_subset_sum_oracle"]

#: Oracle signature: given a 0/1 row-selection mask, return a (noisy)
#: count of selected rows whose private bit is 1.
SubsetSumOracle = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class ReconstructionResult:
    """Outcome of one reconstruction attempt.

    Attributes
    ----------
    recovered:
        The attacker's 0/1 guess for every row's private bit.
    accuracy:
        Fraction of rows guessed correctly (0.5 = coin flipping on
        balanced data, 1.0 = total reconstruction).
    num_queries:
        Queries spent.
    """

    recovered: np.ndarray
    accuracy: float
    num_queries: int


def noisy_subset_sum_oracle(
    secret_bits: np.ndarray,
    noise_scale: float,
    rng: np.random.Generator,
) -> SubsetSumOracle:
    """A curator answering subset-sum queries with Gaussian noise.

    ``noise_scale = 0`` is the exact curator (instant reconstruction);
    ``noise_scale ~ sqrt(M)`` is the Appendix A regime.
    """
    secret = np.asarray(secret_bits, dtype=np.float64)
    if not np.isin(secret, (0.0, 1.0)).all():
        raise ValueError("secret bits must be 0/1")

    def oracle(mask: np.ndarray) -> float:
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != secret.shape:
            raise ValueError(f"mask shape {mask.shape} != data shape {secret.shape}")
        return float(mask @ secret + rng.normal(0.0, noise_scale))

    return oracle


def reconstruction_attack(
    oracle: SubsetSumOracle,
    num_rows: int,
    num_queries: int | None = None,
    rng: np.random.Generator | None = None,
    truth: np.ndarray | None = None,
) -> ReconstructionResult:
    """Least-squares reconstruction from random subset-sum queries.

    Issues ``num_queries`` random-mask queries (default ``4 M``, enough
    for the linear system to be well overdetermined), solves the
    least-squares problem ``min ||A x - y||``, and rounds to 0/1 —
    the polynomial-time variant of the Dinur–Nissim attack.

    Parameters
    ----------
    oracle:
        The noisy curator.
    num_rows:
        Database size ``M``.
    num_queries:
        Queries to spend (default ``4 M``).
    rng:
        Source of the random query masks.
    truth:
        Optional ground-truth bits; when given, ``accuracy`` is computed
        (otherwise it is reported as ``nan``).
    """
    if num_rows < 1:
        raise ValueError(f"num_rows must be >= 1, got {num_rows}")
    rng = rng if rng is not None else np.random.default_rng()
    queries = num_queries if num_queries is not None else 4 * num_rows
    if queries < 1:
        raise ValueError(f"num_queries must be >= 1, got {queries}")

    masks = (rng.random((queries, num_rows)) < 0.5).astype(np.float64)
    answers = np.array([oracle(mask) for mask in masks])
    solution, *_ = np.linalg.lstsq(masks, answers, rcond=None)
    recovered = (solution >= 0.5).astype(np.int8)

    if truth is not None:
        truth = np.asarray(truth)
        if truth.shape != recovered.shape:
            raise ValueError(f"truth shape {truth.shape} != {recovered.shape}")
        accuracy = float((recovered == truth).mean())
    else:
        accuracy = float("nan")
    return ReconstructionResult(recovered=recovered, accuracy=accuracy, num_queries=queries)
