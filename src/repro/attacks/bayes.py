"""The unbounded Bayesian attacker with arbitrary partial knowledge.

The paper's privacy definition is exactly a bound on what *this* adversary
can do: an attacker who knows the user's profile is one of a few candidate
values, observes the published data, and updates to a posterior.  The
definition's ratio ``Pr[s|d'] / Pr[s|d''] <= 1 + eps`` caps the posterior
shift regardless of the prior.

This module computes the attacker's posterior **exactly** for each
mechanism:

* **sketches** — the attacker can evaluate the public function ``H``
  everywhere, so for a candidate profile they know precisely which keys
  evaluate to 1; the likelihood of the published key is then the exact
  publish probability from :mod:`repro.core.exact`.  Lemma 3.3 promises the
  resulting posterior barely moves.
* **retention replacement** — per-component product likelihood; the
  introduction's example shows the posterior collapses onto the truth.
* **randomized response** — per-bit product likelihood; the posterior
  drifts at rate ``((1-p)/p)^{hamming distance}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..baselines.randomized_response import RandomizedResponse
from ..baselines.retention import RetentionReplacement
from ..core.exact import publish_probability
from ..core.params import PrivacyParams
from ..core.prf import BiasedFunction
from ..core.sketch import Sketch

__all__ = [
    "AttackResult",
    "posterior_from_likelihoods",
    "sketch_likelihood",
    "sketch_likelihoods",
    "attack_sketches",
    "attack_retention",
    "attack_randomized_response",
    "map_success_rate",
]


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one two-candidate inference.

    Attributes
    ----------
    posterior_a:
        Posterior probability that the user holds candidate A.
    prior_a:
        The attacker's prior for candidate A.
    likelihood_ratio:
        ``Pr[obs | A] / Pr[obs | B]`` — the quantity the paper's
        definition bounds.
    """

    posterior_a: float
    prior_a: float
    likelihood_ratio: float

    @property
    def map_guess_a(self) -> bool:
        """The attacker's maximum-a-posteriori guess."""
        return self.posterior_a >= 0.5

    @property
    def advantage(self) -> float:
        """Absolute posterior shift ``|posterior - prior|``.

        Near 0 means the publication taught the attacker essentially
        nothing; near ``1 - prior`` means the publication identified the
        profile.
        """
        return abs(self.posterior_a - self.prior_a)


def posterior_from_likelihoods(
    likelihood_a: float, likelihood_b: float, prior_a: float = 0.5
) -> AttackResult:
    """Exact Bayes update for the two-candidate game."""
    if not 0.0 < prior_a < 1.0:
        raise ValueError(f"prior must be in (0,1), got {prior_a}")
    if likelihood_a < 0 or likelihood_b < 0:
        raise ValueError("likelihoods must be non-negative")
    numerator = likelihood_a * prior_a
    denominator = numerator + likelihood_b * (1.0 - prior_a)
    if denominator == 0.0:
        # Observation impossible under both candidates: no update.
        return AttackResult(prior_a, prior_a, 1.0)
    ratio = likelihood_a / likelihood_b if likelihood_b > 0 else float("inf")
    return AttackResult(numerator / denominator, prior_a, ratio)


# ----------------------------------------------------------------------
# Sketch likelihoods (exact, using the attacker's full power)
# ----------------------------------------------------------------------
def sketch_likelihood(
    prf: BiasedFunction,
    params: PrivacyParams,
    sketch: Sketch,
    candidate_value: Sequence[int],
) -> float:
    """``Pr[published key | d_B = candidate]``, computed exactly.

    The attacker evaluates ``H(id, B, candidate, s')`` at **every** key
    ``s'`` — they know the public function, the user id, the subset and the
    key space.  Given the resulting evaluation pattern, the publish
    probability of the observed key follows the exact recursion of
    :func:`repro.core.exact.publish_probability`.  This is the strongest
    possible use of the published sketch.
    """
    num_keys = 1 << sketch.num_bits
    value_t = tuple(int(bit) for bit in candidate_value)
    # One evaluate_keys call sweeps the whole key space; bitwise identical
    # to looping the scalar evaluate (the entry-point contract), but the
    # key axis runs through the vectorised/compiled PRF tier.
    evaluations = prf.evaluate_keys(
        sketch.user_id, sketch.subset, value_t, range(num_keys)
    )
    num_ones = int(evaluations.sum())
    tagged = int(evaluations[sketch.key])
    return publish_probability(
        num_keys, num_ones, tagged, params.rejection_probability
    )


def sketch_likelihoods(
    prf: BiasedFunction,
    params: PrivacyParams,
    sketch: Sketch,
    candidate_values: Sequence[Sequence[int]],
) -> np.ndarray:
    """Vector of :func:`sketch_likelihood` over many candidate values.

    All candidates share the user, subset and key space, so the whole
    ``candidates x keys`` evaluation table is one ``evaluate_grid`` call
    (the candidate axis plays the grid's user axis with the user id
    repeated per row) instead of ``C * 2**num_bits`` scalar PRF calls.
    Bitwise identical to calling :func:`sketch_likelihood` per candidate.
    """
    if len(candidate_values) == 0:
        return np.zeros(0, dtype=np.float64)
    num_keys = 1 << sketch.num_bits
    values = [tuple(int(bit) for bit in value) for value in candidate_values]
    key_rows = np.tile(
        np.arange(num_keys, dtype=np.uint64), (len(values), 1)
    )
    grid = prf.evaluate_grid(
        [sketch.user_id] * len(values), sketch.subset, values, key_rows
    )
    num_ones = grid.sum(axis=1)
    tagged = grid[:, sketch.key]
    return np.asarray(
        [
            publish_probability(
                num_keys, int(ones), int(tag), params.rejection_probability
            )
            for ones, tag in zip(num_ones, tagged)
        ],
        dtype=np.float64,
    )


def attack_sketches(
    prf: BiasedFunction,
    params: PrivacyParams,
    sketches: Sequence[Sketch],
    candidate_a: Sequence[int],
    candidate_b: Sequence[int],
    prior_a: float = 0.5,
) -> AttackResult:
    """Bayes attack on one user's full set of published sketches.

    ``candidate_a`` / ``candidate_b`` are full candidate *profiles*; each
    sketch is scored at the candidate's projection onto its subset, and
    per-sketch likelihoods multiply (sketches are independent given the
    profile — the same fact Corollary 3.4 uses).
    """
    likelihood_a = 1.0
    likelihood_b = 1.0
    for sketch in sketches:
        projection_a = tuple(int(candidate_a[i]) for i in sketch.subset)
        projection_b = tuple(int(candidate_b[i]) for i in sketch.subset)
        pair = sketch_likelihoods(prf, params, sketch, (projection_a, projection_b))
        likelihood_a *= float(pair[0])
        likelihood_b *= float(pair[1])
    return posterior_from_likelihoods(likelihood_a, likelihood_b, prior_a)


# ----------------------------------------------------------------------
# Baseline attacks
# ----------------------------------------------------------------------
def attack_retention(
    mechanism: RetentionReplacement,
    observed: Sequence[int],
    candidate_a: Sequence[int],
    candidate_b: Sequence[int],
    prior_a: float = 0.5,
) -> AttackResult:
    """The introduction's attack on retention replacement, made exact."""
    return posterior_from_likelihoods(
        mechanism.likelihood(observed, candidate_a),
        mechanism.likelihood(observed, candidate_b),
        prior_a,
    )


def attack_randomized_response(
    mechanism: RandomizedResponse,
    observed_bits: Sequence[int],
    candidate_a: Sequence[int],
    candidate_b: Sequence[int],
    prior_a: float = 0.5,
) -> AttackResult:
    """Bayes attack on a full flipped bit vector."""
    obs = np.asarray(observed_bits)
    a = np.asarray(candidate_a)
    b = np.asarray(candidate_b)
    if not (obs.shape == a.shape == b.shape):
        raise ValueError(
            f"shape mismatch: observed {obs.shape}, candidates {a.shape}/{b.shape}"
        )
    p = mechanism.p

    def likelihood(candidate: np.ndarray) -> float:
        mismatches = int((obs != candidate).sum())
        return p**mismatches * (1.0 - p) ** (obs.size - mismatches)

    return posterior_from_likelihoods(likelihood(a), likelihood(b), prior_a)


def map_success_rate(results: Sequence[AttackResult], truth_is_a: Sequence[bool]) -> float:
    """Fraction of users whose profile the MAP attacker guesses correctly.

    0.5 on balanced priors means the mechanism leaked nothing; 1.0 means
    total identification.
    """
    if len(results) != len(truth_is_a):
        raise ValueError(
            f"got {len(results)} results but {len(truth_is_a)} truth labels"
        )
    if not results:
        raise ValueError("no attack results to score")
    correct = sum(
        1
        for result, is_a in zip(results, truth_is_a)
        if result.map_guess_a == bool(is_a)
    )
    return correct / len(results)
