"""The dictionary attack: why hashing is not private but sketching is.

Section 3's motivating intuition: "if Bob knows that Alice's private value
can be only one out of 100 known possible values, then once he sees the
hash value, by applying the hash function to each potential value, he can
deduce the original value".  A sketch, by contrast, is *randomised* with a
distribution nearly independent of the value, so the same dictionary
attack recovers almost nothing.

This module implements both sides:

* :func:`hash_publish` / :func:`dictionary_attack_hash` — the naive
  deterministic-hash "anonymisation" and its trivial break;
* :func:`dictionary_attack_sketch` — the exact Bayesian posterior over a
  candidate dictionary given a published sketch (experiment E18 shows it
  stays close to the uniform prior).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

import numpy as np

from ..core.params import PrivacyParams
from ..core.prf import BiasedFunction
from ..core.sketch import Sketch
from .bayes import sketch_likelihoods

__all__ = [
    "hash_publish",
    "dictionary_attack_hash",
    "dictionary_attack_sketch",
    "posterior_entropy",
]


def hash_publish(value: Sequence[int], salt: bytes = b"") -> bytes:
    """The naive scheme: publish a deterministic hash of the private value.

    A public salt does not help — the attacker just includes it in their
    dictionary computation (only a *secret* salt would, but then the data
    is useless to the aggregator too).
    """
    payload = salt + bytes(int(bit) & 1 for bit in value)
    return hashlib.blake2b(payload, digest_size=16).digest()


def dictionary_attack_hash(
    published: bytes,
    candidates: Sequence[Sequence[int]],
    salt: bytes = b"",
) -> Optional[int]:
    """Recover the private value from its hash by dictionary enumeration.

    Returns the index of the matching candidate, or ``None`` when the
    value was outside the dictionary.  With a collision-resistant hash the
    recovery is exact — total privacy failure.
    """
    for index, candidate in enumerate(candidates):
        if hash_publish(candidate, salt) == published:
            return index
    return None


def dictionary_attack_sketch(
    prf: BiasedFunction,
    params: PrivacyParams,
    sketch: Sketch,
    candidates: Sequence[Sequence[int]],
    prior: Sequence[float] | None = None,
) -> np.ndarray:
    """Exact posterior over a candidate dictionary given a sketch.

    The attacker scores every candidate with its exact publish likelihood
    and normalises.  Lemma 3.3 bounds any two likelihoods within a factor
    ``((1-p)/p)**4`` of each other, so the posterior provably stays within
    that factor of the prior — no dictionary, however small, breaks a
    sketch the way it breaks a hash.
    """
    if not candidates:
        raise ValueError("dictionary is empty")
    if prior is None:
        weights = np.full(len(candidates), 1.0 / len(candidates))
    else:
        weights = np.asarray(prior, dtype=np.float64)
        if weights.shape != (len(candidates),):
            raise ValueError(
                f"prior has shape {weights.shape}, expected ({len(candidates)},)"
            )
        if weights.min() < 0 or not np.isclose(weights.sum(), 1.0):
            raise ValueError("prior must be a probability vector")
    # One evaluate_grid call scores the whole dictionary x key-space
    # table; bitwise identical to looping sketch_likelihood per candidate.
    likelihoods = sketch_likelihoods(prf, params, sketch, candidates)
    unnormalised = likelihoods * weights
    total = unnormalised.sum()
    if total == 0.0:
        return weights
    return unnormalised / total


def posterior_entropy(distribution: np.ndarray) -> float:
    """Shannon entropy (bits) of a posterior — the attacker's residual
    uncertainty.  A uniform 100-candidate prior has ~6.64 bits; a broken
    mechanism leaves ~0."""
    probabilities = np.asarray(distribution, dtype=np.float64)
    support = probabilities[probabilities > 0]
    return float(-(support * np.log2(support)).sum())
