"""Privacy adversaries: the Bayesian partial-knowledge attacker and the
dictionary attack of Section 3's hashing discussion."""

from .bayes import (
    AttackResult,
    attack_randomized_response,
    attack_retention,
    attack_sketches,
    map_success_rate,
    posterior_from_likelihoods,
    sketch_likelihood,
    sketch_likelihoods,
)
from .reconstruction import (
    ReconstructionResult,
    noisy_subset_sum_oracle,
    reconstruction_attack,
)
from .dictionary import (
    dictionary_attack_hash,
    dictionary_attack_sketch,
    hash_publish,
    posterior_entropy,
)

__all__ = [
    "AttackResult",
    "ReconstructionResult",
    "attack_randomized_response",
    "attack_retention",
    "attack_sketches",
    "dictionary_attack_hash",
    "dictionary_attack_sketch",
    "hash_publish",
    "map_success_rate",
    "noisy_subset_sum_oracle",
    "posterior_entropy",
    "posterior_from_likelihoods",
    "reconstruction_attack",
    "sketch_likelihood",
    "sketch_likelihoods",
]
