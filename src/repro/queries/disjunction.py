"""Disjunctions of conjunctions, via the Appendix F complement trick.

Appendix F's closing remark: "by estimating how many users have these bits
equal to 0, we learn how many users do not satisfy any query of the form
I(v_i, B_i) — which could be used to estimate how many users satisfy a
disjunction of conjunctions."

Given per-conjunction virtual indicator bits (from whole-subset sketches),
the reconstructed weight distribution's entry 0 is the fraction satisfying
*none* of the component conjunctions, so

    ``Pr[C_1 or ... or C_q] = 1 - weight_distribution[0]``.

For two conjunctions an inclusion-exclusion alternative is also provided
(when the conjunctions live on disjoint subsets, the pairwise intersection
is itself a conjunctive query).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.combine import (
    CombinedEstimate,
    combine_aligned_bits,
    combine_sketch_groups,
)
from ..core.estimator import SketchEstimator
from ..core.sketch import Sketch
from .ast import Conjunction

__all__ = [
    "disjunction_fraction",
    "disjunction_fraction_from_bits",
    "disjunction_by_inclusion_exclusion",
]


def disjunction_fraction(
    estimator: SketchEstimator,
    sketch_groups: Sequence[Sequence[Sketch]],
    values: Sequence[Sequence[int]],
    clamp: bool = True,
) -> float:
    """Fraction of users satisfying at least one component conjunction.

    Parameters
    ----------
    estimator:
        Aggregator-side estimator (PRF + p).
    sketch_groups:
        One user-aligned sketch group per component conjunction's subset.
    values:
        The target value of each component conjunction.

    Notes
    -----
    Complement of the "all indicator bits 0" mass from the Appendix F
    system; inherits that system's cond(V) noise amplification, so prefer
    few components.
    """
    combined: CombinedEstimate = combine_sketch_groups(estimator, sketch_groups, values)
    fraction = 1.0 - combined.none_fraction
    if clamp:
        fraction = min(1.0, max(0.0, fraction))
    return fraction


def disjunction_fraction_from_bits(
    bit_columns: Sequence[np.ndarray],
    p: float,
    clamp: bool = True,
) -> float:
    """Disjunction fraction from per-component aligned virtual-bit columns.

    The column-speaking sibling of :func:`disjunction_fraction`: each
    element of ``bit_columns`` is one component conjunction's p-perturbed
    indicator vector, gathered onto a common user order (typically a full
    cached evaluation column fancy-indexed by
    :meth:`repro.server.collector.SketchStore.aligned_columns` views).
    Produces the same floats as :func:`disjunction_fraction` over the
    corresponding sketch groups.
    """
    combined = combine_aligned_bits(bit_columns, p)
    fraction = 1.0 - combined.none_fraction
    if clamp:
        fraction = min(1.0, max(0.0, fraction))
    return fraction


def disjunction_by_inclusion_exclusion(
    count_fn,
    first: Conjunction,
    second: Conjunction,
    num_users: int,
) -> float:
    """``Pr[C1 or C2]`` by inclusion-exclusion over conjunctive counts.

    Requires the two conjunctions to constrain disjoint bit positions so
    that ``C1 and C2`` is itself a single conjunction (checked).  Uses
    three conjunctive counts instead of a linear system — cheaper and
    better conditioned than :func:`disjunction_fraction` when applicable.

    Parameters
    ----------
    count_fn:
        ``(subset, value) -> count`` oracle (exact or sketch-backed).
    num_users:
        Denominator for converting counts to fractions.
    """
    if num_users < 1:
        raise ValueError(f"num_users must be >= 1, got {num_users}")
    overlap = set(first.subset) & set(second.subset)
    if overlap:
        raise ValueError(
            f"conjunctions share bit positions {sorted(overlap)}; "
            "inclusion-exclusion needs disjoint subsets (the intersection "
            "is not a single conjunction otherwise)"
        )
    both = first.and_also(second)
    total = (
        count_fn(first.subset, first.value)
        + count_fn(second.subset, second.value)
        - count_fn(both.subset, both.value)
    )
    return total / num_users
