"""Exact reductions of per-shard partial statistics.

Every query family the engine serves bottoms out in one of three
sufficient statistics over an ordered user population:

* **bit sums** — ``sum(bits)`` of one subset's p-perturbed indicator
  column (Algorithm 2 estimates, marginals, direct counts);
* **weight counts** — the integer Hamming-weight histogram of the
  aligned ``(users x k)`` virtual-bit matrix (Appendix F partition
  counts, ``any_of``, ``exactly_l``);
* **matrix rows** — the aligned virtual-bit matrix itself
  (``bit_matrix``).

All three are *integers* (or integer matrices), so partials from
disjoint user ranges recombine exactly: integer addition for sums and
histograms, row concatenation in shard order for matrices.  The
coordinator then re-runs the single-store float arithmetic **once** on
the merged integers (``repro.core.estimator.SketchEstimator.
estimate_from_counts``, ``repro.core.combine.combine_from_weight_counts``)
— which is what makes sharded answers bit-identical to single-store
answers rather than merely close.

The helpers here merge the plain-dict partial payloads shard workers
return for ``shard_partial`` protocol requests (see
``repro.server.sharded``).  A shard that holds no publisher of a
requested subset (or no aligned user) contributes ``num_users = 0`` and
empty/zero statistics — globally-missing subsets are the coordinator's
call, made against the full catalog before any fan-out.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "merge_bit_sum_partials",
    "merge_matrix_partials",
    "merge_weight_count_partials",
]


def merge_bit_sum_partials(
    partials: Sequence[Mapping], num_values: int
) -> Tuple[List[int], int]:
    """Sum per-shard ``{"num_users", "sums"}`` partials into global integers.

    Returns ``(sums, num_users)`` where ``sums[j]`` is the total bit sum
    for the ``j``-th requested value over all shards.  Exact: every
    addend is an integer.
    """
    totals = [0] * num_values
    total_users = 0
    for partial in partials:
        sums = partial["sums"]
        if len(sums) != num_values:
            raise ValueError(
                f"shard partial carries {len(sums)} bit sums for {num_values} values"
            )
        total_users += int(partial["num_users"])
        for j, value_sum in enumerate(sums):
            totals[j] += int(value_sum)
    return totals, total_users


def merge_weight_count_partials(
    partials: Sequence[Mapping], num_groups: int, k: int
) -> Tuple[np.ndarray, int]:
    """Sum per-shard ``{"num_users", "counts"}`` weight histograms.

    Each partial carries, per value group, a ``k + 1``-entry integer
    histogram of aligned-user Hamming weights.  Returns the summed
    ``(num_groups, k + 1)`` int64 histogram matrix and the total aligned
    user count.
    """
    totals = np.zeros((num_groups, k + 1), dtype=np.int64)
    total_users = 0
    for partial in partials:
        counts = np.asarray(partial["counts"], dtype=np.int64)
        if counts.shape != (num_groups, k + 1):
            raise ValueError(
                f"shard partial histogram has shape {counts.shape}; "
                f"expected {(num_groups, k + 1)}"
            )
        total_users += int(partial["num_users"])
        totals += counts
    return totals, total_users


def merge_matrix_partials(
    partials: Sequence[Mapping], k: int
) -> Optional[np.ndarray]:
    """Concatenate per-shard aligned matrix rows, preserving shard order.

    With contiguous user-range shards, each shard's aligned order is a
    contiguous run of the single-store aligned order, so concatenation
    in shard order reproduces the single-store ``(M, k)`` int8 matrix
    row for row.  Returns ``None`` when no shard contributed a row (no
    user published for every requested subset anywhere).
    """
    pieces = []
    for partial in partials:
        rows = partial["rows"]
        if not rows:
            continue
        piece = np.asarray(rows, dtype=np.int8)
        if piece.ndim != 2 or piece.shape[1] != k:
            raise ValueError(
                f"shard partial matrix has shape {piece.shape}; expected (*, {k})"
            )
        pieces.append(piece)
    if not pieces:
        return None
    if len(pieces) == 1:
        return pieces[0]
    return np.concatenate(pieces, axis=0)
