"""Appendix E — ``a + b < 2^r`` via virtual XOR bits.

Expressing "how many users satisfy ``a_u + b_u < 2^r``" directly needs an
exponential number of conjunctive queries: the carry chain forces "exactly
one of ``a_i``, ``b_i`` is 1" constraints.  The appendix's trick: introduce
the virtual bit ``q_i = a_i XOR b_i``.  Given p-perturbed published bits
``ã_i`` and ``b̃_i``, the observable ``q̃_i = ã_i XOR b̃_i`` is a
``2p(1-p)``-perturbed version of ``q_i`` — "the evaluation changes if and
only if exactly one of ``a_i`` and ``b_i`` gets perturbed" — so all the
usual machinery applies to the virtual bits too.

Exact decomposition (weight exponents ``e = 0 .. k-1``, ``e = k-1`` the
highest):

``a + b < 2^r``  iff  ``a_e = b_e = 0`` for every ``e >= r``  AND one of

* ``E_j`` (for ``j = r-1 .. 0``): ``q_e = 1`` for ``r-1 >= e > j`` and
  ``a_j = b_j = 0`` — the first non-XOR position resolves to both-zero;
* ``E_carryless``: ``q_e = 1`` for **all** ``e < r`` — then
  ``a + b = 2^r - 1`` exactly.

The events are disjoint, and each mixes *real* literals (p-perturbed) with
*virtual* ones (``2p(1-p)``-perturbed), which is why estimation uses the
mixed-bias product-kernel system
:func:`repro.core.combine.combine_mixed_bits`.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.combine import combine_mixed_bits

__all__ = [
    "xor_virtual_bits",
    "xor_bias",
    "addition_event_literals",
    "addition_interval_fraction",
]


def xor_bias(p: float) -> float:
    """Effective flip probability of a XOR virtual bit: ``2 p (1 - p)``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0,1], got {p}")
    return 2.0 * p * (1.0 - p)


def xor_virtual_bits(bits_a: np.ndarray, bits_b: np.ndarray) -> np.ndarray:
    """Per-user XOR of two perturbed bit matrices.

    If the inputs are p-perturbed versions of the true bits, the output is
    a ``2p(1-p)``-perturbed version of the true XOR (Appendix E).
    """
    a = np.asarray(bits_a)
    b = np.asarray(bits_b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return (a ^ b).astype(np.int8)


def addition_event_literals(k: int, r: int) -> List[Tuple[List[int], List[int], List[int]]]:
    """Enumerate the disjoint events of the ``a + b < 2^r`` decomposition.

    Returns a list of events, each a triple
    ``(zero_exponents_a, zero_exponents_b, xor_exponents)`` of weight
    exponents: bits of ``a`` that must be 0, bits of ``b`` that must be 0,
    and positions whose XOR must be 1.  Exponent ``e`` has weight ``2^e``.
    """
    if not 1 <= r <= k:
        raise ValueError(f"r must be in [1, {k}], got {r}")
    high = list(range(r, k))  # a_e = b_e = 0 for all of these
    events: List[Tuple[List[int], List[int], List[int]]] = []
    for j in range(r - 1, -1, -1):
        xor_positions = list(range(j + 1, r))
        events.append((high + [j], high + [j], xor_positions))
    events.append((list(high), list(high), list(range(r))))  # carry-less all-XOR
    return events


def addition_interval_fraction(
    perturbed_a: np.ndarray,
    perturbed_b: np.ndarray,
    p: float,
    r: int,
    clamp: bool = True,
) -> float:
    """Estimate the fraction of users with ``a + b < 2^r`` (Appendix E).

    Parameters
    ----------
    perturbed_a, perturbed_b:
        ``(M, k)`` matrices of p-perturbed attribute bits, **MSB first**
        (column 0 is the highest bit, matching the schema layout).  These
        can come from per-bit randomized response or from per-bit sketch
        evaluations at value 1 — both are p-perturbed indicators of the
        true bits.
    p:
        The per-bit flip probability of the published matrices.
    r:
        The threshold exponent: the query is ``a + b < 2**r``.
    clamp:
        Clip each disjoint event's probability into ``[0, 1]`` and the
        total as well.

    Notes
    -----
    Each event's probability is estimated with the mixed-bias system:
    real zero-literals are p-perturbed (after complementing: a published 0
    becomes an "is-zero" indicator 1) and XOR literals are
    ``2p(1-p)``-perturbed.  Probabilities of disjoint events add.
    """
    a = np.asarray(perturbed_a)
    b = np.asarray(perturbed_b)
    if a.shape != b.shape or a.ndim != 2:
        raise ValueError(f"expected equal-shape 2-D matrices, got {a.shape} vs {b.shape}")
    num_users, k = a.shape
    if num_users == 0:
        raise ValueError("no users")
    xor_matrix = xor_virtual_bits(a, b)
    virtual_bias = xor_bias(p)
    # "bit is 0" indicators, complemented once and sliced per event below
    # (events share most literals, so the loop only stacks views).
    not_a = 1 - a
    not_b = 1 - b

    def column(exponent: int) -> int:
        # weight exponent e lives in MSB-first column k-1-e
        return k - 1 - exponent

    total = 0.0
    for zeros_a, zeros_b, xors in addition_event_literals(k, r):
        real_columns = [not_a[:, column(exponent)] for exponent in zeros_a]
        real_columns.extend(not_b[:, column(exponent)] for exponent in zeros_b)
        real = (
            np.column_stack(real_columns)
            if real_columns
            else np.zeros((num_users, 0), dtype=np.int8)
        )
        virt = (
            np.column_stack([xor_matrix[:, column(e)] for e in xors])
            if xors
            else np.zeros((num_users, 0), dtype=np.int8)
        )
        probability = combine_mixed_bits(real, virt, p, virtual_bias)
        if clamp:
            probability = min(1.0, max(0.0, probability))
        total += probability
    if clamp:
        total = min(1.0, max(0.0, total))
    return total
