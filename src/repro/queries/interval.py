"""Section 4.1 — interval queries ``a < c`` / ``a <= c`` via prefix subsets.

The paper decomposes "how many users have salary below ``c``": writing ``c``
in binary, ``x < c`` iff there exists a (unique) position ``i`` with
``x_j = c_j`` for ``j < i`` and ``x_i = 0 < 1 = c_i``.  Each such position
contributes one conjunctive query on the prefix subset ``A_i`` at the value
``c_1 ... c_{i-1} 0``, so the whole interval costs ``popcount(c)`` queries.

Note on the paper's statement: the displayed formula

    ``|{u : a_u <= c}| = sum_{i : c_i = 1} I(A_i, c_1...c_{i-1} 0)``

actually counts *strict* inequality (every term forces a bit strictly below
``c``'s bit, and equality ``x = c`` matches no term).  We expose both:
:func:`less_than_plan` is the paper's decomposition verbatim, and
:func:`less_equal_plan` adds the single equality term ``I(A, c)`` that makes
the ``<=`` reading correct.  Tests pin this distinction against ground
truth.
"""

from __future__ import annotations

from .ast import Conjunction, Literal
from .conjunctive import LinearPlan, PlanTerm
from ..data.encoding import encode_value
from ..data.schema import Schema

__all__ = ["less_than_plan", "less_equal_plan", "range_plan"]


def less_than_plan(schema: Schema, name: str, threshold: int) -> LinearPlan:
    """Compile ``count(a < threshold)`` — ``popcount(threshold)`` queries.

    ``threshold = 0`` is unsatisfiable for an unsigned attribute, so the
    plan is empty and evaluates to exactly 0 — the boundary an analyst
    sweeping thresholds expects, rather than an error.
    """
    bits = encode_value(schema, name, threshold)
    positions = schema.bits(name)
    terms = []
    for i, c_bit in enumerate(bits):  # i = 0-based index of the paper's i-th highest bit
        if c_bit != 1:
            continue
        literals = [Literal(positions[j], bits[j]) for j in range(i)]
        literals.append(Literal(positions[i], 0))
        terms.append(PlanTerm(Conjunction(tuple(literals)), 1.0))
    return LinearPlan(tuple(terms), description=f"{name} < {threshold}")


def less_equal_plan(schema: Schema, name: str, threshold: int) -> LinearPlan:
    """Compile ``count(a <= threshold)``: the strict plan plus ``I(A, c)``.

    Costs ``popcount(threshold) + 1`` queries.  For ``threshold = 0`` the
    strict part is empty, so the plan degenerates to the single equality
    term — consistent with :func:`less_than_plan` at the boundary.
    """
    equality = PlanTerm(Conjunction.equals(schema, name, threshold), 1.0)
    strict = less_than_plan(schema, name, threshold)
    return LinearPlan(
        strict.terms + (equality,), description=f"{name} <= {threshold}"
    )


def range_plan(schema: Schema, name: str, low: int, high: int) -> LinearPlan:
    """Compile ``count(low <= a <= high)`` as a difference of two intervals.

    Demonstrates the paper's point that richer queries assemble from small
    numbers of conjunctive queries: a closed range costs
    ``popcount(high) + popcount(low) + 2`` queries.
    """
    if low > high:
        raise ValueError(f"empty range: low={low} > high={high}")
    upper = less_equal_plan(schema, name, high)
    if low == 0:
        return LinearPlan(upper.terms, description=f"{low} <= {name} <= {high}")
    lower = less_equal_plan(schema, name, low - 1).scaled(-1.0)
    return LinearPlan(
        upper.terms + lower.terms, description=f"{low} <= {name} <= {high}"
    )
