"""Section 4.1 — combining constraints across attributes.

Two worked combinations from the paper:

* ``count(a = c AND b < d)`` — conjoin the equality conjunction ``I(A, c)``
  with each prefix term of ``b``'s interval decomposition: ``popcount(d)``
  queries of the form ``I(A ∪ B_i, c_1...c_k d_1...d_{i-1} 0)``.
* ``sum of b over users with a < c`` (hence conditional means) — conjoin
  each interval branch of ``a`` with each bit query of ``b``:

      ``sum_{j : c_j = 1} sum_{i = 1..k} 2^{k-i} I(A_j ∪ B_i, c_1..c_{j-1} 0 1)``

As with the plain interval plans, the paper's formulas implement *strict*
inequality; ``*_le`` variants add the boundary terms.
"""

from __future__ import annotations

from .ast import Conjunction
from .conjunctive import LinearPlan, PlanTerm
from .interval import less_than_plan
from .numeric import sum_plan
from ..data.schema import Schema

__all__ = [
    "equal_and_less_plan",
    "sum_where_less_plan",
    "sum_where_less_equal_plan",
]


def equal_and_less_plan(
    schema: Schema, name_eq: str, value_eq: int, name_lt: str, threshold: int
) -> LinearPlan:
    """Compile ``count(a = c AND b < d)``.

    ``popcount(d)`` queries, each over the union of ``a``'s full subset and
    a prefix of ``b`` — the paper's ``I(A ∪ B_i, c_1...c_k d_1...d_i)``.
    """
    equality = Conjunction.equals(schema, name_eq, value_eq)
    interval = less_than_plan(schema, name_lt, threshold)
    terms = tuple(
        PlanTerm(equality.and_also(term.conjunction), term.coefficient)
        for term in interval.terms
    )
    return LinearPlan(
        terms, description=f"{name_eq} = {value_eq} & {name_lt} < {threshold}"
    )


def sum_where_less_plan(
    schema: Schema, name_sum: str, name_cond: str, threshold: int
) -> LinearPlan:
    """Compile ``sum of b_u over users with a_u < c``.

    Cross product of ``a``'s interval branches with ``b``'s bit
    decomposition: ``popcount(c) * k_b`` queries, each of width
    ``(prefix length) + 1``.
    """
    interval = less_than_plan(schema, name_cond, threshold)
    bits = sum_plan(schema, name_sum)
    terms = []
    for branch in interval.terms:
        for bit_term in bits.terms:
            conjunction = branch.conjunction.and_also(bit_term.conjunction)
            terms.append(PlanTerm(conjunction, bit_term.coefficient))
    return LinearPlan(
        tuple(terms), description=f"sum({name_sum}) where {name_cond} < {threshold}"
    )


def sum_where_less_equal_plan(
    schema: Schema, name_sum: str, name_cond: str, threshold: int
) -> LinearPlan:
    """Compile ``sum of b_u over users with a_u <= c``.

    The strict plan plus boundary terms ``2^{k-i} I(A ∪ B_i, c · 1)`` for
    users with ``a = c`` exactly.
    """
    equality = Conjunction.equals(schema, name_cond, threshold)
    bits = sum_plan(schema, name_sum)
    boundary = tuple(
        PlanTerm(equality.and_also(term.conjunction), term.coefficient)
        for term in bits.terms
    )
    if threshold == 0:
        return LinearPlan(
            boundary, description=f"sum({name_sum}) where {name_cond} <= 0"
        )
    strict = sum_where_less_plan(schema, name_sum, name_cond, threshold)
    return LinearPlan(
        strict.terms + boundary,
        description=f"sum({name_sum}) where {name_cond} <= {threshold}",
    )
