"""Section 4.1 — boolean queries: decision trees and exactly-l-of-k.

"One can estimate the fraction of users that satisfy a given decision tree.
Each path in the decision tree corresponds to a single conjunctive query and
any user satisfies at most one path" — so the tree's acceptance fraction is
the plain sum of its accepting-path conjunctive counts.

The "exactly ``l`` out of ``k`` bits" estimate uses the Appendix F weight
reconstruction instead (it is *not* a small number of conjunctions — it is
``C(k, l)`` of them — but the ``(k+1)``-sized linear system answers every
``l`` at once); see :func:`exactly_l_fraction`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .ast import Conjunction, Literal
from .conjunctive import LinearPlan, PlanTerm
from ..core.combine import combine_virtual_bits

__all__ = ["DecisionNode", "decision_tree_plan", "exactly_l_fraction"]


@dataclass(frozen=True)
class DecisionNode:
    """A node of a binary decision tree over profile bits.

    Internal nodes test ``position`` and branch to ``if_zero`` /
    ``if_one``.  Leaves carry ``accept`` (True/False) and no children.
    """

    position: Optional[int] = None
    if_zero: Optional["DecisionNode"] = None
    if_one: Optional["DecisionNode"] = None
    accept: Optional[bool] = None

    def __post_init__(self) -> None:
        is_leaf = self.accept is not None
        has_children = self.if_zero is not None or self.if_one is not None
        if is_leaf and (has_children or self.position is not None):
            raise ValueError("a leaf must have no position and no children")
        if not is_leaf:
            if self.position is None or self.if_zero is None or self.if_one is None:
                raise ValueError(
                    "an internal node needs a position and both children"
                )

    @property
    def is_leaf(self) -> bool:
        return self.accept is not None

    @classmethod
    def leaf(cls, accept: bool) -> "DecisionNode":
        return cls(accept=accept)

    @classmethod
    def split(cls, position: int, if_zero: "DecisionNode", if_one: "DecisionNode") -> "DecisionNode":
        return cls(position=position, if_zero=if_zero, if_one=if_one)

    def classify(self, profile_bits: Sequence[int]) -> bool:
        """Ground-truth evaluation of the tree on one raw profile."""
        node = self
        while not node.is_leaf:
            bit = int(profile_bits[node.position])
            node = node.if_one if bit == 1 else node.if_zero
        return bool(node.accept)


def _accepting_paths(node: DecisionNode, prefix: Tuple[Literal, ...]) -> List[Tuple[Literal, ...]]:
    if node.is_leaf:
        return [prefix] if node.accept else []
    paths: List[Tuple[Literal, ...]] = []
    paths.extend(_accepting_paths(node.if_zero, prefix + (Literal(node.position, 0),)))
    paths.extend(_accepting_paths(node.if_one, prefix + (Literal(node.position, 1),)))
    return paths


def decision_tree_plan(root: DecisionNode) -> LinearPlan:
    """Compile a decision tree into one conjunctive query per accepting path.

    Paths are disjoint by construction (each fixes the bits along its
    route), so the coefficients are all ``+1`` — exactly the paper's
    "the total fraction ... is simply the sum" argument.

    Raises
    ------
    ValueError
        If the tree accepts everything through a bare accepting root (the
        trivial query has no literals and needs no data) or accepts
        nothing (the answer is identically 0).
    """
    paths = _accepting_paths(root, ())
    if not paths:
        raise ValueError("decision tree accepts no profile; the answer is 0")
    if any(len(path) == 0 for path in paths):
        raise ValueError("decision tree accepts every profile; the answer is M")
    terms = tuple(PlanTerm(Conjunction(path), 1.0) for path in paths)
    return LinearPlan(terms, description=f"decision_tree({len(paths)} paths)")


def exactly_l_fraction(virtual_bits: np.ndarray, p: float, l: int) -> float:
    """Fraction of users whose true bits contain exactly ``l`` ones.

    Parameters
    ----------
    virtual_bits:
        ``(M, k)`` matrix of p-perturbed indicator bits — one column per
        single-bit query in the conjunction, produced either by per-bit
        sketch evaluations or by randomized response.
    p:
        The per-bit flip probability.
    l:
        Target number of satisfied literals.

    Notes
    -----
    The paper: "using the system of equations similar to the one in
    Appendix F, one can estimate the fraction of users that satisfy
    exactly l out of k bits in the query".  We reuse exactly that system
    and read off entry ``l`` of the reconstructed weight distribution.
    """
    k = np.asarray(virtual_bits).shape[1]
    if not 0 <= l <= k:
        raise ValueError(f"l must be in [0, {k}], got {l}")
    estimate = combine_virtual_bits(virtual_bits, p)
    return float(estimate.weight_distribution[l])
