"""Non-binary (categorical) queries.

The abstract singles out "various poll data or non-binary data" as the
regime where prior randomizers fail.  With a whole-attribute sketch, a
categorical attribute's point frequencies come straight from Algorithm 2:
one sketch per user answers ``Pr[a = c]`` for *every* category ``c`` — the
paper's "each sketch ... gives us the ability to answer 2^k conjunctive
queries".

This module layers the obvious analyst conveniences on that primitive:
full histograms, mode estimation, and top-k categories, with the histogram
optionally projected back onto the probability simplex (the raw de-biased
frequencies are individually unbiased but need not sum to 1).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.estimator import SketchEstimator
from ..core.sketch import Sketch
from ..data.encoding import encode_value
from ..data.schema import Schema

__all__ = ["categorical_histogram", "estimate_mode", "top_k_categories", "simplex_project"]


def categorical_histogram(
    estimator: SketchEstimator,
    sketches: Sequence[Sketch],
    schema: Schema,
    name: str,
    normalize: bool = True,
) -> np.ndarray:
    """De-biased frequency of every category of one attribute.

    Parameters
    ----------
    estimator:
        Aggregator-side estimator.
    sketches:
        One whole-attribute sketch per user (subset = ``schema.bits(name)``).
    schema / name:
        The attribute; must be ``categorical`` (or a small ``uint``).
    normalize:
        Project the raw de-biased frequencies onto the probability simplex
        (Euclidean projection).  Raw frequencies are individually unbiased;
        the projection trades that for a valid distribution and typically
        reduces total variation error.
    """
    spec = schema.spec(name)
    num_values = spec.max_value + 1
    if num_values > 4096:
        raise ValueError(
            f"attribute {name!r} has {num_values} values; enumerating a histogram "
            "over more than 4096 categories is not sensible — query point values"
        )
    candidates = [encode_value(schema, name, value) for value in range(num_values)]
    estimates = estimator.estimate_many(sketches, candidates)
    frequencies = np.asarray([estimate.fraction for estimate in estimates])
    if normalize:
        frequencies = simplex_project(frequencies)
    return frequencies


def simplex_project(vector: np.ndarray) -> np.ndarray:
    """Euclidean projection of a vector onto the probability simplex.

    Standard algorithm (sort, running threshold); used to clean up
    de-biased histograms whose entries are unbiased but unconstrained.
    """
    values = np.asarray(vector, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError(f"expected a non-empty 1-D vector, got shape {values.shape}")
    descending = np.sort(values)[::-1]
    cumulative = np.cumsum(descending) - 1.0
    indices = np.arange(1, values.size + 1)
    feasible = descending - cumulative / indices > 0
    rho = int(np.nonzero(feasible)[0][-1])
    threshold = cumulative[rho] / (rho + 1)
    return np.maximum(values - threshold, 0.0)


def estimate_mode(
    estimator: SketchEstimator,
    sketches: Sequence[Sketch],
    schema: Schema,
    name: str,
) -> Tuple[int, float]:
    """Most frequent category and its estimated frequency."""
    histogram = categorical_histogram(estimator, sketches, schema, name)
    mode = int(np.argmax(histogram))
    return mode, float(histogram[mode])


def top_k_categories(
    estimator: SketchEstimator,
    sketches: Sequence[Sketch],
    schema: Schema,
    name: str,
    k: int,
) -> List[Tuple[int, float]]:
    """The ``k`` most frequent categories with estimated frequencies.

    The heavy-hitter question for poll data; with the Lemma 4.1 error
    independent of the attribute's bit width, ranking quality depends only
    on the user count and the frequency gaps.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    histogram = categorical_histogram(estimator, sketches, schema, name)
    order = np.argsort(histogram)[::-1][:k]
    return [(int(value), float(histogram[value])) for value in order]
