"""Linear plans: queries expressed as weighted sums of conjunctive counts.

Every computable query of Section 4.1 reduces to a linear combination

    ``answer = sum_t  coefficient_t * I(B_t, v_t)``

of conjunctive counts (sums and means via eq. 4, inner products via
``k^2`` two-bit terms, intervals via popcount terms, ...).  A
:class:`LinearPlan` is that combination reified: compilers in the sibling
modules build plans, and anything that can answer a conjunctive count —
the sketch-backed query engine, or the exact ground-truth database —
can execute them via :func:`evaluate_plan`.

Keeping plans first-class has two payoffs: the *same* plan runs against
ground truth and against sketches (so benchmarks compare apples to
apples), and tests can assert structural properties the paper states
(e.g. "the number of interval terms equals popcount(c)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from .ast import Conjunction

__all__ = [
    "PlanTerm",
    "LinearPlan",
    "evaluate_plan",
    "group_terms_by_subset",
    "CountFunction",
    "BlockCountFunction",
]

#: Signature anything executing a plan must provide: exact or estimated
#: *count* of users satisfying ``d_B = v``.
CountFunction = Callable[[Tuple[int, ...], Tuple[int, ...]], float]

#: Batched counterpart: counts for *several* candidate values of one subset
#: in a single call, aligned with the input order.  Executors that can
#: amortise work across values (one PRF block call per subset) provide this.
BlockCountFunction = Callable[[Tuple[int, ...], Sequence[Tuple[int, ...]]], Sequence[float]]


@dataclass(frozen=True)
class PlanTerm:
    """One weighted conjunctive count ``coefficient * I(B, v)``."""

    conjunction: Conjunction
    coefficient: float = 1.0

    @property
    def subset(self) -> Tuple[int, ...]:
        return self.conjunction.subset

    @property
    def value(self) -> Tuple[int, ...]:
        return self.conjunction.value

    def __str__(self) -> str:
        return f"{self.coefficient:+g} * I({self.conjunction})"


@dataclass(frozen=True)
class LinearPlan:
    """A weighted sum of conjunctive counts, with provenance.

    Attributes
    ----------
    terms:
        The weighted conjunctive counts.
    description:
        Human-readable provenance, e.g. ``"sum(salary)"`` — surfaced in
        benchmark output and error messages.
    """

    terms: Tuple[PlanTerm, ...]
    description: str = ""

    @property
    def num_queries(self) -> int:
        """How many conjunctive queries executing this plan costs.

        Section 4.1 tracks this carefully (e.g. intervals cost
        ``popcount(c)`` queries, inner products ``k^2``); tests assert the
        counts match the paper.
        """
        return len(self.terms)

    @property
    def max_width(self) -> int:
        """Widest conjunction in the plan (0 for an empty plan)."""
        return max((term.conjunction.width for term in self.terms), default=0)

    def scaled(self, factor: float) -> "LinearPlan":
        """The plan computing ``factor *`` the original answer."""
        return LinearPlan(
            tuple(PlanTerm(t.conjunction, t.coefficient * factor) for t in self.terms),
            description=f"{factor} * ({self.description})",
        )

    def __add__(self, other: "LinearPlan") -> "LinearPlan":
        return LinearPlan(
            self.terms + other.terms,
            description=f"({self.description}) + ({other.description})",
        )

    def __str__(self) -> str:
        body = " ".join(str(term) for term in self.terms)
        return f"{self.description or 'plan'}: {body}"


def group_terms_by_subset(plan: LinearPlan) -> Dict[Tuple[int, ...], List[Tuple[int, ...]]]:
    """Distinct candidate values per subset, in first-appearance order.

    The batching unit of plan execution: every value of one subset can be
    answered from a single PRF block call, and duplicate ``(B, v)`` terms
    (common in range plans) collapse to one evaluation.
    """
    grouped: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
    for term in plan.terms:
        values = grouped.setdefault(term.subset, [])
        if term.value not in values:
            values.append(term.value)
    return grouped


def evaluate_plan(
    plan: LinearPlan,
    count_fn: CountFunction,
    block_count_fn: BlockCountFunction | None = None,
) -> float:
    """Execute a plan against any conjunctive-count oracle.

    Parameters
    ----------
    plan:
        The compiled plan.  An empty plan evaluates to 0 (e.g. the
        unsatisfiable ``a < 0``).
    count_fn:
        ``count_fn(subset, value) -> count`` — either exact
        (:meth:`repro.data.ProfileDatabase.exact_count`) or estimated
        (:meth:`repro.server.QueryEngine.count`).
    block_count_fn:
        Optional batched oracle ``(subset, values) -> counts``.  When
        given, terms are grouped by subset and each group resolved in one
        call; the weighted sum is still accumulated in term order, so the
        result is bit-identical to the term-by-term path whenever the two
        oracles agree pointwise.
    """
    if block_count_fn is None:
        return sum(
            term.coefficient * count_fn(term.subset, term.value) for term in plan.terms
        )
    counts: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float] = {}
    for subset, values in group_terms_by_subset(plan).items():
        for value, count in zip(values, block_count_fn(subset, values)):
            counts[(subset, value)] = float(count)
    return sum(
        term.coefficient * counts[(term.subset, term.value)] for term in plan.terms
    )


def exact_count_fn(database) -> CountFunction:
    """Adapt a :class:`~repro.data.ProfileDatabase` into a count oracle."""
    return lambda subset, value: database.exact_count(subset, value)
