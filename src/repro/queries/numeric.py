"""Section 4.1 — sums, means and inner products via bit decomposition.

The paper expands a ``k``-bit attribute ``a`` into its binary representation
(eq. 4) and rearranges:

    ``S = sum_u a_u = sum_{i=1..k} 2^{k-i} I(A_i, 1)``

where ``A_i`` is the ``i``-th highest bit of ``a`` — so a sum costs ``k``
*single-bit* conjunctive queries.  The inner product of two attributes
similarly becomes ``k^2`` two-bit queries:

    ``sum_u a_u b_u = sum_i sum_j 2^{2k-i-j} I(A_i ∪ B_j, 11)``.

Both compile to :class:`~repro.queries.conjunctive.LinearPlan` objects.
"""

from __future__ import annotations

from .ast import Conjunction, Literal
from .conjunctive import LinearPlan, PlanTerm
from ..data.schema import Schema

__all__ = ["sum_plan", "inner_product_plan", "moment_plan"]


def sum_plan(schema: Schema, name: str) -> LinearPlan:
    """Compile ``sum_u a_u`` into ``k`` single-bit queries (eq. 4)."""
    spec = schema.spec(name)
    terms = []
    for i in range(1, spec.bits + 1):
        position = schema.bit(name, i)
        weight = float(1 << (spec.bits - i))
        terms.append(PlanTerm(Conjunction((Literal(position, 1),)), weight))
    return LinearPlan(tuple(terms), description=f"sum({name})")


def inner_product_plan(schema: Schema, name_a: str, name_b: str) -> LinearPlan:
    """Compile ``sum_u a_u * b_u`` into ``k_a * k_b`` two-bit queries.

    The paper's footnote 6 notes low-weight terms can be dropped when they
    contribute less than the noise floor; we keep all terms (callers can
    truncate the plan themselves) so the count matches the stated ``k^2``.
    """
    if name_a == name_b:
        raise ValueError(
            "inner product of an attribute with itself needs the second-moment "
            "plan (a bit and itself cannot appear twice in one conjunction); "
            "use moment_plan instead"
        )
    spec_a = schema.spec(name_a)
    spec_b = schema.spec(name_b)
    terms = []
    for i in range(1, spec_a.bits + 1):
        for j in range(1, spec_b.bits + 1):
            conjunction = Conjunction(
                (
                    Literal(schema.bit(name_a, i), 1),
                    Literal(schema.bit(name_b, j), 1),
                )
            )
            weight = float(1 << (spec_a.bits - i)) * float(1 << (spec_b.bits - j))
            terms.append(PlanTerm(conjunction, weight))
    return LinearPlan(tuple(terms), description=f"inner_product({name_a}, {name_b})")


def moment_plan(schema: Schema, name: str) -> LinearPlan:
    """Compile the second moment ``sum_u a_u^2``.

    Expanding ``a^2 = (sum_i 2^{k-i} a_i)^2``: diagonal terms collapse to
    single-bit queries (``a_i^2 = a_i``) with weight ``4^{k-i}``, and
    cross terms become two-bit queries with doubled weight.  This extends
    the paper's "higher moments" remark (abstract) concretely.
    """
    spec = schema.spec(name)
    terms = []
    for i in range(1, spec.bits + 1):
        position_i = schema.bit(name, i)
        weight_i = float(1 << (spec.bits - i))
        terms.append(PlanTerm(Conjunction((Literal(position_i, 1),)), weight_i**2))
        for j in range(i + 1, spec.bits + 1):
            conjunction = Conjunction(
                (Literal(position_i, 1), Literal(schema.bit(name, j), 1))
            )
            weight_j = float(1 << (spec.bits - j))
            terms.append(PlanTerm(conjunction, 2.0 * weight_i * weight_j))
    return LinearPlan(tuple(terms), description=f"second_moment({name})")
