"""Query compilers for every Section 4.1 family.

Each compiler turns a typed query into a :class:`LinearPlan` — a weighted
sum of conjunctive counts — executable against either the exact ground
truth (:func:`repro.queries.conjunctive.exact_count_fn`) or the
sketch-backed engine (:class:`repro.server.QueryEngine`).
"""

from .ast import Conjunction, Literal
from .boolean import DecisionNode, decision_tree_plan, exactly_l_fraction
from .categorical import (
    categorical_histogram,
    estimate_mode,
    simplex_project,
    top_k_categories,
)
from .combined import (
    equal_and_less_plan,
    sum_where_less_equal_plan,
    sum_where_less_plan,
)
from .conjunctive import (
    LinearPlan,
    PlanTerm,
    evaluate_plan,
    exact_count_fn,
    group_terms_by_subset,
)
from .disjunction import (
    disjunction_by_inclusion_exclusion,
    disjunction_fraction,
    disjunction_fraction_from_bits,
)
from .interval import less_equal_plan, less_than_plan, range_plan
from .numeric import inner_product_plan, moment_plan, sum_plan
from .reduction import (
    merge_bit_sum_partials,
    merge_matrix_partials,
    merge_weight_count_partials,
)
from .virtual import (
    addition_event_literals,
    addition_interval_fraction,
    xor_bias,
    xor_virtual_bits,
)

__all__ = [
    "Conjunction",
    "DecisionNode",
    "LinearPlan",
    "Literal",
    "PlanTerm",
    "addition_event_literals",
    "addition_interval_fraction",
    "categorical_histogram",
    "decision_tree_plan",
    "disjunction_by_inclusion_exclusion",
    "disjunction_fraction",
    "disjunction_fraction_from_bits",
    "equal_and_less_plan",
    "evaluate_plan",
    "group_terms_by_subset",
    "exact_count_fn",
    "estimate_mode",
    "exactly_l_fraction",
    "inner_product_plan",
    "less_equal_plan",
    "less_than_plan",
    "merge_bit_sum_partials",
    "merge_matrix_partials",
    "merge_weight_count_partials",
    "moment_plan",
    "range_plan",
    "simplex_project",
    "sum_plan",
    "sum_where_less_equal_plan",
    "sum_where_less_plan",
    "top_k_categories",
    "xor_bias",
    "xor_virtual_bits",
]
