"""Query AST: literals and conjunctions over profile bits.

The paper's basic query is a *conjunctive query*: a set of bit positions
``B = {b_1, ..., b_k}`` with target values ``v = (v_1, ..., v_k)``, asking
what fraction of users satisfy ``d_B = v``.  Negated attributes are simply
literals with target value 0, so "HIV+ AND NOT AIDS" is
``Conjunction([Literal(hiv_pos, 1), Literal(aids_pos, 0)])``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..data.encoding import encode_value
from ..data.schema import Schema

__all__ = ["Literal", "Conjunction"]


@dataclass(frozen=True)
class Literal:
    """One literal: profile bit ``position`` must equal ``value``.

    ``value = 1`` is the unnegated attribute ``x_i``; ``value = 0`` is the
    negated ``not x_i``.
    """

    position: int
    value: int

    def __post_init__(self) -> None:
        if self.position < 0:
            raise ValueError(f"bit position must be >= 0, got {self.position}")
        if self.value not in (0, 1):
            raise ValueError(f"literal value must be 0 or 1, got {self.value}")

    @property
    def negated(self) -> "Literal":
        """The complementary literal on the same bit."""
        return Literal(self.position, 1 - self.value)

    def __str__(self) -> str:
        prefix = "" if self.value == 1 else "!"
        return f"{prefix}d[{self.position}]"


@dataclass(frozen=True)
class Conjunction:
    """A conjunction of literals over distinct bit positions.

    Literals are stored sorted by position; the induced ``(subset, value)``
    pair is exactly what Algorithm 2 and the exact ground-truth counters
    consume.
    """

    literals: Tuple[Literal, ...]

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.literals, key=lambda lit: lit.position))
        positions = [lit.position for lit in ordered]
        if len(set(positions)) != len(positions):
            duplicates = sorted({p for p in positions if positions.count(p) > 1})
            raise ValueError(
                f"conjunction repeats bit positions {duplicates}; a bit cannot "
                "be constrained twice (x AND NOT x is unsatisfiable, x AND x "
                "is redundant — both are almost certainly bugs)"
            )
        if not ordered:
            raise ValueError("a conjunction needs at least one literal")
        object.__setattr__(self, "literals", ordered)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, *pairs: Tuple[int, int]) -> "Conjunction":
        """Build from ``(position, value)`` pairs.

        >>> str(Conjunction.of((3, 1), (5, 0)))
        'd[3] & !d[5]'
        """
        return cls(tuple(Literal(pos, val) for pos, val in pairs))

    @classmethod
    def equals(cls, schema: Schema, name: str, value: int) -> "Conjunction":
        """Attribute equality ``a = value`` as a conjunction over its bits."""
        bits = encode_value(schema, name, value)
        positions = schema.bits(name)
        return cls(tuple(Literal(pos, bit) for pos, bit in zip(positions, bits)))

    def and_also(self, other: "Conjunction") -> "Conjunction":
        """Conjoin two conjunctions (positions must not overlap)."""
        return Conjunction(self.literals + other.literals)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def subset(self) -> Tuple[int, ...]:
        """The paper's ``B``: sorted bit positions."""
        return tuple(lit.position for lit in self.literals)

    @property
    def value(self) -> Tuple[int, ...]:
        """The paper's ``v``: target bits aligned with :attr:`subset`."""
        return tuple(lit.value for lit in self.literals)

    @property
    def width(self) -> int:
        """Number of literals ``k`` — the query width."""
        return len(self.literals)

    def matches(self, profile_bits: Sequence[int]) -> bool:
        """Whether a raw profile satisfies the conjunction (ground truth)."""
        return all(int(profile_bits[lit.position]) == lit.value for lit in self.literals)

    def __str__(self) -> str:
        return " & ".join(str(lit) for lit in self.literals)
