"""Command-line interface: ``python -m repro <command>``.

Six commands cover the things someone evaluating the library wants
without writing code:

* ``bounds``      — the closed-form privacy/utility/size numbers for a
  parameter choice (Lemmas 3.1, 3.3, 4.1, Corollary 3.4);
* ``demo``        — a self-contained publish-and-query run on synthetic
  data, printing estimate vs truth;
* ``serve``       — serve a published sketch store over the typed query
  protocol (asyncio TCP; bearer-token auth, per-analyst rate limiting
  and privacy budget at the perimeter; SIGHUP re-reads ``--token-file``
  for zero-downtime credential rotation);
* ``query``       — send one typed query to a running server and print
  the JSON result;
* ``rebalance``   — drive a live range split/merge on a running sharded
  server (or show rebalance status) over the same protocol;
* ``experiments`` — the DESIGN.md experiment index and how to regenerate
  each entry.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]

_EXPERIMENTS = [
    ("F1", "Figure 1 indicator vector vs sketch", "benchmarks/bench_figure1.py"),
    ("E1", "Lemma 3.1 sketch length", "benchmarks/bench_sketch_length.py"),
    ("E2", "Algorithm 1 running time (+ replacement ablation E2b)", "benchmarks/bench_sketch_length.py"),
    ("E3", "Lemma 3.2 two-sided bias", "benchmarks/bench_correctness.py"),
    ("E4", "Lemma 3.3 worst-case ratio (+ rejection ablation E4b)", "benchmarks/bench_privacy_ratio.py"),
    ("E5", "Corollary 3.4 composition", "benchmarks/bench_privacy_ratio.py"),
    ("E6", "Lemma 4.1 error decay (+ clamping ablation E6b)", "benchmarks/bench_utility_error.py"),
    ("E7", "headline: error vs query width, sketch vs RR", "benchmarks/bench_width_scaling.py"),
    ("E8", "published size vs baselines", "benchmarks/bench_size.py"),
    ("E9", "sums/means via eq. 4", "benchmarks/bench_numeric.py"),
    ("E10", "inner products", "benchmarks/bench_numeric.py"),
    ("E11", "interval queries", "benchmarks/bench_interval.py"),
    ("E12", "combined constraints", "benchmarks/bench_interval.py"),
    ("E13", "Appendix E a+b < 2^r", "benchmarks/bench_virtual.py"),
    ("E14", "Appendix F combination (+ cond(V) growth E14b)", "benchmarks/bench_combine.py"),
    ("E15", "Appendix A dual-mode server", "benchmarks/bench_sulq.py"),
    ("E16", "Appendix B bit-flip region", "benchmarks/bench_privacy_ratio.py"),
    ("E17", "partial-knowledge attack", "benchmarks/bench_attack.py"),
    ("E18", "dictionary attack", "benchmarks/bench_attack.py"),
    ("E19", "decision trees / exactly-l", "benchmarks/bench_boolean.py"),
    ("E20", "non-binary categorical histograms", "benchmarks/bench_categorical.py"),
    ("E21", "sharded collection speedup + identity", "benchmarks/bench_parallel_collect.py"),
    ("E22", "columnar store v2 + persistent cache", "benchmarks/bench_store_roundtrip.py"),
    ("E23", "object-free multi-subset queries (aligned columns)", "benchmarks/bench_aligned_columns.py"),
    ("E24", "counter-mode PRF backend + batched collection", "benchmarks/bench_prf_backends.py"),
    ("E25", "remote serving tier: protocol throughput + latency", "benchmarks/bench_serving.py"),
    ("E26", "sharded serving: scatter-gather throughput vs shard count", "benchmarks/bench_sharded.py"),
    ("E27", "compiled kernel tier: cold-path speedup + concurrent serving", "benchmarks/bench_kernel.py"),
    ("E28", "resilience: deadline/breaker overhead + watchdog recovery", "benchmarks/bench_resilience.py"),
    ("E29", "live rebalancing: split/merge under traffic, zero errors", "benchmarks/bench_rebalance.py"),
    ("X1", "§5 extension: function sketches", "benchmarks/bench_extensions.py"),
    ("X2", "§5 extension: relaxed (quadratic) budgets", "benchmarks/bench_extensions.py"),
    ("X3", "streaming estimation parity", "benchmarks/bench_extensions.py"),
    ("X4", "Dinur-Nissim reconstruction transition", "benchmarks/bench_reconstruction.py"),
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Privacy via Pseudorandom Sketches' (PODS 2006)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    bounds = subparsers.add_parser(
        "bounds", help="closed-form privacy/utility/size numbers for given parameters"
    )
    bounds.add_argument("--p", type=float, default=0.3, help="bias p in (0, 1/2)")
    bounds.add_argument("--users", type=float, default=1e6, help="user count M")
    bounds.add_argument("--sketches", type=int, default=1, help="sketches per user l")
    bounds.add_argument("--tau", type=float, default=1e-6, help="failure budget tau")
    bounds.add_argument("--delta", type=float, default=0.05, help="confidence delta")

    demo = subparsers.add_parser("demo", help="publish-and-query demo on synthetic data")
    demo.add_argument("--users", type=int, default=3000)
    demo.add_argument("--p", type=float, default=0.3)
    demo.add_argument("--width", type=int, default=3, help="query width k")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument(
        "--workers", type=int, default=None,
        help="shard collection across N processes (deterministic per-user "
        "coins; same store for every N)",
    )
    demo.add_argument(
        "--store-format", choices=["jsonl", "columnar"], default=None,
        help="round-trip the published store through the given on-disk "
        "format (v1 JSONL or v2 columnar) before querying, verifying the "
        "reload is lossless",
    )
    demo.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="persistent evaluation-cache directory: PRF evaluations spill "
        "to bit-packed columns keyed by the store's content hash, so "
        "re-running the demo against the same store skips the PRF entirely",
    )
    demo.add_argument(
        "--cache-budget", type=int, default=None, metavar="BYTES",
        help="size cap for the current store's cache subdirectory: "
        "exceeding it triggers an LRU sweep over the entry files "
        "(directories left behind by older store versions are not "
        "swept); 0 disables persistence entirely (only meaningful "
        "with --cache-dir)",
    )
    demo.add_argument(
        "--prf", choices=["blake2b", "counter"], default="blake2b",
        help="PRF backend: 'blake2b' is the reference keyed-hash "
        "construction (one hash per point); 'counter' derives one "
        "BLAKE2b subkey per (user, subset) and expands every point "
        "with counter-mode Philox — the vectorised cold path.  The two "
        "are distinct functions: sketches must be queried under the "
        "backend that collected them",
    )
    demo.add_argument(
        "--memory-budget", type=int, default=None, metavar="BYTES",
        help="byte cap for the engine's in-process evaluation cache "
        "(LRU eviction past the cap; default unlimited)",
    )
    demo.add_argument(
        "--cache-ttl", type=float, default=None, metavar="SECONDS",
        help="age out superseded cache generations: sibling store "
        "directories untouched for this many seconds are reclaimed at "
        "engine start (never the live generation; only meaningful with "
        "--cache-dir)",
    )
    demo.add_argument(
        "--kernel", choices=["auto", "c", "numpy"], default=None,
        help="kernel tier for the CounterPRF hot loop: 'c' demands the "
        "compiled GIL-releasing extension, 'numpy' forces the fallback, "
        "'auto' uses the extension iff built; both tiers are "
        "bit-identical (default: the REPRO_KERNEL environment variable, "
        "else auto)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve a published sketch store over the typed query protocol",
    )
    serve.add_argument(
        "--store", required=True, metavar="PATH",
        help="published sketch store to serve (JSONL v1 or columnar v2; "
        "auto-detected)",
    )
    serve.add_argument(
        "--p", type=float, default=None,
        help="bias p; defaults to the value recorded in the store header",
    )
    key = serve.add_mutually_exclusive_group(required=True)
    key.add_argument(
        "--key-hex", default=None, metavar="HEX",
        help="the public global PRF key, hex-encoded (distributed out of "
        "band, like the paper's public function)",
    )
    key.add_argument(
        "--key-seed", default=None, metavar="TEXT",
        help="derive the 32-byte global key from TEXT with BLAKE2b (matches "
        "'repro demo --seed N' via 'repro-demo-key-N')",
    )
    serve.add_argument(
        "--prf", choices=["blake2b", "counter"], default=None,
        help="PRF backend; defaults to the construction recorded in the "
        "store header (else blake2b).  Must match the collecting backend",
    )
    serve.add_argument(
        "--token", action="append", default=[], metavar="ANALYST=SECRET",
        help="issue a bearer token (repeatable; one per analyst; required "
        "unless --token-file is given)",
    )
    serve.add_argument(
        "--token-file", default=None, metavar="PATH",
        help="read bearer tokens from PATH (one ANALYST=SECRET per line; "
        "'#' comments and blank lines ignored).  SIGHUP re-reads the file "
        "live: new analysts are added, changed tokens rotated, absent "
        "analysts revoked — open connections survive",
    )
    serve.add_argument(
        "--rotation-grace", type=float, default=0.0, metavar="SECONDS",
        help="how long a rotated-out token keeps authenticating new "
        "connections after a SIGHUP reload (default: 0 = immediately "
        "invalid)",
    )
    serve.add_argument(
        "--epsilon", type=float, default=None,
        help="per-analyst privacy budget enforced at the perimeter "
        "(Corollary 3.4 ledger over the subsets released to each analyst); "
        "omit for no perimeter accounting",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=None, metavar="PER_SECOND",
        help="per-analyst request rate limit (token bucket); omit for none",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7206)
    serve.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write 'host port' to PATH once the socket is bound (lets "
        "scripts use --port 0 and discover the real port)",
    )
    serve.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="serve the store horizontally sharded: split it into N "
        "contiguous user ranges, run one worker process per shard, and "
        "answer queries by exact scatter-gather (bit-identical to "
        "single-store serving)",
    )
    serve.add_argument(
        "--shard-dir", default=None, metavar="PATH",
        help="directory for the per-shard stores, caches and the "
        "shard-map checkpoint (default: a temporary directory; only "
        "meaningful with --shards)",
    )
    serve.add_argument(
        "--kernel", choices=["auto", "c", "numpy"], default=None,
        help="kernel tier for the CounterPRF hot loop (bit-identical "
        "either way; 'c' refuses to start without the compiled "
        "extension; default: REPRO_KERNEL, else auto)",
    )
    serve.add_argument(
        "--exec-threads", type=int, default=None, metavar="N",
        help="dispatch pool size for query execution: engine.execute "
        "runs on N threads off the event loop (0 = inline dispatch on "
        "the loop; default: CPU count capped at 8)",
    )
    serve.add_argument(
        "--scatter-threads", type=int, default=None, metavar="N",
        help="shared scatter-gather pool size for sharded serving "
        "(default: twice the shard count, capped at 32; only meaningful "
        "with --shards)",
    )
    serve.add_argument(
        "--watchdog", type=float, default=5.0, metavar="SECONDS",
        help="watchdog probe interval for sharded serving: ping every "
        "worker this often and auto-restart dead or hung ones with a "
        "warm cache rejoin (0 disables; only meaningful with --shards; "
        "default: 5)",
    )

    query = subparsers.add_parser(
        "query", help="send one typed query to a running repro server"
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=7206)
    query.add_argument("--token", required=True, help="bearer token")
    query.add_argument(
        "--kind", required=True,
        choices=[
            "counts_block", "estimate_many", "marginal", "fraction",
            "any_of", "exactly_l", "bit_matrix", "ping", "status",
        ],
    )
    query.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry transport failures up to N times with seeded "
        "exponential backoff (default: fail fast; safe because queries "
        "are read-only and re-charging a paid subset is free)",
    )
    query.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="end-to-end deadline: sent on the wire so the server stops "
        "working once the client has given up (default: none)",
    )
    query.add_argument(
        "--subset", default=None, metavar="I,J,...",
        help="profile-bit positions (counts_block / estimate_many / "
        "marginal / fraction)",
    )
    query.add_argument(
        "--values", default=None, metavar="B,B;B,B;...",
        help="candidate values, semicolon-separated bit tuples "
        "(counts_block / estimate_many)",
    )
    query.add_argument(
        "--value", default=None, metavar="B,B,...",
        help="one bit tuple (fraction)",
    )
    query.add_argument(
        "--queries", default=None, metavar="SUBSET:VALUE;...",
        help="any_of components, e.g. '0,1:1,1;2:1'",
    )
    query.add_argument(
        "--positions", default=None, metavar="I,J,...",
        help="per-bit positions (exactly_l / bit_matrix)",
    )
    query.add_argument("--l", type=int, default=None, help="exactly_l count")
    query.add_argument(
        "--target", type=int, default=1, help="bit_matrix target bit"
    )

    rebalance = subparsers.add_parser(
        "rebalance",
        help="drive a live shard split/merge on a running sharded server",
    )
    rebalance.add_argument("--host", default="127.0.0.1")
    rebalance.add_argument("--port", type=int, default=7206)
    rebalance.add_argument("--token", required=True, help="bearer token")
    rebalance.add_argument(
        "--action", required=True, choices=["split", "merge", "status"],
        help="split one shard's user range in two, merge two adjacent "
        "shards, or report current ranges and handoff state",
    )
    rebalance.add_argument(
        "--shard", default=None, metavar="SHARD_ID",
        help="the shard to split (split only)",
    )
    rebalance.add_argument(
        "--boundary", default=None, metavar="USER_ID",
        help="first user id of the new right-hand shard (split only; "
        "default: the donor's median user)",
    )
    rebalance.add_argument(
        "--left", default=None, metavar="SHARD_ID",
        help="surviving shard of a merge (absorbs its right neighbour)",
    )
    rebalance.add_argument(
        "--right", default=None, metavar="SHARD_ID",
        help="shard merged away into --left (must be its right neighbour)",
    )
    rebalance.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="end-to-end deadline for the rebalance request",
    )

    subparsers.add_parser("experiments", help="list the experiment index")
    return parser


def _cmd_bounds(args: argparse.Namespace) -> int:
    from .core import PrivacyParams

    try:
        params = PrivacyParams(p=args.p)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    users = int(args.users)
    print(f"parameters: p = {params.p}, M = {users}, l = {args.sketches} sketches/user")
    print(f"  per-sketch privacy ratio (Lemma 3.3):  {params.privacy_ratio_bound():.3f}")
    print(
        f"  {args.sketches}-sketch ratio (Corollary 3.4):      "
        f"{params.privacy_ratio_bound(args.sketches):.3f}"
    )
    print(
        f"  sketch length (Lemma 3.1, tau={args.tau:g}):  "
        f"{params.sketch_length(users, args.tau)} bits"
    )
    print(
        f"  query error at 1-delta={1 - args.delta:g} (Lemma 4.1): "
        f"+/- {params.utility_error(users, args.delta):.4f}"
    )
    print(f"  expected Algorithm 1 iterations:       {params.expected_iterations:.2f}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .core import BiasedPRF, CounterPRF, PrivacyParams, SketchEstimator, Sketcher
    from .data import bernoulli_panel
    from .server import QueryEngine, publish_database

    if not 0.0 < args.p < 0.5:
        print(f"error: p must be in (0, 1/2), got {args.p}", file=sys.stderr)
        return 2
    if args.width < 1 or args.users < 10:
        print("error: need width >= 1 and users >= 10", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print(f"error: workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.cache_budget is not None and args.cache_budget < 0:
        print(
            f"error: cache budget must be >= 0, got {args.cache_budget}",
            file=sys.stderr,
        )
        return 2
    if args.memory_budget is not None and args.memory_budget < 0:
        print(
            f"error: memory budget must be >= 0, got {args.memory_budget}",
            file=sys.stderr,
        )
        return 2
    if args.cache_ttl is not None and args.cache_ttl < 0:
        print(f"error: cache TTL must be >= 0, got {args.cache_ttl}", file=sys.stderr)
        return 2
    if args.kernel is not None:
        from .core import kernels

        try:
            kernels.select(args.kernel)
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    rng = np.random.default_rng(args.seed)
    params = PrivacyParams(p=args.p)
    # The public key derives from the seed so a re-run reproduces the same
    # function H — which is also what lets --cache-dir stay warm across
    # demo invocations (the store content hash covers the key AND the
    # construction, so the two backends never share cache directories).
    import hashlib

    backend = BiasedPRF if args.prf == "blake2b" else CounterPRF
    prf = backend(
        p=args.p,
        global_key=hashlib.blake2b(
            f"repro-demo-key-{args.seed}".encode("ascii"), digest_size=32
        ).digest(),
    )
    database = bernoulli_panel(args.users, args.width, density=0.5, rng=rng)
    subset = tuple(range(args.width))
    sketcher = Sketcher(params, prf, sketch_bits=10, rng=rng)
    store = publish_database(
        database, sketcher, [subset], workers=args.workers, seed=args.seed
    )
    if args.store_format is not None:
        # Exercise the persistence layer end-to-end: write the published
        # store in the requested format, reload it (auto-detected), and
        # verify the round trip is lossless before querying the reload.
        import tempfile

        from .server import load_store, save_store
        from .server.serialization import dumps_store

        suffix = ".jsonl" if args.store_format == "jsonl" else ".npz"
        with tempfile.NamedTemporaryFile(suffix=suffix, delete=False) as handle:
            store_path = handle.name
        try:
            size = save_store(
                store, store_path, params,
                include_iterations=True, format=args.store_format, prf=prf,
            )
            reloaded, _ = load_store(store_path, expected_prf=prf)
            if dumps_store(reloaded, include_iterations=True) != dumps_store(
                store, include_iterations=True
            ):
                print("error: store round-trip was not lossless", file=sys.stderr)
                return 1
            print(
                f"store round-tripped through {args.store_format} "
                f"({size} sketches, {os.path.getsize(store_path)} bytes on disk)"
            )
            store = reloaded
        finally:
            os.unlink(store_path)
    engine = QueryEngine(
        database.schema, store, SketchEstimator(params, prf),
        cache_dir=args.cache_dir, cache_budget_bytes=args.cache_budget,
        memory_budget_bytes=args.memory_budget,
        generation_ttl_seconds=args.cache_ttl,
    )
    value = tuple([1] * args.width)
    estimate = engine.estimate(subset, value)
    truth = database.exact_conjunction(subset, value)
    sharding = f" across {args.workers} workers" if args.workers else ""
    print(
        f"{args.users} users published one {sketcher.sketch_bits}-bit sketch "
        f"each{sharding} (PRF backend: {prf.algorithm})"
    )
    print(f"query: all {args.width} bits = 1")
    print(f"  estimate = {estimate.fraction:.4f}  (95% CI +/- {estimate.half_width:.4f})")
    print(f"  truth    = {truth:.4f}")
    print(f"  |error|  = {abs(estimate.fraction - truth):.4f}")
    stats = engine.cache.stats
    if args.cache_dir is not None:
        entries, evaluations = engine.cache.info()
        persisted = (
            f"persisted under {args.cache_dir}"
            if args.cache_budget != 0
            else "persistence disabled (budget 0)"
        )
        print(
            f"  cache    = {entries} column(s), {evaluations} evaluations "
            f"{persisted}; {stats['hits']} hit(s), {stats['misses']} miss(es), "
            f"{stats['sweeps']} sweep(s) evicting {stats['swept_entries']} "
            f"entry(ies) / {stats['swept_bytes']} byte(s)"
        )
    if args.memory_budget is not None:
        # The in-process budget is active with or without --cache-dir.
        print(
            f"  memory   = budget {args.memory_budget} byte(s); "
            f"{stats['memory_evictions']} eviction(s) / "
            f"{stats['memory_evicted_bytes']} byte(s)"
        )
    if args.cache_ttl is not None:
        print(
            f"  gen GC   = TTL {args.cache_ttl:g}s; reclaimed "
            f"{stats['gc_directories']} superseded generation(s) / "
            f"{stats['gc_bytes']} byte(s)"
        )
    return 0 if estimate.covers(truth) else 1


def _parse_ints(text: str) -> tuple:
    """``'0, 1,2'`` -> ``(0, 1, 2)``."""
    return tuple(int(x) for x in text.replace(" ", "").split(",") if x != "")


def _parse_values(text: str) -> list:
    """``'0,0;1,1'`` -> ``[(0, 0), (1, 1)]``."""
    return [_parse_ints(chunk) for chunk in text.split(";") if chunk.strip()]


def _parse_token_items(items, source: str) -> dict:
    """``['a=s1', 'b=s2']`` -> ``{'a': 's1', 'b': 's2'}`` or ValueError."""
    tokens = {}
    for item in items:
        analyst, sep, secret = item.partition("=")
        if not sep or not analyst or not secret:
            raise ValueError(f"{source} expects ANALYST=SECRET, got {item!r}")
        tokens[analyst] = secret
    return tokens


def _read_token_file(path: str) -> dict:
    """Token file: one ``ANALYST=SECRET`` per line, ``#`` comments allowed."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [
            line.strip()
            for line in handle
            if line.strip() and not line.strip().startswith("#")
        ]
    tokens = _parse_token_items(lines, os.path.basename(path))
    if not tokens:
        raise ValueError(f"token file {path!r} defines no analysts")
    return tokens


def _cmd_serve(args: argparse.Namespace) -> int:
    import hashlib

    from .core import BiasedPRF, CounterPRF, PrivacyParams, SketchEstimator
    from .server import QueryEngine, RemoteServer, load_store

    if not args.token and not args.token_file:
        print("error: pass --token and/or --token-file", file=sys.stderr)
        return 2
    if args.rotation_grace < 0:
        print(
            f"error: --rotation-grace must be >= 0, got {args.rotation_grace}",
            file=sys.stderr,
        )
        return 2
    try:
        tokens = _parse_token_items(args.token, "--token")
        if args.token_file:
            for analyst, secret in _read_token_file(args.token_file).items():
                tokens.setdefault(analyst, secret)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.key_hex is not None:
        try:
            global_key = bytes.fromhex(args.key_hex)
        except ValueError as exc:
            print(f"error: bad --key-hex: {exc}", file=sys.stderr)
            return 2
    else:
        global_key = hashlib.blake2b(
            args.key_seed.encode("utf-8"), digest_size=32
        ).digest()
    try:
        store, header = load_store(args.store)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    recorded = header.get("prf") or {}
    # The bias lives either at the top level (save_store(params=...)) or
    # inside the recorded PRF identity (save_store(prf=...)).
    p = args.p if args.p is not None else header.get("p", recorded.get("p"))
    if p is None:
        print("error: store header records no bias p; pass --p", file=sys.stderr)
        return 2
    by_flag = {"blake2b": BiasedPRF, "counter": CounterPRF}
    by_algorithm = {BiasedPRF.algorithm: BiasedPRF, CounterPRF.algorithm: CounterPRF}
    if args.prf is not None:
        backend = by_flag[args.prf]
    else:
        backend = by_algorithm.get(recorded.get("algorithm"), BiasedPRF)
    if recorded.get("algorithm") not in (None, backend.algorithm):
        print(
            f"error: store was collected under PRF {recorded.get('algorithm')!r} "
            f"but --prf selects {backend.algorithm!r}; estimates would "
            "silently mis-de-bias",
            file=sys.stderr,
        )
        return 2
    if args.shards is not None and args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.exec_threads is not None and args.exec_threads < 0:
        print(
            f"error: --exec-threads must be >= 0, got {args.exec_threads}",
            file=sys.stderr,
        )
        return 2
    if args.scatter_threads is not None and args.scatter_threads < 1:
        print(
            f"error: --scatter-threads must be >= 1, got {args.scatter_threads}",
            file=sys.stderr,
        )
        return 2
    if args.watchdog < 0:
        print(f"error: --watchdog must be >= 0, got {args.watchdog}", file=sys.stderr)
        return 2
    if args.kernel is not None:
        from .core import kernels

        try:
            kernels.select(args.kernel)
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    service = None
    try:
        params = PrivacyParams(p=float(p))
        prf = backend(p=float(p), global_key=global_key)
        if args.shards is not None:
            import tempfile

            from .server import ShardedService

            shard_dir = args.shard_dir or tempfile.mkdtemp(prefix="repro-shards-")
            service = ShardedService.from_store(
                store, prf, args.shards, shard_dir,
                pool_size=args.scatter_threads,
                watchdog_interval=args.watchdog or None,
            )
            service.start()
            front = service.coordinator
        else:
            front = QueryEngine(None, store, SketchEstimator(params, prf))
        server = RemoteServer(
            front, tokens, epsilon=args.epsilon, rate_limit=args.rate_limit,
            pool_size=args.exec_threads,
        )
    except ValueError as exc:
        if service is not None:
            service.close()
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def _ready(address) -> None:
        from .core import kernels

        host, port = address
        budget = "unlimited" if args.epsilon is None else f"epsilon={args.epsilon:g}"
        sharding = "" if service is None else f", {args.shards} shard worker(s)"
        dispatch = (
            "inline" if server._pool_size == 0 else f"{server._pool_size} thread(s)"
        )
        print(
            f"serving {args.store} on {host}:{port} "
            f"({len(tokens)} analyst token(s), budget {budget}{sharding}, "
            f"kernel {kernels.active()}, dispatch {dispatch})",
            flush=True,
        )
        if args.ready_file:
            with open(args.ready_file, "w", encoding="utf-8") as handle:
                handle.write(f"{host} {port}\n")

    reload_callback = None
    if args.token_file:

        def reload_callback() -> None:
            try:
                summary = server.reload_tokens(
                    _read_token_file(args.token_file),
                    grace_seconds=args.rotation_grace,
                )
            except (OSError, ValueError) as exc:
                print(f"token reload failed: {exc}", file=sys.stderr, flush=True)
                return
            print(
                "tokens reloaded: "
                + ", ".join(f"{k}={len(v)}" for k, v in summary.items()),
                flush=True,
            )

    try:
        server.run(args.host, args.port, ready_callback=_ready, reload_callback=reload_callback)
    finally:
        if service is not None:
            service.close()
        if args.ready_file:
            # The ready-file doubles as a liveness marker for scripts;
            # a clean (SIGTERM-drained) exit must not leave it behind.
            import contextlib

            with contextlib.suppress(OSError):
                os.remove(args.ready_file)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from .protocol.messages import (
        AnyOfRequest,
        BitMatrixRequest,
        CountsBlockRequest,
        EstimateManyRequest,
        ExactlyLRequest,
        FractionRequest,
        MarginalRequest,
        PingRequest,
        StatusRequest,
    )
    from .server import DeadlineExceeded, RemoteQueryEngine

    def need(flag: str, value):
        if value is None:
            raise ValueError(f"--kind {args.kind} requires {flag}")
        return value

    try:
        if args.kind in ("counts_block", "estimate_many"):
            cls = (
                CountsBlockRequest
                if args.kind == "counts_block"
                else EstimateManyRequest
            )
            request = cls.build(
                _parse_ints(need("--subset", args.subset)),
                _parse_values(need("--values", args.values)),
            )
        elif args.kind == "marginal":
            request = MarginalRequest.build(_parse_ints(need("--subset", args.subset)))
        elif args.kind == "fraction":
            request = FractionRequest.build(
                _parse_ints(need("--subset", args.subset)),
                _parse_ints(need("--value", args.value)),
            )
        elif args.kind == "any_of":
            components = []
            for chunk in need("--queries", args.queries).split(";"):
                subset_text, sep, value_text = chunk.partition(":")
                if not sep:
                    raise ValueError(
                        f"malformed any_of component {chunk!r}; expected SUBSET:VALUE"
                    )
                components.append((_parse_ints(subset_text), _parse_ints(value_text)))
            request = AnyOfRequest.build(components)
        elif args.kind == "exactly_l":
            request = ExactlyLRequest.build(
                _parse_ints(need("--positions", args.positions)),
                need("--l", args.l),
            )
        elif args.kind == "ping":
            request = PingRequest.build()
        elif args.kind == "status":
            request = StatusRequest.build()
        else:  # bit_matrix
            request = BitMatrixRequest.build(
                _parse_ints(need("--positions", args.positions)), args.target
            )
        if args.retries is not None and args.retries < 0:
            raise ValueError(f"--retries must be >= 0, got {args.retries}")
        if args.deadline is not None and args.deadline <= 0:
            raise ValueError(f"--deadline must be > 0, got {args.deadline}")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with RemoteQueryEngine(
            args.host, args.port, args.token,
            retry=args.retries, deadline=args.deadline,
        ) as remote:
            response = remote.execute(request)
    except DeadlineExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # mapped server errors: budget, auth, rate, query
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(response.result))
    return 0


def _cmd_rebalance(args: argparse.Namespace) -> int:
    import json

    from .protocol.messages import (
        RebalanceMergeRequest,
        RebalanceSplitRequest,
        RebalanceStatusRequest,
    )
    from .server import DeadlineExceeded, RemoteQueryEngine

    try:
        if args.action == "split":
            if not args.shard:
                raise ValueError("--action split requires --shard")
            request = RebalanceSplitRequest.build(args.shard, boundary=args.boundary)
        elif args.action == "merge":
            if not args.left or not args.right:
                raise ValueError("--action merge requires --left and --right")
            request = RebalanceMergeRequest.build(args.left, args.right)
        else:
            request = RebalanceStatusRequest.build()
        if args.deadline is not None and args.deadline <= 0:
            raise ValueError(f"--deadline must be > 0, got {args.deadline}")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        with RemoteQueryEngine(
            args.host, args.port, args.token, deadline=args.deadline
        ) as remote:
            response = remote.execute(request)
    except DeadlineExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # mapped server errors: not sharded, bad shard id
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(response.result, indent=2))
    return 0


def _cmd_experiments(_: argparse.Namespace) -> int:
    width = max(len(name) for name, _, _ in _EXPERIMENTS)
    for name, description, target in _EXPERIMENTS:
        print(f"{name:<{width}}  {description:<55} pytest {target} --benchmark-only")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "bounds": _cmd_bounds,
        "demo": _cmd_demo,
        "serve": _cmd_serve,
        "query": _cmd_query,
        "rebalance": _cmd_rebalance,
        "experiments": _cmd_experiments,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
