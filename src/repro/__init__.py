"""repro — reproduction of "Privacy via Pseudorandom Sketches" (PODS 2006).

Top-level convenience re-exports cover the 90% use case:

>>> from repro import PrivacyParams, BiasedPRF, Sketcher, SketchEstimator

See :mod:`repro.core` for the paper's algorithms, :mod:`repro.queries` for
the Section 4.1 query compilers, :mod:`repro.data` for schemas and synthetic
workloads, :mod:`repro.baselines` for the comparators, :mod:`repro.attacks`
for adversaries and :mod:`repro.server` for the collection/query substrate.
"""

from .core import (
    BiasedPRF,
    PrivacyAccountant,
    PrivacyParams,
    QueryEstimate,
    Sketch,
    SketchEstimator,
    SketchFailure,
    Sketcher,
    TrueRandomOracle,
)
from .data import Profile, ProfileDatabase, Schema

__version__ = "1.0.0"

__all__ = [
    "BiasedPRF",
    "PrivacyAccountant",
    "PrivacyParams",
    "Profile",
    "ProfileDatabase",
    "QueryEstimate",
    "Schema",
    "Sketch",
    "SketchEstimator",
    "SketchFailure",
    "Sketcher",
    "TrueRandomOracle",
    "__version__",
]
