"""Persistence for ground-truth profile databases.

Experiment fixtures need to be shareable: a generator run saved once and
reloaded bit-exactly beats regenerating with a hopefully-identical seed.
The format is JSON Lines mirroring the sketch-store format:

* line 1 — header: format tag, version, and the schema (attribute specs in
  order);
* each further line — one profile: ``{"id", "values"}`` with decoded
  attribute values (human-readable and diff-friendly; the bit layout is
  reconstructed from the schema on load).
"""

from __future__ import annotations

import json
import os
from typing import IO

from .profiles import ProfileDatabase
from .schema import AttributeSpec, Schema

__all__ = ["save_database", "load_database", "dumps_database", "loads_database"]

_FORMAT_VERSION = 1


def _schema_to_json(schema: Schema) -> list:
    return [
        {
            "name": spec.name,
            "kind": spec.kind,
            "bits": spec.bits,
            "cardinality": spec.cardinality,
        }
        for spec in schema.attributes
    ]


def _schema_from_json(payload: list) -> Schema:
    specs = []
    for item in payload:
        specs.append(
            AttributeSpec(
                name=str(item["name"]),
                kind=str(item["kind"]),
                bits=int(item["bits"]),
                cardinality=int(item.get("cardinality", 0)),
            )
        )
    return Schema(specs)


def _write(database: ProfileDatabase, handle: IO[str]) -> int:
    header = {
        "format": "repro-profile-db",
        "version": _FORMAT_VERSION,
        "schema": _schema_to_json(database.schema),
    }
    handle.write(json.dumps(header) + "\n")
    from .encoding import decode_profile

    count = 0
    for profile in database:
        record = {
            "id": profile.user_id,
            "values": decode_profile(database.schema, profile.bits),
        }
        handle.write(json.dumps(record) + "\n")
        count += 1
    return count


def _read(handle: IO[str]) -> ProfileDatabase:
    first = handle.readline()
    if not first:
        raise ValueError("empty profile-database file")
    header = json.loads(first)
    if header.get("format") != "repro-profile-db":
        raise ValueError(f"not a profile-db file (format={header.get('format')!r})")
    if header.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported profile-db version {header.get('version')!r}; "
            f"this library reads version {_FORMAT_VERSION}"
        )
    schema = _schema_from_json(header["schema"])
    database = ProfileDatabase(schema)
    for line_number, line in enumerate(handle, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            database.add_values(str(record["id"]), dict(record["values"]))
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise ValueError(
                f"malformed profile record on line {line_number}: {exc}"
            ) from exc
    return database


def save_database(database: ProfileDatabase, path: str | os.PathLike) -> int:
    """Write a database to JSONL; returns the number of profiles written."""
    with open(path, "w", encoding="utf-8") as handle:
        return _write(database, handle)


def load_database(path: str | os.PathLike) -> ProfileDatabase:
    """Read a database from JSONL."""
    with open(path, "r", encoding="utf-8") as handle:
        return _read(handle)


def dumps_database(database: ProfileDatabase) -> str:
    """In-memory variant of :func:`save_database`."""
    import io

    buffer = io.StringIO()
    _write(database, buffer)
    return buffer.getvalue()


def loads_database(payload: str) -> ProfileDatabase:
    """In-memory variant of :func:`load_database`."""
    import io

    return _read(io.StringIO(payload))
