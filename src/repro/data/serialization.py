"""Persistence for ground-truth profile databases.

Experiment fixtures need to be shareable: a generator run saved once and
reloaded bit-exactly beats regenerating with a hopefully-identical seed.
Two formats are supported, selected with ``format=`` on save and
auto-detected on load:

**v1 — JSON Lines** (``format="jsonl"``, the default) mirroring the
sketch-store format:

* line 1 — header: format tag, version, and the schema (attribute specs in
  order);
* each further line — one profile: ``{"id", "values"}`` with decoded
  attribute values (human-readable and diff-friendly; the bit layout is
  reconstructed from the schema on load).

**v2 — columnar** (``format="columnar"``): a NumPy ``.npz`` archive with a
``meta`` JSON member (format tag, version 2, the schema, the bit width),
a ``user_ids`` unicode array, and the profile bit matrix bit-packed along
the attribute axis (``np.packbits``) — 8x smaller than int8 on the wire
and parsed without any per-record JSON work.  This is what the sharded
collector ships to pool workers, removing the parent-side JSON ceiling.
"""

from __future__ import annotations

import io
import json
import os
from typing import IO

import numpy as np

from .._npz import (
    decode_strings,
    encode_strings,
    is_zip_payload,
    meta_array,
    open_npz,
    read_meta,
    truncation_guard,
)
from ..core.prf import public_prf_meta
from .profiles import Profile, ProfileDatabase
from .schema import AttributeSpec, Schema

__all__ = ["save_database", "load_database", "dumps_database", "loads_database"]

_FORMAT_VERSION = 1
_COLUMNAR_VERSION = 2
_FORMAT_TAG = "repro-profile-db"
_DESCRIBE = "profile-db"


def _schema_to_json(schema: Schema) -> list:
    return [
        {
            "name": spec.name,
            "kind": spec.kind,
            "bits": spec.bits,
            "cardinality": spec.cardinality,
        }
        for spec in schema.attributes
    ]


def _schema_from_json(payload: list) -> Schema:
    specs = []
    for item in payload:
        specs.append(
            AttributeSpec(
                name=str(item["name"]),
                kind=str(item["kind"]),
                bits=int(item["bits"]),
                cardinality=int(item.get("cardinality", 0)),
            )
        )
    return Schema(specs)


def _write(database: ProfileDatabase, handle: IO[str], prf=None) -> int:
    header = {
        "format": _FORMAT_TAG,
        "version": _FORMAT_VERSION,
        "schema": _schema_to_json(database.schema),
    }
    if prf is not None:
        header["prf"] = public_prf_meta(prf)
    handle.write(json.dumps(header) + "\n")
    from .encoding import decode_profile

    count = 0
    for profile in database:
        record = {
            "id": profile.user_id,
            "values": decode_profile(database.schema, profile.bits),
        }
        handle.write(json.dumps(record) + "\n")
        count += 1
    return count


def _read(handle: IO[str]) -> ProfileDatabase:
    first = handle.readline()
    if not first:
        raise ValueError("empty profile-database file")
    header = json.loads(first)
    if header.get("format") != _FORMAT_TAG:
        raise ValueError(f"not a profile-db file (format={header.get('format')!r})")
    if header.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported profile-db version {header.get('version')!r}; "
            f"this library reads version {_FORMAT_VERSION} (JSONL) and "
            f"{_COLUMNAR_VERSION} (columnar)"
        )
    schema = _schema_from_json(header["schema"])
    database = ProfileDatabase(schema)
    for line_number, line in enumerate(handle, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            database.add_values(str(record["id"]), dict(record["values"]))
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise ValueError(
                f"malformed profile record on line {line_number}: {exc}"
            ) from exc
    return database


# ----------------------------------------------------------------------
# Columnar format (v2)
# ----------------------------------------------------------------------
def _write_columnar(database: ProfileDatabase, handle: IO[bytes], prf=None) -> int:
    matrix = database.matrix()
    meta = {
        "format": _FORMAT_TAG,
        "version": _COLUMNAR_VERSION,
        "schema": _schema_to_json(database.schema),
        "num_profiles": int(matrix.shape[0]),
        "num_bits": int(database.schema.total_bits),
    }
    if prf is not None:
        meta["prf"] = public_prf_meta(prf)
    # Ids travel as a utf-8 blob + char lengths (NUL-safe; fixed-width
    # unicode arrays would strip trailing NULs).
    id_blob, id_lengths = encode_strings(database.user_ids)
    np.savez(
        handle,
        meta=meta_array(meta),
        user_ids=id_blob,
        user_id_lengths=id_lengths,
        # packbits handles the degenerate shapes too: (0, W) packs to
        # (0, ceil(W/8)) and (M, 0) to (M, 0), which is exactly what the
        # reader's shape checks expect.
        bits=np.packbits(matrix.astype(np.uint8), axis=1),
    )
    return int(matrix.shape[0])


def _read_columnar(handle: IO[bytes]) -> ProfileDatabase:
    archive = open_npz(handle, _DESCRIBE)
    with archive, truncation_guard(_DESCRIBE):
        meta = read_meta(archive, _FORMAT_TAG, _COLUMNAR_VERSION, _DESCRIBE)
        try:
            schema = _schema_from_json(meta["schema"])
            num_profiles = int(meta["num_profiles"])
            num_bits = int(meta["num_bits"])
            user_ids = decode_strings(
                archive["user_ids"], archive["user_id_lengths"]
            )
            packed = archive["bits"]
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed columnar profile-db file: {exc}") from exc
        if num_bits != schema.total_bits:
            raise ValueError(
                f"columnar profile-db claims {num_bits} bits per profile but "
                f"its schema implies {schema.total_bits}"
            )
        if len(user_ids) != num_profiles:
            raise ValueError(
                f"columnar profile-db has {len(user_ids)} user ids for "
                f"{num_profiles} profiles"
            )
        if packed.ndim != 2 or packed.shape[0] != num_profiles:
            raise ValueError(
                f"columnar profile-db bit matrix shape {packed.shape} does not "
                f"match {num_profiles} profiles"
            )
        if packed.dtype != np.uint8:
            raise ValueError(
                f"columnar profile-db bit matrix must be uint8-packed, got "
                f"dtype {packed.dtype}"
            )
        if num_bits and packed.shape[1] != (num_bits + 7) // 8:
            raise ValueError(
                f"columnar profile-db bit matrix packs {packed.shape[1] * 8} "
                f"bits per profile; schema expects {num_bits}"
            )
        if num_bits:
            matrix = np.unpackbits(packed, axis=1)[:, :num_bits].astype(np.int8)
        else:
            matrix = np.zeros((num_profiles, 0), dtype=np.int8)
    return ProfileDatabase(
        schema, (Profile(uid, row) for uid, row in zip(user_ids, matrix))
    )


def save_database(
    database: ProfileDatabase,
    path: str | os.PathLike,
    format: str = "jsonl",
    prf=None,
) -> int:
    """Write a database to disk; returns the number of profiles written.

    ``format="jsonl"`` (default) writes the human-readable v1 lines;
    ``format="columnar"`` the bit-packed v2 ``.npz``.  :func:`load_database`
    auto-detects either.  Passing ``prf`` records the deployment's public
    PRF spec (construction + bias) as provenance metadata.
    """
    if format == "jsonl":
        with open(path, "w", encoding="utf-8") as handle:
            return _write(database, handle, prf)
    if format == "columnar":
        with open(path, "wb") as handle:
            return _write_columnar(database, handle, prf)
    raise ValueError(f"unknown database format {format!r}; expected 'jsonl' or 'columnar'")


def load_database(path: str | os.PathLike) -> ProfileDatabase:
    """Read a database from disk (format auto-detected)."""
    with open(path, "rb") as binary:
        if is_zip_payload(binary.read(2)):
            binary.seek(0)
            return _read_columnar(binary)
    with open(path, "r", encoding="utf-8") as handle:
        return _read(handle)


def dumps_database(
    database: ProfileDatabase, format: str = "jsonl", prf=None
) -> str | bytes:
    """In-memory variant of :func:`save_database`.

    Returns ``str`` for JSONL and ``bytes`` for columnar — both are
    spawn-safe pool payloads; the sharded collector ships the columnar
    form to its workers.
    """
    if format == "jsonl":
        buffer = io.StringIO()
        _write(database, buffer, prf)
        return buffer.getvalue()
    if format == "columnar":
        binary = io.BytesIO()
        _write_columnar(database, binary, prf)
        return binary.getvalue()
    raise ValueError(f"unknown database format {format!r}; expected 'jsonl' or 'columnar'")


def loads_database(payload: str | bytes) -> ProfileDatabase:
    """In-memory variant of :func:`load_database` (format auto-detected)."""
    if isinstance(payload, (bytes, bytearray, memoryview)):
        payload = bytes(payload)
        if is_zip_payload(payload):
            return _read_columnar(io.BytesIO(payload))
        payload = payload.decode("utf-8")
    return _read(io.StringIO(payload))
