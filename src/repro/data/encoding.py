"""Value <-> bit-vector codecs for typed attributes.

The query compilers in :mod:`repro.queries` all reason about attribute
*values* (integers, booleans, categories) while the sketching machinery
operates on flat bit vectors.  This module is the bridge: encode a typed
value into its MSB-first bit tuple, decode back, and build the per-prefix
query values the interval compiler needs.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from .schema import Schema

__all__ = [
    "int_to_bits",
    "bits_to_int",
    "encode_value",
    "decode_value",
    "encode_profile",
    "decode_profile",
]


def int_to_bits(value: int, width: int) -> Tuple[int, ...]:
    """Encode a non-negative integer as a MSB-first bit tuple of ``width`` bits.

    >>> int_to_bits(5, 4)
    (0, 1, 0, 1)
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if not 0 <= value < (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return tuple((value >> (width - 1 - i)) & 1 for i in range(width))


def bits_to_int(bits: Sequence[int]) -> int:
    """Decode a MSB-first bit sequence back to an integer.

    >>> bits_to_int((0, 1, 0, 1))
    5
    """
    result = 0
    for bit in bits:
        bit = int(bit)
        if bit not in (0, 1):
            raise ValueError(f"bit values must be 0/1, got {bit}")
        result = (result << 1) | bit
    return result


def encode_value(schema: Schema, name: str, value: int) -> Tuple[int, ...]:
    """Encode one attribute value as its bit tuple (MSB first).

    Booleans must be 0/1; categoricals must be below the declared
    cardinality; uints must fit the declared width.
    """
    spec = schema.spec(name)
    value = int(value)
    if value < 0 or value > spec.max_value:
        raise ValueError(
            f"value {value} out of range [0, {spec.max_value}] for attribute {name!r}"
        )
    return int_to_bits(value, spec.bits)


def decode_value(schema: Schema, name: str, bits: Sequence[int]) -> int:
    """Decode an attribute's bit tuple back into its integer value."""
    spec = schema.spec(name)
    if len(bits) != spec.bits:
        raise ValueError(
            f"attribute {name!r} occupies {spec.bits} bits, got {len(bits)}"
        )
    value = bits_to_int(bits)
    if value > spec.max_value:
        raise ValueError(
            f"decoded value {value} exceeds max {spec.max_value} for attribute {name!r}"
        )
    return value


def encode_profile(schema: Schema, values: Dict[str, int]) -> np.ndarray:
    """Encode a full attribute assignment into the flat profile bit vector.

    Every attribute of the schema must be assigned; extra keys are an error
    (catching typos early beats silently dropping data).
    """
    missing = set(schema.names) - set(values)
    if missing:
        raise ValueError(f"missing values for attributes: {sorted(missing)}")
    extra = set(values) - set(schema.names)
    if extra:
        raise ValueError(f"unknown attributes: {sorted(extra)}")
    profile = np.zeros(schema.total_bits, dtype=np.int8)
    for name in schema.names:
        bits = encode_value(schema, name, values[name])
        positions = schema.bits(name)
        for position, bit in zip(positions, bits):
            profile[position] = bit
    return profile


def decode_profile(schema: Schema, profile: Sequence[int]) -> Dict[str, int]:
    """Decode a flat bit vector back into an attribute assignment."""
    if len(profile) != schema.total_bits:
        raise ValueError(
            f"profile has {len(profile)} bits but schema expects {schema.total_bits}"
        )
    return {
        name: decode_value(schema, name, [profile[i] for i in schema.bits(name)])
        for name in schema.names
    }
