"""Schemas: how typed attributes map onto the paper's flat bit vectors.

The paper's user profile is a bit vector ``d in {0,1}^q``; Section 4.1 then
layers typed attributes on top — "each profile holds several k-bit integer
attributes a, b, c, ... stored in binary form".  :class:`Schema` is that
layer: it assigns each attribute a contiguous bit range inside the profile
and knows the subsets the paper's query compilers need:

* ``bits(name)`` — the full subset ``A`` storing attribute ``a``;
* ``prefix(name, i)`` — the paper's ``A_i``: the ``i`` **highest** bits;
* ``bit(name, i)`` — the paper's ``A_i`` (single index): the ``i``-th
  highest bit, used by the sum/mean decomposition of eq. (4).

Integers are stored most-significant-bit first so that "highest bits"
means a prefix of the stored range, exactly matching the paper's notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

__all__ = ["AttributeSpec", "Schema"]

_VALID_KINDS = ("bool", "uint", "categorical")


@dataclass(frozen=True)
class AttributeSpec:
    """One typed attribute of a user profile.

    Attributes
    ----------
    name:
        Unique attribute name.
    kind:
        ``"bool"`` (1 bit), ``"uint"`` (``bits``-bit unsigned integer,
        MSB-first) or ``"categorical"`` (``cardinality`` values encoded in
        ``ceil(log2(cardinality))`` bits).
    bits:
        Storage width in bits.  For booleans this is always 1; for
        categoricals it is derived from ``cardinality``.
    cardinality:
        Number of category values for ``"categorical"`` attributes; 0
        otherwise.
    """

    name: str
    kind: str
    bits: int
    cardinality: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"unknown attribute kind {self.kind!r}; expected one of {_VALID_KINDS}")
        if self.bits < 1:
            raise ValueError(f"attribute {self.name!r} must occupy >= 1 bit, got {self.bits}")
        if self.kind == "bool" and self.bits != 1:
            raise ValueError(f"bool attribute {self.name!r} must occupy exactly 1 bit")
        if self.kind == "categorical" and self.cardinality < 2:
            raise ValueError(
                f"categorical attribute {self.name!r} needs cardinality >= 2, got {self.cardinality}"
            )

    @property
    def max_value(self) -> int:
        """Largest representable value of the attribute."""
        if self.kind == "bool":
            return 1
        if self.kind == "categorical":
            return self.cardinality - 1
        return (1 << self.bits) - 1


class Schema:
    """An ordered collection of attributes laid out in one bit vector.

    Examples
    --------
    >>> schema = Schema.build(boolean=["smoker"], uint={"salary": 8})
    >>> schema.total_bits
    9
    >>> schema.bits("salary")
    (1, 2, 3, 4, 5, 6, 7, 8)
    >>> schema.prefix("salary", 2)   # two highest bits of salary
    (1, 2)
    """

    def __init__(self, attributes: Iterable[AttributeSpec]) -> None:
        self._specs: List[AttributeSpec] = list(attributes)
        if not self._specs:
            raise ValueError("a schema needs at least one attribute")
        names = [spec.name for spec in self._specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in schema: {names}")
        self._offsets: Dict[str, int] = {}
        offset = 0
        for spec in self._specs:
            self._offsets[spec.name] = offset
            offset += spec.bits
        self._total_bits = offset

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        boolean: Iterable[str] = (),
        uint: Dict[str, int] | None = None,
        categorical: Dict[str, int] | None = None,
    ) -> "Schema":
        """Convenience constructor from per-kind listings.

        Parameters
        ----------
        boolean:
            Names of 1-bit boolean attributes.
        uint:
            Mapping ``name -> bit width`` of unsigned integer attributes.
        categorical:
            Mapping ``name -> cardinality`` of categorical attributes.
        """
        specs: List[AttributeSpec] = [AttributeSpec(name, "bool", 1) for name in boolean]
        for name, bits in (uint or {}).items():
            specs.append(AttributeSpec(name, "uint", bits))
        for name, cardinality in (categorical or {}).items():
            width = max(1, (cardinality - 1).bit_length())
            specs.append(AttributeSpec(name, "categorical", width, cardinality))
        return cls(specs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> Tuple[AttributeSpec, ...]:
        return tuple(self._specs)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self._specs)

    @property
    def total_bits(self) -> int:
        """Width ``q`` of the flat profile bit vector."""
        return self._total_bits

    def spec(self, name: str) -> AttributeSpec:
        for candidate in self._specs:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no attribute named {name!r} in schema (have {self.names})")

    def __contains__(self, name: str) -> bool:
        return name in self._offsets

    def offset(self, name: str) -> int:
        """Bit offset of the attribute inside the flat profile."""
        if name not in self._offsets:
            raise KeyError(f"no attribute named {name!r} in schema (have {self.names})")
        return self._offsets[name]

    # ------------------------------------------------------------------
    # Subset builders (the paper's A, A_i notation)
    # ------------------------------------------------------------------
    def bits(self, name: str) -> Tuple[int, ...]:
        """Full subset ``A`` of positions storing the attribute, MSB first."""
        spec = self.spec(name)
        start = self.offset(name)
        return tuple(range(start, start + spec.bits))

    def bit(self, name: str, index: int) -> int:
        """The paper's ``A_i``: position of the ``i``-th highest bit (1-based)."""
        spec = self.spec(name)
        if not 1 <= index <= spec.bits:
            raise ValueError(
                f"bit index must be in [1, {spec.bits}] for attribute {name!r}, got {index}"
            )
        return self.offset(name) + index - 1

    def prefix(self, name: str, length: int) -> Tuple[int, ...]:
        """The paper's ``A_i`` subset: the ``length`` highest bits."""
        spec = self.spec(name)
        if not 1 <= length <= spec.bits:
            raise ValueError(
                f"prefix length must be in [1, {spec.bits}] for attribute {name!r}, got {length}"
            )
        start = self.offset(name)
        return tuple(range(start, start + length))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{s.name}:{s.kind}[{s.bits}b]" for s in self._specs)
        return f"Schema({inner})"
