"""Data substrate: schemas, profiles, codecs and synthetic workloads."""

from .encoding import (
    bits_to_int,
    decode_profile,
    decode_value,
    encode_profile,
    encode_value,
    int_to_bits,
)
from .generators import (
    bernoulli_panel,
    correlated_survey,
    salary_table,
    sparse_transactions,
    two_candidate_population,
    zipf_categorical,
)
from .profiles import Profile, ProfileDatabase
from .serialization import (
    dumps_database,
    load_database,
    loads_database,
    save_database,
)
from .schema import AttributeSpec, Schema

__all__ = [
    "AttributeSpec",
    "Profile",
    "ProfileDatabase",
    "Schema",
    "bernoulli_panel",
    "bits_to_int",
    "correlated_survey",
    "decode_profile",
    "dumps_database",
    "decode_value",
    "encode_profile",
    "encode_value",
    "int_to_bits",
    "load_database",
    "loads_database",
    "salary_table",
    "save_database",
    "sparse_transactions",
    "two_candidate_population",
    "zipf_categorical",
]
