"""Synthetic workload generators.

The paper has no named datasets (its analysis is distribution-free), so the
benchmark suite drives the system with synthetic populations that exercise
the regimes the paper discusses:

* :func:`bernoulli_panel` — dense i.i.d. boolean poll data ("various poll
  data" from the introduction's critique of [10]);
* :func:`correlated_survey` — boolean attributes with planted correlation,
  so conjunctive queries have non-trivial answers;
* :func:`sparse_transactions` — market-basket rows with few 1s, the regime
  Evfimievski et al. target, used when comparing against select-a-size;
* :func:`salary_table` — k-bit integer attributes for the sum / mean /
  interval / combined-query experiments of Section 4.1;
* :func:`zipf_categorical` — skewed categorical attributes;
* :func:`two_candidate_population` — the introduction's partial-knowledge
  attack setting: every profile is one of two known candidate vectors.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from .profiles import Profile, ProfileDatabase
from .schema import Schema

__all__ = [
    "bernoulli_panel",
    "correlated_survey",
    "sparse_transactions",
    "salary_table",
    "zipf_categorical",
    "two_candidate_population",
]


def _user_ids(num_users: int) -> Tuple[str, ...]:
    width = max(4, len(str(num_users)))
    return tuple(f"user-{i:0{width}d}" for i in range(num_users))


def bernoulli_panel(
    num_users: int,
    num_attributes: int,
    density: float = 0.5,
    rng: np.random.Generator | None = None,
) -> ProfileDatabase:
    """Dense boolean panel: each bit is 1 independently with ``density``.

    The workhorse workload for the utility experiments (E6, E7): every
    conjunctive query over ``k`` bits has expected answer ``density**k``
    for unnegated literals.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0,1], got {density}")
    rng = rng if rng is not None else np.random.default_rng()
    schema = Schema.build(boolean=[f"x{i}" for i in range(num_attributes)])
    matrix = (rng.random((num_users, num_attributes)) < density).astype(np.int8)
    db = ProfileDatabase(schema)
    for uid, row in zip(_user_ids(num_users), matrix):
        db.add(Profile(uid, row))
    return db


def correlated_survey(
    num_users: int,
    num_attributes: int,
    base_rate: float = 0.3,
    copy_prob: float = 0.8,
    rng: np.random.Generator | None = None,
) -> ProfileDatabase:
    """Boolean survey with a planted dependency chain.

    Attribute 0 is Bernoulli(``base_rate``); each later attribute copies
    its predecessor with probability ``copy_prob`` and resamples otherwise.
    Conjunctions like "x0 AND x1 AND NOT x5" then have structured answers
    well above the independent-product baseline, which is the interesting
    regime for the HIV+/AIDS style queries of the introduction.
    """
    if not 0.0 <= base_rate <= 1.0:
        raise ValueError(f"base_rate must be in [0,1], got {base_rate}")
    if not 0.0 <= copy_prob <= 1.0:
        raise ValueError(f"copy_prob must be in [0,1], got {copy_prob}")
    rng = rng if rng is not None else np.random.default_rng()
    schema = Schema.build(boolean=[f"x{i}" for i in range(num_attributes)])
    matrix = np.zeros((num_users, num_attributes), dtype=np.int8)
    matrix[:, 0] = rng.random(num_users) < base_rate
    for j in range(1, num_attributes):
        copy_mask = rng.random(num_users) < copy_prob
        fresh = (rng.random(num_users) < base_rate).astype(np.int8)
        matrix[:, j] = np.where(copy_mask, matrix[:, j - 1], fresh)
    db = ProfileDatabase(schema)
    for uid, row in zip(_user_ids(num_users), matrix):
        db.add(Profile(uid, row))
    return db


def sparse_transactions(
    num_users: int,
    num_items: int,
    items_per_user: int = 3,
    popularity_skew: float = 1.1,
    rng: np.random.Generator | None = None,
) -> ProfileDatabase:
    """Market-basket rows: each user buys ``items_per_user`` distinct items.

    Item popularity follows a Zipf-like law with exponent
    ``popularity_skew`` so frequent itemsets exist.  This is the sparse
    regime where Evfimievski et al.'s transaction randomizer applies and
    where randomized response produces embarrassingly dense perturbed rows
    (the introduction's critique of bit flipping).
    """
    if items_per_user > num_items:
        raise ValueError(
            f"items_per_user={items_per_user} exceeds num_items={num_items}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    weights = 1.0 / np.arange(1, num_items + 1) ** popularity_skew
    weights /= weights.sum()
    schema = Schema.build(boolean=[f"item{i}" for i in range(num_items)])
    db = ProfileDatabase(schema)
    for uid in _user_ids(num_users):
        chosen = rng.choice(num_items, size=items_per_user, replace=False, p=weights)
        row = np.zeros(num_items, dtype=np.int8)
        row[chosen] = 1
        db.add(Profile(uid, row))
    return db


def salary_table(
    num_users: int,
    bits: int = 8,
    attributes: Sequence[str] = ("salary", "age"),
    shape: float = 2.0,
    rng: np.random.Generator | None = None,
) -> ProfileDatabase:
    """Integer attributes with a right-skewed (gamma-like) distribution.

    Drives the Section 4.1 experiments: sums and means (E9), inner products
    (E10), intervals "salary <= c" (E11), combined constraints (E12) and
    Appendix E's ``a + b < 2**r`` (E13).  Values are clipped into the
    ``bits``-bit range.
    """
    rng = rng if rng is not None else np.random.default_rng()
    max_value = (1 << bits) - 1
    schema = Schema.build(uint={name: bits for name in attributes})
    db = ProfileDatabase(schema)
    for uid in _user_ids(num_users):
        values: Dict[str, int] = {}
        for name in attributes:
            raw = rng.gamma(shape, max_value / (4.0 * shape))
            values[name] = int(np.clip(round(raw), 0, max_value))
        db.add_values(uid, values)
    return db


def zipf_categorical(
    num_users: int,
    cardinality: int = 16,
    attribute: str = "category",
    skew: float = 1.5,
    rng: np.random.Generator | None = None,
) -> ProfileDatabase:
    """One categorical attribute with Zipf(``skew``) frequencies.

    Point queries "category = c" on skewed categoricals are the non-binary
    use case the abstract highlights ("various poll data or non-binary
    data").
    """
    if cardinality < 2:
        raise ValueError(f"cardinality must be >= 2, got {cardinality}")
    rng = rng if rng is not None else np.random.default_rng()
    weights = 1.0 / np.arange(1, cardinality + 1) ** skew
    weights /= weights.sum()
    schema = Schema.build(categorical={attribute: cardinality})
    db = ProfileDatabase(schema)
    for uid in _user_ids(num_users):
        db.add_values(uid, {attribute: int(rng.choice(cardinality, p=weights))})
    return db


def two_candidate_population(
    num_users: int,
    candidate_a: Sequence[int],
    candidate_b: Sequence[int],
    prob_a: float = 0.5,
    rng: np.random.Generator | None = None,
) -> Tuple[ProfileDatabase, np.ndarray]:
    """The introduction's partial-knowledge attack population.

    Every user's profile is either ``candidate_a`` or ``candidate_b`` —
    the attacker knows both candidates and only wants to learn which one
    each user holds (the <1,1,2,2,3,3> vs <4,4,5,5,6,6> example).

    Returns the database plus the hidden truth array (1 where the user
    holds candidate a) so attack experiments can score the adversary.
    """
    a = np.asarray(candidate_a, dtype=np.int8)
    b = np.asarray(candidate_b, dtype=np.int8)
    if a.shape != b.shape:
        raise ValueError(f"candidates must have equal length, got {a.shape} vs {b.shape}")
    if np.array_equal(a, b):
        raise ValueError("candidates must differ, otherwise there is nothing to hide")
    rng = rng if rng is not None else np.random.default_rng()
    schema = Schema.build(boolean=[f"x{i}" for i in range(a.size)])
    db = ProfileDatabase(schema)
    truth = (rng.random(num_users) < prob_a).astype(np.int8)
    for uid, holds_a in zip(_user_ids(num_users), truth):
        db.add(Profile(uid, a if holds_a else b))
    return db, truth
