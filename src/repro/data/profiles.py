"""Ground-truth profile storage and exact query answering.

:class:`ProfileDatabase` plays the role of "the original unperturbed data"
— it holds every user's private bit vector and answers queries *exactly*.
Nothing in the sketching pipeline may touch it; it exists so that tests,
examples and benchmarks can compare the sketch estimates produced from
published data against the truth.

Exact counterparts are provided for every query family of Section 4.1:
conjunctive counts ``I(B, v)``, attribute sums/means, inner products,
intervals and combined constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .encoding import decode_value, encode_profile
from .schema import Schema

__all__ = ["Profile", "ProfileDatabase"]


@dataclass(frozen=True)
class Profile:
    """One user's private record: public id + private bit vector."""

    user_id: str
    bits: np.ndarray

    def __post_init__(self) -> None:
        array = np.asarray(self.bits, dtype=np.int8)
        if array.ndim != 1:
            raise ValueError(f"profile bits must be 1-D, got shape {array.shape}")
        if not np.isin(array, (0, 1)).all():
            raise ValueError("profile bits must be 0/1")
        object.__setattr__(self, "bits", array)

    def project(self, subset: Sequence[int]) -> Tuple[int, ...]:
        """The sub-vector ``d_B`` induced by a subset of positions."""
        return tuple(int(self.bits[i]) for i in subset)


class ProfileDatabase:
    """The trusted-side collection of raw profiles, with exact queries.

    Parameters
    ----------
    schema:
        The attribute layout shared by every profile.
    profiles:
        Optional initial profiles; each must match the schema width.
    """

    def __init__(self, schema: Schema, profiles: Iterable[Profile] = ()) -> None:
        self.schema = schema
        self._profiles: List[Profile] = []
        self._ids: Dict[str, int] = {}
        for profile in profiles:
            self.add(profile)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add(self, profile: Profile) -> None:
        if profile.bits.size != self.schema.total_bits:
            raise ValueError(
                f"profile {profile.user_id!r} has {profile.bits.size} bits, "
                f"schema expects {self.schema.total_bits}"
            )
        if profile.user_id in self._ids:
            raise ValueError(f"duplicate user id {profile.user_id!r}")
        self._ids[profile.user_id] = len(self._profiles)
        self._profiles.append(profile)

    def add_values(self, user_id: str, values: Dict[str, int]) -> Profile:
        """Add a user from an attribute assignment; returns the profile."""
        profile = Profile(user_id, encode_profile(self.schema, values))
        self.add(profile)
        return profile

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self):
        return iter(self._profiles)

    def __getitem__(self, user_id: str) -> Profile:
        if user_id not in self._ids:
            raise KeyError(f"no user {user_id!r}")
        return self._profiles[self._ids[user_id]]

    @property
    def user_ids(self) -> Tuple[str, ...]:
        return tuple(p.user_id for p in self._profiles)

    def matrix(self) -> np.ndarray:
        """All profiles stacked into an ``(M, q)`` 0/1 matrix."""
        if not self._profiles:
            return np.zeros((0, self.schema.total_bits), dtype=np.int8)
        return np.stack([p.bits for p in self._profiles])

    def attribute_values(self, name: str) -> np.ndarray:
        """Decoded integer values of one attribute across all users."""
        subset = self.schema.bits(name)
        return np.asarray(
            [decode_value(self.schema, name, profile.project(subset)) for profile in self],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    # Exact queries (ground truth for every Section 4.1 family)
    # ------------------------------------------------------------------
    def exact_conjunction(self, subset: Sequence[int], value: Sequence[int]) -> float:
        """Exact fraction of users with ``d_B = v`` — the paper's ``I(B,v)/M``."""
        if len(self._profiles) == 0:
            raise ValueError("database is empty")
        value_t = tuple(int(bit) for bit in value)
        if len(value_t) != len(subset):
            raise ValueError(
                f"value length {len(value_t)} does not match subset size {len(subset)}"
            )
        matches = sum(1 for p in self._profiles if p.project(subset) == value_t)
        return matches / len(self._profiles)

    def exact_count(self, subset: Sequence[int], value: Sequence[int]) -> int:
        """Exact count ``I(B, v)``."""
        return round(self.exact_conjunction(subset, value) * len(self))

    def exact_sum(self, name: str) -> int:
        """Exact attribute sum ``S = sum_u a_u`` (Section 4.1)."""
        return int(self.attribute_values(name).sum())

    def exact_mean(self, name: str) -> float:
        """Exact attribute mean."""
        return float(self.attribute_values(name).mean())

    def exact_inner_product(self, name_a: str, name_b: str) -> int:
        """Exact ``sum_u a_u * b_u`` (Section 4.1's inner product)."""
        return int((self.attribute_values(name_a) * self.attribute_values(name_b)).sum())

    def exact_interval(self, name: str, threshold: int) -> float:
        """Exact fraction of users with ``a_u <= c`` (Section 4.1 intervals)."""
        return float((self.attribute_values(name) <= threshold).mean())

    def exact_sum_below(self, name: str, other: str, threshold: int) -> float:
        """Exact ``sum of b_u over users with a_u <= c`` (combined queries)."""
        values_a = self.attribute_values(name)
        values_b = self.attribute_values(other)
        return float(values_b[values_a <= threshold].sum())

    def exact_addition_interval(self, name_a: str, name_b: str, power: int) -> float:
        """Exact fraction with ``a_u + b_u < 2**power`` (Appendix E)."""
        values = self.attribute_values(name_a) + self.attribute_values(name_b)
        return float((values < (1 << power)).mean())
