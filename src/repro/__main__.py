"""Entry point for ``python -m repro``."""

import sys

from .cli import main

__all__ = ["main"]

if __name__ == "__main__":
    sys.exit(main())
