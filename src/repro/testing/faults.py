"""A deterministic seeded fault-injecting TCP proxy for chaos testing.

:class:`FaultInjectingProxy` sits between a protocol client and a
:class:`~repro.server.remote.RemoteServer`, forwarding newline-delimited
messages and injecting transport faults according to a
:class:`FaultSchedule` — a pure function of ``(seed, connection_index,
request_index)``, so every run of a seeded chaos test observes the
*same* fault sequence on every machine.

The faults model what a real network does to this protocol:

``pass``
    Forward the request and its reply untouched.
``drop_before``
    Drop the connection before the request reaches the server — the
    request was never executed.
``drop_after``
    Forward the request, let the server execute it, then drop the
    connection instead of relaying the reply — the at-least-once case a
    retrying client must tolerate (safe here: queries are read-only and
    re-charging a paid subset is free).
``delay``
    Relay the reply only after ``delay_s`` seconds — long enough, in the
    chaos suite, to blow the client's deadline.
``truncate``
    Relay only a prefix of the reply with no trailing newline, then
    close — a corrupt partial the client must *reject*, never parse.
``garbage``
    Replace the reply with undecodable bytes, then close.  Closing is
    deliberate: the real reply was consumed from the upstream, and
    killing the connection forces a clean re-handshake instead of a
    desynchronised stream answering request *N+1* with reply *N*.

The auth handshake (hello/welcome) always passes through cleanly:
faults target the request/reply stream, which is where retry, deadline,
and parity behaviour lives.

Determinism contract: connections are numbered in accept order and
requests in arrival order per connection, so a single-threaded client
that reconnects on failure sees one reproducible schedule per seed.
"""

from __future__ import annotations

import contextlib
import hashlib
import random
import socket
import threading
import time
from typing import Dict, Iterator, Optional, Tuple

__all__ = ["FAULT_ACTIONS", "FaultSchedule", "FaultInjectingProxy"]

FAULT_ACTIONS = (
    "pass",
    "drop_before",
    "drop_after",
    "delay",
    "truncate",
    "garbage",
)

#: Default action weights: mostly clean traffic, every fault kind
#: represented.  Chaos tests override per scenario.
DEFAULT_WEIGHTS = {
    "pass": 12,
    "drop_before": 2,
    "drop_after": 2,
    "delay": 1,
    "truncate": 2,
    "garbage": 2,
}


class FaultSchedule:
    """Deterministic per-connection fault schedules.

    ``actions(connection_index)`` yields an infinite action stream drawn
    by a :class:`random.Random` seeded from ``blake2b(seed |
    connection_index)`` — independent of wall clock, process, and every
    other connection's stream.
    """

    def __init__(
        self,
        seed: int,
        weights: Optional[Dict[str, float]] = None,
    ) -> None:
        self.seed = int(seed)
        merged = dict(DEFAULT_WEIGHTS)
        if weights is not None:
            unknown = set(weights) - set(FAULT_ACTIONS)
            if unknown:
                raise ValueError(
                    f"unknown fault actions {sorted(unknown)}; "
                    f"choose from {list(FAULT_ACTIONS)}"
                )
            merged.update(weights)
        self.weights = merged

    def _rng(self, connection_index: int) -> random.Random:
        digest = hashlib.blake2b(
            f"{self.seed}|{connection_index}".encode("utf-8"), digest_size=8
        ).digest()
        return random.Random(int.from_bytes(digest, "big"))

    def actions(self, connection_index: int) -> Iterator[str]:
        """The infinite, deterministic action stream for one connection."""
        rng = self._rng(connection_index)
        population = list(FAULT_ACTIONS)
        weights = [float(self.weights[a]) for a in population]
        while True:
            yield rng.choices(population, weights=weights)[0]


class FaultInjectingProxy:
    """Seeded chaos proxy between one client and one newline-JSON server.

    Usage::

        proxy = FaultInjectingProxy(host, port, FaultSchedule(seed=7))
        proxy.start()
        client = RemoteQueryEngine(*proxy.address, token, retry=3, deadline=2.0)
        ...
        proxy.close()

    ``stats`` counts injected actions by name (for asserting a scenario
    actually exercised its faults).
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        schedule: FaultSchedule,
        *,
        delay_s: float = 0.5,
        listen_host: str = "127.0.0.1",
        io_timeout: float = 30.0,
    ) -> None:
        self.upstream = (upstream_host, int(upstream_port))
        self.schedule = schedule
        self.delay_s = float(delay_s)
        self.io_timeout = float(io_timeout)
        self._listener = socket.create_server((listen_host, 0))
        self._listener.settimeout(0.2)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_lock = threading.Lock()
        self._open_sockets: list = []
        self._connections = 0
        self.stats: Dict[str, int] = {action: 0 for action in FAULT_ACTIONS}

    def set_schedule(self, schedule: FaultSchedule) -> None:
        """Swap the fault schedule live (phase-scoped chaos).

        Connections already open keep the action stream they started
        with; connections accepted after the swap draw from the new
        schedule.  Determinism is preserved given deterministic swap
        points: the stream is still a pure function of (the schedule
        active at accept time, connection index).
        """
        self.schedule = schedule

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "FaultInjectingProxy":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="repro-chaos-accept"
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        with contextlib.suppress(OSError):
            self._listener.close()
        thread = self._accept_thread
        if thread is not None:
            thread.join(timeout=5.0)
        with self._conn_lock:
            sockets, self._open_sockets = self._open_sockets, []
        for sock in sockets:
            with contextlib.suppress(OSError):
                sock.close()

    def __enter__(self) -> "FaultInjectingProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wiring ---------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client_sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            index = self._connections
            self._connections += 1
            threading.Thread(
                target=self._serve,
                args=(client_sock, index),
                daemon=True,
                name=f"repro-chaos-conn-{index}",
            ).start()

    def _track(self, sock: socket.socket) -> None:
        with self._conn_lock:
            self._open_sockets.append(sock)

    @staticmethod
    def _read_line(file) -> bytes:
        """One raw line including the newline; b"" on EOF."""
        return file.readline()

    def _serve(self, client_sock: socket.socket, index: int) -> None:
        actions = self.schedule.actions(index)
        client_sock.settimeout(self.io_timeout)
        self._track(client_sock)
        try:
            upstream = socket.create_connection(
                self.upstream, timeout=self.io_timeout
            )
        except OSError:
            with contextlib.suppress(OSError):
                client_sock.close()
            return
        self._track(upstream)
        client_file = client_sock.makefile("rb")
        upstream_file = upstream.makefile("rb")
        try:
            # Handshake passes through untouched (see module docstring).
            hello = self._read_line(client_file)
            if not hello:
                return
            upstream.sendall(hello)
            welcome = self._read_line(upstream_file)
            if not welcome:
                return
            client_sock.sendall(welcome)
            while not self._stop.is_set():
                request = self._read_line(client_file)
                if not request:
                    return
                action = next(actions)
                self.stats[action] += 1
                if action == "drop_before":
                    return
                upstream.sendall(request)
                reply = self._read_line(upstream_file)
                if not reply:
                    return
                if action == "drop_after":
                    return
                if action == "delay":
                    time.sleep(self.delay_s)
                    client_sock.sendall(reply)
                elif action == "truncate":
                    cut = max(1, len(reply) // 2)
                    client_sock.sendall(reply[:cut].rstrip(b"\n"))
                    return
                elif action == "garbage":
                    client_sock.sendall(b"\xfe\xfd{not json]\xff\n")
                    return
                else:
                    client_sock.sendall(reply)
        except OSError:
            pass
        finally:
            for closeable in (client_file, upstream_file, client_sock, upstream):
                with contextlib.suppress(OSError):
                    closeable.close()
