"""Test-support subsystems that are part of the library's contract.

The chaos harness lives in the package proper (not under ``tests/``)
because deterministic fault injection is a *verification subsystem*:
benchmarks, notebooks, and downstream users exercising their own
deployments need the same seeded proxy the test suite uses.
"""

from .faults import FAULT_ACTIONS, FaultInjectingProxy, FaultSchedule

__all__ = ["FAULT_ACTIONS", "FaultInjectingProxy", "FaultSchedule"]
