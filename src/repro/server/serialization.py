"""Persistence and wire formats for published sketch stores.

A sketch store *is* the public dataset — a real deployment writes it to
disk, ships it between parties, republishes it.  Two on-disk formats are
supported, selected with ``format=`` on save and auto-detected on load:

**v1 — JSON Lines** (``format="jsonl"``, the default; human-readable):

* line 1 — a header object: format version, bias ``p``, and the sketch
  length (sanity metadata a consumer needs to query correctly; the global
  PRF key is deliberately NOT stored — it is public but distributed
  out of band, like the paper's public function);
* each further line — one sketch: ``{"id", "subset", "key", "bits"}``.

**v2 — columnar** (``format="columnar"``; binary, an order of magnitude
faster to load at M=50k):

a NumPy ``.npz`` archive holding one ``meta`` JSON member (format tag,
version 2, ``p``, the subset list) plus, per subset ``i``, the parallel
arrays ``ids_i``/``idlen_i`` (utf-8 byte blob + per-id character lengths
— NUL-safe, unlike fixed-width unicode arrays), ``keys_i`` (uint64),
``bits_i`` (uint8) and — when ``include_iterations=True`` — ``it_i``
(uint16, widened only if a count overflows).  The arrays are exactly
:meth:`~repro.server.collector.SketchStore.to_columns`, so loading is a
vectorised validation plus a bulk
:meth:`~repro.server.collector.SketchStore.from_columns` — no per-record
JSON parsing, no per-sketch validation.

Round-tripping is lossless for everything queryable in both formats, and
the two formats are interchangeable: saving a store as JSONL and as
columnar yields stores that compare equal sketch for sketch.  The per-run
``iterations`` diagnostic is not persisted by default (it is not part of
the published record; see :class:`~repro.core.sketch.Sketch`); pass
``include_iterations=True`` for a fully lossless round-trip — the sharded
collector uses it so worker shards ship back bit-identical to an
in-process run.  The optional ``"it"`` field is ignored by older readers.

The module also keeps the **legacy batched block-request wire protocol**:
one JSON message carrying ``(subset, values[])`` and its response carrying
the matching counts.  Since the typed query protocol landed
(:mod:`repro.protocol`), these functions are deprecated shims: they share
the hoisted envelope helpers, :func:`handle_block_request` dispatches
through :meth:`~repro.server.engine.QueryEngine.execute` like every other
caller, and failures come back as the structured error envelope instead
of a raw exception.  The bytes they emit are unchanged, so PR 3-era
payloads still parse.
"""

from __future__ import annotations

import io
import json
import os
from typing import IO, TYPE_CHECKING, List, Sequence, Tuple

import numpy as np

from .._npz import (
    decode_strings,
    encode_strings,
    is_zip_payload,
    meta_array,
    open_npz,
    read_meta,
    truncation_guard,
)
from ..core.params import PrivacyParams
from ..core.prf import public_prf_meta
from ..core.sketch import Sketch
from ..protocol.envelope import dumps_wire_message, loads_wire_message
from ..protocol.messages import CountsBlockRequest, dumps_error, error_from_exception
from .collector import SketchColumn, SketchStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports collector)
    from .engine import QueryEngine

__all__ = [
    "save_store",
    "load_store",
    "dumps_store",
    "loads_store",
    "dumps_block_request",
    "loads_block_request",
    "dumps_block_response",
    "loads_block_response",
    "handle_block_request",
]

_FORMAT_VERSION = 1
_COLUMNAR_VERSION = 2
_FORMAT_TAG = "repro-sketch-store"
_DESCRIBE = "sketch-store"


def _header(params: PrivacyParams | None, prf=None) -> dict:
    header = {"format": _FORMAT_TAG, "version": _FORMAT_VERSION}
    if params is not None:
        header["p"] = params.p
    if prf is not None:
        header["prf"] = public_prf_meta(prf)
    return header


def _write(
    store: SketchStore,
    handle: IO[str],
    params: PrivacyParams | None,
    include_iterations: bool = False,
    prf=None,
) -> int:
    handle.write(json.dumps(_header(params, prf)) + "\n")
    count = 0
    for subset in sorted(store.subsets):
        for sketch in store.sketches_for(subset):
            record = {
                "id": sketch.user_id,
                "subset": list(sketch.subset),
                "key": sketch.key,
                "bits": sketch.num_bits,
            }
            if include_iterations:
                record["it"] = sketch.iterations
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def _read(handle: IO[str]) -> tuple[SketchStore, dict]:
    first = handle.readline()
    if not first:
        raise ValueError("empty sketch-store file")
    header = json.loads(first)
    if header.get("format") != _FORMAT_TAG:
        raise ValueError(
            f"not a sketch-store file (format={header.get('format')!r})"
        )
    if header.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported sketch-store version {header.get('version')!r}; "
            f"this library reads version {_FORMAT_VERSION} (JSONL) and "
            f"{_COLUMNAR_VERSION} (columnar)"
        )
    store = SketchStore()
    for line_number, line in enumerate(handle, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            sketch = Sketch(
                user_id=str(record["id"]),
                subset=tuple(int(i) for i in record["subset"]),
                key=int(record["key"]),
                num_bits=int(record["bits"]),
                iterations=int(record.get("it", 0)),
            )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise ValueError(f"malformed sketch record on line {line_number}: {exc}") from exc
        store.publish(sketch)
    return store, header


# ----------------------------------------------------------------------
# Columnar format (v2)
# ----------------------------------------------------------------------
def _write_columnar(
    store: SketchStore,
    handle: IO[bytes],
    params: PrivacyParams | None,
    include_iterations: bool = False,
    prf=None,
) -> int:
    columns = store.to_columns()
    subsets = sorted(columns)
    meta = _header(params, prf)
    meta["version"] = _COLUMNAR_VERSION
    meta["include_iterations"] = bool(include_iterations)
    meta["subsets"] = [list(subset) for subset in subsets]
    arrays: dict[str, np.ndarray] = {"meta": meta_array(meta)}
    count = 0
    for index, subset in enumerate(subsets):
        column = columns[subset]
        # Ids travel as a utf-8 blob + char lengths (NUL-safe; fixed-width
        # unicode arrays would strip trailing NULs).
        arrays[f"ids_{index}"], arrays[f"idlen_{index}"] = encode_strings(
            column.user_ids
        )
        arrays[f"keys_{index}"] = column.keys
        arrays[f"bits_{index}"] = column.num_bits
        if include_iterations:
            arrays[f"it_{index}"] = column.iterations
        count += len(column.user_ids)
    np.savez(handle, **arrays)
    return count


def _read_columnar(handle: IO[bytes]) -> tuple[SketchStore, dict]:
    archive = open_npz(handle, _DESCRIBE)
    with archive, truncation_guard(_DESCRIBE):
        meta = read_meta(archive, _FORMAT_TAG, _COLUMNAR_VERSION, _DESCRIBE)
        subsets = [tuple(int(i) for i in subset) for subset in meta.get("subsets", [])]
        if len(set(subsets)) != len(subsets):
            duplicate = next(s for s in subsets if subsets.count(s) > 1)
            raise ValueError(
                f"columnar sketch-store file lists subset {duplicate} twice"
            )
        columns: dict[tuple[int, ...], SketchColumn] = {}
        for index, subset_t in enumerate(subsets):
            try:
                id_blob = archive[f"ids_{index}"]
                id_lengths = archive[f"idlen_{index}"]
                keys = archive[f"keys_{index}"]
                bits = archive[f"bits_{index}"]
            except KeyError as exc:
                raise ValueError(
                    f"columnar sketch-store file is missing arrays for "
                    f"subset {subset_t}: {exc}"
                ) from exc
            if id_blob.ndim != 1 or id_lengths.ndim != 1 or keys.ndim != 1 or bits.ndim != 1:
                raise ValueError(
                    f"columnar arrays for subset {subset_t} are not 1-D"
                )
            ids = decode_strings(id_blob, id_lengths)
            iterations = (
                archive[f"it_{index}"]
                if f"it_{index}" in archive.files
                else np.zeros(len(ids), dtype=np.uint16)
            )
            columns[subset_t] = SketchColumn(
                user_ids=ids,
                keys=keys,
                num_bits=bits,
                iterations=iterations,
            )
        store = SketchStore.from_columns(columns)
    header = {
        key: meta[key] for key in ("format", "version", "p", "prf") if key in meta
    }
    return store, header


def save_store(
    store: SketchStore,
    path: str | os.PathLike,
    params: PrivacyParams | None = None,
    include_iterations: bool = False,
    format: str = "jsonl",
    prf=None,
) -> int:
    """Write a store to disk; returns the number of sketches written.

    ``format="jsonl"`` (default) writes the human-readable v1 lines;
    ``format="columnar"`` writes the v2 ``.npz`` column arrays.  Both are
    read back by :func:`load_store`, which auto-detects the format.
    Passing ``prf`` records its public spec (construction + bias, never
    the key) in the header, so a consumer knows which backend to rebuild.
    """
    if format == "jsonl":
        with open(path, "w", encoding="utf-8") as handle:
            return _write(store, handle, params, include_iterations, prf)
    if format == "columnar":
        with open(path, "wb") as handle:
            return _write_columnar(store, handle, params, include_iterations, prf)
    raise ValueError(f"unknown store format {format!r}; expected 'jsonl' or 'columnar'")


def _check_prf_header(header: dict, expected_prf) -> None:
    """Fail loudly when a store's recorded PRF spec mismatches the
    consumer's backend.

    Only enforced when both sides are present: older files carry no
    ``prf`` field, and a reader that passed no ``expected_prf`` keeps the
    historical trust-the-caller behaviour.
    """
    recorded = header.get("prf")
    if expected_prf is None or not isinstance(recorded, dict):
        return
    expected = public_prf_meta(expected_prf)
    if recorded.get("algorithm") != expected["algorithm"] or (
        recorded.get("p") is not None
        and abs(float(recorded["p"]) - expected["p"]) > 1e-12
    ):
        raise ValueError(
            f"store was collected under PRF {recorded}, but the consumer "
            f"supplied {expected}; the two are different functions, so "
            "every estimate would silently mis-de-bias — rebuild the "
            "matching backend (see repro.core.prf_from_spec)"
        )


def load_store(
    path: str | os.PathLike, expected_prf=None
) -> tuple[SketchStore, dict]:
    """Read a store from disk; returns ``(store, header)``.

    The format (JSONL v1 or columnar v2) is auto-detected from the file's
    leading bytes.  The header carries the bias ``p`` the publisher
    recorded (if any) so the consumer can construct matching
    :class:`PrivacyParams` — querying with the wrong ``p`` silently
    mis-debiases, so check it.  Passing ``expected_prf`` additionally
    cross-checks the recorded PRF spec (when the file carries one)
    against that backend's construction and bias, raising ``ValueError``
    on mismatch instead of mis-estimating later.
    """
    with open(path, "rb") as binary:
        if is_zip_payload(binary.read(2)):
            binary.seek(0)
            store, header = _read_columnar(binary)
            _check_prf_header(header, expected_prf)
            return store, header
    with open(path, "r", encoding="utf-8") as handle:
        store, header = _read(handle)
    _check_prf_header(header, expected_prf)
    return store, header


def dumps_store(
    store: SketchStore,
    params: PrivacyParams | None = None,
    include_iterations: bool = False,
    format: str = "jsonl",
    prf=None,
) -> str | bytes:
    """In-memory variant of :func:`save_store`.

    Returns ``str`` for JSONL and ``bytes`` for columnar (both spawn-safe
    pool payloads; the sharded collector ships the columnar form).
    """
    if format == "jsonl":
        buffer = io.StringIO()
        _write(store, buffer, params, include_iterations, prf)
        return buffer.getvalue()
    if format == "columnar":
        binary = io.BytesIO()
        _write_columnar(store, binary, params, include_iterations, prf)
        return binary.getvalue()
    raise ValueError(f"unknown store format {format!r}; expected 'jsonl' or 'columnar'")


def loads_store(payload: str | bytes, expected_prf=None) -> tuple[SketchStore, dict]:
    """In-memory variant of :func:`load_store` (format auto-detected)."""
    if isinstance(payload, (bytes, bytearray, memoryview)):
        payload = bytes(payload)
        if is_zip_payload(payload):
            store, header = _read_columnar(io.BytesIO(payload))
            _check_prf_header(header, expected_prf)
            return store, header
        payload = payload.decode("utf-8")
    store, header = _read(io.StringIO(payload))
    _check_prf_header(header, expected_prf)
    return store, header


# ----------------------------------------------------------------------
# Batched block-request wire protocol (deprecated shims over repro.protocol)
# ----------------------------------------------------------------------
_REQUEST_TAG = "repro-block-request"
_RESPONSE_TAG = "repro-block-response"
_WIRE_VERSION = 1


def dumps_block_request(
    subset: Sequence[int], values: Sequence[Sequence[int]]
) -> str:
    """Encode one batched ``(subset, values[])`` count request.

    A remote analyst sends every candidate value of one subset — a
    histogram, a full marginal, one group of a compiled plan — in a
    single message instead of one conjunctive query per value.

    .. deprecated:: superseded by
       :class:`repro.protocol.messages.CountsBlockRequest`; kept as a
       byte-compatible shim for PR 3-era payloads.
    """
    request = CountsBlockRequest.build(subset, values)
    if not request.values:
        raise ValueError("a block request needs at least one value")
    return dumps_wire_message(
        _REQUEST_TAG,
        _WIRE_VERSION,
        {
            "subset": list(request.subset),
            "values": [list(v) for v in request.values],
        },
    )


def loads_block_request(payload: str) -> Tuple[Tuple[int, ...], List[Tuple[int, ...]]]:
    """Decode a block request into ``(subset, values)`` tuples."""
    message = loads_wire_message(payload, _REQUEST_TAG, _WIRE_VERSION)
    try:
        subset = tuple(int(i) for i in message["subset"])
        values = [tuple(int(bit) for bit in value) for value in message["values"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed block request: {exc}") from exc
    if not values:
        raise ValueError("malformed block request: empty value list")
    for value in values:
        if len(value) != len(subset):
            raise ValueError(
                f"malformed block request: value width {len(value)} does not "
                f"match subset size {len(subset)}"
            )
    return subset, values


def dumps_block_response(
    subset: Sequence[int],
    values: Sequence[Sequence[int]],
    counts: Sequence[float],
) -> str:
    """Encode the response to a block request: one count per value."""
    if len(counts) != len(values):
        raise ValueError(
            f"{len(counts)} counts for {len(values)} values; must match 1:1"
        )
    return dumps_wire_message(
        _RESPONSE_TAG,
        _WIRE_VERSION,
        {
            "subset": [int(i) for i in subset],
            "values": [[int(bit) for bit in value] for value in values],
            "counts": [float(count) for count in counts],
        },
    )


def loads_block_response(payload: str) -> List[float]:
    """Decode a block response into the per-value counts (request order)."""
    message = loads_wire_message(payload, _RESPONSE_TAG, _WIRE_VERSION)
    try:
        return [float(count) for count in message["counts"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed block response: {exc}") from exc


def handle_block_request(engine: "QueryEngine", payload: str) -> str:
    """Server-side dispatcher: block-request payload in, payload out — always.

    Resolves the whole batch through
    :meth:`~repro.server.engine.QueryEngine.execute` — the same dispatch
    table every in-process call and the asyncio server use, so remote
    analysts hit the identical cached block-evaluation path.

    No exception escapes to the transport caller any more: a malformed,
    truncated, or unknown payload, a missing sketch, or any engine
    failure comes back as the structured error envelope
    (:func:`repro.protocol.messages.dumps_error` — code + message, never
    a traceback).
    """
    try:
        subset, values = loads_block_request(payload)
        response = engine.execute(CountsBlockRequest.build(subset, values))
        return dumps_block_response(subset, values, response.result)
    except Exception as exc:  # noqa: BLE001 - the perimeter never re-raises
        return dumps_error(error_from_exception(exc))
