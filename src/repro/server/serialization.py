"""Persistence for published sketch stores.

A sketch store *is* the public dataset — a real deployment writes it to
disk, ships it between parties, republishes it.  The format is JSON Lines:

* line 1 — a header object: format version, bias ``p``, and the sketch
  length (sanity metadata a consumer needs to query correctly; the global
  PRF key is deliberately NOT stored — it is public but distributed
  out of band, like the paper's public function);
* each further line — one sketch: ``{"id", "subset", "key", "bits"}``.

Round-tripping is lossless for everything queryable.  The per-run
``iterations`` diagnostic is not persisted by default (it is not part of the
published record; see :class:`~repro.core.sketch.Sketch`); pass
``include_iterations=True`` for a fully lossless round-trip — the sharded
collector uses it so worker shards ship back bit-identical to an
in-process run.  The optional ``"it"`` field is ignored by older readers."""

from __future__ import annotations

import json
import os
from typing import IO

from ..core.params import PrivacyParams
from ..core.sketch import Sketch
from .collector import SketchStore

__all__ = ["save_store", "load_store", "dumps_store", "loads_store"]

_FORMAT_VERSION = 1


def _header(params: PrivacyParams | None) -> dict:
    header = {"format": "repro-sketch-store", "version": _FORMAT_VERSION}
    if params is not None:
        header["p"] = params.p
    return header


def _write(
    store: SketchStore,
    handle: IO[str],
    params: PrivacyParams | None,
    include_iterations: bool = False,
) -> int:
    handle.write(json.dumps(_header(params)) + "\n")
    count = 0
    for subset in sorted(store.subsets):
        for sketch in store.sketches_for(subset):
            record = {
                "id": sketch.user_id,
                "subset": list(sketch.subset),
                "key": sketch.key,
                "bits": sketch.num_bits,
            }
            if include_iterations:
                record["it"] = sketch.iterations
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def _read(handle: IO[str]) -> tuple[SketchStore, dict]:
    first = handle.readline()
    if not first:
        raise ValueError("empty sketch-store file")
    header = json.loads(first)
    if header.get("format") != "repro-sketch-store":
        raise ValueError(
            f"not a sketch-store file (format={header.get('format')!r})"
        )
    if header.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported sketch-store version {header.get('version')!r}; "
            f"this library reads version {_FORMAT_VERSION}"
        )
    store = SketchStore()
    for line_number, line in enumerate(handle, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            sketch = Sketch(
                user_id=str(record["id"]),
                subset=tuple(int(i) for i in record["subset"]),
                key=int(record["key"]),
                num_bits=int(record["bits"]),
                iterations=int(record.get("it", 0)),
            )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise ValueError(f"malformed sketch record on line {line_number}: {exc}") from exc
        store.publish(sketch)
    return store, header


def save_store(
    store: SketchStore,
    path: str | os.PathLike,
    params: PrivacyParams | None = None,
    include_iterations: bool = False,
) -> int:
    """Write a store to a JSONL file; returns the number of sketches written."""
    with open(path, "w", encoding="utf-8") as handle:
        return _write(store, handle, params, include_iterations)


def load_store(path: str | os.PathLike) -> tuple[SketchStore, dict]:
    """Read a store from a JSONL file; returns ``(store, header)``.

    The header carries the bias ``p`` the publisher recorded (if any) so
    the consumer can construct matching :class:`PrivacyParams` — querying
    with the wrong ``p`` silently mis-debiases, so check it.
    """
    with open(path, "r", encoding="utf-8") as handle:
        return _read(handle)


def dumps_store(
    store: SketchStore,
    params: PrivacyParams | None = None,
    include_iterations: bool = False,
) -> str:
    """In-memory variant of :func:`save_store`."""
    import io

    buffer = io.StringIO()
    _write(store, buffer, params, include_iterations)
    return buffer.getvalue()


def loads_store(payload: str) -> tuple[SketchStore, dict]:
    """In-memory variant of :func:`load_store`."""
    import io

    return _read(io.StringIO(payload))
