"""Streaming collection: incremental estimates as sketches arrive.

A real aggregator does not collect everything and then query once — users
trickle in, collectors run in parallel shards, and analysts watch running
estimates.  Two pieces support that:

* :class:`StreamingEstimator` — registers queries up front, then ingests
  sketches one at a time in O(registered queries) each; every registered
  query's current estimate is available at any moment in O(1).  The
  arithmetic is identical to Algorithm 2 (a running mean of PRF
  evaluations, de-biased on read), so the final answer matches the batch
  estimator exactly.
* :func:`merge_stores` — union of shard stores (e.g. two regional
  collectors, or the per-worker shards of
  :func:`~repro.server.collector.publish_database` with ``workers=N``),
  with duplicate publications rejected rather than silently
  double-counted.

Examples
--------
Merging is a pure union keyed by ``(user, subset)``: shards may overlap
on *subsets* (two collectors each gathered some users of the same
column), never on publications:

>>> from repro.core import Sketch
>>> from repro.server import SketchStore, merge_stores
>>> east, west = SketchStore(), SketchStore()
>>> east.publish(Sketch("alice", (0, 1), key=3, num_bits=4, iterations=1))
>>> west.publish(Sketch("bob", (0, 1), key=9, num_bits=4, iterations=2))
>>> west.publish(Sketch("bob", (2,), key=0, num_bits=4, iterations=1))
>>> merged = merge_stores(east, west)
>>> merged.num_users((0, 1)), merged.num_users((2,))
(2, 1)

A user published through two collectors would be double-counted, so that
merge raises instead:

>>> west.publish(Sketch("alice", (0, 1), key=5, num_bits=4, iterations=1))
>>> merge_stores(east, west)
Traceback (most recent call last):
    ...
ValueError: user 'alice' already published a sketch for subset (0, 1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.estimator import QueryEstimate, SketchEstimator
from ..core.sketch import Sketch
from .collector import SketchStore

__all__ = ["StreamingEstimator", "merge_stores"]

QueryKey = Tuple[Tuple[int, ...], Tuple[int, ...]]


@dataclass
class _RunningCount:
    hits: int = 0
    total: int = 0


class StreamingEstimator:
    """Ingest sketches one at a time; read any registered query in O(1).

    Parameters
    ----------
    estimator:
        The batch estimator to mirror (supplies the PRF, ``p``, clamping
        and confidence machinery).

    Examples
    --------
    >>> streaming = StreamingEstimator(estimator)        # doctest: +SKIP
    >>> streaming.register((0, 1), (1, 1))               # doctest: +SKIP
    >>> for sketch in live_feed:                         # doctest: +SKIP
    ...     streaming.ingest(sketch)
    ...     print(streaming.estimate((0, 1), (1, 1)).fraction)
    """

    def __init__(self, estimator: SketchEstimator) -> None:
        self._estimator = estimator
        self._queries: Dict[QueryKey, _RunningCount] = {}
        # Registered values per subset, in registration order — the
        # batching index: one arriving sketch is scored against all of its
        # subset's values in a single PRF block call.
        self._values_by_subset: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
        self._seen: Dict[Tuple[str, Tuple[int, ...]], bool] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, subset: Sequence[int], value: Sequence[int]) -> None:
        """Start tracking a conjunctive query.

        Must happen before the sketches that should count towards it are
        ingested; sketches ingested earlier are not retroactively scored
        (the PRF evaluation needs the sketch, which is not retained).
        """
        key = self._key(subset, value)
        if len(key[0]) != len(key[1]):
            raise ValueError(
                f"value width {len(key[1])} does not match subset size {len(key[0])}"
            )
        if key not in self._queries:
            self._queries[key] = _RunningCount()
            self._values_by_subset.setdefault(key[0], []).append(key[1])

    def registered(self) -> List[QueryKey]:
        return list(self._queries)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, sketch: Sketch) -> int:
        """Score one arriving sketch against every matching registered query.

        Returns the number of queries updated.  Re-ingesting the same
        (user, subset) publication raises — double counting would bias
        every running mean.
        """
        seen_key = (sketch.user_id, sketch.subset)
        if seen_key in self._seen:
            raise ValueError(
                f"user {sketch.user_id!r} already ingested for subset {sketch.subset}"
            )
        self._seen[seen_key] = True
        values = self._values_by_subset.get(sketch.subset, [])
        if not values:
            return 0
        # One PRF block call scores the sketch against every registered
        # value of its subset; row 0 is bitwise identical to evaluating
        # each value separately.
        row = self._estimator.prf.evaluate_block(
            [sketch.user_id], sketch.subset, values, [sketch.key]
        )[0]
        for value, bit in zip(values, row):
            count = self._queries[(sketch.subset, value)]
            count.hits += int(bit)
            count.total += 1
        return len(values)

    def ingest_many(self, sketches: Sequence[Sketch]) -> int:
        """Bulk ingestion; returns total query updates.

        Arrivals are grouped by subset and each group is scored with one
        PRF block call, so a batch of N sketches costs O(distinct
        subsets) PRF dispatches instead of N — same counts, bit for
        bit, as ingesting one at a time.  Duplicate ``(user, subset)``
        publications — against earlier ingestions or within the batch
        itself — raise before *any* count or seen-mark is touched, so a
        rejected batch leaves the estimator exactly as it was.
        """
        sketches = list(sketches)
        batch_seen = set()
        for sketch in sketches:
            seen_key = (sketch.user_id, sketch.subset)
            if seen_key in self._seen or seen_key in batch_seen:
                raise ValueError(
                    f"user {sketch.user_id!r} already ingested for subset "
                    f"{sketch.subset}"
                )
            batch_seen.add(seen_key)
        groups: Dict[Tuple[int, ...], List[Sketch]] = {}
        for sketch in sketches:
            self._seen[(sketch.user_id, sketch.subset)] = True
            groups.setdefault(sketch.subset, []).append(sketch)
        updates = 0
        for subset, group in groups.items():
            values = self._values_by_subset.get(subset, [])
            if not values:
                continue
            block = self._estimator.prf.evaluate_block(
                [s.user_id for s in group],
                subset,
                values,
                [s.key for s in group],
            )
            hits = block.sum(axis=0)
            for value, hit_count in zip(values, hits):
                count = self._queries[(subset, value)]
                count.hits += int(hit_count)
                count.total += len(group)
            updates += len(values) * len(group)
        return updates

    def ingest_store(self, store: SketchStore) -> int:
        """Ingest every sketch of a store through the columnar bulk path.

        One PRF block call scores each subset's whole column against all
        of that subset's registered values — the backfill workload (a
        shard store arrives, a dashboard catches up) at columnar speed.
        The running counts end up identical to ingesting sketch by
        sketch; duplicate ``(user, subset)`` publications anywhere in the
        store raise before *any* count or seen-mark is touched, so a
        rejected bulk ingestion leaves the estimator exactly as it was.
        """
        columns = store.to_columns()
        for subset, column in columns.items():
            for user_id in column.user_ids:
                if (user_id, subset) in self._seen:
                    raise ValueError(
                        f"user {user_id!r} already ingested for subset {subset}"
                    )
        updates = 0
        for subset, column in columns.items():
            for user_id in column.user_ids:
                self._seen[(user_id, subset)] = True
            values = self._values_by_subset.get(subset, [])
            if not values:
                continue
            block = self._estimator.prf.evaluate_block(
                column.user_ids, subset, values, column.keys.tolist()
            )
            hits = block.sum(axis=0)
            for value, hit_count in zip(values, hits):
                count = self._queries[(subset, value)]
                count.hits += int(hit_count)
                count.total += len(column.user_ids)
            updates += len(values) * len(column.user_ids)
        return updates

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def estimate(
        self, subset: Sequence[int], value: Sequence[int], delta: float = 0.05
    ) -> QueryEstimate:
        """Current estimate of a registered query (Algorithm 2 on the
        running counts)."""
        key = self._key(subset, value)
        if key not in self._queries:
            raise KeyError(
                f"query {key} was never registered; call register() first"
            )
        count = self._queries[key]
        if count.total == 0:
            raise ValueError(f"no sketches ingested yet for subset {key[0]}")
        raw = count.hits / count.total
        fraction = self._estimator.debias_fraction(raw)
        if self._estimator.clamp:
            fraction = min(1.0, max(0.0, fraction))
        half_width = self._estimator.half_width(count.total, delta)
        return QueryEstimate(
            fraction=fraction,
            count=fraction * count.total,
            raw_fraction=raw,
            num_users=count.total,
            half_width=half_width,
            delta=delta,
        )

    @staticmethod
    def _key(subset: Sequence[int], value: Sequence[int]) -> QueryKey:
        return (
            tuple(int(i) for i in subset),
            tuple(int(bit) for bit in value),
        )


def merge_stores(*stores: SketchStore) -> SketchStore:
    """Union of shard stores into a fresh store.

    Duplicate (user, subset) publications across shards raise — a user
    publishing through two collectors would otherwise be double-counted
    (and would have spent privacy budget twice, which the upstream
    accountant should have prevented).  Overlapping *subsets* are fine:
    sketches for the same subset from different shards land in one
    column, in shard order.  This is the reduce step of the sharded
    ``publish_database(..., workers=N)`` path, whose shards partition
    users, so their union is always disjoint.
    """
    if not stores:
        raise ValueError("need at least one store to merge")
    merged = SketchStore()
    for store in stores:
        for subset in store.subsets:
            for sketch in store.sketches_for(subset):
                merged.publish(sketch)
    return merged
