"""The sketch-backed query engine.

:class:`QueryEngine` is what a data analyst talks to.  It owns a
:class:`~repro.server.collector.SketchStore` (public data only) and answers:

* raw conjunctive counts, via Algorithm 2 when the subset was sketched
  directly, falling back to the Appendix F linear-system combination when
  the subset can be partitioned into sketched pieces;
* every compiled :class:`~repro.queries.conjunctive.LinearPlan` (sums,
  means, inner products, intervals, combined constraints, decision trees);
* the Appendix E addition interval and exactly-l-of-k queries, by
  manufacturing per-bit virtual matrices from single-bit sketches.

Every query family funnels through **one dispatch surface**:
:meth:`QueryEngine.execute` takes a typed
:class:`~repro.protocol.messages.QueryRequest` and returns a
:class:`~repro.protocol.messages.QueryResponse`.  The public methods are
thin wrappers that build the request and unwrap the response, so local
calls, tests, and remote calls (:mod:`repro.server.remote`) run the
identical code path — and all of them hit the aligned-columns/cache-fed
fast paths.

The engine never touches raw profiles — everything flows from published
sketches through the public PRF.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import shutil
import tempfile
import threading
import time

try:  # POSIX file locking for cross-process sweep coordination.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.combine import combine_aligned_bits
from ..core.estimator import QueryEstimate, SketchEstimator
from ..core.prf import validate_value_bits
from ..data.schema import Schema
from ..queries.ast import Conjunction
from ..queries.boolean import DecisionNode, decision_tree_plan, exactly_l_fraction
from ..queries.categorical import categorical_histogram, estimate_mode, top_k_categories
from ..queries.combined import (
    equal_and_less_plan,
    sum_where_less_equal_plan,
    sum_where_less_plan,
)
from ..data.encoding import int_to_bits
from ..protocol.envelope import ProtocolError
from ..protocol.messages import (
    AnyOfRequest,
    BitMatrixRequest,
    CountsBlockRequest,
    EstimateManyRequest,
    EvaluatePlanRequest,
    ExactlyLRequest,
    FractionRequest,
    MarginalRequest,
    PingRequest,
    QueryRequest,
    QueryResponse,
)
from ..queries.conjunctive import LinearPlan, evaluate_plan
from ..queries.disjunction import disjunction_fraction_from_bits
from ..queries.interval import less_equal_plan, less_than_plan, range_plan
from ..queries.numeric import inner_product_plan, moment_plan, sum_plan
from ..queries.virtual import addition_interval_fraction
from .collector import AlignedColumns, SketchColumn, SketchStore

__all__ = [
    "MissingSketchError",
    "SketchEvaluationCache",
    "QueryEngine",
    "search_exact_cover",
    "store_content_hash",
]

Subset = Tuple[int, ...]

_CACHE_FORMAT = "repro-eval-cache"
# Version 2: entries are bit-packed (np.packbits behind an 8-byte length
# header) and meta.json carries a per-column prefix-hash index so grown
# stores can seed their fresh directory from an older one's columns.
# The directory-name hash domain is bumped in step (store_content_hash),
# so version-1 directories become invisible siblings — an upgraded
# deployment recomputes transparently instead of failing on a
# version-mismatched meta.json.
_CACHE_VERSION = 2
# Little-endian uint64 bit count prepended to each packed entry:
# np.packbits pads the last byte with zeros, so the true column length
# must travel with the payload (entries seeded from an older directory
# are strict prefixes of the current column).
_ENTRY_HEADER_BYTES = 8


def store_content_hash(store: SketchStore, prf) -> str:
    """Content hash identifying a store's queryable state under one PRF.

    Covers everything a ``(subset, value) -> bits`` evaluation depends on:
    the PRF identity (bias ``p`` and, when present, the public global key)
    and each subset column's user ids, keys, and bit widths — in column
    order, since cached vectors are positional.  The ``iterations``
    diagnostics are deliberately excluded: they never enter the PRF, so a
    store saved with or without them hashes (and caches) identically.
    """
    return _content_hash_from_columns(store.to_columns(), prf)


def _content_hash_from_columns(columns: dict, prf) -> str:
    """:func:`store_content_hash` over an already-materialised column dict.

    Split out so the cache constructor can snapshot ``store.to_columns()``
    once and share it between the content hash, the meta columns index,
    and seed-directory discovery (for a dict-backed store each
    ``column_for`` call rebuilds the arrays from per-Sketch records).
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(b"repro-eval-cache-v2|")
    digest.update(repr(float(prf.p)).encode("ascii"))
    global_key = getattr(prf, "global_key", None)
    digest.update(b"|key|" + (global_key if global_key is not None else b"<none>"))
    _update_algorithm(digest, prf)
    for subset, column in sorted(columns.items()):
        digest.update(b"|B|" + ",".join(str(i) for i in subset).encode("ascii"))
        # Length-prefix every id: ids may themselves contain NULs (the
        # on-disk format round-trips them), so a bare separator join
        # would let distinct id columns collide.
        digest.update(b"|ids|")
        for user_id in column.user_ids:
            encoded = user_id.encode("utf-8")
            digest.update(len(encoded).to_bytes(4, "big") + encoded)
        digest.update(b"|keys|" + np.ascontiguousarray(column.keys).tobytes())
        digest.update(b"|bits|" + np.ascontiguousarray(column.num_bits).tobytes())
    return digest.hexdigest()


def _update_algorithm(digest, prf) -> None:
    """Fold a non-default PRF construction into an identity digest.

    The PRF *identity* is (bias, key, construction): a
    :class:`~repro.core.prf.CounterPRF` under some key is a different
    function from a :class:`~repro.core.prf.BiasedPRF` under the same
    key, so their caches must live in different directories.  BLAKE2b —
    the construction every pre-existing cache directory was written
    under — contributes nothing, keeping those directory names (and the
    warm caches behind them) stable.
    """
    algorithm = getattr(prf, "algorithm", "blake2b")
    if algorithm != "blake2b":
        digest.update(b"|alg|" + str(algorithm).encode("ascii"))


def _column_prefix_hash(prf, subset: Subset, column: SketchColumn, size: int) -> str:
    """Hash of one column's first ``size`` rows under one PRF.

    The per-column unit of :func:`store_content_hash`: everything a
    cached ``(subset, value) -> bits`` vector over those rows depends on
    (PRF identity included, so a directory written under a different
    global key can never seed this one).  Because store columns are
    append-only, a grown store whose prefix hashes to an old directory's
    recorded value can soundly treat that directory's entries as
    prefixes of its own columns.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(b"repro-eval-cache-column-v2|")
    digest.update(repr(float(prf.p)).encode("ascii"))
    global_key = getattr(prf, "global_key", None)
    digest.update(b"|key|" + (global_key if global_key is not None else b"<none>"))
    _update_algorithm(digest, prf)
    digest.update(b"|B|" + ",".join(str(i) for i in subset).encode("ascii"))
    digest.update(b"|ids|")
    for user_id in column.user_ids[:size]:
        encoded = user_id.encode("utf-8")
        digest.update(len(encoded).to_bytes(4, "big") + encoded)
    digest.update(b"|keys|" + np.ascontiguousarray(column.keys[:size]).tobytes())
    digest.update(b"|bits|" + np.ascontiguousarray(column.num_bits[:size]).tobytes())
    return digest.hexdigest()


class SketchEvaluationCache:
    """Per-store ``(subset, value) -> bits`` evaluation cache.

    Stores are append-only per subset, so a cached vector is either
    current or a strict prefix of the current column; repeated queries
    (streaming dashboards, SuLQ free mode, privacy-audit workloads) never
    re-hash, and growth only costs evaluating the newly-published tail.
    Cache misses for several values of one subset resolve in a single PRF
    block call.

    With ``cache_dir`` the cache is **persistent**: every computed column
    is spilled as a bit-packed ``.npy`` file under
    ``cache_dir/store-<content-hash>/`` and unpacked on readback, so a
    restarted process — or a sibling worker process pointed at the same
    directory — reuses PRF evaluations instead of recomputing them.  The
    directory is keyed by :func:`store_content_hash`, so a cache written
    for a different store (or a different PRF) can never be silently
    reused: a stale store lands in a different directory, and a tampered
    directory whose recorded hash disagrees with the current store is
    rejected with :class:`ValueError`.  Persistence requires a
    :attr:`~repro.core.prf.BiasedFunction.stateless` PRF — a memoising
    oracle's bits are not a pure function of the store, so sharing them
    across processes would be wrong.

    On-disk entries are **bit-packed** (``np.packbits`` behind an 8-byte
    length header — 8x smaller than the int8 columns of cache version 1)
    and the directory honours an optional **size budget**:
    ``cache_budget_bytes`` caps the total entry bytes, enforced by an
    LRU sweep over entry mtimes after each write batch (read recency is
    recorded in-process and flushed to entry mtimes just before each
    eviction decision, meta.json is never swept, and POSIX unlink keeps
    any concurrently-open entry readable).  ``cache_budget_bytes=0``
    disables persistence entirely — no directory is created or read.
    ``meta.json`` additionally records a per-column prefix-hash index;
    when a *grown* store (append-only tail extension, possibly with new
    subsets) hashes to a fresh directory, sibling ``store-*`` directories
    whose recorded column hashes match a prefix of the current columns
    **seed** the fresh directory: their entries are read as prefixes,
    tail-extended with one PRF call, and re-spilled at full length.
    Sibling columns whose recorded hash mismatches (different PRF,
    different users, tampering) are refused.  ``stats`` counts cache
    ``hits`` / ``misses`` (per distinct requested value) and sweep
    activity (``sweeps`` / ``swept_entries`` / ``swept_bytes``).

    Two further budgets bound the cache's other growth axes:

    * ``memory_budget_bytes`` caps the **in-process** ``_bits`` dict the
      same way ``cache_budget_bytes`` caps the directory: entries are
      kept in LRU order and evicted past the cap (``memory_evictions`` /
      ``memory_evicted_bytes`` in ``stats``), so a pathological query
      stream sweeping endless distinct ``(subset, value)`` pairs runs in
      bounded memory — evicted columns are re-read from disk or
      re-evaluated, never answered differently.  ``None`` (default)
      keeps the historical unbounded behaviour.
    * ``generation_ttl_seconds`` opts into **generation GC**: superseded
      sibling ``store-*`` directories (older store generations this
      directory no longer needs) whose newest content is older than the
      TTL are deleted at construction time (``gc_directories`` /
      ``gc_bytes`` in ``stats``).  The live generation is never
      reclaimed.  ``None`` (default) never deletes sibling directories.
    """

    def __init__(
        self,
        store: SketchStore,
        estimator: SketchEstimator,
        cache_dir: str | os.PathLike | None = None,
        cache_budget_bytes: int | None = None,
        memory_budget_bytes: int | None = None,
        generation_ttl_seconds: float | None = None,
    ) -> None:
        self.store = store
        self.estimator = estimator
        # In-process mutex guarding all mutable bookkeeping (_bits,
        # stats, recency sets, disk writes).  PRF block evaluations run
        # OUTSIDE it — the kernel tier releases the GIL, so concurrent
        # cold queries genuinely overlap on multiple cores; two threads
        # missing the same column may both compute it, but the results
        # are deterministic and bit-identical, so last-writer-wins
        # inserts never change an answer.
        self._mutex = threading.RLock()
        # Insertion order doubles as recency order (entries are re-inserted
        # on every hit when a memory budget is set), so the dict is the LRU.
        self._bits: dict[Tuple[Subset, Tuple[int, ...]], np.ndarray] = {}
        self._bits_bytes = 0
        self._dir: str | None = None
        self._column_sizes: dict[Subset, int] = {}
        self._seed_dirs: List[Tuple[str, dict[Subset, int]]] = []
        self.stats = {
            "hits": 0,
            "misses": 0,
            "sweeps": 0,
            "swept_entries": 0,
            "swept_bytes": 0,
            "memory_evictions": 0,
            "memory_evicted_bytes": 0,
            "gc_directories": 0,
            "gc_bytes": 0,
        }
        self._dirty = False  # disk writes since the last budget sweep
        self._used_since_sweep: set = set()  # entry recency, flushed at sweep
        self._prefix_hashes: dict[Tuple[Subset, int], str] = {}
        self._budget: int | None = None
        self._memory_budget: int | None = None
        if memory_budget_bytes is not None:
            memory_budget_bytes = int(memory_budget_bytes)
            if memory_budget_bytes < 0:
                raise ValueError(
                    f"memory_budget_bytes must be >= 0, got {memory_budget_bytes}"
                )
            self._memory_budget = memory_budget_bytes
        if generation_ttl_seconds is not None:
            generation_ttl_seconds = float(generation_ttl_seconds)
            if generation_ttl_seconds < 0:
                raise ValueError(
                    f"generation_ttl_seconds must be >= 0, got {generation_ttl_seconds}"
                )
        self._generation_ttl = generation_ttl_seconds
        if cache_budget_bytes is not None:
            cache_budget_bytes = int(cache_budget_bytes)
            if cache_budget_bytes < 0:
                raise ValueError(
                    f"cache_budget_bytes must be >= 0, got {cache_budget_bytes}"
                )
            if cache_budget_bytes == 0:
                # Budget 0 = persistence off: the in-memory cache still
                # works, but nothing is created, read, or written on disk.
                cache_dir = None
            elif cache_dir is not None:
                # A budget without a directory would only accumulate
                # recency bookkeeping nothing ever flushes.
                self._budget = cache_budget_bytes
        if cache_dir is not None:
            if not self.estimator.prf.stateless:
                raise ValueError(
                    f"persistent caching needs a stateless PRF; "
                    f"{type(self.estimator.prf).__name__} memoises draws "
                    "in-process, so its evaluations cannot be shared across "
                    "processes or restarts"
                )
            # One column materialisation pass shared by the content hash,
            # the meta columns index, and seed discovery (column_for on a
            # dict-backed store rebuilds arrays per call).
            columns = store.to_columns()
            store_hash = _content_hash_from_columns(columns, self.estimator.prf)
            root = os.fspath(cache_dir)
            self._dir = os.path.join(root, f"store-{store_hash}")
            os.makedirs(self._dir, exist_ok=True)
            self._validate_or_write_meta(store_hash, columns)
            # Snapshot of the column sizes the hash was computed over:
            # if the store grows afterwards the in-memory tail extension
            # stays correct, but the directory no longer describes the
            # store, so writes are suppressed (reads were full columns
            # taken before the growth, i.e. valid prefixes).
            self._column_sizes = {
                subset: len(column.user_ids) for subset, column in columns.items()
            }
            self._seed_dirs = self._discover_seed_dirs(root, columns)
            # Generation GC runs after seed discovery because *seedable*
            # is what "superseded" means: a sibling whose columns are
            # validated prefixes of ours is an older generation of this
            # same store.  Unrelated stores sharing the cache root are
            # never candidates — their live directories must survive any
            # TTL.
            if self._generation_ttl is not None:
                self._sweep_generations()

    # ------------------------------------------------------------------
    # In-memory LRU layer
    # ------------------------------------------------------------------
    def _remember(self, key: Tuple[Subset, Tuple[int, ...]], bits: np.ndarray) -> None:
        """Insert one column into the in-process cache, evicting LRU
        entries past the memory budget.

        With no budget the dict grows unboundedly (the pre-existing
        behaviour); with one, total cached bytes stay at or under it —
        evicted columns are simply re-read from disk or re-evaluated on
        their next use, so eviction never changes an answer.
        """
        previous = self._bits.pop(key, None)
        if previous is not None:
            self._bits_bytes -= previous.nbytes
        budget = self._memory_budget
        if budget is not None and bits.nbytes > budget:
            # A column that alone exceeds the budget is served but never
            # retained — retaining it would evict everything else first
            # and still violate the cap.
            self.stats["memory_evictions"] += 1
            self.stats["memory_evicted_bytes"] += int(bits.nbytes)
            return
        self._bits[key] = bits
        self._bits_bytes += bits.nbytes
        if budget is None:
            return
        while self._bits_bytes > budget:
            old_key = next(iter(self._bits))
            evicted = self._bits.pop(old_key)
            self._bits_bytes -= evicted.nbytes
            self.stats["memory_evictions"] += 1
            self.stats["memory_evicted_bytes"] += int(evicted.nbytes)

    def _touch(self, key: Tuple[Subset, Tuple[int, ...]]) -> None:
        """Refresh one entry's LRU recency (dict order = recency order)."""
        if self._memory_budget is None:
            return
        cached = self._bits.pop(key, None)
        if cached is not None:
            self._bits[key] = cached

    # ------------------------------------------------------------------
    # Persistent layer
    # ------------------------------------------------------------------
    def _sweep_generations(self) -> None:
        """Reclaim superseded predecessor directories past the TTL.

        Every store growth leaves the previous generation's directory
        behind as a sibling — useful briefly (the fresh directory seeds
        its columns from it) but dead weight once re-spilled.  With
        ``generation_ttl_seconds`` set, *seedable* siblings (validated
        predecessors of this store, per :meth:`_discover_seed_dirs` —
        unrelated stores sharing the cache root never qualify) whose
        newest content (meta or entry, by mtime — reads refresh entry
        mtimes under a budget) is older than the TTL are deleted whole
        and dropped from the seed list.  The live generation — this
        cache's own directory — is never a candidate, and removal is
        best-effort: a directory a concurrent process is mid-write on
        simply survives to the next sweep.

        The TTL is the operator's promise that no live process still
        serves — and no fresh generation still wants to seed from — a
        directory that old: a long-lived engine on the old store whose
        reads never touch disk (no byte budget, so no mtime refresh) can
        have its directory reclaimed under it — it degrades gracefully
        (``_atomic_write`` recreates the directory and re-spills;
        answers never change) but loses its warm entries — and an
        expired predecessor is reclaimed *without* first migrating its
        entries (entry filenames are opaque hashes, so they cannot be
        safely attributed to a validated subset without the query that
        names them; a grown store restarting after a gap longer than the
        TTL therefore recomputes cold).  Cross-process coordination
        (lock file / refcount) is a ROADMAP item; until then pick a TTL
        longer than any reader's idle span and any expected downtime.
        """
        assert self._dir is not None and self._generation_ttl is not None
        deadline = time.time() - self._generation_ttl
        survivors: List[Tuple[str, dict[Subset, int]]] = []
        for seed_dir, seedable in self._seed_dirs:
            newest = 0.0
            total_bytes = 0
            try:
                with os.scandir(seed_dir) as it:
                    for item in it:
                        stat = item.stat()
                        newest = max(newest, stat.st_mtime)
                        total_bytes += stat.st_size
            except OSError:
                survivors.append((seed_dir, seedable))
                continue
            if newest > deadline:
                survivors.append((seed_dir, seedable))
                continue
            shutil.rmtree(seed_dir, ignore_errors=True)
            if os.path.exists(seed_dir):
                survivors.append((seed_dir, seedable))
            else:
                self.stats["gc_directories"] += 1
                self.stats["gc_bytes"] += total_bytes
        self._seed_dirs = survivors

    def _validate_or_write_meta(self, store_hash: str, store_columns: dict) -> None:
        assert self._dir is not None
        meta_path = os.path.join(self._dir, "meta.json")
        if os.path.exists(meta_path):
            try:
                with open(meta_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                raise ValueError(
                    f"corrupt evaluation-cache directory {self._dir}: "
                    f"unreadable meta.json ({exc})"
                ) from exc
            if (
                not isinstance(meta, dict)
                or meta.get("format") != _CACHE_FORMAT
                or meta.get("version") != _CACHE_VERSION
                or meta.get("store_hash") != store_hash
            ):
                raise ValueError(
                    f"evaluation-cache directory {self._dir} was written for a "
                    f"different store or format (recorded hash "
                    f"{meta.get('store_hash') if isinstance(meta, dict) else meta!r} "
                    f"version {meta.get('version') if isinstance(meta, dict) else '?'}, "
                    f"expected hash {store_hash} version {_CACHE_VERSION}); "
                    "refusing to reuse it — delete the directory to recompute"
                )
            return
        # The per-column prefix-hash index: a future cache for a *grown*
        # store consults it to decide whether this directory's entries
        # are valid prefixes of its own columns (sound because store
        # columns are append-only).
        columns = {
            ",".join(str(i) for i in subset): {
                "size": len(column.user_ids),
                "hash": self._prefix_hash(subset, column, len(column.user_ids)),
            }
            for subset, column in store_columns.items()
        }
        meta = {
            "format": _CACHE_FORMAT,
            "version": _CACHE_VERSION,
            "store_hash": store_hash,
            "p": float(self.estimator.params.p),
            "columns": columns,
        }
        self._atomic_write(meta_path, json.dumps(meta).encode("utf-8"))

    def _prefix_hash(self, subset: Subset, column: SketchColumn, size: int) -> str:
        """Memoised :func:`_column_prefix_hash` — columns are append-only
        and the PRF is fixed per cache, so ``(subset, size)`` is a
        sufficient key; meta creation and every sibling-directory probe
        share one hashing pass per distinct prefix length."""
        memo_key = (subset, size)
        cached = self._prefix_hashes.get(memo_key)
        if cached is None:
            cached = _column_prefix_hash(self.estimator.prf, subset, column, size)
            self._prefix_hashes[memo_key] = cached
        return cached

    def _discover_seed_dirs(
        self, root: str, store_columns: dict
    ) -> List[Tuple[str, dict[Subset, int]]]:
        """Sibling ``store-*`` directories whose columns are validated
        prefixes of this store's columns.

        For every sibling directory, every subset whose recorded
        ``(size, hash)`` matches :func:`_column_prefix_hash` over the
        current column's first ``size`` rows becomes seedable from that
        directory; mismatching columns (different PRF or users,
        tampering) and unreadable/foreign metas are refused silently —
        unrelated stores sharing one cache root are the normal case, not
        an error.
        """
        assert self._dir is not None
        seeds: List[Tuple[str, dict[Subset, int]]] = []
        own = os.path.basename(self._dir)
        try:
            entries = sorted(
                (e for e in os.scandir(root) if e.name.startswith("store-")),
                key=lambda e: e.name,
            )
        except OSError:
            return seeds
        candidates = [e for e in entries if e.name != own and e.is_dir()]
        if not candidates:
            return seeds
        current = store_columns
        for candidate in candidates:
            try:
                with open(
                    os.path.join(candidate.path, "meta.json"), "r", encoding="utf-8"
                ) as handle:
                    meta = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if (
                not isinstance(meta, dict)
                or meta.get("format") != _CACHE_FORMAT
                or meta.get("version") != _CACHE_VERSION
                or not isinstance(meta.get("columns"), dict)
            ):
                continue
            seedable: dict[Subset, int] = {}
            for subset, column in current.items():
                record = meta["columns"].get(",".join(str(i) for i in subset))
                if not isinstance(record, dict):
                    continue
                size, recorded = record.get("size"), record.get("hash")
                if not isinstance(size, int) or not isinstance(recorded, str):
                    continue
                if not 0 < size <= len(column.user_ids):
                    continue
                if self._prefix_hash(subset, column, size) != recorded:
                    continue
                seedable[subset] = size
            if seedable:
                seeds.append((candidate.path, seedable))
        return seeds

    def _atomic_write(self, path: str, payload: bytes) -> None:
        """Write-then-rename so sibling processes never see partial files.

        The directory is recreated if missing: a sibling process's
        generation GC may reclaim this directory while this engine is
        live (its TTL only sees mtimes, and reads refresh them only
        under a byte budget), and the correct degradation is to re-spill
        into a fresh directory, not to crash the query that happened to
        write next.
        """
        assert self._dir is not None
        try:
            fd, tmp_path = tempfile.mkstemp(dir=self._dir, suffix=".tmp")
        except FileNotFoundError:
            os.makedirs(self._dir, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=self._dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def _entry_path(self, subset: Subset, value: Tuple[int, ...]) -> str:
        assert self._dir is not None
        digest = hashlib.blake2b(digest_size=16)
        digest.update(",".join(str(i) for i in subset).encode("ascii"))
        # Values reaching here were validated as strict 0/1 bits — masking
        # would let a malformed value collide with a genuine one.
        digest.update(b"|v|" + bytes(int(bit) for bit in value))
        return os.path.join(self._dir, f"{digest.hexdigest()}.npy")

    @staticmethod
    def _pack_entry(bits: np.ndarray) -> bytes:
        """Serialized packed entry: ``.npy`` of uint8 = length header + packbits."""
        column = np.ascontiguousarray(bits, dtype=np.int8)
        header = np.frombuffer(
            int(column.size).to_bytes(_ENTRY_HEADER_BYTES, "little"), dtype=np.uint8
        )
        packed = np.packbits(column.view(np.uint8))
        buffer = io.BytesIO()
        np.save(buffer, np.concatenate([header, packed]))
        return buffer.getvalue()

    def _read_entry(
        self, path: str, max_bits: int, subset: Subset, strict: bool
    ) -> np.ndarray | None:
        """Decode one packed entry file into an int8 column, or ``None``.

        ``strict`` governs anomalies: entries in the cache's own
        directory raise :class:`ValueError` (corruption/staleness under
        the right hash must be loud), entries in best-effort *seed*
        directories are skipped quietly.
        """

        def reject(reason: str) -> np.ndarray | None:
            if strict:
                raise ValueError(f"{reason} evaluation-cache entry {path}")
            return None

        # Eager read, descriptor closed immediately: the unpack below
        # materialises a fresh int8 column regardless, so a memmap would
        # only pin an fd without saving a copy (packed payloads are
        # num_users/8 bytes — 8MB even at 64M users).
        try:
            handle = open(path, "rb")
        except OSError:
            return None
        try:
            with handle:
                raw = np.load(handle, allow_pickle=False)
        except (OSError, ValueError, EOFError) as exc:
            if strict:
                raise ValueError(
                    f"corrupt evaluation-cache entry {path}: {exc}"
                ) from exc
            return None
        if raw.ndim != 1 or raw.dtype != np.uint8 or raw.size < _ENTRY_HEADER_BYTES:
            return reject("corrupt (not a packed uint8 column)")
        num_bits = int.from_bytes(raw[:_ENTRY_HEADER_BYTES].tobytes(), "little")
        if raw.size != _ENTRY_HEADER_BYTES + (num_bits + 7) // 8:
            return reject(f"corrupt (payload does not match {num_bits} packed bits)")
        if num_bits > max_bits:
            if strict:
                raise ValueError(
                    f"stale evaluation-cache entry {path}: holds {num_bits} "
                    f"evaluations but the store has only {max_bits} sketches "
                    f"for subset {subset}; refusing to reuse it"
                )
            return None
        unpacked = np.unpackbits(
            np.asarray(raw[_ENTRY_HEADER_BYTES:], dtype=np.uint8), count=num_bits
        )
        return unpacked.astype(np.int8)

    def _disk_get(
        self, subset: Subset, value: Tuple[int, ...], num_users: int
    ) -> np.ndarray | None:
        """Cached column from this directory or a validated seed, or ``None``."""
        if self._dir is None:
            return None
        path = self._entry_path(subset, value)
        column = self._read_entry(path, num_users, subset, strict=True)
        if column is not None:
            return column
        entry_name = os.path.basename(path)
        for seed_dir, seedable in self._seed_dirs:
            limit = seedable.get(subset)
            if limit is None:
                continue
            seeded = self._read_entry(
                os.path.join(seed_dir, entry_name), limit, subset, strict=False
            )
            if seeded is not None:
                # A validated prefix of the current column.  A strict
                # prefix is tail-extended by the caller and re-spilled at
                # full length; an already-full column (growth added only
                # new subsets) is re-spilled here, so this directory
                # never stays dependent on the seed's survival.  The
                # seed directory itself is never written to.
                if seeded.size == num_users:
                    self._disk_put(subset, value, seeded)
                return seeded
        return None

    def _disk_put(self, subset: Subset, value: Tuple[int, ...], bits: np.ndarray) -> None:
        if self._dir is None:
            return
        # The store grew past the hashed snapshot: the directory name no
        # longer describes this store, so stop persisting into it.
        if self.store.num_users(subset) != self._column_sizes.get(subset):
            return
        self._atomic_write(self._entry_path(subset, value), self._pack_entry(bits))
        # Sweeping is deferred to the end of the bits() batch: a cold
        # wide marginal writes up to 2**12 entries in one call, and a
        # directory scan per write would be quadratic in stat calls.
        self._dirty = True

    def _sweep(self) -> None:
        """Evict least-recently-used entries until the directory fits the
        budget.

        mtime ascending = least recently touched first (reads refresh it
        under a budget).  ``meta.json`` and in-flight ``.tmp`` files are
        never candidates, and eviction is a plain ``unlink`` — an entry a
        sibling process already opened (or memory-mapped) stays readable
        until it drops the handle; only future opens miss.
        """
        if self._dir is None or self._budget is None:
            return
        # Flush this process's read recency to entry mtimes *before*
        # deciding what to evict — hits are recorded as cheap set adds on
        # the hot path and paid as syscalls only here, so the eviction
        # order is true LRU with respect to everything this cache served
        # since the previous sweep.
        for used_key in self._used_since_sweep:
            try:
                os.utime(self._entry_path(*used_key))
            except OSError:
                pass
        self._used_since_sweep.clear()
        entries = []
        try:
            with os.scandir(self._dir) as it:
                for entry in it:
                    if not entry.name.endswith(".npy"):
                        continue
                    try:
                        stat = entry.stat()
                    except OSError:
                        continue
                    entries.append((stat.st_mtime_ns, entry.name, entry.path, stat.st_size))
        except OSError:
            return
        total = sum(size for _, _, _, size in entries)
        if total <= self._budget:
            return
        self.stats["sweeps"] += 1
        for _, _, path, size in sorted(entries):
            if total <= self._budget:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.stats["swept_entries"] += 1
            self.stats["swept_bytes"] += size

    _LOCK_FILENAME = ".sweep-lock"

    @contextlib.contextmanager
    def _sweep_lock(self):
        """Serialize sibling writers' [write-batch + sweep] critical sections.

        With a byte budget, each ``bits()`` batch ends in an LRU sweep
        whose eviction decision scans the whole directory; two sibling
        processes (e.g. shard workers sharing one ``cache_budget_bytes``)
        interleaving writes *after* each other's scans could both leave
        the directory over budget with nobody left to notice.  An
        exclusive ``flock`` on a lock file, held for the duration of the
        batch, makes [writes + sweep] atomic across processes: the last
        critical section to run sees every entry, so the budget is a
        hard invariant once the writers exit — at the price of sibling
        writers serializing their batches.  The lock file itself is
        never an eviction candidate (the sweep only considers ``*.npy``)
        and the protocol degrades to the old per-process soft budget
        where ``flock`` is unavailable.
        """
        if self._dir is None or self._budget is None or fcntl is None:
            yield
            return
        path = os.path.join(self._dir, self._LOCK_FILENAME)
        try:
            fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
        except FileNotFoundError:
            # The directory was removed out from under us; recreate it,
            # matching _atomic_write's contract.
            os.makedirs(self._dir, exist_ok=True)
            fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing the descriptor releases the flock

    def bits(self, subset: Subset, values: Sequence[Tuple[int, ...]]) -> List[np.ndarray]:
        """Per-user virtual bit vectors for several values of one subset.

        Each vector is bitwise identical to
        ``estimator.evaluations(store.sketches_for(subset), value)``.
        """
        for value in values:
            if len(value) != len(subset):
                raise ValueError(
                    f"value length {len(value)} does not match subset size {len(subset)}"
                )
            # Strict 0/1 validation up front: entry paths hash the value
            # bytes, so a masked bit would alias two distinct queries.
            validate_value_bits(value)
        with self._sweep_lock():
            return self._bits_batch(subset, values)

    def _bits_batch(
        self, subset: Subset, values: Sequence[Tuple[int, ...]]
    ) -> List[np.ndarray]:
        """One batch in three phases: classify under the mutex, evaluate
        the PRF outside it, publish under the mutex again.

        The expensive middle phase (the block PRF calls — GIL-released
        in the compiled kernel tier) holds no lock, so concurrent cold
        batches from a serving thread pool overlap on multiple cores.
        Two threads missing the same ``(subset, value)`` both compute
        it; the columns are deterministic and bit-identical, so the
        duplicate insert is wasted work, never a wrong answer.
        """
        num_users = self.store.num_users(subset)
        # The store column feeds the PRF directly — the query hot path
        # never materialises per-Sketch records (store format v2) — but
        # it is only fetched when a miss or tail extension needs it: the
        # all-hit path answers from the cache in O(values).
        store_column = None

        def column() -> SketchColumn:
            nonlocal store_column
            if store_column is None:
                store_column = self.store.column_for(subset)
            return store_column

        resolved: dict[Tuple[int, ...], np.ndarray] = {}
        misses: List[Tuple[int, ...]] = []
        # Prefix entries grouped by prefix length, so each distinct tail
        # resolves in ONE block call covering every affected value (a
        # store seeded from an older cache generation hits this path for
        # every entry at once).
        extensions: dict[int, List[Tuple[Tuple[int, ...], np.ndarray]]] = {}
        seen: set = set()
        with self._mutex:
            for value in values:
                if value in seen:
                    continue
                seen.add(value)
                cached = self._bits.get((subset, value))
                if cached is None:
                    cached = self._disk_get(subset, value, num_users)
                    if cached is not None:
                        self._remember((subset, value), cached)
                else:
                    self._touch((subset, value))
                if cached is not None and cached.size == num_users:
                    self.stats["hits"] += 1
                    if self._budget is not None:
                        # Recency for the LRU sweep: recorded in-process here
                        # (a set add — the warm hot path makes no syscalls)
                        # and flushed to entry mtimes when a sweep runs.
                        self._used_since_sweep.add((subset, value))
                    resolved[value] = cached
                elif cached is not None and 0 < cached.size < num_users:
                    # A valid prefix (in-memory store growth, or a column
                    # seeded from an older directory): reused, so a hit —
                    # only the newly-published tail costs PRF work, batched
                    # per prefix length below.
                    self.stats["hits"] += 1
                    extensions.setdefault(cached.size, []).append((value, cached))
                else:
                    self.stats["misses"] += 1
                    misses.append(value)
        # -- PRF work, no lock held ------------------------------------
        tails: List[Tuple[int, List[Tuple[Tuple[int, ...], np.ndarray]], np.ndarray]] = []
        for prefix_size, group in extensions.items():
            tail_block = self.estimator.evaluations_block_columns(
                subset,
                column().user_ids[prefix_size:],
                column().keys[prefix_size:],
                [value for value, _ in group],
            )
            tails.append((prefix_size, group, tail_block))
        block = None
        if misses:
            block = self.estimator.evaluations_block_columns(
                subset, column().user_ids, column().keys, misses
            )
        # -- publish ----------------------------------------------------
        with self._mutex:
            for _prefix_size, group, tail_block in tails:
                for j, (value, cached) in enumerate(group):
                    grown = np.concatenate([cached, tail_block[:, j]])
                    self._remember((subset, value), grown)
                    resolved[value] = grown
                    self._disk_put(subset, value, grown)
            if block is not None:
                for j, value in enumerate(misses):
                    column_bits = np.ascontiguousarray(block[:, j])
                    self._remember((subset, value), column_bits)
                    resolved[value] = column_bits
                    self._disk_put(subset, value, column_bits)
            if self._dirty:
                self._sweep()
                self._dirty = False
        return [resolved[value] for value in values]

    def estimates(
        self, subset: Subset, values: Sequence[Tuple[int, ...]], delta: float = 0.05
    ) -> List[QueryEstimate]:
        """Algorithm 2 estimates for many values, through the cache."""
        return [
            self.estimator.estimate_from_bits(bits, delta=delta)
            for bits in self.bits(subset, values)
        ]

    def entries_snapshot(self) -> dict:
        """Copy of every *full-length* in-memory entry, keyed
        ``(subset, value)``.

        The warm-handoff export surface for live rebalancing: a donor
        shard carves these columns row-wise at the range boundary and
        ships the moving slice alongside the handoff store, so the
        recipient starts warm.  Prefix entries (store grew since they
        were cached) are skipped — a carved prefix would misalign
        against the handoff columns.
        """
        with self._mutex:
            return {
                key: bits.copy()
                for key, bits in self._bits.items()
                if bits.size == self.store.num_users(key[0])
            }

    def seed_entry(
        self, subset: Subset, value: Tuple[int, ...], bits: np.ndarray
    ) -> None:
        """Install one precomputed full column (the warm-handoff import).

        The inverse of :meth:`entries_snapshot`: a worker adopting or
        shedding a user range seeds its rebuilt cache with the carried
        slices, then re-spills them to disk so a later watchdog restart
        rejoins warm.  The column must cover the store's current
        ``num_users`` exactly — carried state is never allowed to alias
        a differently-sized column.
        """
        bits = np.ascontiguousarray(np.asarray(bits))
        expected = self.store.num_users(subset)
        if bits.size != expected:
            raise ValueError(
                f"seeded column for subset {subset} holds {bits.size} "
                f"evaluations but the store has {expected}"
            )
        with self._sweep_lock():
            with self._mutex:
                self._remember((tuple(subset), tuple(value)), bits)
                self._disk_put(tuple(subset), tuple(value), bits)
                if self._dirty:
                    self._sweep()
                    self._dirty = False

    def info(self) -> Tuple[int, int]:
        """(entries, cached evaluations) currently held."""
        return len(self._bits), sum(bits.size for bits in self._bits.values())


class MissingSketchError(KeyError):
    """Raised when a query needs a subset that nobody published.

    The message lists both the missing subset and what *is* available, so
    the fix (extend the publishing policy) is immediate.
    """


def search_exact_cover(
    target: Subset, subsets: Sequence[Subset]
) -> Optional[List[Subset]]:
    """Exact-cover search: express ``target`` as a disjoint union of
    ``subsets``.  Candidate lists are tiny (a publishing policy rarely
    has more than a few hundred subsets), so a simple backtracking
    search is plenty.

    Module-level because the single-store engine and the shard
    coordinator must pick the *same* partition for the same catalog —
    identical candidate order (``subsets`` insertion order, stably
    sorted by length descending) is part of what makes distributed
    Appendix F reductions bit-identical.
    """
    remaining = frozenset(target)
    candidates = [s for s in subsets if set(s) <= remaining and s]
    candidates.sort(key=len, reverse=True)

    def search(uncovered: frozenset, start: int) -> Optional[List[Subset]]:
        if not uncovered:
            return []
        for index in range(start, len(candidates)):
            candidate = candidates[index]
            if set(candidate) <= uncovered:
                rest = search(uncovered - set(candidate), index + 1)
                if rest is not None:
                    return [candidate] + rest
        return None

    return search(remaining, 0)


class QueryEngine:
    """Analyst-facing query interface over published sketches.

    ``execute`` is thread-safe for **serving** (concurrent calls against
    a fixed store, as :class:`~repro.server.remote.RemoteServer`'s
    dispatch pool issues them): the evaluation cache and the two memo
    caches take internal locks around their bookkeeping while the PRF
    block work — GIL-released in the compiled kernel tier — runs outside
    them, and a stateless PRF plus deterministic columns make racing
    recomputation harmless.  Publishing into the store concurrently with
    queries is *not* part of the contract — collection and serving
    remain separate phases.

    Parameters
    ----------
    schema:
        Attribute layout (public metadata).
    store:
        The published sketches.
    estimator:
        Algorithm 2 implementation (carries the public PRF and ``p``).
    cache_dir:
        Optional directory for the persistent evaluation cache: computed
        ``(subset, value)`` columns are spilled as bit-packed files keyed
        by the store's content hash, so engine restarts and sibling
        processes querying the same store skip the PRF entirely.
        ``None`` (default) keeps the cache in-memory only.
    cache_budget_bytes:
        Optional size cap for the persistent cache directory; exceeding
        it triggers an LRU sweep over the entry files.  ``0`` disables
        persistence (``cache_dir`` is then ignored), ``None`` (default)
        leaves the directory unbounded.
    memory_budget_bytes:
        Optional byte cap for the in-process evaluation cache (LRU
        eviction past the cap); ``None`` (default) leaves it unbounded.
    generation_ttl_seconds:
        Opt-in age-out for superseded cache generations: sibling
        ``store-*`` directories untouched for longer than this many
        seconds are reclaimed when the engine starts.  ``None``
        (default) never deletes them.
    """

    def __init__(
        self,
        schema: Schema,
        store: SketchStore,
        estimator: SketchEstimator,
        cache_dir: str | os.PathLike | None = None,
        cache_budget_bytes: int | None = None,
        memory_budget_bytes: int | None = None,
        generation_ttl_seconds: float | None = None,
    ) -> None:
        self.schema = schema
        self.store = store
        self.estimator = estimator
        self.cache = SketchEvaluationCache(
            store, estimator, cache_dir=cache_dir,
            cache_budget_bytes=cache_budget_bytes,
            memory_budget_bytes=memory_budget_bytes,
            generation_ttl_seconds=generation_ttl_seconds,
        )
        # Exact-cover partitions are pure functions of (target, published
        # subsets): memoised until the store's subset list changes (plan
        # execution re-derives the same partition for every term group).
        self._partition_cache: dict[Subset, Optional[List[Subset]]] = {}
        self._partition_snapshot: Tuple[Subset, ...] = store.subsets
        # Aligned intersections are pure functions of (subset tuple,
        # column sizes) — store columns are append-only, so unchanged
        # sizes mean unchanged columns.  Memoising them makes a warm
        # multi-subset query pure gather + linear solve.
        self._aligned_cache: dict[
            Tuple[Subset, ...], Tuple[Tuple[int, ...], AlignedColumns]
        ] = {}
        # Guards the two memo dicts above when `execute` runs on a
        # serving thread pool.  Both memoise *pure* functions of the
        # store state, so the pattern is look-up under the lock, compute
        # outside it, insert under it — racing threads at worst compute
        # the same value twice, never a different one.
        self._memo_lock = threading.Lock()

    # ------------------------------------------------------------------
    # The unified dispatch surface
    # ------------------------------------------------------------------
    def execute(self, request: QueryRequest) -> QueryResponse:
        """Answer one typed protocol request — the single dispatch point.

        Every public query method below is a thin wrapper that builds
        the matching :class:`~repro.protocol.messages.QueryRequest` and
        unwraps the response, so an in-process call and a remote call
        arriving over :mod:`repro.server.remote` execute byte-for-byte
        the same handler.  Results are native (floats, lists, arrays,
        :class:`QueryEstimate` objects); the protocol layer lowers them
        to JSON only when a wire is actually involved.

        Raises
        ------
        ProtocolError
            ``code="unknown_kind"`` for a request kind this engine has
            no handler for.
        MissingSketchError, ValueError
            Exactly as the corresponding public method would.
        """
        handler = self._HANDLERS.get(request.kind)
        if handler is None:
            raise ProtocolError(
                "unknown_kind",
                f"unknown request kind {request.kind!r}; this engine answers "
                f"{sorted(self._HANDLERS)}",
            )
        return QueryResponse(kind=request.kind, result=handler(self, request))

    # ------------------------------------------------------------------
    # Conjunctive primitives (wrappers over execute)
    # ------------------------------------------------------------------
    def estimate(self, subset: Sequence[int], value: Sequence[int]) -> QueryEstimate:
        """Full Algorithm 2 estimate (with CI) for a directly-sketched subset."""
        return self.estimate_many(subset, [value])[0]

    def estimate_many(
        self, subset: Sequence[int], values: Sequence[Sequence[int]]
    ) -> List[QueryEstimate]:
        """Algorithm 2 estimates for many candidate values in one block call."""
        return list(self.execute(EstimateManyRequest.build(subset, values)).result)

    def marginal(self, subset: Sequence[int]) -> np.ndarray:
        """Estimated fraction for *every* candidate value of a subset.

        The full-marginal workload — all ``2**|B|`` de-biased frequencies
        from one block evaluation (values enumerated MSB-first).
        """
        return np.asarray(self.execute(MarginalRequest.build(subset)).result)

    def fraction(self, subset: Sequence[int], value: Sequence[int]) -> float:
        """Fraction of users with ``d_B = v``; combines sketches if needed.

        The Appendix F combination path is object-free and cache-fed: the
        partition's pieces are user-aligned at the array level
        (:meth:`~repro.server.collector.SketchStore.aligned_columns`) and
        each piece's virtual bits come from the full cached ``(subset,
        value)`` evaluation column, gathered by fancy-indexing — a warm
        cache answers without any new PRF call, a cold one costs one
        block call per piece.
        """
        return self.execute(FractionRequest.build(subset, value)).result

    def count(self, subset: Sequence[int], value: Sequence[int]) -> float:
        """Estimated count ``I(B, v)``."""
        return self.counts_block(subset, [value])[0]

    def counts_block(
        self, subset: Sequence[int], values: Sequence[Tuple[int, ...]]
    ) -> List[float]:
        """Estimated counts for several values of one subset.

        Directly-sketched subsets resolve every value from a single cached
        block evaluation.  Partition-covered subsets go through the
        cache-fed Appendix F combination **batched**: one aligned
        intersection and one cached column fetch per partition piece
        (covering every requested projection), instead of redoing both
        per value.  Each entry equals ``count`` exactly.
        """
        return list(self.execute(CountsBlockRequest.build(subset, values)).result)

    def conjunction(self, query: Conjunction) -> float:
        """Fraction of users satisfying a conjunction of literals."""
        return self.fraction(query.subset, query.value)

    # ------------------------------------------------------------------
    # Request handlers (the actual query-family implementations)
    # ------------------------------------------------------------------
    def _exec_estimate_many(self, request: EstimateManyRequest) -> List[QueryEstimate]:
        key = request.subset
        if not self.store.has_subset(key):
            raise MissingSketchError(
                f"subset {key} was not sketched; available subsets: "
                f"{sorted(self.store.subsets)}"
            )
        return self.cache.estimates(key, list(request.values))

    def _exec_marginal(self, request: MarginalRequest) -> np.ndarray:
        key = request.subset
        width = len(key)
        if width > 12:
            raise ValueError(
                f"a marginal over 2**{width} values is not sensible; "
                "query specific values instead"
            )
        candidates = [int_to_bits(v, width) for v in range(1 << width)]
        estimates = self.estimate_many(key, candidates)
        return np.asarray([e.fraction for e in estimates])

    def _exec_fraction(self, request: FractionRequest) -> float:
        key, value = request.subset, request.value
        if self.store.has_subset(key):
            return self.estimate(key, value).fraction
        partition = self._require_partition(key)
        values = self._project_value(key, value, partition)
        columns, _ = self._aligned_cached_bits(partition, values)
        combined = combine_aligned_bits(columns, self.estimator.params.p)
        return combined.clamped_fraction

    def _exec_counts_block(self, request: CountsBlockRequest) -> List[float]:
        key = request.subset
        value_ts = list(request.values)
        if self.store.has_subset(key):
            return [estimate.count for estimate in self.cache.estimates(key, value_ts)]
        if not value_ts:
            return []
        partition = self._require_partition(key)
        aligned = self._aligned_columns(tuple(partition))
        num_users = len(aligned.user_ids)
        # projections[j][i] = value j projected onto partition piece i.
        projections = [
            self._project_value(key, value_t, partition) for value_t in value_ts
        ]
        gathered: List[List[np.ndarray]] = []
        for i, (piece, index) in enumerate(zip(partition, aligned.indices)):
            fulls = self.cache.bits(
                piece, [projections[j][i] for j in range(len(value_ts))]
            )
            gathered.append([np.asarray(full)[index] for full in fulls])
        p = self.estimator.params.p
        counts = []
        for j in range(len(value_ts)):
            combined = combine_aligned_bits(
                [gathered[i][j] for i in range(len(partition))], p
            )
            counts.append(combined.clamped_fraction * num_users)
        return counts

    # ------------------------------------------------------------------
    # Plan execution and Section 4.1 conveniences
    # ------------------------------------------------------------------
    def evaluate(self, plan: LinearPlan) -> float:
        """Execute a compiled linear plan against the sketch store.

        Terms are grouped by subset and each group answered from one PRF
        block call (plus the cache), so a plan touching ``q`` subsets
        costs ``q`` block evaluations instead of ``len(plan.terms)``
        full passes over the sketches.
        """
        return self.execute(EvaluatePlanRequest.from_plan(plan)).result

    def sum(self, name: str) -> float:
        """Estimated ``sum_u a_u`` (eq. 4)."""
        return self.evaluate(sum_plan(self.schema, name))

    def mean(self, name: str) -> float:
        """Estimated attribute mean."""
        subset = (self.schema.bit(name, 1),)
        num_users = self.store.num_users(subset)
        if num_users == 0:
            raise MissingSketchError(
                f"no per-bit sketches for attribute {name!r}; publish its bits first"
            )
        return self.sum(name) / num_users

    def inner_product(self, name_a: str, name_b: str) -> float:
        """Estimated ``sum_u a_u b_u`` via ``k^2`` two-bit queries."""
        return self.evaluate(inner_product_plan(self.schema, name_a, name_b))

    def second_moment(self, name: str) -> float:
        """Estimated ``sum_u a_u^2``."""
        return self.evaluate(moment_plan(self.schema, name))

    def variance(self, name: str) -> float:
        """Estimated population variance ``E[a^2] - E[a]^2``.

        The "higher moments" the abstract promises, assembled from the
        eq. 4 sum and the second-moment plan.  Clamped at 0 — sampling
        noise can push the raw difference slightly negative.
        """
        subset = (self.schema.bit(name, 1),)
        num_users = self.store.num_users(subset)
        if num_users == 0:
            raise MissingSketchError(
                f"no per-bit sketches for attribute {name!r}; publish its bits first"
            )
        mean = self.sum(name) / num_users
        second = self.second_moment(name) / num_users
        return max(0.0, second - mean**2)

    # ------------------------------------------------------------------
    # Categorical queries (whole-attribute sketches)
    # ------------------------------------------------------------------
    def _attribute_sketches(self, name: str):
        subset = self.schema.bits(name)
        if not self.store.has_subset(subset):
            raise MissingSketchError(
                f"attribute {name!r} was not sketched as a whole subset; "
                "categorical queries need an attribute publishing policy"
            )
        return self.store.sketches_for(subset)

    def histogram(self, name: str, normalize: bool = True) -> np.ndarray:
        """De-biased frequency of every value of a categorical attribute."""
        return categorical_histogram(
            self.estimator, self._attribute_sketches(name), self.schema, name,
            normalize=normalize,
        )

    def mode(self, name: str) -> Tuple[int, float]:
        """Most frequent category and its estimated frequency."""
        return estimate_mode(
            self.estimator, self._attribute_sketches(name), self.schema, name
        )

    def top_k(self, name: str, k: int) -> List[Tuple[int, float]]:
        """The ``k`` most frequent categories of an attribute."""
        return top_k_categories(
            self.estimator, self._attribute_sketches(name), self.schema, name, k
        )

    def count_less_than(self, name: str, threshold: int) -> float:
        """Estimated ``|{u : a_u < c}|``."""
        return self.evaluate(less_than_plan(self.schema, name, threshold))

    def count_less_equal(self, name: str, threshold: int) -> float:
        """Estimated ``|{u : a_u <= c}|``."""
        return self.evaluate(less_equal_plan(self.schema, name, threshold))

    def count_range(self, name: str, low: int, high: int) -> float:
        """Estimated ``|{u : low <= a_u <= high}|``."""
        return self.evaluate(range_plan(self.schema, name, low, high))

    def count_equal_and_less(
        self, name_eq: str, value_eq: int, name_lt: str, threshold: int
    ) -> float:
        """Estimated ``|{u : a_u = c  and  b_u < d}|``."""
        return self.evaluate(
            equal_and_less_plan(self.schema, name_eq, value_eq, name_lt, threshold)
        )

    def sum_where_less(self, name_sum: str, name_cond: str, threshold: int) -> float:
        """Estimated ``sum of b_u over users with a_u < c``."""
        return self.evaluate(
            sum_where_less_plan(self.schema, name_sum, name_cond, threshold)
        )

    def mean_where_less_equal(self, name_sum: str, name_cond: str, threshold: int) -> float:
        """Estimated conditional mean of ``b`` over users with ``a <= c``."""
        numerator = self.evaluate(
            sum_where_less_equal_plan(self.schema, name_sum, name_cond, threshold)
        )
        denominator = self.count_less_equal(name_cond, threshold)
        if denominator <= 0:
            raise ZeroDivisionError(
                f"estimated zero users satisfy {name_cond} <= {threshold}"
            )
        return numerator / denominator

    def decision_tree(self, root: DecisionNode) -> float:
        """Estimated fraction of users accepted by a decision tree."""
        num_users = self._max_users()
        return self.evaluate(decision_tree_plan(root)) / num_users

    def any_of(self, queries: Sequence[Conjunction]) -> float:
        """Fraction of users satisfying at least one conjunction.

        Appendix F's complement trick: reconstruct the per-user count of
        satisfied components and return ``1 - Pr[none]``.  Each component
        conjunction's subset must have been sketched directly.  The
        component indicator columns are full cached evaluation vectors
        gathered onto the aligned users — a warm cache answers with zero
        new PRF block calls, a cold one with one per component subset.
        """
        if not queries:
            raise ValueError("need at least one conjunction")
        return self.execute(
            AnyOfRequest.build([(q.subset, q.value) for q in queries])
        ).result

    # ------------------------------------------------------------------
    # Virtual-bit queries (Appendix E, exactly-l)
    # ------------------------------------------------------------------
    def bit_matrix(self, positions: Sequence[int], target: int = 1) -> np.ndarray:
        """p-perturbed indicator matrix from per-bit sketches.

        Column ``j`` holds ``H(id, {pos_j}, (target,), s)`` per user — a
        p-perturbed indicator of ``d[pos_j] = target``.  Requires a
        per-bit publishing policy for the positions involved.
        """
        return self.execute(BitMatrixRequest.build(positions, target)).result

    def exactly_l(self, positions: Sequence[int], l: int) -> float:
        """Fraction of users with exactly ``l`` of the given bits set."""
        return self.execute(ExactlyLRequest.build(positions, l)).result

    def addition_below(self, name_a: str, name_b: str, power: int) -> float:
        """Fraction of users with ``a_u + b_u < 2**power`` (Appendix E)."""
        matrix_a = self.bit_matrix(self.schema.bits(name_a), target=1)
        matrix_b = self.bit_matrix(self.schema.bits(name_b), target=1)
        return addition_interval_fraction(
            matrix_a, matrix_b, self.estimator.params.p, power
        )

    # ------------------------------------------------------------------
    # Request handlers (continued) and the dispatch table
    # ------------------------------------------------------------------
    def _exec_any_of(self, request: AnyOfRequest) -> float:
        if not request.queries:
            raise ValueError("need at least one conjunction")
        subsets = [subset for subset, _value in request.queries]
        for subset in subsets:
            if not self.store.has_subset(subset):
                raise MissingSketchError(
                    f"subset {subset} was not sketched; disjunctions need "
                    "each component's subset published directly"
                )
        columns, _ = self._aligned_cached_bits(
            subsets, [value for _subset, value in request.queries]
        )
        return disjunction_fraction_from_bits(columns, self.estimator.params.p)

    def _exec_bit_matrix(self, request: BitMatrixRequest) -> np.ndarray:
        subsets = [(int(pos),) for pos in request.positions]
        for subset in subsets:
            if not self.store.has_subset(subset):
                raise MissingSketchError(
                    f"bit {subset[0]} was not sketched individually; "
                    "use a per-bit publishing policy"
                )
        target_t = (int(request.target),)
        columns, _ = self._aligned_cached_bits(subsets, [target_t] * len(subsets))
        return np.column_stack(columns)

    def _exec_exactly_l(self, request: ExactlyLRequest) -> float:
        bits = self.bit_matrix(request.positions, target=1)
        return exactly_l_fraction(bits, self.estimator.params.p, request.l)

    def _exec_evaluate_plan(self, request: EvaluatePlanRequest) -> float:
        return evaluate_plan(
            request.to_plan(), self.count, block_count_fn=self.counts_block
        )

    def _exec_ping(self, request: PingRequest) -> dict:
        # Liveness only: answered in-process so a local engine and a
        # remote perimeter agree that ping is a valid, free request.
        return {"ok": True}

    #: kind -> handler; the one table :meth:`execute` dispatches through.
    _HANDLERS = {
        CountsBlockRequest.kind: _exec_counts_block,
        EstimateManyRequest.kind: _exec_estimate_many,
        MarginalRequest.kind: _exec_marginal,
        FractionRequest.kind: _exec_fraction,
        AnyOfRequest.kind: _exec_any_of,
        ExactlyLRequest.kind: _exec_exactly_l,
        BitMatrixRequest.kind: _exec_bit_matrix,
        EvaluatePlanRequest.kind: _exec_evaluate_plan,
        PingRequest.kind: _exec_ping,
    }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _max_users(self) -> int:
        counts = [self.store.num_users(s) for s in self.store.subsets]
        if not counts:
            raise MissingSketchError("the sketch store is empty")
        return max(counts)

    def _aligned_cached_bits(
        self,
        subsets: Sequence[Sequence[int]],
        values: Sequence[Sequence[int]],
    ) -> Tuple[List[np.ndarray], int]:
        """Per-subset virtual-bit columns gathered onto the aligned users.

        The object-free multi-subset primitive every combination path
        shares: intersect the subsets' columns at the array level, fetch
        each subset's **full** cached evaluation column for its value
        (one PRF block call on a cold cache, none on a warm one), and
        gather the aligned rows by fancy-indexing.  Returns the per-
        subset columns plus the aligned user count; row ``u`` of every
        column belongs to the same user.
        """
        keys = [tuple(int(i) for i in s) for s in subsets]
        aligned = self._aligned_columns(tuple(keys))
        columns = []
        for key, index, value in zip(keys, aligned.indices, values):
            full = self.cache.bits(key, [tuple(int(bit) for bit in value)])[0]
            columns.append(np.asarray(full)[index])
        return columns, len(aligned.user_ids)

    def _aligned_columns(self, keys: Tuple[Subset, ...]) -> AlignedColumns:
        """Memoised :meth:`~repro.server.collector.SketchStore.aligned_columns`.

        Sound because store columns are append-only: the intersection is
        a pure function of the subset tuple and the column sizes, so an
        entry is reused until any participating column grows (and then
        recomputed, never patched).
        """
        sizes = tuple(self.store.num_users(key) for key in keys)
        with self._memo_lock:
            cached = self._aligned_cache.get(keys)
            if cached is not None and cached[0] == sizes:
                return cached[1]
        aligned = self.store.aligned_columns(keys)
        # Bounded FIFO: each entry holds O(M) index/id references, so an
        # analyst sweeping many distinct subset combinations must not
        # grow memory without limit — beyond the bound the oldest shape
        # is dropped and simply recomputed on its next use.
        with self._memo_lock:
            if len(self._aligned_cache) >= 64 and keys not in self._aligned_cache:
                self._aligned_cache.pop(next(iter(self._aligned_cache)))
            self._aligned_cache[keys] = (sizes, aligned)
        return aligned

    def _require_partition(self, target: Subset) -> List[Subset]:
        """The memoised partition of ``target``, or :class:`MissingSketchError`."""
        partition = self._find_partition(target)
        if partition is None:
            raise MissingSketchError(
                f"subset {target} is neither sketched nor a disjoint union of "
                f"sketched subsets; available: {sorted(self.store.subsets)}"
            )
        return partition

    def _find_partition(self, target: Subset) -> Optional[List[Subset]]:
        """Memoised exact-cover search (see :meth:`_search_partition`).

        The result is a pure function of ``(target, store.subsets)``:
        cached per target and invalidated wholesale when the store's
        subset list changes (publishing into an *existing* subset cannot
        change any partition).
        """
        subsets = self.store.subsets
        with self._memo_lock:
            if subsets != self._partition_snapshot:
                self._partition_cache.clear()
                self._partition_snapshot = subsets
            if target in self._partition_cache:
                return self._partition_cache[target]
        partition = self._search_partition(target)
        with self._memo_lock:
            self._partition_cache[target] = partition
        return partition

    def _search_partition(self, target: Subset) -> Optional[List[Subset]]:
        """Express ``target`` as a disjoint union of sketched subsets
        (see :func:`search_exact_cover`)."""
        return search_exact_cover(target, self.store.subsets)

    def _partition_users(self, target: Subset) -> int:
        partition = self._require_partition(target)
        return len(self._aligned_columns(tuple(partition)).user_ids)

    @staticmethod
    def _project_value(
        target: Subset, value: Tuple[int, ...], partition: List[Subset]
    ) -> List[Tuple[int, ...]]:
        lookup = dict(zip(target, value))
        return [tuple(lookup[pos] for pos in piece) for piece in partition]
