"""The sketch-backed query engine.

:class:`QueryEngine` is what a data analyst talks to.  It owns a
:class:`~repro.server.collector.SketchStore` (public data only) and answers:

* raw conjunctive counts, via Algorithm 2 when the subset was sketched
  directly, falling back to the Appendix F linear-system combination when
  the subset can be partitioned into sketched pieces;
* every compiled :class:`~repro.queries.conjunctive.LinearPlan` (sums,
  means, inner products, intervals, combined constraints, decision trees);
* the Appendix E addition interval and exactly-l-of-k queries, by
  manufacturing per-bit virtual matrices from single-bit sketches.

The engine never touches raw profiles — everything flows from published
sketches through the public PRF.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.combine import combine_sketch_groups
from ..core.estimator import QueryEstimate, SketchEstimator
from ..data.schema import Schema
from ..queries.ast import Conjunction
from ..queries.boolean import DecisionNode, decision_tree_plan, exactly_l_fraction
from ..queries.categorical import categorical_histogram, estimate_mode, top_k_categories
from ..queries.combined import (
    equal_and_less_plan,
    sum_where_less_equal_plan,
    sum_where_less_plan,
)
from ..data.encoding import int_to_bits
from ..queries.conjunctive import LinearPlan, evaluate_plan
from ..queries.disjunction import disjunction_fraction
from ..queries.interval import less_equal_plan, less_than_plan, range_plan
from ..queries.numeric import inner_product_plan, moment_plan, sum_plan
from ..queries.virtual import addition_interval_fraction
from .collector import SketchColumn, SketchStore

__all__ = [
    "MissingSketchError",
    "SketchEvaluationCache",
    "QueryEngine",
    "store_content_hash",
]

Subset = Tuple[int, ...]

_CACHE_FORMAT = "repro-eval-cache"
_CACHE_VERSION = 1
# Entries at or above this size are memory-mapped on read (zero-copy,
# shared page cache across sibling processes); smaller ones are read
# eagerly and the descriptor closed — a memmap pins one fd for the
# array's lifetime, and a wide marginal (up to 2**12 values) over small
# columns would otherwise exhaust the process fd limit.
_MMAP_THRESHOLD_BYTES = 1 << 23


def store_content_hash(store: SketchStore, prf) -> str:
    """Content hash identifying a store's queryable state under one PRF.

    Covers everything a ``(subset, value) -> bits`` evaluation depends on:
    the PRF identity (bias ``p`` and, when present, the public global key)
    and each subset column's user ids, keys, and bit widths — in column
    order, since cached vectors are positional.  The ``iterations``
    diagnostics are deliberately excluded: they never enter the PRF, so a
    store saved with or without them hashes (and caches) identically.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(b"repro-eval-cache-v1|")
    digest.update(repr(float(prf.p)).encode("ascii"))
    global_key = getattr(prf, "global_key", None)
    digest.update(b"|key|" + (global_key if global_key is not None else b"<none>"))
    for subset, column in sorted(store.to_columns().items()):
        digest.update(b"|B|" + ",".join(str(i) for i in subset).encode("ascii"))
        # Length-prefix every id: ids may themselves contain NULs (the
        # on-disk format round-trips them), so a bare separator join
        # would let distinct id columns collide.
        digest.update(b"|ids|")
        for user_id in column.user_ids:
            encoded = user_id.encode("utf-8")
            digest.update(len(encoded).to_bytes(4, "big") + encoded)
        digest.update(b"|keys|" + np.ascontiguousarray(column.keys).tobytes())
        digest.update(b"|bits|" + np.ascontiguousarray(column.num_bits).tobytes())
    return digest.hexdigest()


class SketchEvaluationCache:
    """Per-store ``(subset, value) -> bits`` evaluation cache.

    Stores are append-only per subset, so a cached vector is either
    current or a strict prefix of the current column; repeated queries
    (streaming dashboards, SuLQ free mode, privacy-audit workloads) never
    re-hash, and growth only costs evaluating the newly-published tail.
    Cache misses for several values of one subset resolve in a single PRF
    block call.

    With ``cache_dir`` the cache is **persistent**: every computed column
    is spilled as an int8 ``.npy`` file under
    ``cache_dir/store-<content-hash>/`` and read back memory-mapped, so a
    restarted process — or a sibling worker process pointed at the same
    directory — reuses PRF evaluations instead of recomputing them.  The
    directory is keyed by :func:`store_content_hash`, so a cache written
    for a different store (or a different PRF) can never be silently
    reused: a stale store lands in a different directory, and a tampered
    directory whose recorded hash disagrees with the current store is
    rejected with :class:`ValueError`.  Persistence requires a
    :attr:`~repro.core.prf.BiasedFunction.stateless` PRF — a memoising
    oracle's bits are not a pure function of the store, so sharing them
    across processes would be wrong.
    """

    def __init__(
        self,
        store: SketchStore,
        estimator: SketchEstimator,
        cache_dir: str | os.PathLike | None = None,
    ) -> None:
        self.store = store
        self.estimator = estimator
        self._bits: dict[Tuple[Subset, Tuple[int, ...]], np.ndarray] = {}
        self._dir: str | None = None
        self._column_sizes: dict[Subset, int] = {}
        if cache_dir is not None:
            if not self.estimator.prf.stateless:
                raise ValueError(
                    f"persistent caching needs a stateless PRF; "
                    f"{type(self.estimator.prf).__name__} memoises draws "
                    "in-process, so its evaluations cannot be shared across "
                    "processes or restarts"
                )
            store_hash = store_content_hash(store, self.estimator.prf)
            self._dir = os.path.join(os.fspath(cache_dir), f"store-{store_hash}")
            os.makedirs(self._dir, exist_ok=True)
            self._validate_or_write_meta(store_hash)
            # Snapshot of the column sizes the hash was computed over:
            # if the store grows afterwards the in-memory tail extension
            # stays correct, but the directory no longer describes the
            # store, so writes are suppressed (reads were full columns
            # taken before the growth, i.e. valid prefixes).
            self._column_sizes = {
                subset: store.num_users(subset) for subset in store.subsets
            }

    # ------------------------------------------------------------------
    # Persistent layer
    # ------------------------------------------------------------------
    def _validate_or_write_meta(self, store_hash: str) -> None:
        assert self._dir is not None
        meta_path = os.path.join(self._dir, "meta.json")
        if os.path.exists(meta_path):
            try:
                with open(meta_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                raise ValueError(
                    f"corrupt evaluation-cache directory {self._dir}: "
                    f"unreadable meta.json ({exc})"
                ) from exc
            if (
                not isinstance(meta, dict)
                or meta.get("format") != _CACHE_FORMAT
                or meta.get("version") != _CACHE_VERSION
                or meta.get("store_hash") != store_hash
            ):
                raise ValueError(
                    f"evaluation-cache directory {self._dir} was written for a "
                    f"different store or format (recorded "
                    f"{meta.get('store_hash') if isinstance(meta, dict) else meta!r}, "
                    f"expected {store_hash}); refusing to reuse it"
                )
            return
        meta = {
            "format": _CACHE_FORMAT,
            "version": _CACHE_VERSION,
            "store_hash": store_hash,
            "p": float(self.estimator.params.p),
        }
        self._atomic_write(meta_path, json.dumps(meta).encode("utf-8"))

    def _atomic_write(self, path: str, payload: bytes) -> None:
        """Write-then-rename so sibling processes never see partial files."""
        assert self._dir is not None
        fd, tmp_path = tempfile.mkstemp(dir=self._dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def _entry_path(self, subset: Subset, value: Tuple[int, ...]) -> str:
        assert self._dir is not None
        digest = hashlib.blake2b(digest_size=16)
        digest.update(",".join(str(i) for i in subset).encode("ascii"))
        digest.update(b"|v|" + bytes(int(bit) & 1 for bit in value))
        return os.path.join(self._dir, f"{digest.hexdigest()}.npy")

    def _disk_get(
        self, subset: Subset, value: Tuple[int, ...], num_users: int
    ) -> np.ndarray | None:
        """Memory-mapped cached column, or ``None`` on a clean miss."""
        if self._dir is None:
            return None
        path = self._entry_path(subset, value)
        try:
            size = os.path.getsize(path)
        except OSError:
            return None
        try:
            if size >= _MMAP_THRESHOLD_BYTES:
                column = np.load(path, mmap_mode="r", allow_pickle=False)
            else:
                with open(path, "rb") as handle:
                    column = np.load(handle, allow_pickle=False)
        except (OSError, ValueError, EOFError) as exc:
            raise ValueError(
                f"corrupt evaluation-cache entry {path}: {exc}"
            ) from exc
        if column.ndim != 1 or column.dtype != np.int8:
            raise ValueError(
                f"corrupt evaluation-cache entry {path}: expected a 1-D int8 "
                f"column, got shape {column.shape} dtype {column.dtype}"
            )
        if column.size > num_users:
            raise ValueError(
                f"stale evaluation-cache entry {path}: holds {column.size} "
                f"evaluations but the store has only {num_users} sketches for "
                f"subset {subset}; refusing to reuse it"
            )
        return column

    def _disk_put(self, subset: Subset, value: Tuple[int, ...], bits: np.ndarray) -> None:
        if self._dir is None:
            return
        # The store grew past the hashed snapshot: the directory name no
        # longer describes this store, so stop persisting into it.
        if self.store.num_users(subset) != self._column_sizes.get(subset):
            return
        buffer = io.BytesIO()
        np.save(buffer, np.ascontiguousarray(bits, dtype=np.int8))
        self._atomic_write(self._entry_path(subset, value), buffer.getvalue())

    def bits(self, subset: Subset, values: Sequence[Tuple[int, ...]]) -> List[np.ndarray]:
        """Per-user virtual bit vectors for several values of one subset.

        Each vector is bitwise identical to
        ``estimator.evaluations(store.sketches_for(subset), value)``.
        """
        for value in values:
            if len(value) != len(subset):
                raise ValueError(
                    f"value length {len(value)} does not match subset size {len(subset)}"
                )
        num_users = self.store.num_users(subset)
        # The store column feeds the PRF directly — the query hot path
        # never materialises per-Sketch records (store format v2) — but
        # it is only fetched when a miss or tail extension needs it: the
        # all-hit path answers from the cache in O(values).
        store_column = None

        def column() -> SketchColumn:
            nonlocal store_column
            if store_column is None:
                store_column = self.store.column_for(subset)
            return store_column

        resolved: dict[Tuple[int, ...], np.ndarray] = {}
        misses: List[Tuple[int, ...]] = []
        for value in values:
            if value in resolved:
                continue
            cached = self._bits.get((subset, value))
            if cached is None:
                cached = self._disk_get(subset, value, num_users)
                if cached is not None:
                    self._bits[(subset, value)] = cached
            if cached is not None and cached.size == num_users:
                resolved[value] = cached
            elif cached is not None and 0 < cached.size < num_users:
                tail = self.estimator.evaluations_block_columns(
                    subset,
                    column().user_ids[cached.size:],
                    column().keys[cached.size:],
                    [value],
                )
                grown = np.concatenate([cached, tail[:, 0]])
                self._bits[(subset, value)] = grown
                resolved[value] = grown
                self._disk_put(subset, value, grown)
            else:
                misses.append(value)
        if misses:
            block = self.estimator.evaluations_block_columns(
                subset, column().user_ids, column().keys, misses
            )
            for j, value in enumerate(misses):
                column_bits = np.ascontiguousarray(block[:, j])
                self._bits[(subset, value)] = column_bits
                resolved[value] = column_bits
                self._disk_put(subset, value, column_bits)
        return [resolved[value] for value in values]

    def estimates(
        self, subset: Subset, values: Sequence[Tuple[int, ...]], delta: float = 0.05
    ) -> List[QueryEstimate]:
        """Algorithm 2 estimates for many values, through the cache."""
        return [
            self.estimator.estimate_from_bits(bits, delta=delta)
            for bits in self.bits(subset, values)
        ]

    def info(self) -> Tuple[int, int]:
        """(entries, cached evaluations) currently held."""
        return len(self._bits), sum(bits.size for bits in self._bits.values())


class MissingSketchError(KeyError):
    """Raised when a query needs a subset that nobody published.

    The message lists both the missing subset and what *is* available, so
    the fix (extend the publishing policy) is immediate.
    """


class QueryEngine:
    """Analyst-facing query interface over published sketches.

    Parameters
    ----------
    schema:
        Attribute layout (public metadata).
    store:
        The published sketches.
    estimator:
        Algorithm 2 implementation (carries the public PRF and ``p``).
    cache_dir:
        Optional directory for the persistent evaluation cache: computed
        ``(subset, value)`` columns are spilled as memory-mapped int8
        files keyed by the store's content hash, so engine restarts and
        sibling processes querying the same store skip the PRF entirely.
        ``None`` (default) keeps the cache in-memory only.
    """

    def __init__(
        self,
        schema: Schema,
        store: SketchStore,
        estimator: SketchEstimator,
        cache_dir: str | os.PathLike | None = None,
    ) -> None:
        self.schema = schema
        self.store = store
        self.estimator = estimator
        self.cache = SketchEvaluationCache(store, estimator, cache_dir=cache_dir)

    # ------------------------------------------------------------------
    # Conjunctive primitives
    # ------------------------------------------------------------------
    def estimate(self, subset: Sequence[int], value: Sequence[int]) -> QueryEstimate:
        """Full Algorithm 2 estimate (with CI) for a directly-sketched subset."""
        key = tuple(int(i) for i in subset)
        if not self.store.has_subset(key):
            raise MissingSketchError(
                f"subset {key} was not sketched; available subsets: "
                f"{sorted(self.store.subsets)}"
            )
        value_t = tuple(int(bit) for bit in value)
        return self.cache.estimates(key, [value_t])[0]

    def estimate_many(
        self, subset: Sequence[int], values: Sequence[Sequence[int]]
    ) -> List[QueryEstimate]:
        """Algorithm 2 estimates for many candidate values in one block call."""
        key = tuple(int(i) for i in subset)
        if not self.store.has_subset(key):
            raise MissingSketchError(
                f"subset {key} was not sketched; available subsets: "
                f"{sorted(self.store.subsets)}"
            )
        value_ts = [tuple(int(bit) for bit in v) for v in values]
        return self.cache.estimates(key, value_ts)

    def marginal(self, subset: Sequence[int]) -> np.ndarray:
        """Estimated fraction for *every* candidate value of a subset.

        The full-marginal workload — all ``2**|B|`` de-biased frequencies
        from one block evaluation (values enumerated MSB-first).
        """
        key = tuple(int(i) for i in subset)
        width = len(key)
        if width > 12:
            raise ValueError(
                f"a marginal over 2**{width} values is not sensible; "
                "query specific values instead"
            )
        candidates = [int_to_bits(v, width) for v in range(1 << width)]
        estimates = self.estimate_many(key, candidates)
        return np.asarray([e.fraction for e in estimates])

    def fraction(self, subset: Sequence[int], value: Sequence[int]) -> float:
        """Fraction of users with ``d_B = v``; combines sketches if needed."""
        key = tuple(int(i) for i in subset)
        if self.store.has_subset(key):
            return self.estimate(key, value).fraction
        partition = self._find_partition(key)
        if partition is None:
            raise MissingSketchError(
                f"subset {key} is neither sketched nor a disjoint union of "
                f"sketched subsets; available: {sorted(self.store.subsets)}"
            )
        values = self._project_value(key, tuple(int(v) for v in value), partition)
        groups = self.store.aligned_groups(partition)
        combined = combine_sketch_groups(self.estimator, groups, values)
        return combined.clamped_fraction

    def count(self, subset: Sequence[int], value: Sequence[int]) -> float:
        """Estimated count ``I(B, v)``."""
        key = tuple(int(i) for i in subset)
        num_users = (
            self.store.num_users(key)
            if self.store.has_subset(key)
            else self._partition_users(key)
        )
        return self.fraction(subset, value) * num_users

    def counts_block(
        self, subset: Sequence[int], values: Sequence[Tuple[int, ...]]
    ) -> List[float]:
        """Estimated counts for several values of one subset.

        Directly-sketched subsets resolve every value from a single cached
        block evaluation; subsets needing the Appendix F combination fall
        back to the per-value path.  Each entry equals ``count`` exactly.
        """
        key = tuple(int(i) for i in subset)
        value_ts = [tuple(int(bit) for bit in v) for v in values]
        if not self.store.has_subset(key):
            return [self.count(key, value) for value in value_ts]
        return [estimate.count for estimate in self.cache.estimates(key, value_ts)]

    def conjunction(self, query: Conjunction) -> float:
        """Fraction of users satisfying a conjunction of literals."""
        return self.fraction(query.subset, query.value)

    # ------------------------------------------------------------------
    # Plan execution and Section 4.1 conveniences
    # ------------------------------------------------------------------
    def evaluate(self, plan: LinearPlan) -> float:
        """Execute a compiled linear plan against the sketch store.

        Terms are grouped by subset and each group answered from one PRF
        block call (plus the cache), so a plan touching ``q`` subsets
        costs ``q`` block evaluations instead of ``len(plan.terms)``
        full passes over the sketches.
        """
        return evaluate_plan(plan, self.count, block_count_fn=self.counts_block)

    def sum(self, name: str) -> float:
        """Estimated ``sum_u a_u`` (eq. 4)."""
        return self.evaluate(sum_plan(self.schema, name))

    def mean(self, name: str) -> float:
        """Estimated attribute mean."""
        subset = (self.schema.bit(name, 1),)
        num_users = self.store.num_users(subset)
        if num_users == 0:
            raise MissingSketchError(
                f"no per-bit sketches for attribute {name!r}; publish its bits first"
            )
        return self.sum(name) / num_users

    def inner_product(self, name_a: str, name_b: str) -> float:
        """Estimated ``sum_u a_u b_u`` via ``k^2`` two-bit queries."""
        return self.evaluate(inner_product_plan(self.schema, name_a, name_b))

    def second_moment(self, name: str) -> float:
        """Estimated ``sum_u a_u^2``."""
        return self.evaluate(moment_plan(self.schema, name))

    def variance(self, name: str) -> float:
        """Estimated population variance ``E[a^2] - E[a]^2``.

        The "higher moments" the abstract promises, assembled from the
        eq. 4 sum and the second-moment plan.  Clamped at 0 — sampling
        noise can push the raw difference slightly negative.
        """
        subset = (self.schema.bit(name, 1),)
        num_users = self.store.num_users(subset)
        if num_users == 0:
            raise MissingSketchError(
                f"no per-bit sketches for attribute {name!r}; publish its bits first"
            )
        mean = self.sum(name) / num_users
        second = self.second_moment(name) / num_users
        return max(0.0, second - mean**2)

    # ------------------------------------------------------------------
    # Categorical queries (whole-attribute sketches)
    # ------------------------------------------------------------------
    def _attribute_sketches(self, name: str):
        subset = self.schema.bits(name)
        if not self.store.has_subset(subset):
            raise MissingSketchError(
                f"attribute {name!r} was not sketched as a whole subset; "
                "categorical queries need an attribute publishing policy"
            )
        return self.store.sketches_for(subset)

    def histogram(self, name: str, normalize: bool = True) -> np.ndarray:
        """De-biased frequency of every value of a categorical attribute."""
        return categorical_histogram(
            self.estimator, self._attribute_sketches(name), self.schema, name,
            normalize=normalize,
        )

    def mode(self, name: str) -> Tuple[int, float]:
        """Most frequent category and its estimated frequency."""
        return estimate_mode(
            self.estimator, self._attribute_sketches(name), self.schema, name
        )

    def top_k(self, name: str, k: int) -> List[Tuple[int, float]]:
        """The ``k`` most frequent categories of an attribute."""
        return top_k_categories(
            self.estimator, self._attribute_sketches(name), self.schema, name, k
        )

    def count_less_than(self, name: str, threshold: int) -> float:
        """Estimated ``|{u : a_u < c}|``."""
        return self.evaluate(less_than_plan(self.schema, name, threshold))

    def count_less_equal(self, name: str, threshold: int) -> float:
        """Estimated ``|{u : a_u <= c}|``."""
        return self.evaluate(less_equal_plan(self.schema, name, threshold))

    def count_range(self, name: str, low: int, high: int) -> float:
        """Estimated ``|{u : low <= a_u <= high}|``."""
        return self.evaluate(range_plan(self.schema, name, low, high))

    def count_equal_and_less(
        self, name_eq: str, value_eq: int, name_lt: str, threshold: int
    ) -> float:
        """Estimated ``|{u : a_u = c  and  b_u < d}|``."""
        return self.evaluate(
            equal_and_less_plan(self.schema, name_eq, value_eq, name_lt, threshold)
        )

    def sum_where_less(self, name_sum: str, name_cond: str, threshold: int) -> float:
        """Estimated ``sum of b_u over users with a_u < c``."""
        return self.evaluate(
            sum_where_less_plan(self.schema, name_sum, name_cond, threshold)
        )

    def mean_where_less_equal(self, name_sum: str, name_cond: str, threshold: int) -> float:
        """Estimated conditional mean of ``b`` over users with ``a <= c``."""
        numerator = self.evaluate(
            sum_where_less_equal_plan(self.schema, name_sum, name_cond, threshold)
        )
        denominator = self.count_less_equal(name_cond, threshold)
        if denominator <= 0:
            raise ZeroDivisionError(
                f"estimated zero users satisfy {name_cond} <= {threshold}"
            )
        return numerator / denominator

    def decision_tree(self, root: DecisionNode) -> float:
        """Estimated fraction of users accepted by a decision tree."""
        num_users = self._max_users()
        return self.evaluate(decision_tree_plan(root)) / num_users

    def any_of(self, queries: Sequence[Conjunction]) -> float:
        """Fraction of users satisfying at least one conjunction.

        Appendix F's complement trick: reconstruct the per-user count of
        satisfied components and return ``1 - Pr[none]``.  Each component
        conjunction's subset must have been sketched directly.
        """
        if not queries:
            raise ValueError("need at least one conjunction")
        subsets = [query.subset for query in queries]
        for subset in subsets:
            if not self.store.has_subset(subset):
                raise MissingSketchError(
                    f"subset {subset} was not sketched; disjunctions need "
                    "each component's subset published directly"
                )
        groups = self.store.aligned_groups(subsets)
        return disjunction_fraction(
            self.estimator, groups, [query.value for query in queries]
        )

    # ------------------------------------------------------------------
    # Virtual-bit queries (Appendix E, exactly-l)
    # ------------------------------------------------------------------
    def bit_matrix(self, positions: Sequence[int], target: int = 1) -> np.ndarray:
        """p-perturbed indicator matrix from per-bit sketches.

        Column ``j`` holds ``H(id, {pos_j}, (target,), s)`` per user — a
        p-perturbed indicator of ``d[pos_j] = target``.  Requires a
        per-bit publishing policy for the positions involved.
        """
        subsets = [(int(pos),) for pos in positions]
        for subset in subsets:
            if not self.store.has_subset(subset):
                raise MissingSketchError(
                    f"bit {subset[0]} was not sketched individually; "
                    "use a per-bit publishing policy"
                )
        groups = self.store.aligned_groups(subsets)
        columns = [
            self.estimator.evaluations(group, (target,)) for group in groups
        ]
        return np.column_stack(columns)

    def exactly_l(self, positions: Sequence[int], l: int) -> float:
        """Fraction of users with exactly ``l`` of the given bits set."""
        bits = self.bit_matrix(positions, target=1)
        return exactly_l_fraction(bits, self.estimator.params.p, l)

    def addition_below(self, name_a: str, name_b: str, power: int) -> float:
        """Fraction of users with ``a_u + b_u < 2**power`` (Appendix E)."""
        matrix_a = self.bit_matrix(self.schema.bits(name_a), target=1)
        matrix_b = self.bit_matrix(self.schema.bits(name_b), target=1)
        return addition_interval_fraction(
            matrix_a, matrix_b, self.estimator.params.p, power
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _max_users(self) -> int:
        counts = [self.store.num_users(s) for s in self.store.subsets]
        if not counts:
            raise MissingSketchError("the sketch store is empty")
        return max(counts)

    def _find_partition(self, target: Subset) -> Optional[List[Subset]]:
        """Exact-cover search: express ``target`` as a disjoint union of
        sketched subsets.  Candidate lists are tiny (a publishing policy
        rarely has more than a few hundred subsets), so a simple
        backtracking search is plenty."""
        remaining = frozenset(target)
        candidates = [
            s for s in self.store.subsets if set(s) <= remaining and s
        ]
        candidates.sort(key=len, reverse=True)

        def search(uncovered: frozenset, start: int) -> Optional[List[Subset]]:
            if not uncovered:
                return []
            for index in range(start, len(candidates)):
                candidate = candidates[index]
                if set(candidate) <= uncovered:
                    rest = search(uncovered - set(candidate), index + 1)
                    if rest is not None:
                        return [candidate] + rest
            return None

        return search(remaining, 0)

    def _partition_users(self, target: Subset) -> int:
        partition = self._find_partition(target)
        if partition is None:
            raise MissingSketchError(
                f"subset {target} is neither sketched nor coverable; "
                f"available: {sorted(self.store.subsets)}"
            )
        groups = self.store.aligned_groups(partition)
        return len(groups[0])

    @staticmethod
    def _project_value(
        target: Subset, value: Tuple[int, ...], partition: List[Subset]
    ) -> List[Tuple[int, ...]]:
        lookup = dict(zip(target, value))
        return [tuple(lookup[pos] for pos in piece) for piece in partition]
