"""The remote serving tier: one socket, one protocol, one perimeter.

:class:`RemoteServer` puts a network face on
:meth:`~repro.server.engine.QueryEngine.execute`.  The transport is
deliberately small — newline-delimited JSON over an asyncio TCP socket —
because every message that travels is already defined by
:mod:`repro.protocol`; the server adds only what a *perimeter* must add:

* **auth** — the first line of every connection is a bearer-token hello
  (:func:`~repro.protocol.messages.dumps_hello`); the server resolves it
  to an analyst name and replies with a welcome, or an ``unauthorized``
  error envelope and a closed connection;
* **rate limiting** — a per-analyst token bucket (``rate_limit``
  requests/second, ``burst`` capacity); an over-rate request costs the
  analyst nothing and returns a ``rate_limited`` envelope;
* **privacy accounting** — a per-analyst ledger built on
  :class:`~repro.core.accountant.PrivacyAccountant`, charged **before
  dispatch** for every sketched subset a request names that this analyst
  has not already paid for (re-querying a paid subset is free: the
  analyst already holds that release).  A request that would blow the
  budget returns a ``budget_exceeded`` envelope and releases *nothing* —
  the accountant's ledger and the paid-subset set are only updated after
  the charge succeeds in full.

Requests are **dispatched off the event loop**: ``engine.execute`` runs
on a bounded ``ThreadPoolExecutor`` (``pool_size`` workers), so the loop
stays responsive while queries burn CPU, and — with the compiled kernel
tier (:mod:`repro.core.kernels`) releasing the GIL through the fused
Philox hot loop — concurrent cold queries from different connections
genuinely run on multiple cores in one process.  Everything *around*
dispatch (parsing, auth, rate limiting, privacy accounting) stays on
the event loop, where it is single-threaded by construction; each
connection awaits its own dispatch before reading the next line, so
per-analyst request ordering is exactly what it was inline.
``pool_size=0`` restores inline dispatch (the benchmark baseline), and
a server over a *stateful* PRF (the spec-test ``TrueRandomOracle``
memoises draws un-locked) falls back to inline automatically unless a
pool size is forced.

:class:`RemoteQueryEngine` is the matching blocking client: it speaks
the same protocol over a plain socket and exposes the same method
surface as the local engine, raising the same exception types
(:class:`~repro.server.engine.MissingSketchError`, ``ValueError``,
:class:`~repro.core.accountant.BudgetExceeded`) that an in-process
caller would see — the error envelope is mapped back by
:func:`~repro.protocol.messages.parse_reply`.

:func:`serve_in_thread` runs a server on a daemon thread for tests,
benchmarks, and notebook use.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import os
import signal
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..core.accountant import PrivacyAccountant
from ..core.estimator import QueryEstimate
from ..protocol.messages import (
    ERROR_TAG,
    AnyOfRequest,
    BitMatrixRequest,
    CountsBlockRequest,
    EstimateManyRequest,
    EvaluatePlanRequest,
    ExactlyLRequest,
    FractionRequest,
    MarginalRequest,
    PingRequest,
    QueryError,
    QueryRequest,
    QueryResponse,
    StatusRequest,
    dumps_error,
    dumps_hello,
    dumps_request,
    dumps_response,
    dumps_welcome,
    error_from_exception,
    estimate_from_payload,
    exception_from_error,
    loads_error,
    loads_hello,
    loads_request_envelope,
    loads_welcome,
    parse_reply,
)
from ..queries.conjunctive import Conjunction, LinearPlan
from .resilience import Deadline, DeadlineExceeded, RetryPolicy, run_with_deadline

__all__ = ["RemoteServer", "RemoteQueryEngine", "serve_in_thread"]

#: Per-line stream limit.  The default asyncio limit (64 KiB) is too
#: small for a counts_block over thousands of values; 4 MiB is far above
#: any sane query and still bounds a hostile sender.
STREAM_LIMIT = 4 * 1024 * 1024


class _TokenBucket:
    """Classic token bucket; ``clock`` injectable for deterministic tests."""

    def __init__(self, rate: float, burst: float, clock: Callable[[], float]):
        self.rate = float(rate)
        self.capacity = float(burst)
        self.tokens = float(burst)
        self.clock = clock
        self.last = clock()

    def allow(self) -> bool:
        now = self.clock()
        self.tokens = min(self.capacity, self.tokens + (now - self.last) * self.rate)
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class RemoteServer:
    """Serve a :class:`~repro.server.engine.QueryEngine` over asyncio TCP.

    Parameters
    ----------
    engine:
        The engine to dispatch into (one per server; the store it wraps
        is the published dataset).
    tokens:
        ``{analyst_name: bearer_token}``.  Tokens must be unique — they
        are the credential, the name is the accounting identity.
    epsilon:
        Per-analyst privacy budget enforced at the perimeter, in the
        sense of :class:`~repro.core.accountant.PrivacyAccountant`:
        the cumulative distinguishing ratio of the sketched subsets
        released to one analyst must stay at most ``1 + epsilon``.
        ``None`` disables perimeter accounting (e.g. a trusted-curator
        benchmark rig).
    rate_limit:
        Requests per second allowed per analyst (token bucket); ``None``
        disables rate limiting.
    burst:
        Bucket capacity; defaults to ``ceil(rate_limit)`` (at least 1).
    clock:
        Monotonic clock used by the rate limiter (injectable in tests).
    pool_size:
        Workers in the ``ThreadPoolExecutor`` that ``engine.execute``
        dispatches onto.  ``None`` (default) auto-sizes to the CPU count
        (capped at 8) — or to inline dispatch when the engine's PRF is
        stateful, since only stateless PRFs are audited for concurrent
        execution.  ``0`` forces inline dispatch on the event loop (the
        pre-pool behaviour; the serving benchmark's baseline).
    """

    def __init__(
        self,
        engine,
        tokens: Mapping[str, str],
        *,
        epsilon: Optional[float] = None,
        rate_limit: Optional[float] = None,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        pool_size: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self._analysts: Dict[str, str] = {}
        for analyst, token in dict(tokens).items():
            if token in self._analysts:
                raise ValueError(
                    f"bearer token for analyst {analyst!r} duplicates the one "
                    f"issued to {self._analysts[token]!r}; tokens must be unique"
                )
            self._analysts[str(token)] = str(analyst)
        #: Rotated-out tokens still honoured: token -> (analyst, expiry)
        #: on the injectable clock.  Pruned lazily at each handshake.
        self._expiring: Dict[str, Tuple[str, float]] = {}
        self.epsilon = epsilon
        self.accountant = (
            None
            if epsilon is None
            else PrivacyAccountant(engine.estimator.params, epsilon)
        )
        if rate_limit is not None and rate_limit <= 0:
            raise ValueError(f"rate_limit must be positive, got {rate_limit}")
        self.rate_limit = rate_limit
        self._burst = (
            max(1.0, math.ceil(rate_limit)) if rate_limit and burst is None else burst
        )
        self._clock = clock
        self._buckets: Dict[str, _TokenBucket] = {}
        #: analyst -> sketched subsets already paid for (released).
        self._released: Dict[str, Set[Tuple[int, ...]]] = {}
        if pool_size is None:
            prf = getattr(getattr(engine, "estimator", None), "prf", None)
            stateless = bool(getattr(prf, "stateless", False))
            pool_size = min(8, os.cpu_count() or 1) if stateless else 0
        elif pool_size < 0:
            raise ValueError(f"pool_size must be >= 0, got {pool_size}")
        self._pool_size = int(pool_size)
        self._pool: Optional[ThreadPoolExecutor] = None
        # -- ops surface + graceful shutdown ---------------------------
        self._started_at = time.monotonic()
        self._request_counts: Dict[str, int] = {}
        self._conn_tasks: Set[asyncio.Task] = set()
        self._busy_tasks: Set[asyncio.Task] = set()
        self._closing = False

    def _executor(self) -> Optional[ThreadPoolExecutor]:
        """The dispatch pool, created on first use; ``None`` = inline."""
        if self._pool_size == 0:
            return None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._pool_size, thread_name_prefix="repro-exec"
            )
        return self._pool

    def shutdown(self) -> None:
        """Release the dispatch pool's threads (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- credential lifecycle ------------------------------------------
    def _prune_expired(self) -> None:
        now = self._clock()
        for token in [t for t, (_, expiry) in self._expiring.items() if expiry <= now]:
            del self._expiring[token]

    def _resolve_token(self, token: str) -> Optional[str]:
        """Map a bearer token to its analyst, honouring rotation grace."""
        analyst = self._analysts.get(token)
        if analyst is not None:
            return analyst
        self._prune_expired()
        entry = self._expiring.get(token)
        return entry[0] if entry is not None else None

    def _token_owner(self, token: str) -> Optional[str]:
        """Who holds this token — active or still inside a grace window."""
        self._prune_expired()
        if token in self._analysts:
            return self._analysts[token]
        entry = self._expiring.get(token)
        return entry[0] if entry is not None else None

    def rotate_token(
        self, analyst: str, new_token: str, grace_seconds: float = 0.0
    ) -> None:
        """Swap one analyst's bearer token without dropping their sessions.

        The old token keeps authenticating *new* connections for
        ``grace_seconds`` (so an analyst mid-rollout never sees an auth
        gap), then expires; already-open connections were authenticated
        at hello time and are untouched either way.  A ``new_token``
        that any analyst currently holds — active or still in a grace
        window — is refused: tokens are the credential and must stay
        unique.
        """
        if grace_seconds < 0:
            raise ValueError(f"grace_seconds must be >= 0, got {grace_seconds}")
        new_token = str(new_token)
        if not new_token:
            raise ValueError("new_token must be a non-empty string")
        old_token = next(
            (t for t, name in self._analysts.items() if name == analyst), None
        )
        if old_token is None:
            raise ValueError(f"unknown analyst {analyst!r}; cannot rotate")
        if new_token == old_token:
            return  # already the active credential; nothing to rotate
        owner = self._token_owner(new_token)
        if owner is not None:
            raise ValueError(
                f"new bearer token for analyst {analyst!r} duplicates the one "
                f"held by {owner!r}; tokens must be unique"
            )
        del self._analysts[old_token]
        self._analysts[new_token] = str(analyst)
        if grace_seconds > 0:
            self._expiring[old_token] = (str(analyst), self._clock() + grace_seconds)
        else:
            self._expiring.pop(old_token, None)

    def reload_tokens(
        self, tokens: Mapping[str, str], grace_seconds: float = 0.0
    ) -> dict:
        """Reconcile the credential set against a fresh ``{analyst: token}``
        map (the ``repro serve`` SIGHUP path re-reading ``--token-file``).

        New analysts are added, changed tokens are rotated (old ones
        honoured for ``grace_seconds``), analysts absent from the new map
        are revoked outright — their grace entries too.  Returns a
        summary dict of what changed.
        """
        fresh: Dict[str, str] = {}
        for analyst, token in dict(tokens).items():
            analyst, token = str(analyst), str(token)
            if token in fresh:
                raise ValueError(
                    f"bearer token for analyst {fresh[token]!r} duplicates the "
                    f"one issued to {analyst!r}; tokens must be unique"
                )
            fresh[token] = analyst
        current = {name: token for token, name in self._analysts.items()}
        summary = {"added": [], "rotated": [], "revoked": [], "unchanged": []}
        for name in sorted(set(current) - {n for n in fresh.values()}):
            del self._analysts[current[name]]
            for token in [t for t, (n, _) in self._expiring.items() if n == name]:
                del self._expiring[token]
            summary["revoked"].append(name)
        for token, name in fresh.items():
            if name not in current:
                owner = self._token_owner(token)
                if owner is not None and owner != name:
                    raise ValueError(
                        f"bearer token for analyst {name!r} duplicates the one "
                        f"held by {owner!r}; tokens must be unique"
                    )
                self._analysts[token] = name
                summary["added"].append(name)
            elif current[name] != token:
                self.rotate_token(name, token, grace_seconds)
                summary["rotated"].append(name)
            else:
                summary["unchanged"].append(name)
        return summary

    # -- the perimeter -------------------------------------------------
    def _charge(self, analyst: str, request: QueryRequest) -> None:
        """Charge the analyst's budget for every *new* subset the request
        names; raises ``BudgetExceeded`` before anything is released.

        All-or-nothing: the single ``charge`` call either books every new
        subset or (on an exhausted budget) leaves the ledger untouched,
        and the paid-subset set is only updated afterwards — an
        over-budget request releases nothing.
        """
        if self.accountant is None:
            return
        released = self._released.setdefault(analyst, set())
        new = [s for s in dict.fromkeys(request.subsets_released()) if s not in released]
        if not new:
            return
        self.accountant.charge(analyst, count=len(new))
        released.update(new)

    def remaining_sketches(self, analyst: str) -> Optional[int]:
        """Releases the analyst can still afford (``None`` = unlimited)."""
        if self.accountant is None:
            return None
        return self.accountant.remaining_sketches(analyst)

    def _status(self, analyst: str) -> dict:
        """The ops-surface payload: uptime, request counts, cache stats,
        kernel tier, this analyst's remaining budget, breaker states."""
        from ..core import kernels

        payload: Dict[str, object] = {
            "uptime_s": time.monotonic() - self._started_at,
            "request_counts": dict(self._request_counts),
            "kernel": kernels.active(),
            "remaining_sketches": self.remaining_sketches(analyst),
        }
        cache = getattr(self.engine, "cache", None)
        if cache is not None and hasattr(cache, "stats"):
            entries, evaluations = cache.info()
            payload["cache"] = {
                **dict(cache.stats),
                "entries": entries,
                "cached_evaluations": evaluations,
            }
        # Duck-typed: only a shard coordinator exposes breaker states.
        breakers = getattr(self.engine, "breaker_states", None)
        if callable(breakers):
            payload["shards"] = breakers()
        # Duck-typed: a coordinator fronted by a ShardedService reports
        # its bounded event-log counters (logged / dropped / buffered).
        events = getattr(self.engine, "events_summary", None)
        if callable(events):
            summary = events()
            if summary is not None:
                payload["events"] = summary
        return payload

    async def _answer(self, analyst: str, line: str) -> str:
        """One request line in, one reply line out — never an exception.

        Parsing, rate limiting, and the budget charge run on the event
        loop (synchronously — no await crosses the charge, so the
        accountant and paid-subset bookkeeping stay loop-serialized);
        only ``engine.execute`` is awaited on the dispatch pool.

        A ``deadline_ms`` field on the envelope is honoured here: an
        already-expired deadline is refused before dispatch, a live one
        bounds the dispatch await (``asyncio.wait_for``) and travels
        with the request (via the resilience contextvar) so coordinator
        fan-out can derive per-shard timeouts from the remaining budget.
        """
        try:
            request, deadline_s = loads_request_envelope(line)
        except Exception as exc:  # noqa: BLE001 - perimeter: envelope everything
            return dumps_error(error_from_exception(exc))
        self._request_counts[request.kind] = (
            self._request_counts.get(request.kind, 0) + 1
        )
        if self.rate_limit is not None and request.kind != PingRequest.kind:
            bucket = self._buckets.get(analyst)
            if bucket is None:
                bucket = self._buckets[analyst] = _TokenBucket(
                    self.rate_limit, self._burst, self._clock
                )
            if not bucket.allow():
                return dumps_error(
                    QueryError(
                        "rate_limited",
                        f"analyst {analyst!r} exceeded {self.rate_limit} "
                        "requests/second; slow down and retry",
                    )
                )
        # Perimeter kinds: answered here, never dispatched, never charged.
        if request.kind == PingRequest.kind:
            return dumps_response(QueryResponse(request.kind, {"ok": True}))
        if request.kind == StatusRequest.kind:
            return dumps_response(QueryResponse(request.kind, self._status(analyst)))
        deadline = None if deadline_s is None else Deadline(deadline_s)
        try:
            if deadline is not None:
                deadline.check()
            self._charge(analyst, request)
            pool = self._executor()
            if pool is None:
                response = run_with_deadline(self.engine.execute, deadline, request)
            else:
                future = asyncio.get_running_loop().run_in_executor(
                    pool, run_with_deadline, self.engine.execute, deadline, request
                )
                if deadline is None:
                    response = await future
                else:
                    # The worker thread keeps running past the timeout
                    # (threads are not preemptible), but the reply goes
                    # out now and the engine is safe under concurrent
                    # execution, so the straggler is harmless.
                    response = await asyncio.wait_for(
                        future, timeout=deadline.remaining()
                    )
        except (asyncio.TimeoutError, TimeoutError):
            return dumps_error(
                error_from_exception(
                    DeadlineExceeded(
                        f"request deadline of {deadline_s:.3f}s exceeded "
                        "during dispatch"
                    )
                )
            )
        except Exception as exc:  # noqa: BLE001 - perimeter: envelope everything
            return dumps_error(error_from_exception(exc))
        return dumps_response(response)

    # -- transport -----------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One analyst connection: hello, welcome, then request/reply."""

        async def send(line: str) -> None:
            writer.write((line + "\n").encode("utf-8"))
            await writer.drain()

        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            hello = await reader.readline()
            if not hello:
                return
            try:
                token = loads_hello(hello.decode("utf-8"))
            except Exception as exc:  # noqa: BLE001
                await send(dumps_error(error_from_exception(exc)))
                return
            analyst = self._resolve_token(token)
            if analyst is None:
                await send(
                    dumps_error(
                        QueryError("unauthorized", "unknown bearer token")
                    )
                )
                return
            await send(dumps_welcome(analyst))
            while not self._closing:
                line = await reader.readline()
                if not line:
                    break
                # Awaiting the dispatch before the next readline keeps
                # this connection's replies in request order; *other*
                # connections' dispatches overlap freely in the pool.
                # The busy set marks connections with a request in
                # flight: a draining shutdown lets exactly these finish
                # and answers before closing, while idle connections are
                # cancelled immediately.
                if task is not None:
                    self._busy_tasks.add(task)
                try:
                    await send(await self._answer(analyst, line.decode("utf-8")))
                finally:
                    if task is not None:
                        self._busy_tasks.discard(task)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # The event loop is shutting down with this connection still
            # open; end the task quietly instead of logging a traceback.
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
                self._busy_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.Server:
        """Bind and start accepting; returns the asyncio server object."""
        return await asyncio.start_server(
            self.handle_connection, host, port, limit=STREAM_LIMIT
        )

    async def drain(self, server: asyncio.Server, timeout: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, finish in-flight requests.

        Idle connections (blocked in ``readline`` with nothing pending)
        are cancelled immediately; connections with a request in flight
        get up to ``timeout`` seconds to answer it, then are cancelled
        too.  Either way no request is cut off mid-reply: cancellation
        lands either in ``readline`` or between whole reply lines.
        """
        self._closing = True
        server.close()
        await server.wait_closed()
        for task in list(self._conn_tasks):
            if task not in self._busy_tasks:
                task.cancel()
        busy = list(self._busy_tasks)
        if busy:
            done, pending = await asyncio.wait(busy, timeout=timeout)
            for task in pending:
                task.cancel()
        remaining = list(self._conn_tasks)
        if remaining:
            await asyncio.wait(remaining, timeout=1.0)

    def run(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ready_callback: Optional[Callable[[Tuple[str, int]], None]] = None,
        drain_timeout: float = 5.0,
        reload_callback: Optional[Callable[[], None]] = None,
    ) -> None:
        """Blocking entry point (the ``repro serve`` CLI uses this).

        ``ready_callback`` fires once with the bound ``(host, port)`` —
        with ``port=0`` that is the only way to learn the real port.

        SIGTERM and SIGINT trigger a *graceful* shutdown: the listener
        closes, in-flight requests get ``drain_timeout`` seconds to
        answer, idle connections are dropped, and the dispatch pool is
        shut down — the process no longer dies mid-request.

        ``reload_callback`` (when given) is wired to SIGHUP and runs on
        the event loop — ``repro serve`` uses it to re-read
        ``--token-file`` and :meth:`reload_tokens` without a restart;
        open connections are untouched.
        """

        async def _main() -> None:
            server = await self.start(host, port)
            if ready_callback is not None:
                ready_callback(server.sockets[0].getsockname()[:2])
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.add_signal_handler(sig, stop.set)
            sighup = getattr(signal, "SIGHUP", None)
            if reload_callback is not None and sighup is not None:
                with contextlib.suppress(NotImplementedError, RuntimeError):
                    loop.add_signal_handler(sighup, reload_callback)
            try:
                async with server:
                    await stop.wait()
                    await self.drain(server, timeout=drain_timeout)
            finally:
                handled = [signal.SIGINT, signal.SIGTERM]
                if reload_callback is not None and sighup is not None:
                    handled.append(sighup)
                for sig in handled:
                    with contextlib.suppress(NotImplementedError, RuntimeError):
                        loop.remove_signal_handler(sig)

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            pass
        finally:
            self.shutdown()


@contextlib.contextmanager
def serve_in_thread(server: RemoteServer, host: str = "127.0.0.1", port: int = 0):
    """Run a :class:`RemoteServer` on a daemon thread; yields ``(host, port)``.

    The pytest/benchmark harness: the event loop lives on the thread,
    the caller talks to it through :class:`RemoteQueryEngine` sockets,
    and the loop is stopped (and the thread joined) on exit.
    """
    ready = threading.Event()
    state: dict = {}

    def _thread() -> None:
        async def _main() -> None:
            tcp = await server.start(host, port)
            state["loop"] = asyncio.get_running_loop()
            state["stop"] = asyncio.Event()
            state["address"] = tcp.sockets[0].getsockname()[:2]
            ready.set()
            async with tcp:
                await state["stop"].wait()

        asyncio.run(_main())

    thread = threading.Thread(target=_thread, daemon=True, name="repro-serve")
    thread.start()
    if not ready.wait(timeout=10.0):
        raise RuntimeError("remote server failed to bind within 10s")
    try:
        yield tuple(state["address"])
    finally:
        state["loop"].call_soon_threadsafe(state["stop"].set)
        thread.join(timeout=10.0)
        server.shutdown()


# ----------------------------------------------------------------------
# Blocking client
# ----------------------------------------------------------------------
def _parse_welcome(payload: str) -> str:
    """Handshake reply: the analyst name, or the mapped auth exception."""
    import json

    try:
        probe = json.loads(payload)
    except json.JSONDecodeError:
        probe = None
    if isinstance(probe, dict) and probe.get("format") == ERROR_TAG:
        raise exception_from_error(loads_error(payload))
    return loads_welcome(payload)


class RemoteQueryEngine:
    """Blocking client speaking the typed protocol to a :class:`RemoteServer`.

    Exposes the same query surface as the local
    :class:`~repro.server.engine.QueryEngine` — ``count``, ``fraction``,
    ``counts_block``, ``estimate``, ``estimate_many``, ``marginal``,
    ``any_of``, ``exactly_l``, ``bit_matrix``, ``evaluate``,
    ``conjunction`` — and raises the same exception types the local
    engine would, reconstructed from the error envelope.  Results are
    bit-identical to local answers: the wire carries ``repr``
    round-tripped doubles, which JSON parses back to the same bits.

    Usable as a context manager; one connection per instance.

    Resilience knobs (both default *off*, preserving the historical
    fail-fast behaviour):

    ``retry``
        A :class:`~repro.server.resilience.RetryPolicy` (or an int,
        shorthand for ``RetryPolicy(max_retries=n, base_delay=0.05,
        jitter=0.5)``).  Transport-level failures — connection refused or
        reset, a dropped line, a socket timeout — tear the connection
        down, back off per the policy's deterministic schedule, and
        replay the request on a fresh connection.  Replaying is safe:
        queries are read-only and re-charging an already-paid subset is
        free.  *Server-side* errors (an error envelope) are never
        retried — the server answered; its answer stands.
    ``deadline``
        Per-request budget in seconds.  Bounds the socket timeout and
        the total retry time, and travels on the wire as ``deadline_ms``
        so every downstream hop shrinks its own timeout to the remaining
        budget.
    """

    def __init__(
        self,
        host: str,
        port: int,
        token: str,
        timeout: float = 30.0,
        *,
        retry: Union[RetryPolicy, int, None] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self._address = (host, port)
        self._token = token
        self._timeout = timeout
        if isinstance(retry, int):
            retry = RetryPolicy(max_retries=retry, base_delay=0.05, jitter=0.5)
        self._retry = retry
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self._deadline = deadline
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(self._address, timeout=self._timeout)
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")
        self._send(dumps_hello(self._token))
        self.analyst = _parse_welcome(self._recv())

    def _teardown(self) -> None:
        """Drop the (possibly wedged) connection; next attempt redials."""
        file, self._file = self._file, None
        sock, self._sock = self._sock, None
        with contextlib.suppress(Exception):
            if file is not None:
                file.close()
        with contextlib.suppress(Exception):
            if sock is not None:
                sock.close()

    # -- wire ----------------------------------------------------------
    def _send(self, line: str) -> None:
        self._file.write(line + "\n")
        self._file.flush()

    def _recv(self) -> str:
        try:
            line = self._file.readline()
        except UnicodeDecodeError as exc:
            # Bytes on the wire that aren't UTF-8 mean the stream is
            # corrupt; surface the same typed error as any other broken
            # connection so retry logic can redial.
            raise ConnectionError(f"undecodable bytes in reply: {exc}") from exc
        if not line:
            raise ConnectionError("server closed the connection")
        if not line.endswith("\n"):
            # A reply cut off mid-line (peer died, proxy truncated):
            # never hand a partial payload to the parser as if complete.
            raise ConnectionError("connection closed mid-reply (truncated line)")
        return line.rstrip("\n")

    def execute(
        self,
        request: QueryRequest,
        *,
        deadline: Union[Deadline, float, None] = None,
    ) -> QueryResponse:
        """Round-trip one typed request; raises mapped server errors.

        ``deadline`` overrides the instance-level deadline for this call
        (a float is a fresh budget in seconds; a
        :class:`~repro.server.resilience.Deadline` is an already-ticking
        one, as the shard coordinator forwards mid-request).
        """
        if deadline is None:
            active = None if self._deadline is None else Deadline(self._deadline)
        elif isinstance(deadline, Deadline):
            active = deadline
        else:
            active = Deadline(float(deadline))
        schedule = () if self._retry is None else self._retry.schedule(request.kind)
        last_exc: Optional[Exception] = None
        for attempt, backoff in enumerate((0.0,) + tuple(schedule)):
            if backoff:
                time.sleep(
                    backoff if active is None else min(backoff, active.remaining())
                )
            if active is not None and active.expired:
                raise DeadlineExceeded(
                    f"client deadline exceeded after {attempt} attempt(s)"
                ) from last_exc
            try:
                if self._file is None:
                    self._connect()
                if active is None:
                    self._sock.settimeout(self._timeout)
                    self._send(dumps_request(request))
                else:
                    self._sock.settimeout(
                        min(self._timeout, max(active.remaining(), 1e-3))
                    )
                    self._send(
                        dumps_request(request, deadline_ms=active.remaining_ms())
                    )
                return parse_reply(self._recv())
            except OSError as exc:  # includes ConnectionError, socket.timeout
                last_exc = exc
                self._teardown()
        assert last_exc is not None
        raise last_exc

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "RemoteQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the QueryEngine surface ----------------------------------------
    def counts_block(
        self, subset: Sequence[int], values: Sequence[Sequence[int]]
    ) -> List[float]:
        result = self.execute(CountsBlockRequest.build(subset, values)).result
        return [float(count) for count in result]

    def count(self, subset: Sequence[int], value: Sequence[int]) -> float:
        return self.counts_block(subset, [value])[0]

    def fraction(self, subset: Sequence[int], value: Sequence[int]) -> float:
        return float(self.execute(FractionRequest.build(subset, value)).result)

    def conjunction(self, query: Conjunction) -> float:
        return self.fraction(query.subset, query.value)

    def estimate(self, subset: Sequence[int], value: Sequence[int]) -> QueryEstimate:
        return self.estimate_many(subset, [value])[0]

    def estimate_many(
        self, subset: Sequence[int], values: Sequence[Sequence[int]]
    ) -> List[QueryEstimate]:
        result = self.execute(EstimateManyRequest.build(subset, values)).result
        return [estimate_from_payload(payload) for payload in result]

    def marginal(self, subset: Sequence[int]) -> np.ndarray:
        result = self.execute(MarginalRequest.build(subset)).result
        return np.asarray([float(x) for x in result])

    def any_of(self, queries: Sequence[Conjunction]) -> float:
        request = AnyOfRequest.build([(q.subset, q.value) for q in queries])
        return float(self.execute(request).result)

    def exactly_l(self, positions: Sequence[int], l: int) -> float:
        return float(self.execute(ExactlyLRequest.build(positions, l)).result)

    def bit_matrix(self, positions: Sequence[int], target: int = 1) -> np.ndarray:
        result = self.execute(BitMatrixRequest.build(positions, target)).result
        return np.asarray(result, dtype=np.uint8)

    def evaluate(self, plan: LinearPlan) -> float:
        return float(self.execute(EvaluatePlanRequest.from_plan(plan)).result)

    # -- ops surface ---------------------------------------------------
    def ping(self) -> dict:
        """Liveness probe; answered at the perimeter, costs no budget."""
        return dict(self.execute(PingRequest.build()).result)

    def status(self) -> dict:
        """The server's ops-surface report (see :class:`StatusRequest`)."""
        return dict(self.execute(StatusRequest.build()).result)
