"""The remote serving tier: one socket, one protocol, one perimeter.

:class:`RemoteServer` puts a network face on
:meth:`~repro.server.engine.QueryEngine.execute`.  The transport is
deliberately small — newline-delimited JSON over an asyncio TCP socket —
because every message that travels is already defined by
:mod:`repro.protocol`; the server adds only what a *perimeter* must add:

* **auth** — the first line of every connection is a bearer-token hello
  (:func:`~repro.protocol.messages.dumps_hello`); the server resolves it
  to an analyst name and replies with a welcome, or an ``unauthorized``
  error envelope and a closed connection;
* **rate limiting** — a per-analyst token bucket (``rate_limit``
  requests/second, ``burst`` capacity); an over-rate request costs the
  analyst nothing and returns a ``rate_limited`` envelope;
* **privacy accounting** — a per-analyst ledger built on
  :class:`~repro.core.accountant.PrivacyAccountant`, charged **before
  dispatch** for every sketched subset a request names that this analyst
  has not already paid for (re-querying a paid subset is free: the
  analyst already holds that release).  A request that would blow the
  budget returns a ``budget_exceeded`` envelope and releases *nothing* —
  the accountant's ledger and the paid-subset set are only updated after
  the charge succeeds in full.

Requests are **dispatched off the event loop**: ``engine.execute`` runs
on a bounded ``ThreadPoolExecutor`` (``pool_size`` workers), so the loop
stays responsive while queries burn CPU, and — with the compiled kernel
tier (:mod:`repro.core.kernels`) releasing the GIL through the fused
Philox hot loop — concurrent cold queries from different connections
genuinely run on multiple cores in one process.  Everything *around*
dispatch (parsing, auth, rate limiting, privacy accounting) stays on
the event loop, where it is single-threaded by construction; each
connection awaits its own dispatch before reading the next line, so
per-analyst request ordering is exactly what it was inline.
``pool_size=0`` restores inline dispatch (the benchmark baseline), and
a server over a *stateful* PRF (the spec-test ``TrueRandomOracle``
memoises draws un-locked) falls back to inline automatically unless a
pool size is forced.

:class:`RemoteQueryEngine` is the matching blocking client: it speaks
the same protocol over a plain socket and exposes the same method
surface as the local engine, raising the same exception types
(:class:`~repro.server.engine.MissingSketchError`, ``ValueError``,
:class:`~repro.core.accountant.BudgetExceeded`) that an in-process
caller would see — the error envelope is mapped back by
:func:`~repro.protocol.messages.parse_reply`.

:func:`serve_in_thread` runs a server on a daemon thread for tests,
benchmarks, and notebook use.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.accountant import PrivacyAccountant
from ..core.estimator import QueryEstimate
from ..protocol.messages import (
    ERROR_TAG,
    AnyOfRequest,
    BitMatrixRequest,
    CountsBlockRequest,
    EstimateManyRequest,
    EvaluatePlanRequest,
    ExactlyLRequest,
    FractionRequest,
    MarginalRequest,
    QueryError,
    QueryRequest,
    QueryResponse,
    dumps_error,
    dumps_hello,
    dumps_request,
    dumps_response,
    dumps_welcome,
    error_from_exception,
    estimate_from_payload,
    exception_from_error,
    loads_error,
    loads_hello,
    loads_request,
    loads_welcome,
    parse_reply,
)
from ..queries.conjunctive import Conjunction, LinearPlan

__all__ = ["RemoteServer", "RemoteQueryEngine", "serve_in_thread"]

#: Per-line stream limit.  The default asyncio limit (64 KiB) is too
#: small for a counts_block over thousands of values; 4 MiB is far above
#: any sane query and still bounds a hostile sender.
STREAM_LIMIT = 4 * 1024 * 1024


class _TokenBucket:
    """Classic token bucket; ``clock`` injectable for deterministic tests."""

    def __init__(self, rate: float, burst: float, clock: Callable[[], float]):
        self.rate = float(rate)
        self.capacity = float(burst)
        self.tokens = float(burst)
        self.clock = clock
        self.last = clock()

    def allow(self) -> bool:
        now = self.clock()
        self.tokens = min(self.capacity, self.tokens + (now - self.last) * self.rate)
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class RemoteServer:
    """Serve a :class:`~repro.server.engine.QueryEngine` over asyncio TCP.

    Parameters
    ----------
    engine:
        The engine to dispatch into (one per server; the store it wraps
        is the published dataset).
    tokens:
        ``{analyst_name: bearer_token}``.  Tokens must be unique — they
        are the credential, the name is the accounting identity.
    epsilon:
        Per-analyst privacy budget enforced at the perimeter, in the
        sense of :class:`~repro.core.accountant.PrivacyAccountant`:
        the cumulative distinguishing ratio of the sketched subsets
        released to one analyst must stay at most ``1 + epsilon``.
        ``None`` disables perimeter accounting (e.g. a trusted-curator
        benchmark rig).
    rate_limit:
        Requests per second allowed per analyst (token bucket); ``None``
        disables rate limiting.
    burst:
        Bucket capacity; defaults to ``ceil(rate_limit)`` (at least 1).
    clock:
        Monotonic clock used by the rate limiter (injectable in tests).
    pool_size:
        Workers in the ``ThreadPoolExecutor`` that ``engine.execute``
        dispatches onto.  ``None`` (default) auto-sizes to the CPU count
        (capped at 8) — or to inline dispatch when the engine's PRF is
        stateful, since only stateless PRFs are audited for concurrent
        execution.  ``0`` forces inline dispatch on the event loop (the
        pre-pool behaviour; the serving benchmark's baseline).
    """

    def __init__(
        self,
        engine,
        tokens: Mapping[str, str],
        *,
        epsilon: Optional[float] = None,
        rate_limit: Optional[float] = None,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        pool_size: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self._analysts: Dict[str, str] = {}
        for analyst, token in dict(tokens).items():
            if token in self._analysts:
                raise ValueError(
                    f"bearer token for analyst {analyst!r} duplicates the one "
                    f"issued to {self._analysts[token]!r}; tokens must be unique"
                )
            self._analysts[str(token)] = str(analyst)
        self.epsilon = epsilon
        self.accountant = (
            None
            if epsilon is None
            else PrivacyAccountant(engine.estimator.params, epsilon)
        )
        if rate_limit is not None and rate_limit <= 0:
            raise ValueError(f"rate_limit must be positive, got {rate_limit}")
        self.rate_limit = rate_limit
        self._burst = (
            max(1.0, math.ceil(rate_limit)) if rate_limit and burst is None else burst
        )
        self._clock = clock
        self._buckets: Dict[str, _TokenBucket] = {}
        #: analyst -> sketched subsets already paid for (released).
        self._released: Dict[str, Set[Tuple[int, ...]]] = {}
        if pool_size is None:
            prf = getattr(getattr(engine, "estimator", None), "prf", None)
            stateless = bool(getattr(prf, "stateless", False))
            pool_size = min(8, os.cpu_count() or 1) if stateless else 0
        elif pool_size < 0:
            raise ValueError(f"pool_size must be >= 0, got {pool_size}")
        self._pool_size = int(pool_size)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _executor(self) -> Optional[ThreadPoolExecutor]:
        """The dispatch pool, created on first use; ``None`` = inline."""
        if self._pool_size == 0:
            return None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._pool_size, thread_name_prefix="repro-exec"
            )
        return self._pool

    def shutdown(self) -> None:
        """Release the dispatch pool's threads (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- the perimeter -------------------------------------------------
    def _charge(self, analyst: str, request: QueryRequest) -> None:
        """Charge the analyst's budget for every *new* subset the request
        names; raises ``BudgetExceeded`` before anything is released.

        All-or-nothing: the single ``charge`` call either books every new
        subset or (on an exhausted budget) leaves the ledger untouched,
        and the paid-subset set is only updated afterwards — an
        over-budget request releases nothing.
        """
        if self.accountant is None:
            return
        released = self._released.setdefault(analyst, set())
        new = [s for s in dict.fromkeys(request.subsets_released()) if s not in released]
        if not new:
            return
        self.accountant.charge(analyst, count=len(new))
        released.update(new)

    def remaining_sketches(self, analyst: str) -> Optional[int]:
        """Releases the analyst can still afford (``None`` = unlimited)."""
        if self.accountant is None:
            return None
        return self.accountant.remaining_sketches(analyst)

    async def _answer(self, analyst: str, line: str) -> str:
        """One request line in, one reply line out — never an exception.

        Parsing, rate limiting, and the budget charge run on the event
        loop (synchronously — no await crosses the charge, so the
        accountant and paid-subset bookkeeping stay loop-serialized);
        only ``engine.execute`` is awaited on the dispatch pool.
        """
        try:
            request = loads_request(line)
        except Exception as exc:  # noqa: BLE001 - perimeter: envelope everything
            return dumps_error(error_from_exception(exc))
        if self.rate_limit is not None:
            bucket = self._buckets.get(analyst)
            if bucket is None:
                bucket = self._buckets[analyst] = _TokenBucket(
                    self.rate_limit, self._burst, self._clock
                )
            if not bucket.allow():
                return dumps_error(
                    QueryError(
                        "rate_limited",
                        f"analyst {analyst!r} exceeded {self.rate_limit} "
                        "requests/second; slow down and retry",
                    )
                )
        try:
            self._charge(analyst, request)
            pool = self._executor()
            if pool is None:
                response = self.engine.execute(request)
            else:
                response = await asyncio.get_running_loop().run_in_executor(
                    pool, self.engine.execute, request
                )
        except Exception as exc:  # noqa: BLE001 - perimeter: envelope everything
            return dumps_error(error_from_exception(exc))
        return dumps_response(response)

    # -- transport -----------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One analyst connection: hello, welcome, then request/reply."""

        async def send(line: str) -> None:
            writer.write((line + "\n").encode("utf-8"))
            await writer.drain()

        try:
            hello = await reader.readline()
            if not hello:
                return
            try:
                token = loads_hello(hello.decode("utf-8"))
            except Exception as exc:  # noqa: BLE001
                await send(dumps_error(error_from_exception(exc)))
                return
            analyst = self._analysts.get(token)
            if analyst is None:
                await send(
                    dumps_error(
                        QueryError("unauthorized", "unknown bearer token")
                    )
                )
                return
            await send(dumps_welcome(analyst))
            while True:
                line = await reader.readline()
                if not line:
                    break
                # Awaiting the dispatch before the next readline keeps
                # this connection's replies in request order; *other*
                # connections' dispatches overlap freely in the pool.
                await send(await self._answer(analyst, line.decode("utf-8")))
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # The event loop is shutting down with this connection still
            # open; end the task quietly instead of logging a traceback.
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.Server:
        """Bind and start accepting; returns the asyncio server object."""
        return await asyncio.start_server(
            self.handle_connection, host, port, limit=STREAM_LIMIT
        )

    def run(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ready_callback: Optional[Callable[[Tuple[str, int]], None]] = None,
    ) -> None:
        """Blocking entry point (the ``repro serve`` CLI uses this).

        ``ready_callback`` fires once with the bound ``(host, port)`` —
        with ``port=0`` that is the only way to learn the real port.
        """

        async def _main() -> None:
            server = await self.start(host, port)
            if ready_callback is not None:
                ready_callback(server.sockets[0].getsockname()[:2])
            async with server:
                await server.serve_forever()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            pass
        finally:
            self.shutdown()


@contextlib.contextmanager
def serve_in_thread(server: RemoteServer, host: str = "127.0.0.1", port: int = 0):
    """Run a :class:`RemoteServer` on a daemon thread; yields ``(host, port)``.

    The pytest/benchmark harness: the event loop lives on the thread,
    the caller talks to it through :class:`RemoteQueryEngine` sockets,
    and the loop is stopped (and the thread joined) on exit.
    """
    ready = threading.Event()
    state: dict = {}

    def _thread() -> None:
        async def _main() -> None:
            tcp = await server.start(host, port)
            state["loop"] = asyncio.get_running_loop()
            state["stop"] = asyncio.Event()
            state["address"] = tcp.sockets[0].getsockname()[:2]
            ready.set()
            async with tcp:
                await state["stop"].wait()

        asyncio.run(_main())

    thread = threading.Thread(target=_thread, daemon=True, name="repro-serve")
    thread.start()
    if not ready.wait(timeout=10.0):
        raise RuntimeError("remote server failed to bind within 10s")
    try:
        yield tuple(state["address"])
    finally:
        state["loop"].call_soon_threadsafe(state["stop"].set)
        thread.join(timeout=10.0)
        server.shutdown()


# ----------------------------------------------------------------------
# Blocking client
# ----------------------------------------------------------------------
def _parse_welcome(payload: str) -> str:
    """Handshake reply: the analyst name, or the mapped auth exception."""
    import json

    try:
        probe = json.loads(payload)
    except json.JSONDecodeError:
        probe = None
    if isinstance(probe, dict) and probe.get("format") == ERROR_TAG:
        raise exception_from_error(loads_error(payload))
    return loads_welcome(payload)


class RemoteQueryEngine:
    """Blocking client speaking the typed protocol to a :class:`RemoteServer`.

    Exposes the same query surface as the local
    :class:`~repro.server.engine.QueryEngine` — ``count``, ``fraction``,
    ``counts_block``, ``estimate``, ``estimate_many``, ``marginal``,
    ``any_of``, ``exactly_l``, ``bit_matrix``, ``evaluate``,
    ``conjunction`` — and raises the same exception types the local
    engine would, reconstructed from the error envelope.  Results are
    bit-identical to local answers: the wire carries ``repr``
    round-tripped doubles, which JSON parses back to the same bits.

    Usable as a context manager; one connection per instance.
    """

    def __init__(
        self, host: str, port: int, token: str, timeout: float = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")
        self._send(dumps_hello(token))
        self.analyst = _parse_welcome(self._recv())

    # -- wire ----------------------------------------------------------
    def _send(self, line: str) -> None:
        self._file.write(line + "\n")
        self._file.flush()

    def _recv(self) -> str:
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return line.rstrip("\n")

    def execute(self, request: QueryRequest) -> QueryResponse:
        """Round-trip one typed request; raises mapped server errors."""
        self._send(dumps_request(request))
        return parse_reply(self._recv())

    def close(self) -> None:
        with contextlib.suppress(Exception):
            self._file.close()
        with contextlib.suppress(Exception):
            self._sock.close()

    def __enter__(self) -> "RemoteQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the QueryEngine surface ----------------------------------------
    def counts_block(
        self, subset: Sequence[int], values: Sequence[Sequence[int]]
    ) -> List[float]:
        result = self.execute(CountsBlockRequest.build(subset, values)).result
        return [float(count) for count in result]

    def count(self, subset: Sequence[int], value: Sequence[int]) -> float:
        return self.counts_block(subset, [value])[0]

    def fraction(self, subset: Sequence[int], value: Sequence[int]) -> float:
        return float(self.execute(FractionRequest.build(subset, value)).result)

    def conjunction(self, query: Conjunction) -> float:
        return self.fraction(query.subset, query.value)

    def estimate(self, subset: Sequence[int], value: Sequence[int]) -> QueryEstimate:
        return self.estimate_many(subset, [value])[0]

    def estimate_many(
        self, subset: Sequence[int], values: Sequence[Sequence[int]]
    ) -> List[QueryEstimate]:
        result = self.execute(EstimateManyRequest.build(subset, values)).result
        return [estimate_from_payload(payload) for payload in result]

    def marginal(self, subset: Sequence[int]) -> np.ndarray:
        result = self.execute(MarginalRequest.build(subset)).result
        return np.asarray([float(x) for x in result])

    def any_of(self, queries: Sequence[Conjunction]) -> float:
        request = AnyOfRequest.build([(q.subset, q.value) for q in queries])
        return float(self.execute(request).result)

    def exactly_l(self, positions: Sequence[int], l: int) -> float:
        return float(self.execute(ExactlyLRequest.build(positions, l)).result)

    def bit_matrix(self, positions: Sequence[int], target: int = 1) -> np.ndarray:
        result = self.execute(BitMatrixRequest.build(positions, target)).result
        return np.asarray(result, dtype=np.uint8)

    def evaluate(self, plan: LinearPlan) -> float:
        return float(self.execute(EvaluatePlanRequest.from_plan(plan)).result)
