"""Deployment substrate: collection, querying, persistence, and the
Appendix A server."""

from .collector import (
    SketchStore,
    attribute_subsets,
    per_bit_subsets,
    prefix_subsets,
    publish_database,
)
from .engine import MissingSketchError, QueryEngine, SketchEvaluationCache
from .serialization import dumps_store, load_store, loads_store, save_store
from .streaming import StreamingEstimator, merge_stores
from .sulq import DualModeServer, QueryBudgetExhausted, QueryRecord, SulqServer

__all__ = [
    "DualModeServer",
    "MissingSketchError",
    "QueryBudgetExhausted",
    "QueryEngine",
    "SketchEvaluationCache",
    "QueryRecord",
    "SketchStore",
    "StreamingEstimator",
    "SulqServer",
    "attribute_subsets",
    "dumps_store",
    "load_store",
    "merge_stores",
    "loads_store",
    "per_bit_subsets",
    "prefix_subsets",
    "publish_database",
    "save_store",
]
