"""Deployment substrate: collection, querying, persistence, and the
Appendix A server."""

from .collector import (
    AlignedColumns,
    SketchColumn,
    SketchStore,
    attribute_subsets,
    per_bit_subsets,
    prefix_subsets,
    publish_database,
)
from .engine import (
    MissingSketchError,
    QueryEngine,
    SketchEvaluationCache,
    store_content_hash,
)
from .remote import RemoteQueryEngine, RemoteServer, serve_in_thread
from .resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    current_deadline,
    deadline_scope,
)
from .serialization import (
    dumps_block_request,
    dumps_block_response,
    dumps_store,
    handle_block_request,
    load_store,
    loads_block_request,
    loads_block_response,
    loads_store,
    save_store,
)
from .sharded import (
    ShardCoordinator,
    ShardMap,
    ShardSpec,
    ShardUnavailableError,
    ShardWorkerEngine,
    ShardedService,
    run_shard_worker,
    sharded_service,
)
from .streaming import StreamingEstimator, merge_stores
from .sulq import DualModeServer, QueryBudgetExhausted, QueryRecord, SulqServer

__all__ = [
    "AlignedColumns",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "DualModeServer",
    "MissingSketchError",
    "QueryBudgetExhausted",
    "QueryEngine",
    "QueryRecord",
    "RemoteQueryEngine",
    "RemoteServer",
    "RetryPolicy",
    "ShardCoordinator",
    "ShardMap",
    "ShardSpec",
    "ShardUnavailableError",
    "ShardWorkerEngine",
    "ShardedService",
    "SketchColumn",
    "SketchEvaluationCache",
    "SketchStore",
    "StreamingEstimator",
    "SulqServer",
    "attribute_subsets",
    "current_deadline",
    "deadline_scope",
    "dumps_block_request",
    "dumps_block_response",
    "dumps_store",
    "handle_block_request",
    "load_store",
    "loads_block_request",
    "loads_block_response",
    "loads_store",
    "merge_stores",
    "per_bit_subsets",
    "prefix_subsets",
    "publish_database",
    "run_shard_worker",
    "save_store",
    "serve_in_thread",
    "sharded_service",
    "store_content_hash",
]
