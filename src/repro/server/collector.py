"""The untrusted collector: published sketches, organised for querying.

The deployment model of the paper has no trusted party: each user runs
Algorithm 1 locally and *publishes* the resulting sketches.  The collector
is whatever untrusted entity gathers them.  :class:`SketchStore` models that
entity's state — everything in it is public information.

Publishing policies decide *which* subsets each user sketches.  The paper's
guidance (Section 3: "for each attribute there are only a few subsets that
need to be sketched") maps onto three policy helpers:

* :func:`per_bit_subsets` — one sketch per profile bit (makes the scheme a
  strict generalisation of randomized response, and feeds sums and
  Appendix E/F machinery);
* :func:`attribute_subsets` — one sketch per whole attribute (point/equality
  queries on non-binary data);
* :func:`prefix_subsets` — one sketch per prefix ``A_i`` of an integer
  attribute (interval queries without linear-system combination).

Collection is embarrassingly parallel on the user axis — each user's
sketch is produced independently and the store is a pure union — so
:func:`publish_database` can shard users across a ``multiprocessing``
pool (``workers=N``).  Each worker receives a spawn-safe payload (the
profile shard as its JSONL serialization plus primitive sketcher
parameters), rebuilds the stack, sketches its span with per-user coins
derived from ``(seed, global user index)``, and ships its shard store
back through the store serialization; the parent merges shards with
:func:`~repro.server.streaming.merge_stores`.  Because the coins depend
only on the seed and the user's global position, the result is bitwise
identical for every worker count.

Examples
--------
Sequential (``workers=1``) and sharded (``workers=2``) collection agree
bit for bit for the deployed, stateless :class:`~repro.core.prf.BiasedPRF`:

>>> import numpy as np
>>> from repro.core import BiasedPRF, PrivacyParams, Sketcher
>>> from repro.data import bernoulli_panel
>>> params = PrivacyParams(p=0.3)
>>> prf = BiasedPRF(p=0.3, global_key=b"0123456789abcdef")
>>> database = bernoulli_panel(40, 3, rng=np.random.default_rng(0))
>>> sketcher = Sketcher(params, prf, sketch_bits=6)
>>> one = publish_database(database, sketcher, [(0, 1)], workers=1, seed=7)
>>> two = publish_database(database, sketcher, [(0, 1)], workers=2, seed=7)
>>> [s.key for s in one.sketches_for((0, 1))] == [s.key for s in two.sketches_for((0, 1))]
True
>>> one.num_users((0, 1))
40

The memoising :class:`~repro.core.prf.TrueRandomOracle` test double cannot
span processes (its lazily-sampled table lives in one address space), so
``workers > 1`` rejects it explicitly:

>>> from repro.core import TrueRandomOracle
>>> oracle_sketcher = Sketcher(params, TrueRandomOracle(p=0.3), sketch_bits=6)
>>> publish_database(database, oracle_sketcher, [(0, 1)], workers=2, seed=7)
Traceback (most recent call last):
    ...
ValueError: workers=2 needs a stateless PRF; TrueRandomOracle memoises draws in-process, so its draw order cannot span workers (use workers=1 or BiasedPRF)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..core.accountant import PrivacyAccountant
from ..core.prf import BiasedPRF
from ..core.sketch import Sketch, Sketcher
from ..data.profiles import Profile, ProfileDatabase
from ..data.schema import Schema

__all__ = [
    "SketchStore",
    "per_bit_subsets",
    "attribute_subsets",
    "prefix_subsets",
    "publish_database",
]

Subset = Tuple[int, ...]


class SketchStore:
    """Column store of published sketches, keyed by subset.

    Sketches for the same subset are kept in publication order; most
    queries need them *user-aligned* across subsets, which
    :meth:`aligned_groups` provides.
    """

    def __init__(self) -> None:
        self._by_subset: Dict[Subset, Dict[str, Sketch]] = {}

    def publish(self, sketch: Sketch) -> None:
        """Record one published sketch (idempotence is an error: a user
        publishing two sketches of the same subset would spend extra
        privacy budget for no utility)."""
        column = self._by_subset.setdefault(sketch.subset, {})
        if sketch.user_id in column:
            raise ValueError(
                f"user {sketch.user_id!r} already published a sketch for "
                f"subset {sketch.subset}"
            )
        column[sketch.user_id] = sketch

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def subsets(self) -> Tuple[Subset, ...]:
        return tuple(self._by_subset)

    def has_subset(self, subset: Sequence[int]) -> bool:
        return tuple(subset) in self._by_subset

    def num_users(self, subset: Sequence[int]) -> int:
        return len(self._by_subset.get(tuple(subset), {}))

    def total_published_bits(self) -> int:
        """Total size of everything published, in bits (experiment E8)."""
        return sum(
            sketch.size_bits
            for column in self._by_subset.values()
            for sketch in column.values()
        )

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def sketches_for(self, subset: Sequence[int]) -> List[Sketch]:
        """All sketches published for one subset (stable user order)."""
        key = tuple(subset)
        if key not in self._by_subset:
            raise KeyError(
                f"no sketches published for subset {key}; available: "
                f"{sorted(self._by_subset)}"
            )
        return list(self._by_subset[key].values())

    def aligned_groups(self, subsets: Sequence[Sequence[int]]) -> List[List[Sketch]]:
        """Sketch groups for several subsets, aligned on common users.

        Only users who published for *every* requested subset contribute;
        the groups are returned in a consistent user order so that row
        ``u`` of every group belongs to the same user (as Appendix F's
        combination requires).
        """
        keys = [tuple(s) for s in subsets]
        for key in keys:
            if key not in self._by_subset:
                raise KeyError(f"no sketches published for subset {key}")
        common = set(self._by_subset[keys[0]])
        for key in keys[1:]:
            common &= set(self._by_subset[key])
        if not common:
            raise ValueError(f"no user published sketches for all of {keys}")
        order = sorted(common)
        return [[self._by_subset[key][uid] for uid in order] for key in keys]


# ----------------------------------------------------------------------
# Publishing policies
# ----------------------------------------------------------------------
def per_bit_subsets(schema: Schema) -> List[Subset]:
    """One single-bit subset per profile position."""
    return [(position,) for position in range(schema.total_bits)]


def attribute_subsets(schema: Schema, names: Iterable[str] | None = None) -> List[Subset]:
    """One whole-attribute subset per (selected) attribute."""
    chosen = tuple(names) if names is not None else schema.names
    return [schema.bits(name) for name in chosen]


def prefix_subsets(schema: Schema, name: str) -> List[Subset]:
    """All prefixes ``A_1 .. A_k`` of an integer attribute.

    Prefix ``A_k`` is the full attribute, so equality queries come for
    free; the shorter prefixes serve the interval decomposition directly
    (no Appendix F combination, hence no conditioning blow-up).
    """
    spec = schema.spec(name)
    return [schema.prefix(name, length) for length in range(1, spec.bits + 1)]


def _user_rng(seed: int, user_index: int) -> np.random.Generator:
    """Per-user private coins as a pure function of ``(seed, user index)``.

    ``SeedSequence(seed, spawn_key=(i,))`` is deterministic and
    order-independent, so any worker handling global user ``i`` derives
    the same generator — the invariant behind the bitwise identity of
    every worker layout.
    """
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(user_index,)))


def _sketch_span(
    profiles: Sequence[Profile],
    sketcher: Sketcher,
    subset_keys: Sequence[Subset],
    seed: int,
    start_index: int,
    store: SketchStore,
) -> None:
    """Sketch a contiguous span of users into ``store`` with seeded coins."""
    for offset, profile in enumerate(profiles):
        rng = _user_rng(seed, start_index + offset)
        for subset in subset_keys:
            store.publish(sketcher.sketch(profile.user_id, profile.bits, subset, rng=rng))


def _collect_shard(payload: tuple) -> str:
    """Pool worker: rebuild the stack from primitives, sketch one shard.

    The payload is spawn-safe by construction — a JSONL string for the
    profile shard plus primitive sketcher parameters — and the return
    value is the shard store's JSONL serialization (``iterations``
    included, so the round-trip is fully lossless).
    """
    (
        database_payload,
        subset_keys,
        start_index,
        seed,
        p,
        global_key_hex,
        sketch_bits,
        with_replacement,
        max_iterations,
        block_size,
    ) = payload
    from ..core.params import PrivacyParams
    from ..data.serialization import loads_database
    from .serialization import dumps_store

    database = loads_database(database_payload)
    prf = BiasedPRF(p=p, global_key=bytes.fromhex(global_key_hex))
    sketcher = Sketcher(
        PrivacyParams(p=p),
        prf,
        sketch_bits=sketch_bits,
        with_replacement=with_replacement,
        max_iterations=max_iterations,
        block_size=block_size,
    )
    store = SketchStore()
    _sketch_span(
        list(database), sketcher, [tuple(s) for s in subset_keys], seed, start_index, store
    )
    return dumps_store(store, include_iterations=True)


def publish_database(
    database: ProfileDatabase,
    sketcher: Sketcher,
    subsets: Sequence[Sequence[int]],
    store: SketchStore | None = None,
    accountant: PrivacyAccountant | None = None,
    workers: int | None = None,
    seed: int | None = None,
) -> SketchStore:
    """Have every user of a database publish sketches for the given subsets.

    Parameters
    ----------
    database:
        The ground-truth profiles (used only on the user side — each user
        sketches *their own* profile; nothing raw reaches the store).
    sketcher:
        The Algorithm 1 implementation (shared params/PRF; per-user coins
        come from its RNG, or from ``seed`` when ``workers`` is given).
    subsets:
        The publishing policy: which subsets each user sketches.
    store:
        Existing store to extend, or ``None`` to create a fresh one.
    accountant:
        Optional privacy ledger; when given, each user's releases are
        charged and :class:`~repro.core.accountant.BudgetExceeded` aborts
        over-publishing.  With ``workers`` the whole database is charged
        up front, before any sketching starts.
    workers:
        ``None`` (default) keeps the classic sequential path: one shared
        RNG stream from the sketcher, users processed in order.  An
        integer switches to the *deterministic sharded* path: each user's
        coins derive from ``(seed, global user index)``, users are split
        into ``workers`` contiguous shards, and shards beyond the first
        worker run in a ``multiprocessing`` pool.  The output store is
        bitwise identical for every ``workers >= 1`` value; ``workers > 1``
        requires a stateless PRF (:class:`~repro.core.prf.BiasedPRF`) —
        the memoising :class:`~repro.core.prf.TrueRandomOracle` raises.
    seed:
        Base seed for the sharded path's per-user coins.  ``None`` draws
        one from the sketcher's RNG (reproducible when the sketcher was
        seeded); ignored when ``workers`` is ``None``.
    """
    store = store if store is not None else SketchStore()
    subset_keys = [tuple(int(i) for i in s) for s in subsets]

    if workers is None:
        for profile in database:
            if accountant is not None:
                accountant.charge(profile.user_id, len(subset_keys))
            for subset in subset_keys:
                store.publish(sketcher.sketch(profile.user_id, profile.bits, subset))
        return store

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    prf = sketcher.prf
    if workers > 1:
        # Validate the PRF against the *requested* worker count, before
        # the accountant is charged or the sketcher RNG consumed: a
        # rejected call must not spend privacy budget, and whether it is
        # rejected must not depend on the database size (a small
        # database may collapse to a single in-process shard below).
        if not prf.stateless:
            raise ValueError(
                f"workers={workers} needs a stateless PRF; {type(prf).__name__} "
                "memoises draws in-process, so its draw order cannot span workers "
                "(use workers=1 or BiasedPRF)"
            )
        if not isinstance(prf, BiasedPRF):
            raise ValueError(
                f"workers={workers} can only ship a BiasedPRF to the pool, "
                f"got {type(prf).__name__}"
            )
    profiles = list(database)
    if accountant is not None:
        for profile in profiles:
            accountant.charge(profile.user_id, len(subset_keys))
    if seed is None:
        seed = int(sketcher.rng.integers(0, 2**63))
    if not profiles:
        return store

    num_workers = min(workers, len(profiles))
    if num_workers == 1:
        _sketch_span(profiles, sketcher, subset_keys, seed, 0, store)
        return store

    import multiprocessing

    from ..data.serialization import dumps_database
    from .serialization import loads_store
    from .streaming import merge_stores

    # Several shards per worker: the parent serialises shard payloads
    # lazily (overlapping dispatch) and parses shard results as they
    # stream back (overlapping the remaining compute), so its serial
    # JSON work hides behind the pool instead of bracketing it.  imap
    # preserves input order, keeping the merged user order — and hence
    # the store bytes — independent of worker count and timing.
    shard_count = min(len(profiles), num_workers * 4)
    base, remainder = divmod(len(profiles), shard_count)

    def shard_payloads():
        start = 0
        for shard_index in range(shard_count):
            stop = start + base + (1 if shard_index < remainder else 0)
            shard = ProfileDatabase(database.schema, profiles[start:stop])
            yield (
                dumps_database(shard),
                subset_keys,
                start,
                seed,
                prf.p,
                prf.global_key.hex(),
                sketcher.sketch_bits,
                sketcher.with_replacement,
                sketcher.max_iterations,
                sketcher.block_size,
            )
            start = stop

    # Payloads are spawn-safe, but prefer fork where the platform has it:
    # worker start-up then costs a page-table copy instead of a fresh
    # interpreter + numpy import per worker.
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    shard_stores = []
    with context.Pool(processes=num_workers) as pool:
        for payload in pool.imap(_collect_shard, shard_payloads()):
            shard_stores.append(loads_store(payload)[0])

    merged = merge_stores(*shard_stores)
    # Republish in publishing-policy order: store serialization sorts
    # subsets, so the merged union's column order differs from the
    # sequential path's (policy order).  Restoring it keeps even the
    # store's iteration order — not just its serialized bytes —
    # identical for every worker count.
    for subset in subset_keys:
        if merged.has_subset(subset):
            for sketch in merged.sketches_for(subset):
                store.publish(sketch)
    return store
