"""The untrusted collector: published sketches, organised for querying.

The deployment model of the paper has no trusted party: each user runs
Algorithm 1 locally and *publishes* the resulting sketches.  The collector
is whatever untrusted entity gathers them.  :class:`SketchStore` models that
entity's state — everything in it is public information.

Publishing policies decide *which* subsets each user sketches.  The paper's
guidance (Section 3: "for each attribute there are only a few subsets that
need to be sketched") maps onto three policy helpers:

* :func:`per_bit_subsets` — one sketch per profile bit (makes the scheme a
  strict generalisation of randomized response, and feeds sums and
  Appendix E/F machinery);
* :func:`attribute_subsets` — one sketch per whole attribute (point/equality
  queries on non-binary data);
* :func:`prefix_subsets` — one sketch per prefix ``A_i`` of an integer
  attribute (interval queries without linear-system combination).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.accountant import PrivacyAccountant
from ..core.sketch import Sketch, Sketcher
from ..data.profiles import ProfileDatabase
from ..data.schema import Schema

__all__ = [
    "SketchStore",
    "per_bit_subsets",
    "attribute_subsets",
    "prefix_subsets",
    "publish_database",
]

Subset = Tuple[int, ...]


class SketchStore:
    """Column store of published sketches, keyed by subset.

    Sketches for the same subset are kept in publication order; most
    queries need them *user-aligned* across subsets, which
    :meth:`aligned_groups` provides.
    """

    def __init__(self) -> None:
        self._by_subset: Dict[Subset, Dict[str, Sketch]] = {}

    def publish(self, sketch: Sketch) -> None:
        """Record one published sketch (idempotence is an error: a user
        publishing two sketches of the same subset would spend extra
        privacy budget for no utility)."""
        column = self._by_subset.setdefault(sketch.subset, {})
        if sketch.user_id in column:
            raise ValueError(
                f"user {sketch.user_id!r} already published a sketch for "
                f"subset {sketch.subset}"
            )
        column[sketch.user_id] = sketch

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def subsets(self) -> Tuple[Subset, ...]:
        return tuple(self._by_subset)

    def has_subset(self, subset: Sequence[int]) -> bool:
        return tuple(subset) in self._by_subset

    def num_users(self, subset: Sequence[int]) -> int:
        return len(self._by_subset.get(tuple(subset), {}))

    def total_published_bits(self) -> int:
        """Total size of everything published, in bits (experiment E8)."""
        return sum(
            sketch.size_bits
            for column in self._by_subset.values()
            for sketch in column.values()
        )

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def sketches_for(self, subset: Sequence[int]) -> List[Sketch]:
        """All sketches published for one subset (stable user order)."""
        key = tuple(subset)
        if key not in self._by_subset:
            raise KeyError(
                f"no sketches published for subset {key}; available: "
                f"{sorted(self._by_subset)}"
            )
        return list(self._by_subset[key].values())

    def aligned_groups(self, subsets: Sequence[Sequence[int]]) -> List[List[Sketch]]:
        """Sketch groups for several subsets, aligned on common users.

        Only users who published for *every* requested subset contribute;
        the groups are returned in a consistent user order so that row
        ``u`` of every group belongs to the same user (as Appendix F's
        combination requires).
        """
        keys = [tuple(s) for s in subsets]
        for key in keys:
            if key not in self._by_subset:
                raise KeyError(f"no sketches published for subset {key}")
        common = set(self._by_subset[keys[0]])
        for key in keys[1:]:
            common &= set(self._by_subset[key])
        if not common:
            raise ValueError(f"no user published sketches for all of {keys}")
        order = sorted(common)
        return [[self._by_subset[key][uid] for uid in order] for key in keys]


# ----------------------------------------------------------------------
# Publishing policies
# ----------------------------------------------------------------------
def per_bit_subsets(schema: Schema) -> List[Subset]:
    """One single-bit subset per profile position."""
    return [(position,) for position in range(schema.total_bits)]


def attribute_subsets(schema: Schema, names: Iterable[str] | None = None) -> List[Subset]:
    """One whole-attribute subset per (selected) attribute."""
    chosen = tuple(names) if names is not None else schema.names
    return [schema.bits(name) for name in chosen]


def prefix_subsets(schema: Schema, name: str) -> List[Subset]:
    """All prefixes ``A_1 .. A_k`` of an integer attribute.

    Prefix ``A_k`` is the full attribute, so equality queries come for
    free; the shorter prefixes serve the interval decomposition directly
    (no Appendix F combination, hence no conditioning blow-up).
    """
    spec = schema.spec(name)
    return [schema.prefix(name, length) for length in range(1, spec.bits + 1)]


def publish_database(
    database: ProfileDatabase,
    sketcher: Sketcher,
    subsets: Sequence[Sequence[int]],
    store: SketchStore | None = None,
    accountant: PrivacyAccountant | None = None,
) -> SketchStore:
    """Have every user of a database publish sketches for the given subsets.

    Parameters
    ----------
    database:
        The ground-truth profiles (used only on the user side — each user
        sketches *their own* profile; nothing raw reaches the store).
    sketcher:
        The Algorithm 1 implementation (shared params/PRF; per-user coins
        come from its RNG).
    subsets:
        The publishing policy: which subsets each user sketches.
    store:
        Existing store to extend, or ``None`` to create a fresh one.
    accountant:
        Optional privacy ledger; when given, each user's releases are
        charged and :class:`~repro.core.accountant.BudgetExceeded` aborts
        over-publishing.
    """
    store = store if store is not None else SketchStore()
    subset_keys = [tuple(int(i) for i in s) for s in subsets]
    for profile in database:
        if accountant is not None:
            accountant.charge(profile.user_id, len(subset_keys))
        for subset in subset_keys:
            store.publish(sketcher.sketch(profile.user_id, profile.bits, subset))
    return store
