"""The untrusted collector: published sketches, organised for querying.

The deployment model of the paper has no trusted party: each user runs
Algorithm 1 locally and *publishes* the resulting sketches.  The collector
is whatever untrusted entity gathers them.  :class:`SketchStore` models that
entity's state — everything in it is public information.

Publishing policies decide *which* subsets each user sketches.  The paper's
guidance (Section 3: "for each attribute there are only a few subsets that
need to be sketched") maps onto three policy helpers:

* :func:`per_bit_subsets` — one sketch per profile bit (makes the scheme a
  strict generalisation of randomized response, and feeds sums and
  Appendix E/F machinery);
* :func:`attribute_subsets` — one sketch per whole attribute (point/equality
  queries on non-binary data);
* :func:`prefix_subsets` — one sketch per prefix ``A_i`` of an integer
  attribute (interval queries without linear-system combination).

Collection is embarrassingly parallel on the user axis — each user's
sketch is produced independently and the store is a pure union — so
:func:`publish_database` can shard users across a ``multiprocessing``
pool (``workers=N``).  Users are cut into many small interleaved chunks
(user ``i`` rides chunk ``i mod C``) drained through
``pool.imap_unordered``, so slow chunks are balanced dynamically across
workers.  Each worker receives a spawn-safe payload (the profile shard
in the columnar v2 serialization, the PRF spec, and primitive sketcher
parameters), rebuilds the stack, and sketches its whole chunk through
:meth:`~repro.core.sketch.Sketcher.sketch_many` — Algorithm 1's
rejection loop vectorised across the chunk's users, with each user's
private coins read from the counter-based
:class:`~repro.core.sketch.CollectionCoins` stream keyed by ``(seed,
global user index, subset run)``.  The shard store ships back as
columnar arrays; the parent concatenates each subset's shard columns,
argsorts them back to global user order, and bulk-publishes the result
(:meth:`SketchStore.publish_column`) without materialising per-sketch
records.  Because the coins depend only on the seed and the user's
global position — never on the chunking, the worker count, or the
arrival order — the result is bitwise identical for every worker count.

Examples
--------
Sequential (``workers=1``) and sharded (``workers=2``) collection agree
bit for bit for the deployed, stateless :class:`~repro.core.prf.BiasedPRF`:

>>> import numpy as np
>>> from repro.core import BiasedPRF, PrivacyParams, Sketcher
>>> from repro.data import bernoulli_panel
>>> params = PrivacyParams(p=0.3)
>>> prf = BiasedPRF(p=0.3, global_key=b"0123456789abcdef")
>>> database = bernoulli_panel(40, 3, rng=np.random.default_rng(0))
>>> sketcher = Sketcher(params, prf, sketch_bits=6)
>>> one = publish_database(database, sketcher, [(0, 1)], workers=1, seed=7)
>>> two = publish_database(database, sketcher, [(0, 1)], workers=2, seed=7)
>>> [s.key for s in one.sketches_for((0, 1))] == [s.key for s in two.sketches_for((0, 1))]
True
>>> one.num_users((0, 1))
40

The memoising :class:`~repro.core.prf.TrueRandomOracle` test double cannot
span processes (its lazily-sampled table lives in one address space), so
``workers > 1`` rejects it explicitly:

>>> from repro.core import TrueRandomOracle
>>> oracle_sketcher = Sketcher(params, TrueRandomOracle(p=0.3), sketch_bits=6)
>>> publish_database(database, oracle_sketcher, [(0, 1)], workers=2, seed=7)
Traceback (most recent call last):
    ...
ValueError: workers=2 needs a stateless PRF; TrueRandomOracle memoises draws in-process, so its draw order cannot span workers (use workers=1 or a keyed stateless PRF such as BiasedPRF)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Sequence, Tuple

import numpy as np

from ..core.accountant import PrivacyAccountant
from ..core.prf import prf_from_spec
from ..core.sketch import CollectionCoins, Sketch, Sketcher
from ..data.profiles import Profile, ProfileDatabase
from ..data.schema import Schema

__all__ = [
    "AlignedColumns",
    "MIN_CHUNK_USERS",
    "SketchColumn",
    "SketchStore",
    "per_bit_subsets",
    "attribute_subsets",
    "prefix_subsets",
    "publish_database",
]

#: Autotune floor for the sharded collection path: chunks are never cut
#: below this many users.  Measured on the E21/E24 rigs: per-chunk fixed
#: cost (columnar payload serialization + pool dispatch + sketch_many
#: ramp-up) is ~2-4 ms, while sketching runs ~15-20 us/user/subset under
#: CounterPRF — so chunks of a few hundred users spend as much time on
#: overhead as on sketching, which is exactly the PR 5 "worker
#: serialization dominates at small M" regression.  At 1024 the fixed
#: cost amortizes to under a quarter of the chunk's sketch time, while
#: M >= 64k workloads still fan out to the full 8-chunks-per-worker
#: schedule at 8 workers.
MIN_CHUNK_USERS = 1024

Subset = Tuple[int, ...]


class SketchColumn(NamedTuple):
    """One subset's sketches as parallel arrays — the v2 columnar unit.

    ``user_ids`` is a list of python strings (publication order);
    ``keys``/``num_bits``/``iterations`` are numpy arrays aligned with it.
    This is the in-memory face of the columnar store format: everything
    that moves sketches in bulk (worker shards, the ``.npz`` persistence,
    the evaluation-cache content hash) speaks it instead of per-
    :class:`~repro.core.sketch.Sketch` records.
    """

    user_ids: List[str]
    keys: np.ndarray  # uint64
    num_bits: np.ndarray  # uint8
    iterations: np.ndarray  # unsigned integer (uint16 when it fits)


class AlignedColumns(NamedTuple):
    """Array-level user alignment across several subsets' columns.

    ``user_ids`` lists the users who published for *every* requested
    subset, in the canonical (sorted) alignment order; ``indices[i]``
    maps that order into subset ``i``'s column (publication order), so
    any per-user column of subset ``i`` — cached evaluation vectors,
    ``keys``, ``num_bits`` — gathers onto the aligned rows by fancy-
    indexing with ``indices[i]``.  ``keys[i]`` is that gather applied to
    the published sketch keys (uint64), for callers that feed the PRF
    directly instead of through a cache.

    This is the object-free face of :meth:`SketchStore.aligned_groups`:
    the multi-subset query paths (Appendix F combination, disjunctions,
    Appendix E virtual-bit pipelines) consume these views without ever
    materialising per-:class:`~repro.core.sketch.Sketch` records.
    """

    user_ids: List[str]
    indices: List[np.ndarray]  # int64, one array per subset
    keys: List[np.ndarray]  # uint64, gathered publication keys per subset


class SketchStore:
    """Column store of published sketches, keyed by subset.

    Sketches for the same subset are kept in publication order; most
    queries need them *user-aligned* across subsets, which
    :meth:`aligned_columns` provides at the array level (and
    :meth:`aligned_groups` as materialised records).

    Internally a subset's column lives in one of two states: a dict of
    :class:`~repro.core.sketch.Sketch` records (anything published
    through :meth:`publish`), or a **lazy** :class:`SketchColumn` of
    parallel arrays (anything bulk-loaded through :meth:`from_columns`,
    e.g. the columnar v2 file format).  Lazy columns are validated
    vectorially up front but only materialised into ``Sketch`` objects
    when a caller actually asks for records (:meth:`sketches_for`,
    :meth:`aligned_groups`, or publishing into the same subset); the
    column-speaking paths — :meth:`column_for`, :meth:`to_columns`, the
    evaluation cache, serialization — never pay the per-object cost.
    """

    def __init__(self) -> None:
        # Value is a dict of materialised sketches, or None while the
        # column is still lazy (arrays parked in _lazy).  Keeping the
        # placeholder in _by_subset preserves one insertion order across
        # both states.
        self._by_subset: Dict[Subset, Dict[str, Sketch] | None] = {}
        self._lazy: Dict[Subset, SketchColumn] = {}

    def _materialise(self, subset: Subset) -> None:
        """Convert one lazy column into Sketch records (validated at load)."""
        column = self._lazy.pop(subset, None)
        if column is None:
            return
        trusted = Sketch._trusted
        self._by_subset[subset] = {
            uid: trusted(uid, subset, key, bits, its)
            for uid, key, bits, its in zip(
                column.user_ids,
                column.keys.tolist(),
                column.num_bits.tolist(),
                column.iterations.tolist(),
            )
        }

    def publish(self, sketch: Sketch) -> None:
        """Record one published sketch (idempotence is an error: a user
        publishing two sketches of the same subset would spend extra
        privacy budget for no utility)."""
        if self._by_subset.get(sketch.subset) is None and sketch.subset in self._lazy:
            self._materialise(sketch.subset)
        column = self._by_subset.setdefault(sketch.subset, {})
        if sketch.user_id in column:
            raise ValueError(
                f"user {sketch.user_id!r} already published a sketch for "
                f"subset {sketch.subset}"
            )
        column[sketch.user_id] = sketch

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def subsets(self) -> Tuple[Subset, ...]:
        return tuple(self._by_subset)

    def has_subset(self, subset: Sequence[int]) -> bool:
        return tuple(subset) in self._by_subset

    def num_users(self, subset: Sequence[int]) -> int:
        key = tuple(subset)
        column = self._by_subset.get(key)
        if column is None:
            lazy = self._lazy.get(key)
            return len(lazy.user_ids) if lazy is not None else 0
        return len(column)

    def total_published_bits(self) -> int:
        """Total size of everything published, in bits (experiment E8)."""
        total = 0
        for key, column in self._by_subset.items():
            if column is None:
                total += int(self._lazy[key].num_bits.sum())
            else:
                total += sum(sketch.size_bits for sketch in column.values())
        return total

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def sketches_for(self, subset: Sequence[int]) -> List[Sketch]:
        """All sketches published for one subset (stable user order)."""
        key = tuple(subset)
        if key not in self._by_subset:
            raise KeyError(
                f"no sketches published for subset {key}; available: "
                f"{sorted(self._by_subset)}"
            )
        if self._by_subset[key] is None:
            self._materialise(key)
        return list(self._by_subset[key].values())

    # ------------------------------------------------------------------
    # Columnar bulk conversion (store format v2)
    # ------------------------------------------------------------------
    def column_for(self, subset: Sequence[int]) -> SketchColumn:
        """One subset's sketches as parallel arrays (stable user order).

        Zero-copy for lazily-loaded columns; otherwise built from the
        materialised records.  Callers must not mutate the arrays — they
        may be shared with the store's internal state.
        """
        key = tuple(subset)
        if key not in self._by_subset:
            raise KeyError(
                f"no sketches published for subset {key}; available: "
                f"{sorted(self._by_subset)}"
            )
        lazy = self._lazy.get(key)
        if lazy is not None:
            return lazy
        sketches = list(self._by_subset[key].values())
        count = len(sketches)
        iterations = np.fromiter(
            (s.iterations for s in sketches), dtype=np.int64, count=count
        )
        # uint16 covers every realistic iteration count (Lemma 3.1:
        # ~10-bit sketches, expected iterations ~1/p^2); a pathological
        # store keeps full width rather than overflowing silently.
        it_dtype = np.uint16 if (count == 0 or iterations.max() < 1 << 16) else np.uint32
        return SketchColumn(
            user_ids=[s.user_id for s in sketches],
            keys=np.fromiter((s.key for s in sketches), dtype=np.uint64, count=count),
            num_bits=np.fromiter(
                (s.num_bits for s in sketches), dtype=np.uint8, count=count
            ),
            iterations=iterations.astype(it_dtype),
        )

    def to_columns(self) -> Dict[Subset, SketchColumn]:
        """Decompose the store into per-subset :class:`SketchColumn` arrays.

        The inverse of :meth:`from_columns`; publication order is
        preserved, so ``from_columns(store.to_columns())`` reproduces the
        store exactly, iteration diagnostics included.
        """
        return {subset: self.column_for(subset) for subset in self._by_subset}

    @staticmethod
    def _validated_column(subset_t: Subset, column: SketchColumn) -> SketchColumn | None:
        """Vectorised whole-column validation; returns the normalised
        column (python-str ids, contiguous typed arrays), or ``None`` for
        an empty one."""
        ids, keys, num_bits, iterations = column
        ids = [str(uid) for uid in ids]
        count = len(ids)
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        num_bits = np.ascontiguousarray(num_bits, dtype=np.uint8)
        iterations = np.ascontiguousarray(iterations)
        if not np.issubdtype(iterations.dtype, np.integer):
            raise ValueError(
                f"iteration counts for subset {subset_t} must be integers, "
                f"got dtype {iterations.dtype}"
            )
        if iterations.size and int(iterations.min()) < 0:
            raise ValueError(
                f"negative iteration count in column for subset {subset_t}"
            )
        if not (keys.size == num_bits.size == iterations.size == count):
            raise ValueError(
                f"misaligned columns for subset {subset_t}: "
                f"{count} ids vs {keys.size} keys, {num_bits.size} bit "
                f"widths, {iterations.size} iteration counts"
            )
        if count == 0:
            return None
        if num_bits.max() > 30 or num_bits.min() < 1:
            raise ValueError(
                f"sketch bit widths for subset {subset_t} outside [1, 30]"
            )
        if np.any(keys >> num_bits.astype(np.uint64)):
            bad = int(np.argmax(keys >> num_bits.astype(np.uint64) != 0))
            raise ValueError(
                f"key {int(keys[bad])} out of range for a "
                f"{int(num_bits[bad])}-bit sketch (subset {subset_t})"
            )
        if len(set(ids)) != count:
            raise ValueError(
                f"duplicate user ids in column for subset {subset_t}"
            )
        return SketchColumn(ids, keys, num_bits, iterations)

    def publish_column(self, subset: Sequence[int], column: SketchColumn) -> int:
        """Bulk-publish one subset's sketches from parallel arrays.

        The column-speaking counterpart of looping :meth:`publish`:
        validation is vectorised, and when the subset is new to this
        store the arrays are parked lazily — no per-:class:`Sketch`
        objects are created until someone asks for records.  Publishing
        into an existing column keeps the duplicate-user contract.
        Returns the number of sketches published.
        """
        subset_t = tuple(int(i) for i in subset)
        validated = self._validated_column(subset_t, column)
        if validated is None:
            return 0
        if subset_t not in self._by_subset:
            self._by_subset[subset_t] = None
            self._lazy[subset_t] = validated
            return len(validated.user_ids)
        if self._by_subset[subset_t] is None:
            self._materialise(subset_t)
        existing = self._by_subset[subset_t]
        duplicates = existing.keys() & set(validated.user_ids)
        if duplicates:
            raise ValueError(
                f"user {min(duplicates)!r} already published a sketch for "
                f"subset {subset_t}"
            )
        trusted = Sketch._trusted
        for uid, key, bits, its in zip(
            validated.user_ids,
            validated.keys.tolist(),
            validated.num_bits.tolist(),
            validated.iterations.tolist(),
        ):
            existing[uid] = trusted(uid, subset_t, key, bits, its)
        return len(validated.user_ids)

    @classmethod
    def from_columns(cls, columns: Dict[Subset, SketchColumn]) -> "SketchStore":
        """Bulk-construct a store from per-subset column arrays.

        Validation happens vectorially per column (key ranges, duplicate
        users, aligned lengths) up front; the per-:class:`Sketch` records
        are materialised lazily, only if a caller asks for them — the
        column-speaking query paths never pay that cost.  This is what
        makes the columnar load path an order of magnitude faster than
        the per-record JSONL path at M=50k.
        """
        store = cls()
        for subset, column in columns.items():
            store.publish_column(subset, column)
        return store

    def split_by_user_range(self, n_shards: int) -> List["SketchStore"]:
        """Partition this store into ``n_shards`` stores by contiguous user range.

        Shard ``i`` holds the ``i``-th contiguous slice of the **sorted**
        user-id universe (balanced: sizes differ by at most one), which
        keeps each shard's :meth:`aligned_columns` order a contiguous run
        of the single-store aligned order — the property that makes
        scatter-gathered query reductions bit-identical (see
        :mod:`repro.core.partition`).  Within each shard, columns keep
        their original publication order, and each shard store
        round-trips through the columnar v2 format unchanged.  A shard
        whose range contains no publisher of some subset simply lacks
        that subset (stores never hold empty columns); with more shards
        than users, the surplus shards are empty stores.
        """
        from ..core.partition import split_columns_by_user_range

        return [
            SketchStore.from_columns(shard)
            for shard in split_columns_by_user_range(self.to_columns(), n_shards)
        ]

    def aligned_columns(self, subsets: Sequence[Sequence[int]]) -> AlignedColumns:
        """User-aligned array views over several subsets' columns.

        The array-level intersection behind every multi-subset query:
        only users who published for *every* requested subset contribute,
        in a consistent (sorted) order, so position ``u`` of every
        returned view belongs to the same user — exactly the alignment
        Appendix F's combination requires — without materialising a
        single :class:`~repro.core.sketch.Sketch` record.  Lazily-loaded
        (columnar v2) stores stay lazy.

        Raises
        ------
        KeyError
            If any requested subset was never published.
        ValueError
            If no user published sketches for all requested subsets.
        """
        keys = [tuple(s) for s in subsets]
        columns = []
        for key in keys:
            if key not in self._by_subset:
                raise KeyError(f"no sketches published for subset {key}")
            columns.append(self.column_for(key))
        # Index-back maps: user id -> position in that subset's column.
        # Distinct subsets usually share one publishing policy, so the
        # common set is nearly the whole column; building the maps is the
        # O(total users) pass that replaces per-Sketch materialisation.
        position_maps = [
            {uid: i for i, uid in enumerate(column.user_ids)} for column in columns
        ]
        common = set(position_maps[0])
        for position_map in position_maps[1:]:
            common &= position_map.keys()
        if not common:
            raise ValueError(f"no user published sketches for all of {keys}")
        order = sorted(common)
        count = len(order)
        indices = [
            np.fromiter((pmap[uid] for uid in order), dtype=np.int64, count=count)
            for pmap in position_maps
        ]
        gathered_keys = [
            column.keys[index] for column, index in zip(columns, indices)
        ]
        return AlignedColumns(order, indices, gathered_keys)

    def aligned_groups(self, subsets: Sequence[Sequence[int]]) -> List[List[Sketch]]:
        """Sketch groups for several subsets, aligned on common users.

        Compatibility shim over :meth:`aligned_columns` for callers that
        still want materialised :class:`~repro.core.sketch.Sketch`
        records (the query engine's hot paths no longer do); row ``u`` of
        every group belongs to the same user.
        """
        keys = [tuple(s) for s in subsets]
        aligned = self.aligned_columns(keys)
        groups: List[List[Sketch]] = []
        for key, index in zip(keys, aligned.indices):
            records = self.sketches_for(key)
            groups.append([records[i] for i in index.tolist()])
        return groups


# ----------------------------------------------------------------------
# Publishing policies
# ----------------------------------------------------------------------
def per_bit_subsets(schema: Schema) -> List[Subset]:
    """One single-bit subset per profile position."""
    return [(position,) for position in range(schema.total_bits)]


def attribute_subsets(schema: Schema, names: Iterable[str] | None = None) -> List[Subset]:
    """One whole-attribute subset per (selected) attribute."""
    chosen = tuple(names) if names is not None else schema.names
    return [schema.bits(name) for name in chosen]


def prefix_subsets(schema: Schema, name: str) -> List[Subset]:
    """All prefixes ``A_1 .. A_k`` of an integer attribute.

    Prefix ``A_k`` is the full attribute, so equality queries come for
    free; the shorter prefixes serve the interval decomposition directly
    (no Appendix F combination, hence no conditioning blow-up).
    """
    spec = schema.spec(name)
    return [schema.prefix(name, length) for length in range(1, spec.bits + 1)]


def _sketch_span(
    profiles: Sequence[Profile],
    sketcher: Sketcher,
    subset_keys: Sequence[Subset],
    seed: int,
    indices: Sequence[int],
    store: SketchStore,
) -> None:
    """Sketch a run of users into ``store`` with seeded per-user coins.

    ``indices[k]`` is the *global* position of ``profiles[k]`` in the full
    database — the only per-user input to the counter-based coin stream
    (:class:`~repro.core.sketch.CollectionCoins`), so any chunking of the
    users (contiguous spans, interleaved strides) publishes identical
    sketches.  The whole span advances through
    :meth:`~repro.core.sketch.Sketcher.sketch_many` — one vectorised
    rejection loop per subset instead of one Python loop per user — and
    lands in the store as bulk columns.
    """
    if not profiles:
        return
    coins = CollectionCoins(seed)
    user_ids = [profile.user_id for profile in profiles]
    rows = np.stack([profile.bits for profile in profiles])
    num_bits = np.full(len(user_ids), sketcher.sketch_bits, dtype=np.uint8)
    for run_index, subset in enumerate(subset_keys):
        keys, iterations = sketcher.sketch_many(
            user_ids, rows, subset, coins, indices, run_index
        )
        # Narrow to the columnar format's iteration dtype (uint16 unless
        # a count overflows — same rule as SketchStore.column_for), so a
        # store published through this path serializes byte-identically
        # to one round-tripped through JSONL and re-materialised.
        it_dtype = (
            np.uint16
            if iterations.size == 0 or int(iterations.max()) < 1 << 16
            else np.uint32
        )
        store.publish_column(
            subset,
            SketchColumn(
                user_ids=user_ids,
                keys=keys,
                num_bits=num_bits,
                iterations=iterations.astype(it_dtype),
            ),
        )


def _collect_shard(payload: tuple) -> bytes:
    """Pool worker: rebuild the stack from primitives, sketch one shard.

    The payload is spawn-safe by construction — the profile shard as its
    columnar (v2) serialization, the PRF spec, and primitive sketcher
    parameters — and the return value is the shard store's columnar
    serialization (``iterations`` included, so the round-trip is fully
    lossless).
    """
    (
        database_payload,
        subset_keys,
        indices,
        seed,
        prf_spec,
        sketch_bits,
        with_replacement,
        max_iterations,
        block_size,
    ) = payload
    from ..core.params import PrivacyParams
    from ..data.serialization import loads_database
    from .serialization import dumps_store

    database = loads_database(database_payload)
    prf = prf_from_spec(prf_spec)
    sketcher = Sketcher(
        PrivacyParams(p=prf.p),
        prf,
        sketch_bits=sketch_bits,
        with_replacement=with_replacement,
        max_iterations=max_iterations,
        block_size=block_size,
    )
    store = SketchStore()
    _sketch_span(
        list(database), sketcher, [tuple(s) for s in subset_keys], seed, indices, store
    )
    return dumps_store(store, include_iterations=True, format="columnar")


def publish_database(
    database: ProfileDatabase,
    sketcher: Sketcher,
    subsets: Sequence[Sequence[int]],
    store: SketchStore | None = None,
    accountant: PrivacyAccountant | None = None,
    workers: int | None = None,
    seed: int | None = None,
    chunk_size: int | None = None,
) -> SketchStore:
    """Have every user of a database publish sketches for the given subsets.

    Parameters
    ----------
    database:
        The ground-truth profiles (used only on the user side — each user
        sketches *their own* profile; nothing raw reaches the store).
    sketcher:
        The Algorithm 1 implementation (shared params/PRF; per-user coins
        come from its RNG, or from ``seed`` when ``workers`` is given).
    subsets:
        The publishing policy: which subsets each user sketches.
    store:
        Existing store to extend, or ``None`` to create a fresh one.
    accountant:
        Optional privacy ledger; when given, each user's releases are
        charged and :class:`~repro.core.accountant.BudgetExceeded` aborts
        over-publishing.  With ``workers`` the whole database is charged
        up front, before any sketching starts.
    workers:
        ``None`` (default) keeps the classic sequential path: one shared
        RNG stream from the sketcher, users processed in order.  An
        integer switches to the *deterministic sharded* path: each user's
        coins are read from the counter-based
        :class:`~repro.core.sketch.CollectionCoins` stream keyed by
        ``(seed, global user index, subset run)``, chunks advance through
        the vectorised :meth:`~repro.core.sketch.Sketcher.sketch_many`
        rejection loop, users are cut into ~8 small interleaved chunks
        per worker (user ``i`` rides chunk ``i mod C``) drained through a
        ``multiprocessing`` pool's ``imap_unordered``, and the shard
        columns are reassembled in global user order.  The output store
        is bitwise identical for every ``workers >= 1`` value and every
        pool schedule; ``workers > 1`` requires a keyed stateless PRF
        (:class:`~repro.core.prf.BiasedPRF` or
        :class:`~repro.core.prf.CounterPRF`) — the memoising
        :class:`~repro.core.prf.TrueRandomOracle` raises.
    seed:
        Base seed for the sharded path's per-user coins.  ``None`` draws
        one from the sketcher's RNG (reproducible when the sketcher was
        seeded); ignored when ``workers`` is ``None``.
    chunk_size:
        Target users per chunk on the sharded path.  ``None`` (default)
        autotunes: ~8 chunks per worker for dynamic balancing, but never
        below :data:`MIN_CHUNK_USERS` users per chunk — at small M the
        per-chunk fixed cost (columnar payload serialization, pool
        dispatch, ``sketch_many`` ramp-up) otherwise dominates the
        sketching itself and adding workers *slows collection down*.  A
        database that fits in one chunk skips the pool entirely.
        Chunking never changes the output store (coins are keyed by
        global user index), only the schedule; ignored when ``workers``
        is ``None``.
    """
    store = store if store is not None else SketchStore()
    subset_keys = [tuple(int(i) for i in s) for s in subsets]
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")

    if workers is None:
        for profile in database:
            if accountant is not None:
                accountant.charge(profile.user_id, len(subset_keys))
            for subset in subset_keys:
                store.publish(sketcher.sketch(profile.user_id, profile.bits, subset))
        return store

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    prf = sketcher.prf
    if workers > 1:
        # Validate the PRF against the *requested* worker count, before
        # the accountant is charged or the sketcher RNG consumed: a
        # rejected call must not spend privacy budget, and whether it is
        # rejected must not depend on the database size (a small
        # database may collapse to a single in-process shard below).
        if not prf.stateless:
            raise ValueError(
                f"workers={workers} needs a stateless PRF; {type(prf).__name__} "
                "memoises draws in-process, so its draw order cannot span workers "
                "(use workers=1 or a keyed stateless PRF such as BiasedPRF)"
            )
        try:
            prf_spec = prf.spec()
        except TypeError as exc:
            raise ValueError(
                f"workers={workers} can only ship a keyed stateless PRF "
                f"(BiasedPRF or CounterPRF) to the pool, got {type(prf).__name__}"
            ) from exc
    profiles = list(database)
    if accountant is not None:
        for profile in profiles:
            accountant.charge(profile.user_id, len(subset_keys))
    if seed is None:
        seed = int(sketcher.rng.integers(0, 2**63))
    if not profiles:
        return store

    num_workers = min(workers, len(profiles))
    # Chunk sizing (PR 5 leftover): ~8 interleaved chunks per worker for
    # dynamic balancing, floored at MIN_CHUNK_USERS users per chunk — at
    # small M the per-chunk fixed cost (payload serialization, dispatch,
    # sketch_many ramp-up) dominates and finer chunking only serializes
    # the run.  The floor can shrink the effective worker count; when the
    # whole database fits in one chunk the pool is skipped outright.
    if chunk_size is None:
        chunk_size = max(MIN_CHUNK_USERS, -(-len(profiles) // (num_workers * 8)))
    shard_count = min(len(profiles), -(-len(profiles) // chunk_size))
    num_workers = min(num_workers, shard_count)
    if num_workers == 1:
        _sketch_span(profiles, sketcher, subset_keys, seed, range(len(profiles)), store)
        return store

    import multiprocessing

    from ..data.serialization import dumps_database
    from .serialization import loads_store

    # Dynamic shard balancing: many small *interleaved* chunks dispatched
    # through imap_unordered.  Chunk j takes users j, j+C, j+2C, ... —
    # Algorithm 1's iteration count is i.i.d. per user, so striding makes
    # every chunk's expected cost identical, and the surplus of chunks
    # over workers lets the pool steal work from whichever chunk runs
    # long.  Determinism is untouched: each user's coins are a pure
    # function of (seed, global index), and the merged columns are
    # republished in global user order below, so arrival order cannot
    # leak into the store.  Payloads and results travel in the columnar
    # (v2) format — bit-packed profiles out, column arrays back — which
    # removes the parent's serial JSON ceiling at M=50k.

    def shard_payloads():
        for chunk_index in range(shard_count):
            indices = tuple(range(chunk_index, len(profiles), shard_count))
            shard = ProfileDatabase(
                database.schema, [profiles[i] for i in indices]
            )
            yield (
                dumps_database(shard, format="columnar"),
                subset_keys,
                indices,
                seed,
                prf_spec,
                sketcher.sketch_bits,
                sketcher.with_replacement,
                sketcher.max_iterations,
                sketcher.block_size,
            )

    # Payloads are spawn-safe, but prefer fork where the platform has it:
    # worker start-up then costs a page-table copy instead of a fresh
    # interpreter + numpy import per worker.
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    shard_columns: List[Dict[Subset, SketchColumn]] = []
    with context.Pool(processes=num_workers) as pool:
        for payload in pool.imap_unordered(_collect_shard, shard_payloads()):
            # to_columns on a freshly-loaded columnar store is zero-copy.
            shard_columns.append(loads_store(payload)[0].to_columns())

    # Columnar reduce, in publishing-policy order and global user order:
    # the shard arrival order reflects pool timing (imap_unordered), so
    # each subset's shard columns are concatenated and argsorted back to
    # the sequential path's user order before one bulk publish_column —
    # no per-Sketch records are materialised.  This keeps even the
    # store's iteration order — not just its serialized bytes —
    # identical for every worker count and every pool schedule.
    position = {profile.user_id: i for i, profile in enumerate(profiles)}
    for subset in subset_keys:
        pieces = [columns[subset] for columns in shard_columns if subset in columns]
        if not pieces:
            continue
        ids = [uid for piece in pieces for uid in piece.user_ids]
        order = np.argsort(
            np.fromiter((position[uid] for uid in ids), dtype=np.int64, count=len(ids))
        )
        order_list = order.tolist()
        store.publish_column(
            subset,
            SketchColumn(
                user_ids=[ids[i] for i in order_list],
                keys=np.concatenate([piece.keys for piece in pieces])[order],
                num_bits=np.concatenate([piece.num_bits for piece in pieces])[order],
                iterations=np.concatenate(
                    [piece.iterations for piece in pieces]
                )[order],
            ),
        )
    return store
